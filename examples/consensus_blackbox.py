#!/usr/bin/env python3
"""The black-box transformation (paper, Section 4.4): run a *nominal*
VABA unchanged among virtual users to get weighted consensus, and check
the SSLE chain-quality relaxation.

Run:  python examples/consensus_blackbox.py
"""

from repro.protocols import SsleElection, WeightedVabaRunner, chain_quality
from repro.sim import build_world
from repro.sim.adversary import most_tickets_under
from repro.weighted import black_box_setup


def main() -> None:
    # A flatter validator set so the adversary's weight budget actually
    # buys tickets (heavily skewed sets starve it entirely).
    weights = [14, 13, 12, 11, 11, 10, 10, 9, 5, 5]
    print(f"weights: {weights}")

    # f_n = 1/3 nominal resilience, epsilon = 1/12 -> f_w = 1/4.
    setup = black_box_setup(weights, f_n="1/3", epsilon="1/12")
    print(
        f"black-box setup: f_w = {setup.f_w}, f_n = {setup.f_n}; "
        f"T = {setup.total_virtual} virtual users "
        f"(overhead x{setup.total_virtual / len(weights):.2f} vs paper bound x2.25)"
    )

    # --- weighted consensus by simulating the nominal protocol -------------
    runner = WeightedVabaRunner(setup.vmap, weights, setup.f_w, coin_seed=3)
    outputs: dict[int, bytes] = {}
    parties = runner.build_parties(setup.f_n, on_decide=lambda vid, v: outputs.setdefault(vid, v))
    world = build_world(lambda vid: parties[vid], runner.n_virtual, seed=1)
    for real in range(len(weights)):
        value = f"block-from-{real}".encode()
        for vid in setup.vmap.virtual_ids(real):
            world.party(vid).propose(value)
    world.run()

    decided = set(outputs.values())
    assert len(decided) == 1, decided
    real_out = runner.real_output(outputs)
    print(f"consensus: all {len(real_out)} real parties output {next(iter(decided))!r}")
    print(f"network: {world.metrics.messages} messages among virtual users")

    # --- SSLE chain quality -------------------------------------------------
    corrupt = most_tickets_under(weights, setup.result.assignment.to_list(), setup.f_w)
    election = SsleElection(setup.vmap, beacon_seed=9)
    quality = chain_quality(election, corrupt, epochs=5000)
    ticket_frac = setup.vmap.corrupted_fraction(corrupt)
    print(
        f"\nSSLE: adversary (weight < {setup.f_w}) owns "
        f"{ticket_frac:.1%} of tickets and won {quality:.1%} of 5000 epochs "
        f"-- chain quality bounded by f_n = {float(setup.f_n):.1%} as claimed"
    )
    leaders = [election.elect(e).leader for e in range(8)]
    print(f"first 8 leaders: {leaders} (only the owner could claim each epoch)")


if __name__ == "__main__":
    main()
