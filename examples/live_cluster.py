#!/usr/bin/env python3
"""Live cluster walkthrough: the same weighted protocols, off the simulator.

Everything in ``repro.protocols`` is a transport-agnostic ``Party`` state
machine.  This example runs weighted Bracha RBC and one SMR epoch over
the *live* asyncio runtime -- first on in-process queues, then on real
TCP sockets -- and injects a crash fault, comparing real serialized bytes
with the simulator's wire-size estimates.

Run:  PYTHONPATH=src python examples/live_cluster.py
"""

from repro.protocols.common_coin import deterministic_coin
from repro.protocols.reliable_broadcast import BroadcastParty
from repro.protocols.smr import SmrParty
from repro.runtime import FaultController, run_cluster
from repro.sim import build_world
from repro.sim.adversary import heaviest_under
from repro.weighted.quorum import WeightedQuorums

WEIGHTS = [40, 25, 15, 10, 5, 3, 1]
N = len(WEIGHTS)
QUORUMS = WeightedQuorums(WEIGHTS, "1/3")
PAYLOAD = b"live-broadcast-payload-0123456789"
coin = deterministic_coin("ex")


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    print(f"Cluster: n={N}, weights={WEIGHTS}, weighted quorums f_w=1/3")

    # -- 1. Weighted RBC over both live transports ---------------------------------
    for transport in ("inproc", "tcp"):
        section(f"Bracha RBC over {transport}")
        cluster = run_cluster(
            lambda pid: BroadcastParty(pid, QUORUMS),
            N,
            transport=transport,
            setup=lambda c: c.party(0).broadcast_value(PAYLOAD),
            stop_when=lambda c: all(p.delivered == PAYLOAD for p in c.parties),
        )
        m = cluster.metrics
        print(f"  delivered by all {N} parties")
        print(f"  {m.messages} messages, {m.bytes} real payload bytes")
        print(f"  wall clock: {m.elapsed_seconds * 1000:.2f} ms")

    # -- 2. Real bytes vs the simulator's estimates --------------------------------
    section("Codec bytes vs simulator estimates (same RBC run)")
    world = build_world(lambda pid: BroadcastParty(pid, QUORUMS), N, seed=1)
    world.party(0).broadcast_value(PAYLOAD)
    world.run()
    live = run_cluster(
        lambda pid: BroadcastParty(pid, QUORUMS),
        N,
        setup=lambda c: c.party(0).broadcast_value(PAYLOAD),
        stop_when=lambda c: all(p.delivered == PAYLOAD for p in c.parties),
    )
    print(f"  {'type':<10} {'msgs':>5} {'sim est. B':>11} {'real B':>8}")
    for name in sorted(live.metrics.by_type):
        print(
            f"  {name:<10} {live.metrics.by_type[name]:>5} "
            f"{world.metrics.bytes_by_type[name]:>11} "
            f"{live.metrics.bytes_by_type[name]:>8}"
        )

    # -- 3. One SMR epoch over TCP ---------------------------------------------------
    section("SMR epoch over tcp (HoneyBadger-style composition)")
    cluster = run_cluster(
        lambda pid: SmrParty(pid, N, QUORUMS, coin),
        N,
        transport="tcp",
        setup=lambda c: [
            c.party(pid).propose_batch(0, f"txbatch-{pid}".encode())
            for pid in range(N)
        ],
        stop_when=lambda c: all(len(p.ordered_log(0)) == N for p in c.parties),
    )
    log = cluster.party(0).ordered_log(0)
    assert all(cluster.party(pid).ordered_log(0) == log for pid in range(N))
    print(f"  all replicas agree on the epoch log: {[p for p, _ in log]}")
    print(f"  epoch latency: {cluster.metrics.elapsed_seconds * 1000:.2f} ms")

    # -- 4. Crash-fault injection ------------------------------------------------------
    section("Crash fault: silence a sub-f_w weight set")
    corrupt = heaviest_under(WEIGHTS, "1/3")
    survivors = [pid for pid in range(N) if pid not in corrupt]
    faults = FaultController()

    def setup(c):
        for pid in corrupt:
            c.crash_node(pid)
        c.party(survivors[0]).broadcast_value(b"still-alive")

    cluster = run_cluster(
        lambda pid: BroadcastParty(pid, QUORUMS),
        N,
        faults=faults,
        setup=setup,
        stop_when=lambda c: all(
            c.party(pid).delivered == b"still-alive" for pid in survivors
        ),
    )
    print(f"  crashed parties {sorted(corrupt)}; survivors still delivered")
    print(f"  transport dropped {faults.dropped_messages} messages at crashed links")

    print("\nDone: the sim's protocol code ran unmodified over live transports.")


if __name__ == "__main__":
    main()
