#!/usr/bin/env python3
"""Quickstart for the committee-centric facade (repro.api): one object
model from weights, through ticket assignment, to protocol execution.

Run:  PYTHONPATH=src python examples/quickstart_api.py
"""

from repro.api import Committee, Session
from repro.core import WeightRestriction

# 1. A committee from any weight source -- here a seeded Zipf stake
#    distribution; Committee.from_chain / from_file / from_weights work
#    the same way.
committee = Committee.synthetic("zipf", n=10, total=1000, skew=1.2, seed=7)
print(f"committee      : {committee}")
print(f"weights        : {committee.int_weights}  (W = {committee.total_weight})")

# 2. Weights -> tickets through the solver-policy registry.  Every policy
#    returns the same uniform result: bound, achieved total, verdict.
problem = WeightRestriction("1/3", "1/2")
for policy in ("swiper", "swiper-linear", "brute-force"):
    r = committee.solve(problem, policy)
    print(
        f"{policy:<14} : T={r.achieved} (bound {r.bound}), "
        f"max={r.max_tickets}, holders={r.holders}, verdict={r.verdict}"
    )

# 3. Tickets -> execution.  A Session binds the committee to a protocol
#    and a backend and emits the scenario engine's unified record.
session = Session(committee=committee, protocol="rbc", name="api-quickstart")
sim = session.run()  # deterministic discrete-event simulation
live = session.with_backend("inproc", timeout=30.0).run()  # real asyncio run

print(f"\nsim            : {sim.messages} msgs, {sim.bytes} B, "
      f"completed={sim.completed}")
print(f"inproc         : {live.messages} msgs, {live.bytes} B, "
      f"completed={live.completed}")
assert sim.decided == live.decided  # both backends decided the same values
print("decided values agree across backends")
