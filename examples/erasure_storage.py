#!/usr/bin/env python3
"""Weighted erasure-coded storage (AVID) with fault injection
(paper, Section 5.1): Weight Qualification picks the fragment layout so
any >1/3-weight coalition can reconstruct.

Run:  python examples/erasure_storage.py
"""

import random

from repro.codes import ReedSolomon
from repro.protocols import AvidParty
from repro.sim import build_world
from repro.sim.adversary import heaviest_under
from repro.weighted import WeightedQuorums, qualification_setup


def main() -> None:
    weights = [40, 25, 15, 10, 5, 3, 1, 1]
    n = len(weights)
    print(f"validators: {weights} (W = {sum(weights)})")

    # WQ(beta_w = 1/3, beta_n = 1/4): fragments per ticket, (k, m) coding.
    setup = qualification_setup(weights, "1/3", "1/4")
    print(
        f"WQ solution: T = {setup.total_shards} fragments, "
        f"k = {setup.data_shards} to reconstruct "
        f"(rate {float(setup.rate):.3f} vs nominal 1/3 -- paper's x1.33 comm overhead)"
    )
    for pid in range(n):
        print(f"  party {pid} (weight {weights[pid]:>2}): {setup.vmap.tickets[pid]} fragment(s)")

    code = ReedSolomon(k=setup.data_shards, m=setup.total_shards)
    quorums = WeightedQuorums(weights, "1/3")
    world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=11)

    rng = random.Random(0)
    data = rng.randbytes(4 * code.k)  # a few stripes of payload
    print(f"\ndispersing a {len(data)}-byte payload as block fragments...")
    commitment = world.party(0).disperse(data, code, setup.vmap)
    world.run()
    stored = sum(1 for p in world.parties if p.stored_commitment == commitment)
    print(f"stored: {stored}/{n} parties confirmed the commitment")

    # Fault injection: crash the heaviest coalition under 1/3 weight.
    corrupt = heaviest_under(weights, "1/3")
    for pid in corrupt:
        world.party(pid).crash()
    print(f"crashing parties {sorted(corrupt)} (weight {sum(weights[i] for i in corrupt)}/100)")

    retriever = next(p for p in range(n) if p not in corrupt)
    world.party(retriever).retrieve(commitment)
    world.run()
    ok = world.party(retriever).retrieved == data
    print(f"party {retriever} retrieval after crashes: {'SUCCESS' if ok else 'FAILED'}")
    assert ok

    print(
        f"\nnetwork: {world.metrics.messages} messages; "
        f"fragment bytes by type: { {k: v for k, v in world.metrics.bytes_by_type.items()} }"
    )


if __name__ == "__main__":
    main()
