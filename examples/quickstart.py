#!/usr/bin/env python3
"""Quickstart: solve the three weight reduction problems on a small stake
distribution and inspect the assignments (paper, Sections 2-3).

Run:  python examples/quickstart.py
"""

from repro import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    is_valid_assignment,
    solve,
)

# A small "validator set": one whale, a few mid-size holders, a long tail.
WEIGHTS = [5_000_000, 2_500_000, 1_200_000, 800_000, 350_000, 100_000, 40_000, 9_000, 800, 120]


def show(problem, result) -> None:
    a = result.assignment
    print(f"  problem        : {problem}")
    print(f"  tickets        : {a.to_list()}")
    print(f"  total (T)      : {a.total}   (theorem bound: {result.ticket_bound})")
    print(f"  max per party  : {a.max_tickets}")
    print(f"  holders        : {a.holders} of {len(a)} parties")
    print(f"  verified valid : {is_valid_assignment(problem, WEIGHTS, a)}")
    print()


def main() -> None:
    print(f"weights: {WEIGHTS}  (W = {sum(WEIGHTS):,})\n")

    # Weight Restriction: no sub-1/3-weight coalition reaches 1/2 of the
    # tickets -- the setup for weighted common coins and secret sharing.
    wr = WeightRestriction("1/3", "1/2")
    print("Weight Restriction  WR(1/3, 1/2)")
    show(wr, solve(wr, WEIGHTS))

    # Weight Qualification: every >2/3-weight coalition holds >1/2 of the
    # tickets -- the setup for erasure-coded storage layouts.
    wq = WeightQualification("2/3", "1/2")
    print("Weight Qualification  WQ(2/3, 1/2)")
    show(wq, solve(wq, WEIGHTS))

    # Weight Separation: heavy (>1/2) coalitions always out-ticket light
    # (<1/3) ones with a single assignment.
    ws = WeightSeparation("1/3", "1/2")
    print("Weight Separation  WS(1/3, 1/2)")
    show(ws, solve(ws, WEIGHTS))

    # Linear mode: quasilinear, still valid and bound-respecting.
    linear = solve(wr, WEIGHTS, mode="linear")
    full = solve(wr, WEIGHTS, mode="full")
    print(
        f"linear vs full mode (WR): {linear.total_tickets} vs "
        f"{full.total_tickets} tickets"
    )


if __name__ == "__main__":
    main()
