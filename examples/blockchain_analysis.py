#!/usr/bin/env python3
"""Analyze ticket allocation on the calibrated chain snapshots -- a
miniature of the paper's Section 7 study, with an ASCII heatmap.

Run:  python examples/blockchain_analysis.py
"""

from fractions import Fraction

from repro import WeightRestriction, solve
from repro.analysis import alpha_grid_sweep, heatmap
from repro.datasets import aptos, tezos


def main() -> None:
    print("Ticket allocation on calibrated snapshots (paper Table 2 style)\n")
    header = f"{'system':<10} {'n':>6} {'W':>12}  {'WR(1/4,1/3)':>12} {'WR(1/3,1/2)':>12} {'WR(2/3,3/4)':>12}"
    print(header)
    print("-" * len(header))
    for snap in (aptos(), tezos()):
        cells = []
        for aw, an in (("1/4", "1/3"), ("1/3", "1/2"), ("2/3", "3/4")):
            result = solve(WeightRestriction(aw, an), snap.weights)
            cells.append(result.total_tickets)
        print(
            f"{snap.name:<10} {snap.n:>6} {snap.total:>12.2e}  "
            f"{cells[0]:>12} {cells[1]:>12} {cells[2]:>12}"
        )

    # Figure-1-style heatmap for Tezos: total tickets across the grid.
    print("\nTezos: total tickets over (alpha_w/alpha_n rows x alpha_n cols)")
    snap = tezos()
    alpha_ns = [Fraction(k, 10) for k in range(2, 10, 2)]
    ratios = [Fraction(k, 10) for k in range(2, 10, 2)]
    points = alpha_grid_sweep(snap.weights, alpha_ns=alpha_ns, ratios=ratios)
    index = {(p.alpha_n, p.ratio): p.metrics.total_tickets for p in points}
    grid = [
        [float(index.get((an, r), float("nan"))) for an in alpha_ns]
        for r in ratios
    ]
    print(
        heatmap(
            grid,
            row_labels=[str(r) for r in ratios],
            col_labels=[str(a) for a in alpha_ns],
        )
    )
    print(
        "\nshape check (paper Section 7): tickets shrink as the gap "
        "alpha_n - alpha_w grows, and rarely exceed n."
    )


if __name__ == "__main__":
    main()
