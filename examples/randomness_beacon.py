#!/usr/bin/env python3
"""Weighted randomness beacon on the simulated asynchronous network
(paper, Section 4.1): Weight Restriction turns a nominal threshold
signature scheme into a weighted common coin.

Part two opens a coin with T > 1000 tickets through the batched crypto
engine: all quorum shares are verified in one random-linear-combination
aggregate and combined with one Straus multi-exponentiation, instead of
thousands of scalar ``pow`` chains.

Run:  python examples/randomness_beacon.py
"""

import random
import time

from repro.crypto import WeightedCoin
from repro.crypto.group import TEST_GROUP_256
from repro.datasets import tezos
from repro.protocols import BeaconParty
from repro.sim import build_world
from repro.sim.adversary import most_tickets_under
from repro.weighted import blunt_setup


def main() -> None:
    # Take a 20-party bootstrap of the Tezos snapshot for a quick demo.
    snap = tezos()
    rng = random.Random(42)
    weights = [snap.weights[rng.randrange(snap.n)] for _ in range(20)]
    print(f"20 bootstrapped Tezos bakers, W = {sum(weights):,}")

    # WR(f_w = 1/3, alpha_n = 1/2): the blunt setup for the coin.
    setup = blunt_setup(weights, "1/3", "1/2")
    tickets = setup.result.assignment
    print(
        f"Swiper allocated T = {tickets.total} tickets "
        f"(bound {setup.result.ticket_bound}), threshold = {setup.threshold}"
    )

    # Dealer-based setup of the unique threshold signature scheme.
    coin = WeightedCoin(TEST_GROUP_256, tickets, "1/2", rng)

    # The adversary grabs as many tickets as its 1/3 weight budget buys.
    corrupt = most_tickets_under(weights, tickets.to_list(), "1/3")
    corrupt_tickets = sum(tickets[i] for i in corrupt)
    print(
        f"adversary: parties {sorted(corrupt)} hold {corrupt_tickets} tickets "
        f"(< threshold {setup.threshold}: cannot predict the coin)"
    )

    # Run three beacon epochs over the asynchronous network.
    world = build_world(
        lambda pid: BeaconParty(pid, coin, random.Random(1000 + pid)),
        len(weights),
        seed=7,
    )
    for epoch in (1, 2, 3):
        for pid in setup.vmap.parties_with_tickets():
            world.party(pid).start_epoch(epoch)
    world.run()

    for epoch in (1, 2, 3):
        values = {p.values.get(epoch) for p in world.parties}
        assert len(values) == 1, "all parties must agree"
        print(f"epoch {epoch}: beacon value = {next(iter(values)) % 10**12:012d}... (agreed by all)")

    total_shares = sum(p.counters["shares_signed"] for p in world.parties)
    per_epoch = total_shares / 3
    print(
        f"\nwork: {per_epoch:.0f} signature shares per epoch (= T = {tickets.total}; "
        f"a nominal protocol with n = {len(weights)} parties signs {len(weights)} "
        f"-- overhead x{per_epoch / len(weights):.2f}, paper worst-case bound x1.33)"
    )
    print(f"network: {world.metrics.messages} messages, {world.metrics.bytes:,} bytes")

    # -- part two: a 1024-ticket coin through the batch engine ----------------
    print("\n-- batched opening at beacon scale --")
    tickets_big = [8] * 128  # T = 1024 virtual signers, threshold 512
    coin_big = WeightedCoin(TEST_GROUP_256, tickets_big, "1/2", rng)
    epoch = 1
    shares = []
    for party in range(96):  # 768 tickets: a comfortable quorum
        shares.extend(coin_big.shares_of_party(party, epoch, rng))
    print(
        f"T = {coin_big.total_shares} tickets, threshold = {coin_big.threshold}, "
        f"{len(shares)} shares received"
    )

    start = time.perf_counter()
    verdicts = coin_big.verify_shares(shares, epoch)  # one aggregate check
    good = [s for s, ok in zip(shares, verdicts) if ok]
    value_batch = coin_big.coin.open(good, epoch, verify=False)
    t_batch = time.perf_counter() - start

    # Per-share oracle on a slice, scaled: the seed path is linear.
    sample = shares[:32]
    start = time.perf_counter()
    assert all(coin_big.coin.verify_share(s, epoch) for s in sample)
    t_seed_est = (time.perf_counter() - start) * (len(shares) / len(sample))

    # Uniqueness: a different share subset opens to the same value.
    value_oracle = coin_big.coin.open(shares[200 : 200 + coin_big.threshold], epoch)
    assert value_batch == value_oracle, "batch and oracle coin values must agree"
    print(
        f"batch open: {t_batch:.3f}s (verify {len(shares)} shares + combine) vs "
        f"~{t_seed_est:.3f}s per-share verification alone -- "
        f"{t_seed_est / t_batch:.1f}x, bit-identical value"
    )


if __name__ == "__main__":
    main()
