#!/usr/bin/env python3
"""Weighted randomness beacon on the simulated asynchronous network
(paper, Section 4.1): Weight Restriction turns a nominal threshold
signature scheme into a weighted common coin.

Run:  python examples/randomness_beacon.py
"""

import random

from repro.crypto import WeightedCoin
from repro.crypto.group import TEST_GROUP_256
from repro.datasets import tezos
from repro.protocols import BeaconParty
from repro.sim import build_world
from repro.sim.adversary import most_tickets_under
from repro.weighted import blunt_setup


def main() -> None:
    # Take a 20-party bootstrap of the Tezos snapshot for a quick demo.
    snap = tezos()
    rng = random.Random(42)
    weights = [snap.weights[rng.randrange(snap.n)] for _ in range(20)]
    print(f"20 bootstrapped Tezos bakers, W = {sum(weights):,}")

    # WR(f_w = 1/3, alpha_n = 1/2): the blunt setup for the coin.
    setup = blunt_setup(weights, "1/3", "1/2")
    tickets = setup.result.assignment
    print(
        f"Swiper allocated T = {tickets.total} tickets "
        f"(bound {setup.result.ticket_bound}), threshold = {setup.threshold}"
    )

    # Dealer-based setup of the unique threshold signature scheme.
    coin = WeightedCoin(TEST_GROUP_256, tickets, "1/2", rng)

    # The adversary grabs as many tickets as its 1/3 weight budget buys.
    corrupt = most_tickets_under(weights, tickets.to_list(), "1/3")
    corrupt_tickets = sum(tickets[i] for i in corrupt)
    print(
        f"adversary: parties {sorted(corrupt)} hold {corrupt_tickets} tickets "
        f"(< threshold {setup.threshold}: cannot predict the coin)"
    )

    # Run three beacon epochs over the asynchronous network.
    world = build_world(
        lambda pid: BeaconParty(pid, coin, random.Random(1000 + pid)),
        len(weights),
        seed=7,
    )
    for epoch in (1, 2, 3):
        for pid in setup.vmap.parties_with_tickets():
            world.party(pid).start_epoch(epoch)
    world.run()

    for epoch in (1, 2, 3):
        values = {p.values.get(epoch) for p in world.parties}
        assert len(values) == 1, "all parties must agree"
        print(f"epoch {epoch}: beacon value = {next(iter(values)) % 10**12:012d}... (agreed by all)")

    total_shares = sum(p.counters["shares_signed"] for p in world.parties)
    per_epoch = total_shares / 3
    print(
        f"\nwork: {per_epoch:.0f} signature shares per epoch (= T = {tickets.total}; "
        f"a nominal protocol with n = {len(weights)} parties signs {len(weights)} "
        f"-- overhead x{per_epoch / len(weights):.2f}, paper worst-case bound x1.33)"
    )
    print(f"network: {world.metrics.messages} messages, {world.metrics.bytes:,} bytes")


if __name__ == "__main__":
    main()
