"""Epoch service walkthrough: a long-lived committee under drifting stake.

Runs the same replicated service twice:

1. on the deterministic simulator -- open-loop Poisson load over three
   committee generations, stake drifting between epochs, checkpoint
   handover at every rotation;
2. on the live asyncio runtime (in-process transport) -- same service,
   wall-clock pacing, epochs retired mid-run.

Along the way it shows the part the paper cares about: the epoch
manager re-solves the weight-reduction instance at every rotation, and
a small stake delta takes the incremental patched-stream path instead
of a cold solve.

Run:  PYTHONPATH=src python examples/epoch_service.py
"""

from repro.api import Committee
from repro.service import (
    DriftSchedule,
    EpochManager,
    EpochService,
    InprocServiceBackend,
    LoadGenerator,
    ServiceConfig,
    SimServiceBackend,
)


def build_service(backend, *, seed=0):
    committee = Committee.synthetic("zipf", n=6, total=600, skew=1.2, seed=seed)
    committee.validate(f_w="1/3")
    weights = tuple(committee.int_weights)
    # Two small drifts: epoch 1 bumps party 0, epoch 2 bumps party 1.
    schedule = DriftSchedule(
        initial=weights,
        drifts=(
            (1, 0, weights[0] + weights[0] // 8),
            (2, 1, weights[1] + weights[1] // 8),
        ),
    )
    manager = EpochManager(schedule, f_w="1/3")
    config = ServiceConfig(slot_interval=0.05, slots_per_epoch=3, max_time=60.0)
    load = LoadGenerator(rate=60.0, requests=36, payload_size=32, seed=seed)
    return EpochService(backend, manager, config, seed=seed, load=load)


def describe(result, service):
    svc = result.record()["service"]
    print(f"  completed : {result.completed}")
    print(
        f"  requests  : {svc['requests_committed']}/{svc['requests_submitted']} "
        f"over {svc['slots']} slots, {svc['rotations']} rotations"
    )
    print(
        f"  latency   : p50 {svc['latency_p50_s']}s  p99 {svc['latency_p99_s']}s "
        f"({svc['ops_per_sec']} ops/sec)"
    )
    for ep in svc["epochs"]:
        print(
            f"    epoch {ep['epoch']}: n={ep['n']} tickets={ep['total_tickets']} "
            f"solve={ep['solver_mode']} requests={ep['requests']}"
        )
    digests = service.epoch_party_digests[-1]
    assert len(set(digests.values())) == 1, "replicas disagree on the log!"
    print(f"  final epoch digest (all {len(digests)} replicas agree): "
          f"{next(iter(digests.values()))}")


def main():
    print("== sim backend (virtual time, fully deterministic) ==")
    sim_service = build_service(SimServiceBackend(seed=0))
    sim_result = sim_service.run()
    describe(sim_result, sim_service)
    modes = [e.solver_mode for e in sim_service.metrics.epochs]
    assert modes[0] == "cold" and "incremental" in modes[1:]
    print(f"  solver    : cold first epoch, then {modes.count('incremental')} "
          f"incremental re-solve(s)")

    print("\n== inproc backend (live asyncio runtime, wall clock) ==")
    live_service = build_service(InprocServiceBackend())
    live_result = live_service.run()
    describe(live_result, live_service)

    assert sim_result.completed and live_result.completed
    print("\nSame service, two execution backends, gap-free logs on both.")


if __name__ == "__main__":
    main()
