"""Epoch service: long-lived multi-committee SMR over rotating weighted
committees.

The scenario engine runs one committee to completion; real weighted
systems run *forever* while stake moves under them.  This package is
that missing layer: an :class:`EpochService` that batches submitted
requests into pipelined consensus slots, an
:class:`~repro.service.epoch.EpochManager` that re-forms the committee
each epoch (incrementally re-solving the Swiper instance when the stake
delta is small), checkpoint handover between committees via the blunt
weighted threshold signatures of Section 4.3, and an open-loop Poisson
:class:`LoadGenerator` with latency/throughput metrics.

Quick start::

    from repro.service import (
        DriftSchedule, EpochManager, EpochService, LoadGenerator,
        ServiceConfig, SimServiceBackend,
    )

    schedule = DriftSchedule(initial=(40, 25, 15, 10, 5, 3, 1, 1),
                             drifts=((1, 2, 18), (2, 5, 4)))
    manager = EpochManager(schedule, f_w="1/3")
    backend = SimServiceBackend(seed=0)
    service = EpochService(
        backend, manager, ServiceConfig(slots_per_epoch=3),
        load=LoadGenerator(rate=100.0, requests=40),
    )
    result = service.run()
    print(result.record()["service"]["ops_per_sec"])
"""

from .backends import InprocServiceBackend, ServiceBackend, SimServiceBackend
from .epoch import DriftSchedule, EpochManager, WeightSchedule
from .load import LoadGenerator
from .metrics import EpochRecord, ServiceMetrics, ServiceResult
from .scenario import run_service_spec
from .service import EpochService, ServiceConfig

__all__ = [
    "DriftSchedule",
    "EpochManager",
    "EpochRecord",
    "EpochService",
    "InprocServiceBackend",
    "LoadGenerator",
    "ServiceBackend",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceResult",
    "SimServiceBackend",
    "WeightSchedule",
    "run_service_spec",
]
