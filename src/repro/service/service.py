"""The epoch service: long-lived multi-committee SMR.

One :class:`EpochService` accepts requests through :meth:`submit`,
batches them into pipelined consensus *slots* driven by the composed SMR
of Section 6.1 (one weighted Bracha RBC per proposer per slot, coin-keyed
ordering), and rotates its committee between epochs: on a trigger (slot
count, scenario clock, or a weight-delta event from the
:class:`~repro.service.epoch.WeightSchedule`) it drains the open slots,
certifies the epoch's log digest with the blunt weighted threshold
signature of Section 4.3 (the checkpoint handover), re-forms the
committee via the :class:`~repro.service.epoch.EpochManager` -- whose
incremental re-solve reuses the previous epoch's price stream -- and
switches atomically to the next generation of parties.

Slots are *global*: the service's slot counter maps directly onto
``SmrParty`` epoch numbers and never resets, so the common coin (keyed by
slot id) and the committed log are continuous across rotations.  A
request's latency runs from :meth:`submit` to its slot being committed by
*every* replica of its committee -- the conservative end-to-end number.

Everything here is synchronous and backend-agnostic; scheduling and
party hosting go through :class:`~repro.service.backends.ServiceBackend`.
"""

from __future__ import annotations

import hashlib
import random
import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..api.committee import Committee, CommitteeValidationError
from ..crypto.group import TEST_GROUP_256
from ..crypto.threshold_sig import ThresholdSignatureScheme
from ..protocols.checkpointing import CheckpointParty
from ..protocols.common_coin import deterministic_coin
from ..protocols.smr import SmrParty
from ..weighted.virtual import VirtualUserMap
from .backends import PartyGroup, ServiceBackend
from .epoch import EpochManager
from .load import LoadGenerator
from .metrics import EpochRecord, ServiceMetrics, ServiceResult

__all__ = ["ServiceConfig", "EpochService"]

_COUNT = struct.Struct(">I")
_REQ = struct.Struct(">II")


def encode_batch(requests: list[tuple[int, bytes]]) -> bytes:
    """Wire encoding of one proposer's slot batch: count, then
    ``(request_id, length, payload)`` per request."""
    parts = [_COUNT.pack(len(requests))]
    for rid, payload in requests:
        parts.append(_REQ.pack(rid, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_batch(data: bytes) -> list[tuple[int, bytes]]:
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    out = []
    for _ in range(count):
        rid, size = _REQ.unpack_from(data, offset)
        offset += _REQ.size
        out.append((rid, data[offset : offset + size]))
        offset += size
    return out


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service run."""

    #: quorum resilience of every epoch's committee
    f_w: str = "1/3"
    #: seconds between slot-cut attempts (a slot is only cut when requests
    #: are pending, so an idle service sends nothing)
    slot_interval: float = 0.05
    #: most requests batched into one slot (across all proposers)
    max_batch: int = 256
    #: rotate after this many slots in an epoch (0 = no slot-count trigger)
    slots_per_epoch: int = 0
    #: rotate after this much scenario time in an epoch (0 = no clock trigger)
    epoch_seconds: float = 0.0
    #: hard stop: unfinished runs abort with an error after this long
    max_time: float = 60.0
    #: high-water mark on the submit queue (0 = unbounded): submissions
    #: beyond it are rejected with an explicit retry-after instead of
    #: growing the queue without bound under overload
    max_pending: int = 0
    #: per-request deadline in scenario seconds (0 = none): requests
    #: still pending past it are shed at the next slot cut rather than
    #: committed uselessly late
    request_deadline: float = 0.0


class _SlotState:
    """Commitment progress of one cut slot across its committee."""

    __slots__ = ("epoch", "n", "cut_at", "batches", "commits")

    def __init__(self, epoch: int, n: int, cut_at: float) -> None:
        self.epoch = epoch
        self.n = n
        self.cut_at = cut_at
        #: position -> batch payload (first commit's copy)
        self.batches: dict[int, bytes] = {}
        #: position -> replica pids that committed it
        self.commits: dict[int, set[int]] = {}

    @property
    def complete(self) -> bool:
        return len(self.commits) == self.n and all(
            len(pids) == self.n for pids in self.commits.values()
        )


class EpochService:
    """Long-lived SMR service over rotating weighted committees.

    Lifecycle: construct with a backend, an :class:`EpochManager`, and a
    config; optionally attach a :class:`LoadGenerator`; then
    ``backend.run(service)`` (or :meth:`run`) drives it to completion.
    ``on_committed(slot, position, payload)`` fires for every committed
    batch in global ``(slot, position)`` order -- the subscription API.
    """

    def __init__(
        self,
        backend: ServiceBackend,
        manager: EpochManager,
        config: Optional[ServiceConfig] = None,
        *,
        name: str = "service",
        seed: int = 0,
        load: Optional[LoadGenerator] = None,
        on_committed: Optional[Callable[[int, int, bytes], None]] = None,
        adversary=None,
    ) -> None:
        self.backend = backend
        self.manager = manager
        self.config = config or ServiceConfig()
        self.name = name
        self.seed = seed
        self.load = load
        self.on_committed = on_committed
        #: optional :class:`repro.adversary.Adversary` attacking epoch
        #: handovers (service-protocol strategies, e.g. bad-handover)
        self.adversary = adversary
        self.metrics = ServiceMetrics()
        # Slot ids double as SmrParty epoch numbers; one coin source is
        # shared across rotations because slot ids never repeat.
        self.coin = deterministic_coin(f"{name}|{seed}")

        # committee state (set at activation)
        self.epoch = -1
        self.committee: Optional[Committee] = None
        self.tickets = None
        self.group: Optional[PartyGroup] = None
        self.n = 0
        #: per-epoch {pid: log digest} over the epoch's slots -- equal
        #: digests across pids are the prefix-consistency evidence
        self.epoch_party_digests: list[dict[int, str]] = []

        # request flow
        self.pending: deque[tuple[int, bytes]] = deque()
        self._submit_time: dict[int, float] = {}
        self._next_request_id = 0
        #: total requests the attached load will submit (None = open-ended)
        self.expected_requests: Optional[int] = None

        # slot flow
        self.next_slot = 0
        self._slots: dict[int, _SlotState] = {}
        self._incomplete: set[int] = set()
        self._emit_ptr = 0
        #: committed batches in emission order: (slot, position, payload)
        self.committed_log: list[tuple[int, int, bytes]] = []
        self._requests_by_epoch: dict[int, int] = {}

        # phase machine: running -> draining -> checkpoint -> running ...
        self.phase = "idle"
        self._epoch_first_slot = 0
        self._epoch_started_at = 0.0
        self._epoch_slots = 0
        self._epoch_meta: dict = {}
        self._rotation_started_at = 0.0
        self._ckpt_group: Optional[PartyGroup] = None
        self._ckpt_digest: Optional[bytes] = None

        # outcome
        self.finished = False
        self.completed = False
        self.error: Optional[str] = None
        self.finished_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> None:
        """Form epoch 0's committee and begin cutting slots."""
        self.phase = "running"
        if self.load is not None:
            self.expected_requests = self.load.total
            self.load.install(self)
        for when in self.manager.schedule.event_times():
            self.backend.call_later(when, self.trigger_rotation)
        try:
            self._activate(0, rotation_seconds=0.0)
        except CommitteeValidationError as exc:
            self._fail(str(exc))
            return
        self.backend.call_later(self.config.slot_interval, self._tick)

    def run(self) -> ServiceResult:
        """Drive to completion on the backend and return the result."""
        self.backend.run(self)
        return self.result()

    def abort(self, message: str) -> None:
        """Backend-initiated failure (timeout); idempotent."""
        if not self.finished:
            self._fail(message)

    # -- public API -----------------------------------------------------------------
    def submit(self, payload: bytes):
        """Enqueue one opaque request.

        Returns the request id on acceptance.  A service that cannot take
        the request answers with the uniform error shape instead (the
        same ``{"error": ...}`` object the CLI emits on failures): after
        the run has drained, ``{"error": ...}`` alone; under overload --
        the pending queue at or beyond ``config.max_pending`` -- the
        object adds ``retry_after`` (seconds) and the current queue
        depth, and the rejection is counted in ``metrics.rejected``.
        Explicit backpressure instead of an unbounded queue.
        """
        if self.finished:
            return {"error": "service has drained; request not accepted"}
        limit = self.config.max_pending
        if limit > 0 and len(self.pending) >= limit:
            self.metrics.rejected += 1
            return {
                "error": "submit queue full",
                "retry_after": self.config.slot_interval,
                "pending": len(self.pending),
            }
        rid = self._next_request_id
        self._next_request_id += 1
        self._submit_time[rid] = self.backend.now()
        self.pending.append((rid, payload))
        self.metrics.submitted += 1
        return rid

    def trigger_rotation(self) -> None:
        """External rotation trigger (weight-delta event)."""
        if self.phase != "running" or self.finished:
            return
        self.phase = "draining"
        self._rotation_started_at = self.backend.now()
        if not self._incomplete:
            self._start_checkpoint()

    def result(self) -> ServiceResult:
        elapsed = (
            self.finished_at if self.finished_at is not None else self.backend.now()
        )
        messages, total_bytes, by_type, bytes_by_type = (
            self.backend.message_totals()
        )
        return ServiceResult(
            name=self.name,
            backend=self.backend.name,
            completed=self.completed,
            error=self.error,
            elapsed_seconds=elapsed,
            service=self.metrics.summary(elapsed),
            messages=messages,
            bytes=total_bytes,
            by_type=by_type,
            bytes_by_type=bytes_by_type,
        )

    # -- slot cutting ---------------------------------------------------------------
    def _tick(self) -> None:
        if self.finished:
            return
        now = self.backend.now()
        if now >= self.config.max_time:
            self._fail(
                f"service did not finish within max_time={self.config.max_time}s"
            )
            return
        if self.phase == "running":
            clock_due = (
                self.config.epoch_seconds > 0
                and now - self._epoch_started_at >= self.config.epoch_seconds
            )
            if clock_due and self._more_work_expected():
                self.trigger_rotation()
            elif self.pending:
                self._cut_slot(now)
        self._check_finished()
        if not self.finished:
            self.backend.call_later(self.config.slot_interval, self._tick)

    def _cut_slot(self, now: float) -> None:
        if self.config.request_deadline > 0:
            self._shed_expired(now)
            if not self.pending:
                return
        take = min(len(self.pending), self.config.max_batch)
        assigned: list[list[tuple[int, bytes]]] = [[] for _ in range(self.n)]
        for j in range(take):
            assigned[j % self.n].append(self.pending.popleft())
        slot = self.next_slot
        self.next_slot += 1
        self.metrics.slots_cut += 1
        self._epoch_slots += 1
        self._slots[slot] = _SlotState(self.epoch, self.n, now)
        self._incomplete.add(slot)
        # Every replica proposes -- an empty batch if it drew no requests --
        # so slot completion is uniform: n committed positions everywhere.
        for pid in range(self.n):
            self.group.parties[pid].propose_batch(slot, encode_batch(assigned[pid]))
        if (
            self.config.slots_per_epoch > 0
            and self._epoch_slots >= self.config.slots_per_epoch
            and self._more_work_expected()
        ):
            self.trigger_rotation()

    def _shed_expired(self, now: float) -> None:
        """Overload shedding: drop pending requests older than the
        per-request deadline instead of committing them uselessly late
        (their clients have already timed out)."""
        deadline = self.config.request_deadline
        kept: deque[tuple[int, bytes]] = deque()
        while self.pending:
            rid, payload = self.pending.popleft()
            submitted_at = self._submit_time.get(rid, now)
            if now - submitted_at > deadline:
                self._submit_time.pop(rid, None)
                self.metrics.shed += 1
            else:
                kept.append((rid, payload))
        self.pending = kept

    def _more_work_expected(self) -> bool:
        if self.expected_requests is None:
            return True
        return bool(self.pending) or self.metrics.submitted < self.expected_requests

    # -- commitment -----------------------------------------------------------------
    def _on_commit(self, pid: int, slot: int, position: int, payload: bytes) -> None:
        state = self._slots.get(slot)
        if state is None or state.epoch != self.epoch:
            return  # stale delivery from a retired generation
        state.batches.setdefault(position, payload)
        state.commits.setdefault(position, set()).add(pid)
        if slot in self._incomplete and state.complete:
            self._incomplete.discard(slot)
            self._slot_completed(slot, state)

    def _slot_completed(self, slot: int, state: _SlotState) -> None:
        now = self.backend.now()
        requests = 0
        for position in sorted(state.batches):
            for rid, _payload in decode_batch(state.batches[position]):
                submitted_at = self._submit_time.pop(rid, None)
                if submitted_at is not None:
                    self.metrics.observe_latency(now - submitted_at)
                    requests += 1
        self._requests_by_epoch[state.epoch] = (
            self._requests_by_epoch.get(state.epoch, 0) + requests
        )
        self._emit_ready()
        if self.phase == "draining" and not self._incomplete:
            self._start_checkpoint()
        else:
            self._check_finished()

    def _emit_ready(self) -> None:
        """Surface committed batches to the subscriber in global
        ``(slot, position)`` order -- never ahead of an incomplete slot."""
        while self._emit_ptr < self.next_slot:
            state = self._slots.get(self._emit_ptr)
            if state is None or not state.complete:
                return
            for position in sorted(state.batches):
                payload = state.batches[position]
                self.committed_log.append((self._emit_ptr, position, payload))
                if self.on_committed is not None:
                    self.on_committed(self._emit_ptr, position, payload)
            self._emit_ptr += 1

    # -- rotation -------------------------------------------------------------------
    def _epoch_digests(self) -> dict[int, str]:
        """Per-replica digest over the epoch's slot range, computed from
        each replica's own ordered logs."""
        out = {}
        for pid in range(self.n):
            h = hashlib.sha256()
            for slot in range(self._epoch_first_slot, self.next_slot):
                for proposer, payload in self.group.parties[pid].ordered_log(slot):
                    h.update(f"{slot}|{proposer}|".encode())
                    h.update(payload)
            out[pid] = h.hexdigest()[:16]
        return out

    def _start_checkpoint(self) -> None:
        """All open slots drained: certify the epoch's log digest with the
        blunt weighted threshold signature, then hand over."""
        self.phase = "checkpoint"
        digests = self._epoch_digests()
        self.epoch_party_digests.append(digests)
        self._ckpt_digest = hashlib.sha256(
            f"{self.name}|{self.epoch}|{digests[0]}".encode()
        ).digest()
        self.backend.retire(self.group)
        # Theorem 4.2 setup, but from the epoch's *existing* ticket
        # assignment (the same WR(f_w, 1/2) solution the manager computed
        # at activation) -- no second solve.
        vmap = VirtualUserMap(self.tickets.assignment)
        total = vmap.total_virtual
        threshold = -((-total) // 2)  # ceil(T/2) = ceil(alpha_n * T)
        scheme = ThresholdSignatureScheme(TEST_GROUP_256, total, threshold)
        scheme.keygen(random.Random(f"{self.seed}|ckpt|{self.epoch}"))

        def factory(pid: int) -> CheckpointParty:
            return CheckpointParty(
                pid,
                scheme,
                vmap,
                random.Random(f"{self.seed}|ckpt|{self.epoch}|{pid}"),
                mode="blunt",
                on_certified=self._on_certified,
            )

        build = factory
        if self.adversary is not None:
            # Handover attack: corrupted validators (re-selected against
            # this epoch's stake) misbehave inside the checkpoint protocol.
            build = self.adversary.wrap_handover_factory(
                factory,
                weights=tuple(self.committee.int_weights),
                epoch=self.epoch,
            )
        self._ckpt_group = self.backend.spawn(build, self.n)
        for party in self._ckpt_group.parties:
            party.sign_checkpoint(self._ckpt_digest)

    def _on_certified(self, pid: int, checkpoint: bytes, signature: int) -> None:
        if self.phase != "checkpoint" or checkpoint != self._ckpt_digest:
            return
        self.phase = "rotating"  # first certificate wins; ignore the rest
        self.backend.retire(self._ckpt_group)
        self._ckpt_group = None
        self._close_epoch_record()
        next_epoch = self.epoch + 1
        try:
            self._activate(
                next_epoch,
                rotation_seconds=self.backend.now() - self._rotation_started_at,
            )
        except CommitteeValidationError as exc:
            self._fail(str(exc))
            return
        self.metrics.rotations += 1

    def _activate(self, epoch: int, *, rotation_seconds: float) -> None:
        """Form and install the committee for ``epoch`` (raises
        :class:`CommitteeValidationError` when infeasible)."""
        committee, tickets = self.manager.next_committee(epoch)
        self.epoch = epoch
        self.committee = committee
        self.tickets = tickets
        self.n = committee.n
        quorums = committee.quorums(self.config.f_w)

        def factory(pid: int) -> SmrParty:
            return SmrParty(
                pid, committee.n, quorums, self.coin, on_commit=self._on_commit
            )

        self.group = self.backend.spawn(factory, committee.n)
        self._epoch_first_slot = self.next_slot
        self._epoch_started_at = self.backend.now()
        self._epoch_slots = 0
        self._epoch_meta = {
            "total_tickets": tickets.achieved,
            "solver_mode": self.manager.last_solver_mode or "cold",
            "rotation_seconds": rotation_seconds,
        }
        self.phase = "running"

    def _close_epoch_record(self) -> None:
        self.metrics.epochs.append(
            EpochRecord(
                epoch=self.epoch,
                n=self.n,
                first_slot=self._epoch_first_slot,
                last_slot=self.next_slot,
                requests=self._requests_by_epoch.get(self.epoch, 0),
                total_tickets=self._epoch_meta["total_tickets"],
                solver_mode=self._epoch_meta["solver_mode"],
                rotation_seconds=self._epoch_meta["rotation_seconds"],
            )
        )

    # -- completion -----------------------------------------------------------------
    def _check_finished(self) -> None:
        if (
            self.phase == "running"
            and not self.finished
            and self.expected_requests is not None
            and self.metrics.submitted >= self.expected_requests
            and not self.pending
            and not self._incomplete
        ):
            self.epoch_party_digests.append(self._epoch_digests())
            self._close_epoch_record()
            self._finish(completed=True)

    def _finish(self, *, completed: bool, error: Optional[str] = None) -> None:
        self.completed = completed
        self.error = error
        self.finished_at = self.backend.now()
        self.finished = True
        self.phase = "done" if completed else "failed"
        self.backend.notify_done()

    def _fail(self, message: str) -> None:
        if self._epoch_meta:
            self._close_epoch_record()
        self._finish(completed=False, error=message)
