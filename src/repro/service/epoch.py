"""Epoch management: weight schedules and committee re-formation.

A long-lived service outlives its committee: stake moves, parties bond
and unbond, and every rotation must re-resolve the weight vector and
re-run the solver policy to form the next :class:`~repro.api.Committee`.
The :class:`EpochManager` owns that pipeline.  Its solver is the
:class:`~repro.api.policy.IncrementalSolver`, so a rotation caused by a
small stake delta (the common case -- one party's weight moved) reuses
the previous epoch's memoized price stream instead of re-solving cold;
the resulting ticket assignment is identical to a cold solve by
construction.

Weight evolution is described by a :class:`WeightSchedule` -- the
service-side analogue of :class:`~repro.api.weight_source.WeightSource`:
where a source resolves one vector per seed, a schedule resolves one
vector per *epoch*.  :class:`DriftSchedule` is the built-in
implementation: an initial vector plus dated per-party deltas, with
optional scenario-time events that *trigger* rotations (the third
rotation trigger next to slot-count and wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..api.committee import Committee, CommitteeValidationError
from ..api.policy import IncrementalSolver, TicketAssignmentResult
from ..core.problems import WeightRestriction
from ..core.types import Number

__all__ = ["WeightSchedule", "DriftSchedule", "EpochManager"]


class WeightSchedule:
    """Where each epoch's weight vector comes from.

    Subclasses implement :meth:`resolve`; :meth:`event_times` optionally
    names scenario times at which the schedule *changes* -- the service
    turns those into weight-delta rotation triggers.
    """

    def resolve(self, epoch: int) -> Sequence[Number]:
        raise NotImplementedError

    def event_times(self) -> tuple[float, ...]:
        return ()


@dataclass(frozen=True)
class DriftSchedule(WeightSchedule):
    """An initial vector plus dated stake deltas.

    ``drifts`` entries are ``(epoch, party, new_weight)``: from ``epoch``
    on, ``party`` weighs ``new_weight``.  A party index one past the end
    of the current vector is a *join* (the vector grows); weights set to
    zero model unbonding without shrinking the index space.  ``times``
    lists scenario times at which the service should rotate because the
    schedule changed (weight-delta events).
    """

    initial: tuple[Number, ...]
    drifts: tuple[tuple[int, int, Number], ...] = ()
    times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial", tuple(self.initial))
        object.__setattr__(
            self, "drifts", tuple((int(e), int(i), w) for e, i, w in self.drifts)
        )
        object.__setattr__(self, "times", tuple(self.times))
        if not self.initial:
            raise ValueError("drift schedule needs a non-empty initial vector")

    def resolve(self, epoch: int) -> list[Number]:
        ws = list(self.initial)
        # Apply in (epoch, declaration) order so later drifts win.
        for e, i, w in sorted(self.drifts, key=lambda d: d[0]):
            if e > epoch:
                continue
            if i == len(ws):
                ws.append(w)
            elif 0 <= i < len(ws):
                ws[i] = w
            else:
                raise CommitteeValidationError(
                    f"drift for epoch {e} names party {i}, but the committee "
                    f"has {len(ws)} parties (joins must be contiguous)"
                )
        return ws

    def event_times(self) -> tuple[float, ...]:
        return self.times


class EpochManager:
    """Form each epoch's committee and ticket assignment.

    One manager per service.  ``next_committee(epoch)`` resolves the
    schedule, validates the committee (every infeasibility surfaces as
    :class:`CommitteeValidationError` carrying the epoch, which the CLI
    renders as the uniform ``{"error": ...}`` exit-2 object), and re-runs
    the incremental ticket solve that backs the epoch's threshold setup.
    """

    def __init__(
        self,
        schedule: WeightSchedule,
        *,
        f_w: Number = "1/3",
        problem=None,
        max_delta: int = 16,
    ) -> None:
        self.schedule = schedule
        self.f_w = f_w
        # WR(f_w, 1/2) is the service's threshold-primitive problem (the
        # common-coin / checkpoint transformation of Sections 4.1 / 4.3).
        self.problem = problem or WeightRestriction(f_w, "1/2")
        self.solver = IncrementalSolver(self.problem, max_delta=max_delta)

    def next_committee(
        self, epoch: int
    ) -> tuple[Committee, TicketAssignmentResult]:
        try:
            weights = self.schedule.resolve(epoch)
            committee = Committee.from_weights(
                weights, provenance=f"schedule[epoch {epoch}]"
            )
            committee.validate(f_w=self.f_w)
            tickets = self.solver.solve(committee.normalized)
        except CommitteeValidationError as exc:
            raise CommitteeValidationError(
                f"epoch {epoch} rotation failed: {exc}"
            ) from exc
        except (ValueError, ZeroDivisionError) as exc:
            # Normalization failures (negative / all-zero weights) and the
            # like become the same uniform validation error, so a service
            # rotation never dies with a bare traceback.
            raise CommitteeValidationError(
                f"epoch {epoch} rotation failed: {exc}"
            ) from exc
        return committee, tickets

    @property
    def last_solver_mode(self) -> Optional[str]:
        """How the latest re-solve ran: ``"cold"`` or ``"incremental"``."""
        return self.solver.last_mode
