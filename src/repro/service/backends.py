"""Execution backends for the epoch service.

The service's logic is entirely synchronous and event-driven -- it only
ever asks its backend for the current scenario time, for a timer, and to
spawn or retire a *group* of protocol parties.  That narrow surface is
what lets one :class:`~repro.service.service.EpochService` run unchanged
on the deterministic discrete-event simulator (virtual time, reproducible
percentiles) and on the live asyncio runtime (wall time, real queues).

Rotation support is the new requirement compared to the scenario
harness's one-shot runs: a backend must host *successive* party groups
over one clock and one metrics stream.  The sim backend does it with one
:class:`~repro.sim.events.Simulator` shared by per-group
:class:`~repro.sim.network.Network` fabrics; the in-process backend does
it with mid-run :meth:`~repro.runtime.transport.Transport.bind` /
``unbind`` on a single :class:`InProcTransport`, so a retiring
committee's node ids can be handed to its successor.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..runtime.cluster import RuntimeMetrics
from ..runtime.codec import CodecRegistry, default_registry
from ..runtime.node import RuntimeNode
from ..runtime.transport import InProcTransport
from ..sim.events import Simulator
from ..sim.network import Network, UniformDelay
from ..sim.process import Party

__all__ = ["ServiceBackend", "SimServiceBackend", "InprocServiceBackend"]


@dataclass
class PartyGroup:
    """One spawned generation of parties (an SMR committee, a checkpoint
    validator set); retired as a unit at rotation."""

    parties: list[Party]
    #: backend-private attachment (sim: the Network; inproc: the nodes)
    handle: object = None


class ServiceBackend:
    """What the service sees of its execution environment.

    Everything is synchronous: the service runs inside backend callbacks
    (timers and message deliveries), never on its own task.
    """

    name: str

    def now(self) -> float:
        """Scenario seconds since the run started."""
        raise NotImplementedError

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        raise NotImplementedError

    def spawn(self, factory: Callable[[int], Party], n: int) -> PartyGroup:
        """Build and attach parties ``0 .. n-1`` as a fresh group."""
        raise NotImplementedError

    def retire(self, group: PartyGroup) -> None:
        """Detach a group; its parties stop reacting and their ids free up."""
        raise NotImplementedError

    def notify_done(self) -> None:
        """The service finished (or failed); the backend may stop driving."""
        raise NotImplementedError

    def run(self, service) -> None:
        """Drive ``service`` from :meth:`EpochService.start` to finished."""
        raise NotImplementedError

    def message_totals(self) -> tuple[int, int, dict[str, int], dict[str, int]]:
        """``(messages, bytes, by_type, bytes_by_type)`` across all groups."""
        raise NotImplementedError


class SimServiceBackend(ServiceBackend):
    """Deterministic discrete-event backend: one simulator, one network
    fabric per spawned group, everything a pure function of the seed."""

    name = "sim"

    def __init__(
        self, *, seed: int = 0, delay_low: float = 0.01, delay_high: float = 0.1
    ) -> None:
        self.simulator = Simulator()
        self.seed = seed
        self.delay_low = delay_low
        self.delay_high = delay_high
        self.networks: list[Network] = []
        self._spawns = 0

    def now(self) -> float:
        return self.simulator.now

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        self.simulator.schedule(max(delay, 0.0), fn)

    def spawn(self, factory: Callable[[int], Party], n: int) -> PartyGroup:
        # Each generation gets its own fabric (clean pid namespace, no
        # crosstalk with in-flight messages of the previous committee) but
        # shares the simulator, so the service's clock and the metrics
        # stream are continuous across rotations.
        network = Network(
            self.simulator,
            UniformDelay(self.delay_low, self.delay_high),
            seed=f"{self.seed}|net|{self._spawns}",
        )
        self._spawns += 1
        parties = [factory(pid) for pid in range(n)]
        for party in parties:
            network.register(party)
        self.networks.append(network)
        return PartyGroup(parties=parties, handle=network)

    def retire(self, group: PartyGroup) -> None:
        for party in group.parties:
            party.crash()  # in-flight deliveries become no-ops

    def notify_done(self) -> None:
        pass  # run() polls service.finished via stop_when

    def run(self, service) -> None:
        service.start()
        self.simulator.run(
            stop_when=lambda: service.finished,
            until=service.config.max_time,
        )
        if not service.finished:
            service.abort(
                f"service did not finish within max_time="
                f"{service.config.max_time}s of virtual time"
            )

    def message_totals(self) -> tuple[int, int, dict[str, int], dict[str, int]]:
        messages = bytes_total = 0
        by_type: dict[str, int] = {}
        bytes_by_type: dict[str, int] = {}
        for network in self.networks:
            m = network.metrics
            messages += m.messages
            bytes_total += m.bytes
            for k, v in m.by_type.items():
                by_type[k] = by_type.get(k, 0) + v
            for k, v in m.bytes_by_type.items():
                bytes_by_type[k] = bytes_by_type.get(k, 0) + v
        return messages, bytes_total, by_type, bytes_by_type

    @property
    def sim_time(self) -> float:
        return self.simulator.now

    @property
    def sim_events(self) -> int:
        return self.simulator.events_processed


class InprocServiceBackend(ServiceBackend):
    """Live asyncio backend: one in-process transport shared by every
    generation, node ids rebound across rotations."""

    name = "inproc"

    def __init__(self, *, registry: Optional[CodecRegistry] = None) -> None:
        self.metrics = RuntimeMetrics()
        self.registry = registry or default_registry()
        self.transport = InProcTransport(self.registry, record=self.metrics.record)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._done: Optional[asyncio.Event] = None
        self._live_groups: list[PartyGroup] = []
        self._retired_tasks: list[asyncio.Task] = []

    def now(self) -> float:
        assert self._loop is not None, "backend is not running"
        return self._loop.time() - self._t0

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        assert self._loop is not None, "backend is not running"
        self._loop.call_later(max(delay, 0.0), fn)

    def spawn(self, factory: Callable[[int], Party], n: int) -> PartyGroup:
        peer_ids = list(range(n))
        nodes = [
            RuntimeNode(factory(pid), self.transport, peer_ids) for pid in peer_ids
        ]
        for node in nodes:
            node.start()
        group = PartyGroup(parties=[node.party for node in nodes], handle=nodes)
        self._live_groups.append(group)
        return group

    def retire(self, group: PartyGroup) -> None:
        # Callable from inside a dispatch callback: detach() cancels the
        # pump tasks without awaiting (cancellation lands at their next
        # await), unbind frees the pid for the successor group.
        for node in group.handle:
            node.party.crash()
            self._retired_tasks.extend(node.detach())
            self.transport.unbind(node.pid)
        if group in self._live_groups:
            self._live_groups.remove(group)

    def notify_done(self) -> None:
        if self._done is not None:
            self._done.set()

    def run(self, service) -> None:
        asyncio.run(self._drive(service))

    async def _drive(self, service) -> None:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        await self.transport.start()
        self._t0 = self._loop.time()
        service.start()
        try:
            await asyncio.wait_for(
                self._done.wait(), timeout=service.config.max_time
            )
        except asyncio.TimeoutError:
            service.abort(
                f"service did not finish within max_time="
                f"{service.config.max_time}s"
            )
        finally:
            for group in list(self._live_groups):
                self.retire(group)
            if self._retired_tasks:
                await asyncio.gather(*self._retired_tasks, return_exceptions=True)
            self._retired_tasks.clear()
            await self.transport.stop()

    def message_totals(self) -> tuple[int, int, dict[str, int], dict[str, int]]:
        m = self.metrics
        return m.messages, m.bytes, dict(m.by_type), dict(m.bytes_by_type)
