"""Run a ``kind="service"`` workload from a declarative scenario spec.

This is the bridge between the scenario engine and the epoch service:
:func:`run_service_spec` takes the same :class:`ScenarioSpec` the harness
takes, derives a deterministic weight-drift schedule (each rotation bumps
one party's stake, so every re-solve after the first exercises the
incremental path), and returns the harness's
:class:`~repro.scenarios.harness.ScenarioResult` shape with the
service-level numbers (ops/sec, latency percentiles, per-epoch records)
attached under ``service``.

On the sim backend the whole record -- arrivals, slot cuts, rotations,
percentiles -- is a pure function of the spec, exactly like batch
scenarios.
"""

from __future__ import annotations

from typing import Optional

from ..scenarios.spec import ScenarioSpec
from .backends import InprocServiceBackend, SimServiceBackend
from .epoch import DriftSchedule, EpochManager
from .load import LoadGenerator
from .service import EpochService, ServiceConfig

__all__ = ["run_service_spec", "drift_schedule_for"]

#: backends a service workload runs on (tcp rotation is future work: the
#: transport would need cross-process rebinding)
SERVICE_BACKENDS = ("sim", "inproc")


def drift_schedule_for(
    initial: tuple[int, ...], epochs: int
) -> DriftSchedule:
    """The spec-derived stake evolution: rotation ``e`` bumps party
    ``(e-1) % n`` by ~1/8 of its stake -- a small delta, so the manager's
    re-solve hits the incremental fast path."""
    n = len(initial)
    drifts = []
    current = list(initial)
    for e in range(1, epochs):
        i = (e - 1) % n
        current[i] = current[i] + max(1, current[i] // 8)
        drifts.append((e, i, current[i]))
    return DriftSchedule(initial=tuple(initial), drifts=tuple(drifts))


def run_service_spec(
    spec: ScenarioSpec, *, backend: str = "sim", timeout: float = 60.0, committee=None
):
    """Execute a service-workload spec; returns a ``ScenarioResult``."""
    from ..api.committee import Committee
    from ..scenarios.harness import ScenarioResult

    if backend not in SERVICE_BACKENDS:
        raise ValueError(
            f"service workloads run on {SERVICE_BACKENDS}, not {backend!r}"
        )
    if spec.faults.crashes or spec.faults.partition or spec.faults.link_delays:
        raise ValueError(
            "service workloads take byzantine fault-plan entries only (yet)"
        )
    if committee is None:
        committee = Committee.from_weight_spec(spec.weights, seed=spec.seed)
    committee.validate(
        f_w=spec.f_w,
        payload_size=spec.workload.payload_size,
        epochs=spec.workload.epochs,
    )
    adversary = None
    if spec.faults.byzantine:
        from ..adversary.strategies import Adversary

        # Service workloads attack the epoch machinery, not one protocol
        # instance, so strategies must support the "service" protocol.
        adversary = Adversary(spec, committee, protocol="service")

    rate = float(spec.param("arrival_rate", 100.0))
    requests = int(spec.param("requests", 32))
    slot_interval = float(spec.param("slot_interval", 0.05))
    slots_per_epoch = int(spec.param("slots_per_epoch", 3))
    max_pending = int(spec.param("max_pending", 0))
    request_deadline = float(spec.param("request_deadline", 0.0))

    manager = EpochManager(
        drift_schedule_for(tuple(committee.int_weights), spec.workload.epochs),
        f_w=spec.f_w,
    )
    config = ServiceConfig(
        f_w=spec.f_w,
        slot_interval=slot_interval,
        slots_per_epoch=slots_per_epoch,
        max_time=timeout,
        max_pending=max_pending,
        request_deadline=request_deadline,
    )
    if backend == "sim":
        svc_backend = SimServiceBackend(
            seed=spec.seed,
            delay_low=spec.net.delay_low,
            delay_high=spec.net.delay_high,
        )
    else:
        svc_backend = InprocServiceBackend()
    load = LoadGenerator(
        rate,
        requests,
        payload_size=spec.workload.payload_size,
        seed=spec.seed,
    )
    service = EpochService(
        svc_backend,
        manager,
        config,
        name=spec.name,
        seed=spec.seed,
        load=load,
        adversary=adversary,
    )
    result = service.run()

    decided = (
        {str(pid): d for pid, d in sorted(service.epoch_party_digests[-1].items())}
        if service.epoch_party_digests
        else {}
    )
    service_section = result.record()["service"]
    if result.error:
        service_section = {**service_section, "error": result.error}
    sim_time: Optional[float] = None
    sim_events: Optional[int] = None
    wall_seconds: Optional[float] = None
    if backend == "sim":
        sim_time = svc_backend.sim_time
        sim_events = svc_backend.sim_events
    else:
        wall_seconds = result.elapsed_seconds
    return ScenarioResult(
        spec=spec,
        backend=backend,
        n_real=committee.n,
        n_nodes=committee.n,
        weights_digest=committee.weights_digest,
        completed=result.completed,
        decided=decided,
        count_comparable=False,
        messages=result.messages,
        bytes=result.bytes,
        by_type=result.by_type,
        bytes_by_type=result.bytes_by_type,
        dropped_messages=0,
        delayed_messages=0,
        sim_time=sim_time,
        sim_events=sim_events,
        wall_seconds=wall_seconds,
        service=service_section,
        adversary=adversary.describe() if adversary is not None else None,
    )
