"""Open-loop workload generation for the epoch service.

An *open-loop* client submits on its own clock -- a Poisson arrival
process -- regardless of how fast the service commits, which is what
exposes queueing under load (a closed loop self-throttles and hides it).
Arrival times are drawn once, up front, from a seeded RNG, so a load
profile is deterministic: on the sim backend the whole run (arrivals,
slot cuts, commit times, the latency percentiles) is a pure function of
the seed.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["LoadGenerator"]


class LoadGenerator:
    """Poisson arrivals of fixed-size opaque requests.

    ``rate`` is the arrival intensity in requests per scenario second
    (virtual seconds on the sim backend, wall seconds on the runtime);
    ``requests`` bounds the run.  Payloads are deterministic per request
    index, so committed logs are reproducible byte-for-byte.
    """

    def __init__(
        self,
        rate: float,
        requests: int,
        *,
        payload_size: int = 32,
        seed: int = 0,
        start: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if requests < 1:
            raise ValueError("load needs at least one request")
        if payload_size < 1:
            raise ValueError("payload_size must be positive")
        self.rate = rate
        self.total = requests
        self.payload_size = payload_size
        self.seed = seed
        #: submissions bounced by backpressure (each retries until taken)
        self.rejections = 0
        #: requests abandoned because the service drained before acceptance
        self.abandoned = 0
        rng = random.Random(f"load|{seed}|{rate}|{requests}")
        t = start
        times = []
        for _ in range(requests):
            t += rng.expovariate(rate)
            times.append(t)
        #: arrival times in scenario seconds, ascending
        self.arrival_times: tuple[float, ...] = tuple(times)

    def payload(self, index: int) -> bytes:
        """Deterministic request body for arrival ``index``."""
        block = hashlib.sha256(f"req|{self.seed}|{index}".encode()).digest()
        reps = (self.payload_size + len(block) - 1) // len(block)
        return (block * reps)[: self.payload_size]

    def install(self, service) -> None:
        """Schedule every arrival on the service's backend clock.

        A submission bounced by backpressure (``{"error": ...,
        "retry_after": ...}``) is re-submitted after the advertised
        delay -- an open-loop client that honors explicit pushback
        instead of hammering a full queue.  A drained service's uniform
        ``{"error": ...}`` reply (no ``retry_after``) abandons the
        request.
        """

        def attempt(index: int) -> None:
            outcome = service.submit(self.payload(index))
            if not isinstance(outcome, dict):
                return  # accepted: outcome is the request id
            retry_after = outcome.get("retry_after")
            if retry_after is None:
                self.abandoned += 1
                return
            self.rejections += 1
            service.backend.call_later(retry_after, lambda: attempt(index))

        for index, when in enumerate(self.arrival_times):
            service.backend.call_later(when, lambda i=index: attempt(i))
