"""Service-level metrics: open-loop latency percentiles and throughput.

The scenario engine's records count messages and bytes; a long-lived
service additionally needs *request*-level numbers -- how many operations
committed, how long each took from submission to full commitment, and
how the committee evolved across epochs.  :class:`ServiceMetrics`
accumulates those during the run; :class:`ServiceResult` freezes them
into the same JSON-able shape the scenario engine emits (every value on
the sim backend is a pure function of the spec, so service records are
byte-identical across runs, like scenario records).

Latency convention: a request's latency ends when its slot is committed
by *every* live replica (full commitment), not by the first -- the
conservative end-to-end number an open-loop client would observe from a
service that acknowledges only finalized batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["EpochRecord", "ServiceMetrics", "ServiceResult", "percentile"]


def percentile(sorted_values: list[float], p: float) -> Optional[float]:
    """Nearest-rank percentile of an already-sorted sample (None if empty)."""
    if not sorted_values:
        return None
    if not 0 < p <= 100:
        raise ValueError("percentile p must be in (0, 100]")
    rank = max(1, -(-int(p * len(sorted_values)) // 100))  # ceil(p*n/100)
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class EpochRecord:
    """One committee's tenure: which slots it served and how it was formed."""

    epoch: int
    n: int
    #: half-open global slot range [first, last) this committee served
    first_slot: int
    last_slot: int
    requests: int
    #: Swiper tickets backing the epoch's threshold setup
    total_tickets: int
    #: how the epoch's ticket re-solve ran: "cold" or "incremental"
    solver_mode: str
    #: scenario seconds from rotation trigger to the next epoch's activation
    #: (0.0 for the first epoch, which has no handover)
    rotation_seconds: float

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "n": self.n,
            "first_slot": self.first_slot,
            "last_slot": self.last_slot,
            "requests": self.requests,
            "total_tickets": self.total_tickets,
            "solver_mode": self.solver_mode,
            "rotation_seconds": round(self.rotation_seconds, 6),
        }


@dataclass
class ServiceMetrics:
    """Mutable counters the service updates as it runs."""

    submitted: int = 0
    committed: int = 0
    slots_cut: int = 0
    rotations: int = 0
    #: submissions refused at the max_pending high-water mark (backpressure)
    rejected: int = 0
    #: pending requests dropped past their per-request deadline (shedding)
    shed: int = 0
    #: per-request submit-to-full-commit latency (scenario seconds)
    latencies: list[float] = field(default_factory=list)
    epochs: list[EpochRecord] = field(default_factory=list)

    def observe_latency(self, seconds: float, count: int = 1) -> None:
        self.latencies.extend([seconds] * count)
        self.committed += count

    def summary(self, elapsed_seconds: float) -> dict:
        """The JSON service section (scenario-record shaped, sorted keys)."""
        lat = sorted(self.latencies)
        p50 = percentile(lat, 50)
        p99 = percentile(lat, 99)
        ops = self.committed / elapsed_seconds if elapsed_seconds > 0 else 0.0
        return {
            "requests_submitted": self.submitted,
            "requests_committed": self.committed,
            "requests_rejected": self.rejected,
            "requests_shed": self.shed,
            "slots": self.slots_cut,
            "rotations": self.rotations,
            "epochs": [e.as_dict() for e in self.epochs],
            "ops_per_sec": round(ops, 3),
            "latency_p50_s": round(p50, 6) if p50 is not None else None,
            "latency_p99_s": round(p99, 6) if p99 is not None else None,
        }


@dataclass(frozen=True)
class ServiceResult:
    """The frozen outcome of one service run."""

    name: str
    backend: str
    completed: bool
    #: rotation/validation failure message, if the run failed (the CLI
    #: surfaces this as the uniform ``{"error": ...}`` exit-2 object)
    error: Optional[str]
    elapsed_seconds: float
    service: dict
    messages: int
    bytes: int
    by_type: dict[str, int]
    bytes_by_type: dict[str, int]

    def record(self) -> dict:
        """JSON-able snapshot in the scenario engine's shape."""
        return {
            "scenario": self.name,
            "protocol": "smr",
            "workload": "service",
            "backend": self.backend,
            "completed": self.completed,
            "error": self.error,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "messages": self.messages,
            "bytes": self.bytes,
            "by_type": dict(sorted(self.by_type.items())),
            "bytes_by_type": dict(sorted(self.bytes_by_type.items())),
            "service": self.service,
        }
