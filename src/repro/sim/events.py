"""Discrete-event scheduler: the heart of the asynchronous network model.

Asynchrony in the paper's model means messages between honest parties are
delivered after finite but adversarially chosen delays.  The simulator
realizes this as a priority queue of timed events; delay models and
adversarial schedulers (see :mod:`repro.sim.network`) choose the times.

The queue holds plain ``(time, seq)`` tuples -- cheaper to compare and
push than ordered dataclass instances -- with callbacks kept in a side
table keyed by sequence number.  Cancellation removes the callback from
the table (the heap entry is skipped lazily on pop), which also makes
:attr:`Simulator.pending` a constant-time ``len`` instead of a queue
scan.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

__all__ = ["Simulator"]


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Events scheduled for the same instant run in scheduling order, making
    entire protocol executions reproducible for a fixed RNG seed.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int]] = []
        self._callbacks: dict[int, Callable[[], None]] = {}
        self._next_seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns an opaque handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        seq = self._next_seq
        self._next_seq = seq + 1
        self._callbacks[seq] = callback
        heapq.heappush(self._queue, (self.now + delay, seq))
        return seq

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (lazy heap removal)."""
        self._callbacks.pop(handle, None)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled queued events (O(1))."""
        return len(self._callbacks)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        queue = self._queue
        callbacks = self._callbacks
        while queue:
            time, seq = heapq.heappop(queue)
            callback = callbacks.pop(seq, None)
            if callback is None:
                continue  # cancelled
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain the event queue.

        Stops when the queue empties, simulated time passes ``until``,
        ``max_events`` have been processed, or ``stop_when()`` turns true.
        """
        queue = self._queue
        callbacks = self._callbacks
        processed = 0
        while queue:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and processed >= max_events:
                return
            time, seq = queue[0]
            if seq not in callbacks:
                heapq.heappop(queue)
                continue
            if until is not None and time > until:
                return
            self.step()
            processed += 1
