"""Discrete-event scheduler: the heart of the asynchronous network model.

Asynchrony in the paper's model means messages between honest parties are
delivered after finite but adversarially chosen delays.  The simulator
realizes this as a priority queue of timed events; delay models and
adversarial schedulers (see :mod:`repro.sim.network`) choose the times.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Simulator"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Events scheduled for the same instant run in scheduling order, making
    entire protocol executions reproducible for a fixed RNG seed.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _Event(time=self.now + delay, seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: _Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain the event queue.

        Stops when the queue empties, simulated time passes ``until``,
        ``max_events`` have been processed, or ``stop_when()`` turns true.
        """
        processed = 0
        while self._queue:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and processed >= max_events:
                return
            nxt = self._queue[0]
            if nxt.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and nxt.time > until:
                return
            self.step()
            processed += 1
