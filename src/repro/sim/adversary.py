"""Corruption strategies for nominal and weighted adversaries.

The weighted model lets the adversary corrupt any party set holding less
than a fraction ``f_w`` of the total weight (paper, Section 1.1).  Which
set an adversary *should* pick depends on its goal; the strategies here
include the one most damaging to weight reduction -- maximizing captured
*tickets* per unit of weight -- used by the adversarial-attack tests and
the "hybrid distribution" future-work experiment (Section 9).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Optional, Sequence

from ..core.types import Number, as_fraction, normalize_weights

__all__ = [
    "nominal_corruption",
    "heaviest_under",
    "most_tickets_under",
    "random_under",
    "corrupt_weight_fraction",
]


def nominal_corruption(n: int, t: int) -> set[int]:
    """Corrupt the first ``t`` of ``n`` parties (nominal model)."""
    if not 0 <= t <= n:
        raise ValueError("need 0 <= t <= n")
    return set(range(t))


def _budget(weights: Sequence[Fraction], fraction: Fraction) -> Fraction:
    return fraction * sum(weights, start=Fraction(0))


def heaviest_under(weights: Sequence[Number], fraction: Number) -> set[int]:
    """Greedy: corrupt the heaviest parties while staying strictly below
    ``fraction`` of the total weight."""
    ws = normalize_weights(weights)
    budget = _budget(ws, as_fraction(fraction))
    chosen: set[int] = set()
    used = Fraction(0)
    for i in sorted(range(len(ws)), key=lambda i: (-ws[i], i)):
        if used + ws[i] < budget:
            chosen.add(i)
            used += ws[i]
    return chosen


def most_tickets_under(
    weights: Sequence[Number], tickets: Sequence[int], fraction: Number
) -> set[int]:
    """Greedy knapsack: capture the most *tickets* while staying strictly
    below the weight budget -- the worst case for a ticket assignment."""
    ws = normalize_weights(weights)
    if len(tickets) != len(ws):
        raise ValueError("tickets and weights must have equal length")
    budget = _budget(ws, as_fraction(fraction))
    order = sorted(
        (i for i in range(len(ws)) if tickets[i] > 0),
        key=lambda i: (-(Fraction(tickets[i]) / ws[i]) if ws[i] > 0 else 0, i),
    )
    chosen: set[int] = set()
    used = Fraction(0)
    for i in order:
        if used + ws[i] < budget:
            chosen.add(i)
            used += ws[i]
    # Zero-ticket parties are free damage-wise but may still block quorums;
    # include the lightest ones that fit.
    for i in sorted(range(len(ws)), key=lambda i: (ws[i], i)):
        if i not in chosen and used + ws[i] < budget:
            chosen.add(i)
            used += ws[i]
    return chosen


def random_under(
    weights: Sequence[Number], fraction: Number, rng: random.Random
) -> set[int]:
    """Random corruption set below the weight budget."""
    ws = normalize_weights(weights)
    budget = _budget(ws, as_fraction(fraction))
    order = list(range(len(ws)))
    rng.shuffle(order)
    chosen: set[int] = set()
    used = Fraction(0)
    for i in order:
        if used + ws[i] < budget:
            chosen.add(i)
            used += ws[i]
    return chosen


def corrupt_weight_fraction(
    weights: Sequence[Number], corrupt: set[int]
) -> Fraction:
    """Fraction of total weight held by ``corrupt``."""
    ws = normalize_weights(weights)
    total = sum(ws, start=Fraction(0))
    return sum((ws[i] for i in corrupt), start=Fraction(0)) / total
