"""Execution harness: wire parties to a network, run, collect metrics."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from .events import Simulator
from .network import DelayModel, Network, NetworkMetrics, UniformDelay
from .process import Party

__all__ = ["World", "build_world"]


@dataclass
class World:
    """A simulator + network + parties bundle.

    ``committee`` records the weighted party set the world was built for
    (a :class:`repro.api.committee.Committee`), when the caller provided
    one -- provenance for records and a size default for ``build_world``.
    Note the VABA driver hosts *virtual users*, so ``len(parties)`` may
    exceed ``committee.n``.
    """

    simulator: Simulator
    network: Network
    parties: list[Party]
    committee: Optional[object] = None

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run the simulation to quiescence or a stop condition."""
        self.simulator.run(until=until, max_events=max_events, stop_when=stop_when)

    @property
    def metrics(self) -> NetworkMetrics:
        return self.network.metrics

    def party(self, pid: int) -> Party:
        return self.network.parties[pid]

    def total_counter(self, name: str) -> int:
        """Sum a named computation counter over all parties."""
        return sum(p.counters.get(name, 0) for p in self.parties)


def build_world(
    party_factory: Callable[[int], Party],
    n: Optional[int] = None,
    *,
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
    faults=None,
    committee=None,
) -> World:
    """Create ``n`` parties via ``party_factory(pid)`` on a fresh network.

    ``faults`` is an optional fault plan consulted at the delivery point
    (see :class:`repro.sim.network.Network`); the scenario harness passes
    the same :class:`~repro.runtime.faults.FaultController` it would hand
    to a live cluster.  ``committee`` (a
    :class:`repro.api.committee.Committee`) supplies the party count when
    ``n`` is omitted and is kept on the world for provenance.
    """
    if n is None:
        if committee is None:
            raise ValueError("build_world needs n or a committee")
        n = committee.n
    simulator = Simulator()
    network = Network(simulator, delay_model or UniformDelay(), seed=seed, faults=faults)
    parties = []
    for pid in range(n):
        party = party_factory(pid)
        network.register(party)
        parties.append(party)
    return World(
        simulator=simulator, network=network, parties=parties, committee=committee
    )
