"""Asynchronous network simulation: discrete-event scheduler, message
fabric with metrics, party abstraction, and adversary strategies."""

from .adversary import (
    corrupt_weight_fraction,
    heaviest_under,
    most_tickets_under,
    nominal_corruption,
    random_under,
)
from .events import Simulator
from .network import DelayModel, Network, NetworkMetrics, TargetedDelay, UniformDelay
from .process import Party
from .runner import World, build_world

__all__ = [
    "Simulator",
    "Network",
    "NetworkMetrics",
    "DelayModel",
    "UniformDelay",
    "TargetedDelay",
    "Party",
    "World",
    "build_world",
    "nominal_corruption",
    "heaviest_under",
    "most_tickets_under",
    "random_under",
    "corrupt_weight_fraction",
]
