"""Party abstraction: a state machine reacting to delivered messages.

Protocol implementations subclass :class:`Party` and register handlers by
message class.  Byzantine behaviors are subclasses overriding the honest
logic (equivocating, withholding, or garbling); crash faults simply stop
processing.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Optional, Type

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["Party"]


class Party:
    """A protocol participant identified by an integer ``pid``.

    Subclasses register message handlers with :meth:`on` (usually in
    ``__init__``) or override :meth:`receive` wholesale.
    """

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.network: Optional["Network"] = None
        self.crashed = False
        self._handlers: dict[Type, Callable] = {}
        #: free-form counters protocols use for computation metrics
        self.counters: dict[str, int] = defaultdict(int)

    # -- wiring -----------------------------------------------------------------
    def on(self, message_type: Type, handler: Callable) -> None:
        """Register ``handler(message, sender)`` for ``message_type``."""
        self._handlers[message_type] = handler

    def receive(self, message, sender: int) -> None:
        """Entry point invoked by the network on delivery."""
        if self.crashed:
            return
        handler = self._handlers.get(type(message))
        if handler is not None:
            handler(message, sender)

    # -- sending ----------------------------------------------------------------
    def send(self, dst: int, message) -> None:
        if self.network is None:
            raise RuntimeError(f"party {self.pid} is not attached to a network")
        self.network.send(self.pid, dst, message)

    def broadcast(self, message, *, include_self: bool = True) -> None:
        if self.network is None:
            raise RuntimeError(f"party {self.pid} is not attached to a network")
        self.network.broadcast(self.pid, message, include_self=include_self)

    # -- fault injection -----------------------------------------------------------
    def crash(self) -> None:
        """Stop reacting to any further message (crash fault)."""
        self.crashed = True

    def restart(self) -> None:
        """Resume reacting to messages (crash-restart fault).

        The base party carries no volatile protocol state to rebuild;
        recoverable subclasses override this to replay their write-ahead
        log and resynchronize from live peers before rejoining.
        """
        self.crashed = False
        self.bump("restarts")

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named computation counter."""
        self.counters[counter] += amount
