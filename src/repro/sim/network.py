"""Simulated asynchronous message-passing network with metrics.

Messages between honest parties are delivered after finite delays drawn
from a :class:`DelayModel`; the adversarial variant can stretch delays to
and from targeted parties (but never drop honest-to-honest traffic --
that would violate asynchrony rather than model it).  The network counts
messages and payload bytes per type, which is how the benchmark harness
measures the communication-overhead columns of the paper's Table 1.

Injected faults are consulted through the same two-point interface the
live runtime's :class:`~repro.runtime.faults.FaultController` exposes:
``condemn(src, dst)`` at the send point (terminal faults -- crash,
partition, weather loss) and ``decide(src, dst)`` at the delivery point
(delay, jitter, duplication, plus a terminal re-check for in-flight
messages), so one fault plan produces the same drop/delay behavior on
every execution backend.  Metrics are recorded at send time on all
backends, which keeps message counts comparable even under faults.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .events import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .process import Party

__all__ = ["DelayModel", "UniformDelay", "TargetedDelay", "Network", "NetworkMetrics"]


class DelayModel:
    """Strategy interface: choose the delivery delay of one message."""

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass
class UniformDelay(DelayModel):
    """Delays uniform in ``[low, high]`` -- the benign asynchronous run."""

    low: float = 0.01
    high: float = 0.1

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class TargetedDelay(DelayModel):
    """Adversarial scheduler: traffic touching ``slow_parties`` is slowed
    by ``factor`` -- the classic way an asynchronous adversary biases
    quorum formation without violating eventual delivery."""

    base: DelayModel
    slow_parties: frozenset[int]
    factor: float = 50.0

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        d = self.base.delay(src, dst, rng)
        if src in self.slow_parties or dst in self.slow_parties:
            return d * self.factor
        return d


@dataclass
class NetworkMetrics:
    """Message and byte counters, total and per message type."""

    messages: int = 0
    bytes: int = 0
    by_type: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_type: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, type_name: str, size: int) -> None:
        self.messages += 1
        self.bytes += size
        self.by_type[type_name] += 1
        self.bytes_by_type[type_name] += size


def _default_size(message) -> int:
    """Estimate a message's wire size.

    Messages may provide ``wire_size()``; otherwise a flat header cost is
    charged plus the length of any ``payload`` bytes attribute.
    """
    if hasattr(message, "wire_size"):
        return int(message.wire_size())
    size = 64
    payload = getattr(message, "payload", None)
    if isinstance(payload, (bytes, bytearray)):
        size += len(payload)
    return size


class Network:
    """The message fabric connecting :class:`~repro.sim.process.Party` objects."""

    def __init__(
        self,
        simulator: Simulator,
        delay_model: Optional[DelayModel] = None,
        *,
        seed: int = 0,
        faults=None,
    ) -> None:
        self.simulator = simulator
        self.delay_model = delay_model or UniformDelay()
        self.rng = random.Random(seed)
        self.parties: dict[int, "Party"] = {}
        self.metrics = NetworkMetrics()
        #: optional fault plan with a ``decide(src, dst)`` method (duck-typed
        #: so :class:`repro.runtime.faults.FaultController` plugs in without
        #: the sim importing the runtime package)
        self.faults = faults

    def register(self, party: "Party") -> None:
        """Attach a party; its ``pid`` must be unique."""
        if party.pid in self.parties:
            raise ValueError(f"duplicate party id {party.pid}")
        self.parties[party.pid] = party
        party.network = self

    @property
    def party_ids(self) -> list[int]:
        return sorted(self.parties)

    def send(self, src: int, dst: int, message) -> None:
        """Queue ``message`` for asynchronous delivery ``src -> dst``.

        Terminal faults (crash, partition, weather loss) are checked at
        the *send point* -- a condemned message is counted and never
        scheduled, matching the live transports, so a partition means the
        same thing on every backend regardless of in-flight buffering.
        Metrics are recorded first: counts stay comparable under faults.
        """
        if dst not in self.parties:
            raise KeyError(f"unknown destination {dst}")
        self.metrics.record(type(message).__name__, _default_size(message))
        condemn = getattr(self.faults, "condemn", None)
        if condemn is not None and condemn(src, dst):
            return
        delay = self.delay_model.delay(src, dst, self.rng)
        receiver = self.parties[dst]
        self.simulator.schedule(
            delay, lambda m=message, s=src, r=receiver: self._deliver(s, r, m)
        )

    def _deliver(self, src: int, receiver: "Party", message) -> None:
        """Fault check at the delivery point, then dispatch.

        Delivery re-checks the terminal faults (a crash or partition
        injected *after* the send still stops an in-flight message) and
        applies the re-timing faults: link delay, weather jitter, and
        duplication (extra copies are dispatched as distinct arrivals a
        few milliseconds apart), matching
        :meth:`repro.runtime.transport.Transport._deliver`.
        """
        if self.faults is not None:
            decision = self.faults.decide(src, receiver.pid)
            if not decision.deliver:
                return
            for copy in range(decision.duplicates):
                self.simulator.schedule(
                    decision.delay + 0.005 * (copy + 1),
                    lambda m=message, s=src, r=receiver: r.receive(m, s),
                )
            if decision.delay > 0:
                self.simulator.schedule(
                    decision.delay,
                    lambda m=message, s=src, r=receiver: r.receive(m, s),
                )
                return
        receiver.receive(message, src)

    def broadcast(self, src: int, message, *, include_self: bool = True) -> None:
        """Send ``message`` to every registered party."""
        for dst in self.party_ids:
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)

    def run(self, **kwargs) -> None:
        """Convenience passthrough to the simulator."""
        self.simulator.run(**kwargs)
