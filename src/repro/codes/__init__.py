"""Erasure / error-correcting codes: GF(2^w) arithmetic, Reed-Solomon
encoding with erasure (Lagrange) and error (Gao) decoding, and
Berlekamp-Massey LFSR synthesis (paper, Section 5)."""

from .berlekamp import berlekamp_massey, chien_search, lfsr_generate
from .gf2m import GF256, GF65536, GF2m
from .reed_solomon import DecodingFailure, Fragment, ReedSolomon, min_message_symbols

__all__ = [
    "GF2m",
    "GF256",
    "GF65536",
    "ReedSolomon",
    "Fragment",
    "DecodingFailure",
    "min_message_symbols",
    "berlekamp_massey",
    "chien_search",
    "lfsr_generate",
]
