"""Erasure / error-correcting codes: GF(2^w) arithmetic with a
vectorized block kernel, Reed-Solomon encoding with erasure (Lagrange)
and error (Gao) decoding -- per-symbol reference path plus the
block-striped engine -- and Berlekamp-Massey LFSR synthesis (paper,
Section 5)."""

from .berlekamp import berlekamp_massey, chien_search, lfsr_generate
from .gf2m import GF256, GF65536, GF2m, xor_blocks
from .reed_solomon import (
    BlockFragment,
    DecodingFailure,
    Fragment,
    ReedSolomon,
    min_message_symbols,
)

__all__ = [
    "GF2m",
    "GF256",
    "GF65536",
    "xor_blocks",
    "ReedSolomon",
    "Fragment",
    "BlockFragment",
    "DecodingFailure",
    "min_message_symbols",
    "berlekamp_massey",
    "chien_search",
    "lfsr_generate",
]
