"""Berlekamp-Massey LFSR synthesis over ``GF(2^w)``.

The paper cites Berlekamp-Massey as the standard Reed-Solomon decoding
workhorse whose cost drives the computation-overhead columns of Table 1
(Section 5.1).  This module implements the algorithm in its general form
-- shortest linear recurrence (LFSR) for a field sequence -- together
with the syndrome-domain helpers (Chien search root finding) used by
classic RS decoders.  The protocol layer uses :mod:`.reed_solomon`'s Gao
decoder for arbitrary evaluation-point sets; Berlekamp-Massey is exposed
for the canonical primitive-point layout and validated against it in the
test suite.
"""

from __future__ import annotations

from typing import Sequence

from .gf2m import GF2m

__all__ = ["berlekamp_massey", "chien_search", "lfsr_generate"]


def berlekamp_massey(field: GF2m, sequence: Sequence[int]) -> list[int]:
    """Shortest LFSR ``C(x) = 1 + c_1 x + ... + c_L x^L`` generating
    ``sequence``: for all ``n >= L``,
    ``s_n = sum_{i=1..L} c_i * s_{n-i}`` (in characteristic 2 the sign
    vanishes).  Returns the connection coefficient list padded to length
    ``L + 1`` (the linear complexity may exceed the polynomial degree,
    e.g. for ``[1, 0, 0, ...]`` where ``C(x) = 1`` but ``L = 1``), with
    ``C[0] == 1``.
    """
    c = [1]  # connection polynomial C(x)
    b = [1]  # previous C before last length change
    length = 0
    m = 1
    bb = 1  # discrepancy at last length change
    for n, s_n in enumerate(sequence):
        # Discrepancy d = s_n + sum c_i * s_{n-i}.
        d = s_n
        for i in range(1, length + 1):
            if i < len(c) and c[i]:
                d ^= field.mul(c[i], sequence[n - i])
        if d == 0:
            m += 1
            continue
        coef = field.div(d, bb)
        t = list(c)
        # c(x) -= coef * x^m * b(x)
        needed = m + len(b)
        if len(c) < needed:
            c = c + [0] * (needed - len(c))
        for i, bi in enumerate(b):
            c[m + i] ^= field.mul(coef, bi)
        if 2 * length <= n:
            length = n + 1 - length
            b = t
            bb = d
            m = 1
        else:
            m += 1
    # Pad/trim to exactly L + 1 coefficients: the linear complexity L is
    # the quantity recurrence checks must use, not the stripped degree.
    if len(c) < length + 1:
        c = c + [0] * (length + 1 - len(c))
    return c[: length + 1]


def chien_search(field: GF2m, locator: Sequence[int]) -> list[int]:
    """Roots of the error-locator polynomial by exhaustive evaluation.

    Returns the exponents ``i`` such that ``locator(alpha^{-i}) == 0`` --
    the standard error-position read-out of a syndrome-domain decoder.
    """
    roots = []
    for i in range(field.size - 1):
        x = field.inv(field.element_at(i))
        if field.poly_eval(locator, x) == 0:
            roots.append(i)
    return roots


def lfsr_generate(
    field: GF2m, connection: Sequence[int], seed: Sequence[int], count: int
) -> list[int]:
    """Run the LFSR defined by ``connection`` from ``seed`` for ``count``
    outputs (seed included).  Inverse operation of
    :func:`berlekamp_massey`, used by its property tests."""
    degree = len(connection) - 1
    if len(seed) < degree:
        raise ValueError("seed must cover the LFSR degree")
    out = list(seed)
    while len(out) < count:
        nxt = 0
        for i in range(1, degree + 1):
            if connection[i]:
                nxt ^= field.mul(connection[i], out[-i])
        out.append(nxt)
    return out[:count]
