"""Binary extension fields ``GF(2^w)`` with log/antilog tables.

Reed-Solomon coding (paper, Section 5) works over a finite field whose
size bounds the number of fragments: the weighted protocols need up to
``T`` fragments where ``T`` can exceed 255, so both ``GF(2^8)`` (classic,
fast) and ``GF(2^16)`` (up to 65535 fragments) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["GF2m", "GF256", "GF65536"]


class GF2m:
    """The field ``GF(2^w)`` defined by a primitive polynomial.

    Elements are ints in ``[0, 2^w)``; addition is XOR; multiplication
    uses exp/log tables built once at construction.
    """

    def __init__(self, width: int, primitive_poly: int) -> None:
        if not 2 <= width <= 16:
            raise ValueError("width must be in [2, 16]")
        self.width = width
        self.size = 1 << width
        self.primitive_poly = primitive_poly
        self.exp = [0] * (2 * self.size)
        self.log = [0] * self.size
        x = 1
        for i in range(self.size - 1):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & self.size:
                x ^= primitive_poly
        if x != 1:
            raise ValueError(f"{primitive_poly:#x} is not primitive for width {width}")
        # Double the table to skip a modulo in mul.
        for i in range(self.size - 1, 2 * self.size):
            self.exp[i] = self.exp[i - (self.size - 1)]

    # -- arithmetic -------------------------------------------------------------
    @staticmethod
    def add(a: int, b: int) -> int:
        """Characteristic-2 addition (XOR); subtraction is identical."""
        return a ^ b

    sub = add

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return self.exp[self.size - 1 - self.log[a]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero")
        if a == 0:
            return 0
        return self.exp[self.log[a] - self.log[b] + self.size - 1]

    def pow(self, a: int, e: int) -> int:
        if a == 0:
            return 0 if e else 1
        return self.exp[(self.log[a] * e) % (self.size - 1)]

    @property
    def alpha(self) -> int:
        """A fixed primitive element (the root of the primitive poly)."""
        return 2

    def element_at(self, i: int) -> int:
        """``alpha^i``: canonical distinct non-zero evaluation points."""
        return self.exp[i % (self.size - 1)]

    # -- polynomials (coefficient lists, index = degree) -------------------------
    def poly_eval(self, poly: Sequence[int], x: int) -> int:
        """Horner evaluation of ``poly`` (index = degree) at ``x``."""
        acc = 0
        for c in reversed(poly):
            acc = self.mul(acc, x) ^ c
        return acc

    def poly_add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        out = list(a) if len(a) >= len(b) else list(b)
        short = b if len(a) >= len(b) else a
        for i, c in enumerate(short):
            out[i] ^= c
        while out and out[-1] == 0:
            out.pop()
        return out

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        if not a or not b:
            return []
        out = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            la = self.log[ai]
            for j, bj in enumerate(b):
                if bj:
                    out[i + j] ^= self.exp[la + self.log[bj]]
        while out and out[-1] == 0:
            out.pop()
        return out

    def poly_scale(self, a: Sequence[int], s: int) -> list[int]:
        return [self.mul(c, s) for c in a]

    def poly_divmod(
        self, num: Sequence[int], den: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Polynomial division with remainder."""
        num = list(num)
        while num and num[-1] == 0:
            num.pop()
        den = list(den)
        while den and den[-1] == 0:
            den.pop()
        if not den:
            raise ZeroDivisionError("polynomial division by zero")
        if len(num) < len(den):
            return [], num
        quot = [0] * (len(num) - len(den) + 1)
        rem = list(num)
        inv_lead = self.inv(den[-1])
        for shift in range(len(num) - len(den), -1, -1):
            coef = self.mul(rem[shift + len(den) - 1], inv_lead)
            quot[shift] = coef
            if coef:
                for i, d in enumerate(den):
                    rem[shift + i] ^= self.mul(d, coef)
        while rem and rem[-1] == 0:
            rem.pop()
        return quot, rem

    def poly_deriv(self, a: Sequence[int]) -> list[int]:
        """Formal derivative (odd-degree terms survive in char 2)."""
        out = [a[i] if i % 2 == 1 else 0 for i in range(1, len(a))]
        while out and out[-1] == 0:
            out.pop()
        return out


#: ``GF(2^8)`` with the AES/QR-code primitive polynomial ``x^8+x^4+x^3+x^2+1``.
GF256 = GF2m(8, 0x11D)

#: ``GF(2^16)`` with primitive polynomial ``x^16+x^12+x^3+x+1``.
GF65536 = GF2m(16, 0x1100B)
