"""Binary extension fields ``GF(2^w)`` with log/antilog tables and a
vectorized *block kernel*.

Reed-Solomon coding (paper, Section 5) works over a finite field whose
size bounds the number of fragments: the weighted protocols need up to
``T`` fragments where ``T`` can exceed 255, so both ``GF(2^8)`` (classic,
fast) and ``GF(2^16)`` (up to 65535 fragments) are provided.

Two performance layers live here:

* **scalar** arithmetic via exp/log tables, built *lazily* on first use
  (``GF65536`` alone needs ~196k table entries; importing the package
  must not pay for them);
* **block** arithmetic: multiplying every symbol of a byte block by one
  field scalar runs as a handful of C-level primitives
  (``bytes.translate`` against a per-scalar 256-byte row, big-int XOR,
  strided slicing) instead of one Python call per symbol.  ``GF(2^16)``
  symbols split into high/low byte planes, each handled by its own
  translation row -- ``s*(h*z^8 + l) == (s*z^8)*h + s*l`` -- so the same
  ``translate`` trick covers the 16-bit field.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["GF2m", "GF256", "GF65536", "xor_blocks"]

#: per-scalar translation rows are cached on the field; GF(2^8) tops out
#: at 256 entries (64 KiB) but GF(2^16) could reach 65535 x ~1 KiB, so
#: the cache is bounded (coding touches far fewer distinct scalars).
_ROW_CACHE_MAX = 8192


def xor_blocks(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length blocks at C speed.

    Characteristic-2 block addition: both operands are reinterpreted as
    one big integer each, XORed, and written back -- three C-level
    operations regardless of block length.
    """
    if len(a) != len(b):
        raise ValueError("cannot XOR blocks of different lengths")
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(len(a), "little")


class GF2m:
    """The field ``GF(2^w)`` defined by a primitive polynomial.

    Elements are ints in ``[0, 2^w)``; addition is XOR; multiplication
    uses exp/log tables built lazily on first arithmetic use (a
    non-primitive polynomial therefore raises on first *use*, not at
    construction).
    """

    def __init__(self, width: int, primitive_poly: int) -> None:
        if not 2 <= width <= 16:
            raise ValueError("width must be in [2, 16]")
        self.width = width
        self.size = 1 << width
        self.primitive_poly = primitive_poly
        #: scalar -> translation row(s) for the block kernel
        self._rows: dict = {}

    # -- lazy tables ------------------------------------------------------------
    def __getattr__(self, name: str):
        # Only the two tables are lazily materialized; anything else
        # missing is a genuine AttributeError.
        if name in ("exp", "log"):
            self._build_tables()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def tables_built(self) -> bool:
        """Whether the exp/log tables have been materialized yet."""
        return "exp" in self.__dict__

    def _build_tables(self) -> None:
        exp = [0] * (2 * self.size)
        log = [0] * self.size
        x = 1
        for i in range(self.size - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= self.primitive_poly
        if x != 1:
            raise ValueError(
                f"{self.primitive_poly:#x} is not primitive for width {self.width}"
            )
        # Double the table to skip a modulo in mul.
        for i in range(self.size - 1, 2 * self.size):
            exp[i] = exp[i - (self.size - 1)]
        self.__dict__["exp"] = exp
        self.__dict__["log"] = log

    # -- arithmetic -------------------------------------------------------------
    @staticmethod
    def add(a: int, b: int) -> int:
        """Characteristic-2 addition (XOR); subtraction is identical."""
        return a ^ b

    sub = add

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return self.exp[self.size - 1 - self.log[a]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero")
        if a == 0:
            return 0
        return self.exp[self.log[a] - self.log[b] + self.size - 1]

    def pow(self, a: int, e: int) -> int:
        if a == 0:
            return 0 if e else 1
        return self.exp[(self.log[a] * e) % (self.size - 1)]

    @property
    def alpha(self) -> int:
        """A fixed primitive element (the root of the primitive poly)."""
        return 2

    def element_at(self, i: int) -> int:
        """``alpha^i``: canonical distinct non-zero evaluation points."""
        return self.exp[i % (self.size - 1)]

    # -- block kernel -----------------------------------------------------------
    @property
    def sym_bytes(self) -> int:
        """Bytes per symbol in block form (block ops need width 8 or 16)."""
        if self.width not in (8, 16):
            raise ValueError("block operations need width 8 or 16")
        return self.width // 8

    def _row8(self, s: int) -> bytes:
        """256-byte translation row: ``row[v] == s * v`` (width 8)."""
        row = self._rows.get(s)
        if row is None:
            exp, log = self.exp, self.log
            ls = log[s]
            row = bytes([0] + [exp[ls + log[v]] for v in range(1, 256)])
            if len(self._rows) >= _ROW_CACHE_MAX:
                self._rows.clear()
            self._rows[s] = row
        return row

    def _planes16(self, s: int) -> tuple[bytes, bytes, bytes, bytes]:
        """Four 256-byte rows realizing 16-bit scalar multiplication.

        A symbol ``v = (h << 8) | l`` satisfies ``s*v = (s*z^8)*h ^ s*l``
        where ``z^8`` is the field element ``0x100``; the two byte-input
        products each split into high/low output planes:
        ``(A_hi, A_lo, B_hi, B_lo)`` with ``A[v] = (s*0x100)*v`` and
        ``B[v] = s*v``.
        """
        planes = self._rows.get(s)
        if planes is None:
            exp, log = self.exp, self.log
            lb = log[s]
            la = log[self.mul(s, 0x100)]
            arow = [0] + [exp[la + log[v]] for v in range(1, 256)]
            brow = [0] + [exp[lb + log[v]] for v in range(1, 256)]
            planes = (
                bytes(e >> 8 for e in arow),
                bytes(e & 0xFF for e in arow),
                bytes(e >> 8 for e in brow),
                bytes(e & 0xFF for e in brow),
            )
            if len(self._rows) >= _ROW_CACHE_MAX:
                self._rows.clear()
            self._rows[s] = planes
        return planes

    def scale_block(self, s: int, block: bytes) -> bytes:
        """Multiply every symbol of ``block`` by the scalar ``s``.

        ``block`` packs big-endian symbols of :attr:`sym_bytes` bytes
        each.  The whole pass is C-level: one ``translate`` for width 8;
        two strided slices, four ``translate``s, two big-int XORs and two
        strided writes for width 16.
        """
        if not block:
            return b""
        if s == 0:
            return bytes(len(block))
        if s == 1:
            return bytes(block)
        if self.width == 8:
            return block.translate(self._row8(s))
        if self.width == 16:
            a_hi, a_lo, b_hi, b_lo = self._planes16(s)
            hi = block[0::2]
            lo = block[1::2]
            out = bytearray(len(block))
            out[0::2] = xor_blocks(hi.translate(a_hi), lo.translate(b_hi))
            out[1::2] = xor_blocks(hi.translate(a_lo), lo.translate(b_lo))
            return bytes(out)
        raise ValueError("block operations need width 8 or 16")

    def symbols_to_block(self, symbols: Sequence[int]) -> bytes:
        """Pack symbols into their big-endian block representation."""
        if self.sym_bytes == 1:
            return bytes(symbols)
        out = bytearray()
        for s in symbols:
            out += s.to_bytes(2, "big")
        return bytes(out)

    def block_to_symbols(self, block: bytes) -> list[int]:
        """Inverse of :meth:`symbols_to_block`."""
        if self.sym_bytes == 1:
            return list(block)
        return [
            (block[i] << 8) | block[i + 1] for i in range(0, len(block), 2)
        ]

    # -- polynomials (coefficient lists, index = degree) -------------------------
    def poly_eval(self, poly: Sequence[int], x: int) -> int:
        """Horner evaluation of ``poly`` (index = degree) at ``x``."""
        acc = 0
        for c in reversed(poly):
            acc = self.mul(acc, x) ^ c
        return acc

    def poly_add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        out = list(a) if len(a) >= len(b) else list(b)
        short = b if len(a) >= len(b) else a
        for i, c in enumerate(short):
            out[i] ^= c
        while out and out[-1] == 0:
            out.pop()
        return out

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        if not a or not b:
            return []
        out = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            la = self.log[ai]
            for j, bj in enumerate(b):
                if bj:
                    out[i + j] ^= self.exp[la + self.log[bj]]
        while out and out[-1] == 0:
            out.pop()
        return out

    def poly_scale(self, a: Sequence[int], s: int) -> list[int]:
        return [self.mul(c, s) for c in a]

    def poly_divmod(
        self, num: Sequence[int], den: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Polynomial division with remainder."""
        num = list(num)
        while num and num[-1] == 0:
            num.pop()
        den = list(den)
        while den and den[-1] == 0:
            den.pop()
        if not den:
            raise ZeroDivisionError("polynomial division by zero")
        if len(num) < len(den):
            return [], num
        quot = [0] * (len(num) - len(den) + 1)
        rem = list(num)
        inv_lead = self.inv(den[-1])
        for shift in range(len(num) - len(den), -1, -1):
            coef = self.mul(rem[shift + len(den) - 1], inv_lead)
            quot[shift] = coef
            if coef:
                for i, d in enumerate(den):
                    rem[shift + i] ^= self.mul(d, coef)
        while rem and rem[-1] == 0:
            rem.pop()
        return quot, rem

    def poly_deriv(self, a: Sequence[int]) -> list[int]:
        """Formal derivative (odd-degree terms survive in char 2)."""
        out = [a[i] if i % 2 == 1 else 0 for i in range(1, len(a))]
        while out and out[-1] == 0:
            out.pop()
        return out


#: ``GF(2^8)`` with the AES/QR-code primitive polynomial ``x^8+x^4+x^3+x^2+1``.
GF256 = GF2m(8, 0x11D)

#: ``GF(2^16)`` with primitive polynomial ``x^16+x^12+x^3+x+1``.
GF65536 = GF2m(16, 0x1100B)
