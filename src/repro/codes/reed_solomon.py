"""Reed-Solomon erasure and error-correcting codes (paper, Section 5).

``(k, m)`` evaluation-style RS: the ``k`` data symbols are the
coefficients of a polynomial ``f`` of degree below ``k``; fragment ``j``
is ``f(alpha^j)``.  Any ``k`` fragments reconstruct (erasure decoding by
Lagrange interpolation); with ``k + 2e`` fragments up to ``e`` of which
are wrong, Gao's extended-Euclidean decoder recovers ``f`` (error
decoding) -- matching the correction capability the paper assumes for the
online-error-correction broadcast (Section 5.2).

Operation counters expose the decoding *work*, which is what the paper's
Table 1 computation-overhead columns measure (work grows with the number
of fragments ``m``, i.e. with the ticket count in the weighted setting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .gf2m import GF256, GF65536, GF2m

__all__ = ["ReedSolomon", "Fragment", "DecodingFailure", "min_message_symbols"]


class DecodingFailure(Exception):
    """Raised when decoding cannot produce a consistent codeword."""


@dataclass(frozen=True)
class Fragment:
    """One coded symbol: position ``index`` (0-based) and its ``value``."""

    index: int
    value: int


def min_message_symbols(k: int, m: int) -> int:
    """Paper, Section 5.1: Reed-Solomon needs messages of at least
    ``k * log2(m)`` bits; expressed here in field symbols the data block is
    ``k`` symbols, each of ``ceil(log2(m))`` bits minimum -- callers use
    this to account for padding overhead with large ``m``."""
    return k * max(1, (m - 1).bit_length())


class ReedSolomon:
    """A ``(k, m)`` Reed-Solomon code over ``GF(2^w)``.

    Parameters
    ----------
    k:
        Data symbols per block (reconstruction threshold).
    m:
        Total fragments; must satisfy ``k <= m <= 2^w - 1``.
    field:
        The :class:`~repro.codes.gf2m.GF2m` instance; chosen automatically
        (GF(2^8) when ``m < 256``, else GF(2^16)) if omitted.
    """

    def __init__(self, k: int, m: int, field: Optional[GF2m] = None) -> None:
        if field is None:
            field = GF256 if m < 256 else GF65536
        if not 1 <= k <= m <= field.size - 1:
            raise ValueError(
                f"need 1 <= k <= m <= {field.size - 1}, got k={k}, m={m}"
            )
        self.k = k
        self.m = m
        self.field = field
        #: evaluation points alpha^0 .. alpha^{m-1} (distinct, non-zero)
        self.points = [field.element_at(i) for i in range(m)]
        #: cumulative decoding work counter (field multiplications, approx)
        self.work_counter = 0

    @property
    def rate(self) -> float:
        """Code rate ``k / m``."""
        return self.k / self.m

    # -- encoding ---------------------------------------------------------------
    def encode(self, data: Sequence[int]) -> list[Fragment]:
        """Encode ``k`` data symbols into ``m`` fragments."""
        if len(data) != self.k:
            raise ValueError(f"data must have exactly k={self.k} symbols")
        for s in data:
            if not 0 <= s < self.field.size:
                raise ValueError(f"symbol {s} outside GF(2^{self.field.width})")
        out = []
        for j, x in enumerate(self.points):
            out.append(Fragment(index=j, value=self.field.poly_eval(data, x)))
        self.work_counter += self.m * self.k
        return out

    # -- erasure decoding ---------------------------------------------------------
    def decode_erasures(self, fragments: Sequence[Fragment]) -> list[int]:
        """Reconstruct data from any ``k`` correct fragments (Lagrange)."""
        unique = {f.index: f for f in fragments}
        if len(unique) < self.k:
            raise DecodingFailure(
                f"need {self.k} fragments, got {len(unique)} distinct"
            )
        chosen = list(unique.values())[: self.k]
        xs = [self.points[f.index] for f in chosen]
        ys = [f.value for f in chosen]
        data = self._interpolate(xs, ys)
        self.work_counter += self.k * self.k
        if len(data) > self.k:
            raise DecodingFailure("interpolation exceeded expected degree")
        return data + [0] * (self.k - len(data))

    def _interpolate(self, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
        """Coefficients of the unique poly of degree < len(xs) through points."""
        f = self.field
        result: list[int] = []
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            num = [1]
            den = 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                num = f.poly_mul(num, [xj, 1])  # (x - xj) == (x + xj) in char 2
                den = f.mul(den, xi ^ xj)
            term = f.poly_scale(num, f.div(yi, den))
            result = f.poly_add(result, term)
        return result

    # -- error decoding (Gao) --------------------------------------------------------
    def decode_errors(self, fragments: Sequence[Fragment]) -> list[int]:
        """Reconstruct from fragments containing up to
        ``(len(fragments) - k) // 2`` wrong values (Gao's decoder).

        Raises :class:`DecodingFailure` when the error budget is exceeded.
        """
        unique = {f.index: f for f in fragments}
        received = list(unique.values())
        r = len(received)
        if r < self.k:
            raise DecodingFailure(f"need at least k={self.k} fragments, got {r}")
        f = self.field
        xs = [self.points[frag.index] for frag in received]
        ys = [frag.value for frag in received]
        # g0 = prod (x - x_i); g1 interpolates the received word.
        g0 = [1]
        for x in xs:
            g0 = f.poly_mul(g0, [x, 1])
        g1 = self._interpolate(xs, ys)
        self.work_counter += r * r
        if not g1:
            return [0] * self.k
        # Partial extended Euclid until deg(remainder) < (r + k) / 2.
        stop = (r + self.k) // 2 if (r + self.k) % 2 == 0 else (r + self.k + 1) // 2
        # deg g < (r + k) / 2 means 2*deg < r + k; use integer threshold:
        def small_enough(poly: list[int]) -> bool:
            return 2 * (len(poly) - 1) < r + self.k

        a, b = g0, g1
        # Bezout coefficients for b-track: v satisfies g = u*g0 + v*g1.
        v_prev, v_cur = [], [1]
        g_prev, g_cur = a, b
        while g_cur and not small_enough(g_cur):
            q, rem = f.poly_divmod(g_prev, g_cur)
            self.work_counter += max(1, len(q)) * max(1, len(g_cur))
            g_prev, g_cur = g_cur, rem
            v_prev, v_cur = v_cur, f.poly_add(v_prev, f.poly_mul(q, v_cur))
        if not g_cur:
            raise DecodingFailure("degenerate Euclidean step")
        f1, rem = f.poly_divmod(g_cur, v_cur)
        if rem:
            raise DecodingFailure("too many errors: remainder not divisible")
        if len(f1) > self.k:
            raise DecodingFailure("too many errors: degree overflow")
        data = f1 + [0] * (self.k - len(f1))
        # Consistency check: the decoded word must disagree with at most
        # (r - k) // 2 received fragments.
        errors = sum(
            1 for x, y in zip(xs, ys) if f.poly_eval(data, x) != y
        )
        if errors > (r - self.k) // 2:
            raise DecodingFailure(f"{errors} errors exceed correction budget")
        return data

    # -- byte-level convenience -----------------------------------------------------
    def encode_bytes(self, data: bytes) -> tuple[list[list[Fragment]], int]:
        """Encode an arbitrary byte string block-by-block.

        Returns ``(blocks, original_length)`` where each block is the
        fragment list of one ``k``-symbol chunk.  Symbols are single bytes
        for GF(2^8), byte pairs for GF(2^16).
        """
        sym_bytes = self.field.width // 8
        chunk = self.k * sym_bytes
        padded = data + b"\x00" * ((-len(data)) % chunk)
        blocks = []
        for off in range(0, len(padded), chunk):
            piece = padded[off : off + chunk]
            symbols = [
                int.from_bytes(piece[i : i + sym_bytes], "big")
                for i in range(0, len(piece), sym_bytes)
            ]
            blocks.append(self.encode(symbols))
        return blocks, len(data)

    def decode_bytes(
        self, blocks: Sequence[Sequence[Fragment]], original_length: int
    ) -> bytes:
        """Inverse of :meth:`encode_bytes` using erasure decoding."""
        sym_bytes = self.field.width // 8
        out = bytearray()
        for fragments in blocks:
            symbols = self.decode_erasures(list(fragments))
            for s in symbols:
                out += s.to_bytes(sym_bytes, "big")
        return bytes(out[:original_length])
