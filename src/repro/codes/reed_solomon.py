"""Reed-Solomon erasure and error-correcting codes (paper, Section 5).

``(k, m)`` evaluation-style RS: the ``k`` data symbols are the
coefficients of a polynomial ``f`` of degree below ``k``; fragment ``j``
is ``f(alpha^j)``.  Any ``k`` fragments reconstruct (erasure decoding by
Lagrange interpolation); with ``k + 2e`` fragments up to ``e`` of which
are wrong, Gao's extended-Euclidean decoder recovers ``f`` (error
decoding) -- matching the correction capability the paper assumes for the
online-error-correction broadcast (Section 5.2).

Two engines share the same code:

* the **per-symbol reference path** (:meth:`ReedSolomon.encode`,
  :meth:`~ReedSolomon.decode_erasures`, :meth:`~ReedSolomon.decode_errors`)
  -- one Python field operation per symbol, kept as the correctness
  oracle the vectorized path is tested against;
* the **block-striped path** (:meth:`~ReedSolomon.encode_blocks` and the
  ``*_blocks`` decoders) -- a payload is striped column-wise into ``k``
  data shards and every fragment is one contiguous byte block; each
  polynomial step is a scalar-times-block pass through the
  :mod:`~repro.codes.gf2m` kernel (``bytes.translate`` + big-int XOR),
  so the per-symbol Python loop disappears from the hot path.  Erasure
  decoding reuses an LRU-cached Lagrange basis keyed by the fragment
  index set (AVID retrieval and checkpointing decode repeatedly with the
  same quorum indices), and a systematic mode makes the first ``k``
  fragments the data itself.

Operation counters expose the decoding *work*, which is what the paper's
Table 1 computation-overhead columns measure (work grows with the number
of fragments ``m``, i.e. with the ticket count in the weighted setting).
The block path counts the same symbol-equivalent work units so nominal
vs weighted overhead ratios stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Mapping, Optional, Sequence, Union

from .gf2m import GF256, GF65536, GF2m, xor_blocks

__all__ = [
    "ReedSolomon",
    "Fragment",
    "BlockFragment",
    "DecodingFailure",
    "min_message_symbols",
]


class DecodingFailure(Exception):
    """Raised when decoding cannot produce a consistent codeword."""


@dataclass(frozen=True)
class Fragment:
    """One coded symbol: position ``index`` (0-based) and its ``value``."""

    index: int
    value: int


@dataclass(frozen=True)
class BlockFragment:
    """One coded *block*: position ``index`` and a contiguous byte block
    holding this fragment's symbol for every stripe of the payload."""

    index: int
    block: bytes


def min_message_symbols(k: int, m: int) -> int:
    """Paper, Section 5.1: Reed-Solomon needs messages of at least
    ``k * log2(m)`` bits; expressed here in field symbols the data block is
    ``k`` symbols, each of ``ceil(log2(m))`` bits minimum -- callers use
    this to account for padding overhead with large ``m``."""
    return k * max(1, (m - 1).bit_length())


# -- cached interpolation structures ----------------------------------------------
#
# Keyed by (field, evaluation-point tuple): protocols decode over and
# over with the same quorum's fragment indices, and AVID even constructs
# a fresh ReedSolomon per retrieval -- so the caches live at module
# level, shared across instances of the same field.


@lru_cache(maxsize=64)
def _lagrange_basis(
    field: GF2m, xs: tuple[int, ...]
) -> tuple[tuple[int, ...], ...]:
    """Coefficient form of the Lagrange basis through points ``xs``.

    ``basis[j][i]`` is the coefficient of ``x^i`` in ``L_j``, the unique
    polynomial of degree below ``len(xs)`` with ``L_j(xs[j]) = 1`` and
    zero at every other point.  Computed barycentrically in ``O(k^2)``:
    ``L_j = l / ((x + xs[j]) * l'(xs[j]))`` with ``l = prod (x + xs[t])``
    and the synthetic-division quotient ``q_j = l / (x + xs[j])``
    satisfying ``l'(xs[j]) = q_j(xs[j])`` in characteristic 2.
    """
    k = len(xs)
    l = [1]
    for a in xs:
        l = field.poly_mul(l, [a, 1])
    mul = field.mul
    basis = []
    for xj in xs:
        q = [0] * k
        acc = l[k]
        for d in range(k - 1, -1, -1):
            q[d] = acc
            acc = l[d] ^ mul(acc, xj)
        inv = field.inv(field.poly_eval(q, xj))
        basis.append(tuple(mul(c, inv) for c in q))
    return tuple(basis)


@lru_cache(maxsize=64)
def _eval_matrix(
    field: GF2m, xs: tuple[int, ...], targets: tuple[int, ...]
) -> tuple[tuple[int, ...], ...]:
    """``matrix[t][j] = L_j(targets[t])`` for the Lagrange basis over
    ``xs`` -- re-evaluation of an interpolated polynomial at new points
    without going through coefficient form (barycentric, ``O(k^2)``)."""
    k = len(xs)
    mul, inv = field.mul, field.inv
    weights = []
    for j, xj in enumerate(xs):
        d = 1
        for t, xt in enumerate(xs):
            if t != j:
                d = mul(d, xj ^ xt)
        weights.append(inv(d))
    pos = {x: j for j, x in enumerate(xs)}
    rows = []
    for ti in targets:
        j0 = pos.get(ti)
        if j0 is not None:
            rows.append(tuple(1 if j == j0 else 0 for j in range(k)))
            continue
        lt = 1
        for xj in xs:
            lt = mul(lt, ti ^ xj)
        rows.append(
            tuple(mul(lt, mul(weights[j], inv(ti ^ xj))) for j, xj in enumerate(xs))
        )
    return tuple(rows)


class ReedSolomon:
    """A ``(k, m)`` Reed-Solomon code over ``GF(2^w)``.

    Parameters
    ----------
    k:
        Data symbols per block (reconstruction threshold).
    m:
        Total fragments; must satisfy ``k <= m <= 2^w - 1``.
    field:
        The :class:`~repro.codes.gf2m.GF2m` instance; chosen automatically
        (GF(2^8) when ``m < 256``, else GF(2^16)) if omitted.
    """

    def __init__(self, k: int, m: int, field: Optional[GF2m] = None) -> None:
        if field is None:
            field = GF256 if m < 256 else GF65536
        if not 1 <= k <= m <= field.size - 1:
            raise ValueError(
                f"need 1 <= k <= m <= {field.size - 1}, got k={k}, m={m}"
            )
        self.k = k
        self.m = m
        self.field = field
        #: evaluation points alpha^0 .. alpha^{m-1} (distinct, non-zero)
        self.points = [field.element_at(i) for i in range(m)]
        #: cumulative decoding work counter (field multiplications, approx)
        self.work_counter = 0
        # Block-engine caches: online decoders retry with a growing but
        # mostly-unchanged fragment set, so folds (immutable per block)
        # and the scalar-decode probe are reused across attempts.
        self._fold_cache: dict[bytes, int] = {}
        self._scalar_probe: Optional["ReedSolomon"] = None

    @property
    def rate(self) -> float:
        """Code rate ``k / m``."""
        return self.k / self.m

    # -- encoding ---------------------------------------------------------------
    def encode(self, data: Sequence[int]) -> list[Fragment]:
        """Encode ``k`` data symbols into ``m`` fragments."""
        if len(data) != self.k:
            raise ValueError(f"data must have exactly k={self.k} symbols")
        for s in data:
            if not 0 <= s < self.field.size:
                raise ValueError(f"symbol {s} outside GF(2^{self.field.width})")
        out = []
        for j, x in enumerate(self.points):
            out.append(Fragment(index=j, value=self.field.poly_eval(data, x)))
        self.work_counter += self.m * self.k
        return out

    # -- erasure decoding ---------------------------------------------------------
    def decode_erasures(self, fragments: Sequence[Fragment]) -> list[int]:
        """Reconstruct data from any ``k`` correct fragments (Lagrange)."""
        unique = {f.index: f for f in fragments}
        if len(unique) < self.k:
            raise DecodingFailure(
                f"need {self.k} fragments, got {len(unique)} distinct"
            )
        chosen = list(unique.values())[: self.k]
        xs = [self.points[f.index] for f in chosen]
        ys = [f.value for f in chosen]
        data = self._interpolate(xs, ys)
        self.work_counter += self.k * self.k
        if len(data) > self.k:
            raise DecodingFailure("interpolation exceeded expected degree")
        return data + [0] * (self.k - len(data))

    def _interpolate(self, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
        """Coefficients of the unique poly of degree < len(xs) through points."""
        f = self.field
        result: list[int] = []
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            num = [1]
            den = 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                num = f.poly_mul(num, [xj, 1])  # (x - xj) == (x + xj) in char 2
                den = f.mul(den, xi ^ xj)
            term = f.poly_scale(num, f.div(yi, den))
            result = f.poly_add(result, term)
        return result

    # -- error decoding (Gao) --------------------------------------------------------
    def decode_errors(self, fragments: Sequence[Fragment]) -> list[int]:
        """Reconstruct from fragments containing up to
        ``(len(fragments) - k) // 2`` wrong values (Gao's decoder).

        Raises :class:`DecodingFailure` when the error budget is exceeded.
        """
        unique = {f.index: f for f in fragments}
        received = list(unique.values())
        r = len(received)
        if r < self.k:
            raise DecodingFailure(f"need at least k={self.k} fragments, got {r}")
        f = self.field
        xs = [self.points[frag.index] for frag in received]
        ys = [frag.value for frag in received]
        # g0 = prod (x - x_i); g1 interpolates the received word.
        g0 = [1]
        for x in xs:
            g0 = f.poly_mul(g0, [x, 1])
        g1 = self._interpolate(xs, ys)
        self.work_counter += r * r
        return self._gao_finish(xs, ys, g0, g1, r)

    def _gao_finish(
        self,
        xs: Sequence[int],
        ys: Sequence[int],
        g0: list[int],
        g1: list[int],
        r: int,
    ) -> list[int]:
        """Shared tail of Gao decoding: partial extended Euclid on
        ``(g0, g1)`` until ``deg(remainder) < (r + k) / 2``, division by
        the Bezout coefficient, and the consistency check."""
        f = self.field
        if not g1:
            return [0] * self.k

        def small_enough(poly: list[int]) -> bool:
            return 2 * (len(poly) - 1) < r + self.k

        # Bezout coefficients for b-track: v satisfies g = u*g0 + v*g1.
        v_prev, v_cur = [], [1]
        g_prev, g_cur = g0, g1
        while g_cur and not small_enough(g_cur):
            q, rem = f.poly_divmod(g_prev, g_cur)
            self.work_counter += max(1, len(q)) * max(1, len(g_cur))
            g_prev, g_cur = g_cur, rem
            v_prev, v_cur = v_cur, f.poly_add(v_prev, f.poly_mul(q, v_cur))
        if not g_cur:
            # Exact division: the interpolant is supported entirely on
            # error positions, so the candidate codeword is zero -- valid
            # iff the zero word stays within the error budget (the same
            # consistency check as below guards against a wrong accept).
            errors = sum(1 for y in ys if y != 0)
            if errors > (r - self.k) // 2:
                raise DecodingFailure("degenerate Euclidean step")
            return [0] * self.k
        f1, rem = f.poly_divmod(g_cur, v_cur)
        if rem:
            raise DecodingFailure("too many errors: remainder not divisible")
        if len(f1) > self.k:
            raise DecodingFailure("too many errors: degree overflow")
        data = f1 + [0] * (self.k - len(f1))
        # Consistency check: the decoded word must disagree with at most
        # (r - k) // 2 received fragments.
        errors = sum(
            1 for x, y in zip(xs, ys) if f.poly_eval(data, x) != y
        )
        if errors > (r - self.k) // 2:
            raise DecodingFailure(f"{errors} errors exceed correction budget")
        return data

    def _decode_errors_scalars(self, received: Mapping[int, int]) -> list[int]:
        """Gao decoding of one scalar word using the LRU-cached Lagrange
        basis for interpolation (``O(r^2)`` instead of the reference
        path's naive ``O(r^3)``) -- the block engine's locator workhorse,
        algorithmically identical to :meth:`decode_errors`."""
        r = len(received)
        if r < self.k:
            raise DecodingFailure(f"need at least k={self.k} fragments, got {r}")
        f = self.field
        xs = [self.points[i] for i in received]
        ys = list(received.values())
        g0 = [1]
        for x in xs:
            g0 = f.poly_mul(g0, [x, 1])
        basis = _lagrange_basis(f, tuple(xs))
        g1 = [0] * r
        exp, log = f.exp, f.log
        for j, y in enumerate(ys):
            if y:
                ly = log[y]
                for i, c in enumerate(basis[j]):
                    if c:
                        g1[i] ^= exp[ly + log[c]]
        while g1 and g1[-1] == 0:
            g1.pop()
        self.work_counter += r * r
        return self._gao_finish(xs, ys, g0, g1, r)

    # -- byte-level convenience (reference path) --------------------------------------
    def encode_bytes(self, data: bytes) -> tuple[list[list[Fragment]], int]:
        """Encode an arbitrary byte string block-by-block (reference path).

        Returns ``(blocks, original_length)`` where each block is the
        fragment list of one ``k``-symbol chunk.  Symbols are single bytes
        for GF(2^8), byte pairs for GF(2^16).
        """
        sym_bytes = self.field.width // 8
        chunk = self.k * sym_bytes
        padded = data + b"\x00" * ((-len(data)) % chunk)
        blocks = []
        for off in range(0, len(padded), chunk):
            piece = padded[off : off + chunk]
            symbols = [
                int.from_bytes(piece[i : i + sym_bytes], "big")
                for i in range(0, len(piece), sym_bytes)
            ]
            blocks.append(self.encode(symbols))
        return blocks, len(data)

    def decode_bytes(
        self, blocks: Sequence[Sequence[Fragment]], original_length: int
    ) -> bytes:
        """Inverse of :meth:`encode_bytes` using erasure decoding."""
        sym_bytes = self.field.width // 8
        out = bytearray()
        for fragments in blocks:
            symbols = self.decode_erasures(list(fragments))
            for s in symbols:
                out += s.to_bytes(sym_bytes, "big")
        return bytes(out[:original_length])

    # -- block-striped engine -----------------------------------------------------
    #
    # A payload of L bytes is padded to a whole number of k-symbol
    # codewords ("stripes") and striped column-wise: data shard i holds
    # the i-th symbol of every stripe, fragment j holds f_s(alpha^j) for
    # every stripe s.  One scalar-times-block kernel pass per polynomial
    # step replaces the per-symbol Python loop of the reference path.

    def stripe_count(self, payload_len: int) -> int:
        """Number of ``k``-symbol codewords covering ``payload_len`` bytes."""
        chunk = self.k * self.field.sym_bytes
        return -(-payload_len // chunk)

    def block_length(self, payload_len: int) -> int:
        """Bytes per fragment block for a payload of ``payload_len`` bytes."""
        return self.stripe_count(payload_len) * self.field.sym_bytes

    def _split_shards(self, data: bytes) -> list[bytes]:
        """Stripe ``data`` column-wise into ``k`` equal byte shards."""
        sb = self.field.sym_bytes
        chunk = self.k * sb
        padded = data + b"\x00" * ((-len(data)) % chunk)
        if sb == 1:
            return [padded[i::chunk] for i in range(self.k)]
        shards = []
        blen = len(padded) // self.k
        for i in range(self.k):
            shard = bytearray(blen)
            shard[0::2] = padded[2 * i :: chunk]
            shard[1::2] = padded[2 * i + 1 :: chunk]
            shards.append(bytes(shard))
        return shards

    def _merge_shards(self, shards: Sequence[bytes], original_length: int) -> bytes:
        """Inverse of :meth:`_split_shards` (drops the padding)."""
        sb = self.field.sym_bytes
        blen = len(shards[0])
        out = bytearray(blen * self.k)
        chunk = self.k * sb
        if sb == 1:
            for i, shard in enumerate(shards):
                out[i::chunk] = shard
        else:
            for i, shard in enumerate(shards):
                out[2 * i :: chunk] = shard[0::2]
                out[2 * i + 1 :: chunk] = shard[1::2]
        return bytes(out[:original_length])

    def _eval_block(self, shards: Sequence[bytes], x: int) -> bytes:
        """Evaluate the shard polynomial at ``x`` via Horner on blocks."""
        scale = self.field.scale_block
        acc = shards[-1]
        for i in range(self.k - 2, -1, -1):
            acc = xor_blocks(scale(x, acc), shards[i])
        return acc

    def encode_blocks(
        self, data: bytes, *, systematic: bool = False
    ) -> list[bytes]:
        """Encode a byte payload into ``m`` fragment blocks.

        The default (non-systematic) layout produces, stripe for stripe,
        exactly the fragments of the per-symbol :meth:`encode_bytes`
        reference path.  With ``systematic=True`` the first ``k``
        fragments *are* the data shards (zero coding work; decoding from
        indices ``0..k-1`` is a copy) and only ``m - k`` parity blocks
        are computed.
        """
        data = bytes(data)
        if not data:
            return [b""] * self.m
        shards = self._split_shards(data)
        stripes = len(shards[0]) // self.field.sym_bytes
        if systematic:
            out = list(shards)
            matrix = _eval_matrix(
                self.field,
                tuple(self.points[: self.k]),
                tuple(self.points[self.k : self.m]),
            )
            out.extend(self._combine_blocks(row, shards) for row in matrix)
            self.work_counter += (self.m - self.k) * self.k * stripes
        else:
            out = [self._eval_block(shards, x) for x in self.points]
            self.work_counter += self.m * self.k * stripes
        return out

    def _combine_blocks(
        self, coeffs: Sequence[int], blocks: Sequence[bytes]
    ) -> bytes:
        """``XOR_j coeffs[j] * blocks[j]`` accumulated in the int domain."""
        scale = self.field.scale_block
        blen = len(blocks[0])
        acc = 0
        for c, b in zip(coeffs, blocks):
            if c:
                acc ^= int.from_bytes(scale(c, b), "little")
        return acc.to_bytes(blen, "little")

    def _unique_blocks(
        self,
        fragments: Union[
            Mapping[int, bytes],
            Iterable[Union[BlockFragment, tuple[int, bytes]]],
        ],
    ) -> dict[int, bytes]:
        """Normalize fragment input to ``{index: block}`` (last value wins,
        mirroring the reference decoders' dict construction)."""
        if isinstance(fragments, Mapping):
            items = fragments.items()
        else:
            items = (
                (f.index, f.block) if isinstance(f, BlockFragment) else tuple(f)
                for f in fragments
            )
        sym_bytes = self.field.sym_bytes
        out: dict[int, bytes] = {}
        for index, block in items:
            if not 0 <= index < self.m:
                raise DecodingFailure(f"fragment index {index} out of range")
            block = bytes(block)
            if len(block) % sym_bytes:
                raise DecodingFailure(
                    f"fragment block length {len(block)} not a multiple of "
                    f"the {sym_bytes}-byte symbol size"
                )
            out[index] = block
        lengths = {len(b) for b in out.values()}
        if len(lengths) > 1:
            raise DecodingFailure("fragment blocks have inconsistent lengths")
        return out

    def decode_erasures_blocks(
        self,
        fragments,
        original_length: int,
        *,
        systematic: bool = False,
    ) -> bytes:
        """Reconstruct a byte payload from any ``k`` correct fragment blocks.

        ``fragments`` is a mapping ``index -> block`` or an iterable of
        :class:`BlockFragment` / ``(index, block)`` pairs.  The Lagrange
        basis for the chosen index set is LRU-cached, so repeated decodes
        with the same quorum indices skip the interpolation setup.
        """
        unique = self._unique_blocks(fragments)
        if len(unique) < self.k:
            raise DecodingFailure(
                f"need {self.k} fragments, got {len(unique)} distinct"
            )
        chosen = list(unique.items())[: self.k]
        shards = self._shards_from_blocks(chosen, systematic=systematic)
        stripes = len(chosen[0][1]) // self.field.sym_bytes
        self.work_counter += self.k * self.k * max(stripes, 1)
        return self._merge_shards(shards, original_length)

    def _shards_from_blocks(
        self, chosen: Sequence[tuple[int, bytes]], *, systematic: bool
    ) -> list[bytes]:
        """Data shards from exactly ``k`` (index, block) pairs."""
        indices = tuple(i for i, _ in chosen)
        blocks = [b for _, b in chosen]
        if not blocks[0]:
            return [b""] * self.k
        xs = tuple(self.points[i] for i in indices)
        if systematic:
            if indices == tuple(range(self.k)):
                return blocks  # data verbatim: the systematic fast path
            matrix = _eval_matrix(
                self.field, xs, tuple(self.points[: self.k])
            )
            return [self._combine_blocks(row, blocks) for row in matrix]
        basis = _lagrange_basis(self.field, xs)
        # coefficient i of the interpolant: XOR_j basis[j][i] * y_j
        return [
            self._combine_blocks([basis[j][i] for j in range(self.k)], blocks)
            for i in range(self.k)
        ]

    def _probe(self) -> "ReedSolomon":
        """A same-geometry instance for scalar sub-decodes whose work
        should not double-count on this instance's counter."""
        if self._scalar_probe is None:
            self._scalar_probe = ReedSolomon(self.k, self.m, field=self.field)
        return self._scalar_probe

    def _fold_cached(self, block: bytes) -> int:
        value = self._fold_cache.get(block)
        if value is None:
            if len(self._fold_cache) >= 4096:
                self._fold_cache.clear()
            value = self._fold(block)
            self._fold_cache[block] = value
        return value

    def _fold(self, block: bytes) -> int:
        """Collapse a fragment block to one scalar: the block's stripe
        polynomial evaluated at ``alpha`` (GF-linear, so a codeword of
        blocks folds to a codeword of scalars)."""
        f = self.field
        size, poly = f.size, f.primitive_poly
        acc = 0
        if f.sym_bytes == 1:
            for s in block:
                acc <<= 1
                if acc & size:
                    acc ^= poly
                acc ^= s
        else:
            for i in range(0, len(block), 2):
                acc <<= 1
                if acc & size:
                    acc ^= poly
                acc ^= (block[i] << 8) | block[i + 1]
        return acc

    def decode_errors_blocks(
        self,
        fragments,
        original_length: int,
        *,
        systematic: bool = False,
    ) -> bytes:
        """Reconstruct a byte payload from fragment blocks containing up
        to ``(r - k) // 2`` corrupted blocks (``r`` = distinct fragments).

        Fast path: every block folds to one scalar (evaluation at
        ``alpha``); the scalar word is Gao-decoded to *locate* corrupted
        fragments, the survivors erasure-decode at block speed, and the
        result is verified by re-encoding at every received index.  A
        corruption pattern that hides from the fold (possible only if the
        per-fragment error polynomial has ``alpha`` as a root) fails
        verification and falls back to the per-stripe reference decoder,
        so correctness never depends on the fold.
        """
        unique = self._unique_blocks(fragments)
        r = len(unique)
        if r < self.k:
            raise DecodingFailure(f"need at least k={self.k} fragments, got {r}")
        budget = (r - self.k) // 2
        if not next(iter(unique.values())):
            return b""
        stripes = len(next(iter(unique.values()))) // self.field.sym_bytes
        self.work_counter += r * r * max(stripes, 1)
        shards = self._locate_and_decode(unique, budget)
        if shards is None:
            shards = self._decode_errors_per_stripe(unique, budget)
        if systematic:
            # Systematic payloads are the polynomial's values at the
            # first k points, not its coefficients.
            shards = [self._eval_block(shards, x) for x in self.points[: self.k]]
        return self._merge_shards(shards, original_length)

    def _locate_and_decode(
        self, unique: Mapping[int, bytes], budget: int
    ) -> Optional[list[bytes]]:
        """Fold-locate-verify fast path; ``None`` means fall back."""
        f = self.field
        folded = {idx: self._fold_cached(block) for idx, block in unique.items()}
        probe = self._probe()
        try:
            folded_data = probe._decode_errors_scalars(folded)
        except DecodingFailure:
            return None
        bad = {
            idx
            for idx, v in folded.items()
            if f.poly_eval(folded_data, self.points[idx]) != v
        }
        if len(bad) > budget or len(unique) - len(bad) < self.k:
            return None
        good = [(i, b) for i, b in unique.items() if i not in bad][: self.k]
        shards = self._shards_from_blocks(good, systematic=False)
        # Full verification: the decoded word must disagree with at most
        # `budget` received fragments (the reference decoder's check).
        errors = 0
        for idx, block in unique.items():
            if self._eval_block(shards, self.points[idx]) != block:
                errors += 1
                if errors > budget:
                    return None
        return shards

    def _decode_errors_per_stripe(
        self, unique: Mapping[int, bytes], budget: int
    ) -> list[bytes]:
        """Reference fallback: scalar Gao decoding, one stripe at a time.

        Always correct; only reached for corruption patterns the fold
        cannot see (or fold decodes beyond budget), so the slow path is
        adversarial-corner-case territory, not the common case.
        """
        f = self.field
        sb = f.sym_bytes
        blen = len(next(iter(unique.values())))
        symbol_lists = {i: f.block_to_symbols(b) for i, b in unique.items()}
        shard_symbols: list[list[int]] = [[] for _ in range(self.k)]
        probe = self._probe()
        work_before = probe.work_counter
        for s in range(blen // sb):
            received = {i: syms[s] for i, syms in symbol_lists.items()}
            data = probe._decode_errors_scalars(received)
            for i in range(self.k):
                shard_symbols[i].append(data[i])
        self.work_counter += probe.work_counter - work_before
        return [f.symbols_to_block(syms) for syms in shard_symbols]
