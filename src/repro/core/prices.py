"""The Swiper ticket-assignment family ``t(s, k)`` (paper, Section 3.1).

Swiper restricts its search to assignments of the form
``t_i = floor(s * w_i + c)`` where parties "on the border" (those for which
``s * w_i + c`` is an integer) may each give back one ticket, all but a
deterministically chosen ``k`` of them.

The crucial observation of the paper is that this two-index family is
*totally ordered* by its total ticket count ``T(s, k)``, each member having
exactly one more ticket than the previous one.  An equivalent and
computationally convenient formulation: give party ``i`` an unbounded list
of *ticket prices* ``(m - c) / w_i`` for ``m = 1, 2, ...``; the family
member with total ``T0`` hands out the ``T0`` globally cheapest tickets
(ties broken deterministically by party index, which realizes the
"arbitrary yet deterministically chosen" border set ``K_{s,k}``).

Proof of equivalence: ``floor(s*w_i + c) >= m  <=>  (m - c)/w_i <= s``, so
the tickets priced at most ``s`` are exactly the tickets of the full floor
assignment at scale ``s``; tickets priced exactly ``s`` belong to the
border set ``B_s``.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Sequence

__all__ = [
    "PriceStream",
    "assignment_for_total",
    "total_at_scale",
    "scale_for_total",
    "ticket_price",
]


def ticket_price(weight: Fraction, c: Fraction, m: int) -> Fraction:
    """Price of the ``m``-th ticket of a party with ``weight`` (``m >= 1``).

    The party holds at least ``m`` tickets in the floor assignment at scale
    ``s`` iff ``s >= (m - c) / weight``.
    """
    if weight <= 0:
        raise ValueError("zero-weight parties have no ticket prices")
    if m < 1:
        raise ValueError("ticket index m starts at 1")
    return (m - c) / weight


class PriceStream:
    """Memoized prefix of the globally-cheapest ticket sequence for one
    ``(weights, c)`` pair.

    The solver's binary search probes the family at many different
    totals; recomputing each probe from scratch repeats the same heap
    pops (``O(probes * T * log n)`` exact-Fraction divisions on the
    hottest path).  A stream pops each ticket *once*, caching the party
    index of the ``k``-th cheapest ticket, so a probe at total ``T``
    costs only the extension beyond the deepest total seen so far --
    across a whole binary search, ``O(T_max * log n)`` total.

    Picks are bitwise-identical to :func:`assignment_for_total` (same
    heap, same deterministic tie-break by party index).
    """

    def __init__(self, weights: Sequence[Fraction], c: Fraction) -> None:
        self._weights = weights
        self._c = c
        # Heap entries: (price, party index, next ticket ordinal m).
        # Tuple comparison on exact Fractions breaks ties by party index,
        # giving the deterministic border-set choice the paper requires.
        self._heap: list[tuple[Fraction, int, int]] = [
            ((1 - c) / w, i, 1) for i, w in enumerate(weights) if w > 0
        ]
        if not self._heap:
            raise ValueError("total weight W must be non-zero")
        heapq.heapify(self._heap)
        #: party index of the k-th cheapest ticket, extended on demand
        self._picks: list[int] = []
        #: price of the k-th cheapest ticket (parallel to ``_picks``); kept
        #: so a later epoch can merge this prefix with a handful of changed
        #: parties' ladders instead of re-popping the whole heap
        self._pick_prices: list[Fraction] = []
        #: patched-stream chain length above this stream (0 for a plain one)
        self._chain = 0

    @property
    def weights(self) -> tuple[Fraction, ...]:
        return tuple(self._weights)

    @property
    def rounding_constant(self) -> Fraction:
        return self._c

    @property
    def depth(self) -> int:
        """Number of cheapest-ticket picks memoized so far."""
        return len(self._picks)

    def _extend(self, total: int) -> None:
        heap, picks, c, weights = self._heap, self._picks, self._c, self._weights
        prices = self._pick_prices
        while len(picks) < total:
            price, i, m = heapq.heappop(heap)
            picks.append(i)
            prices.append(price)
            heapq.heappush(heap, ((m + 1 - c) / weights[i], i, m + 1))

    def assignment(self, total: int) -> list[int]:
        """The unique family member with exactly ``total`` tickets."""
        if total < 0:
            raise ValueError("total must be non-negative")
        self._extend(total)
        tickets = [0] * len(self._weights)
        for i in self._picks[:total]:
            tickets[i] += 1
        return tickets

    def sparse_counts(self, total: int) -> tuple[list[int], list[int]]:
        """``assignment(total)`` in sparse form: ascending holder indices
        and their positive ticket counts.  ``O(total)`` instead of
        ``O(n + total)`` -- the per-probe win for large committees."""
        if total < 0:
            raise ValueError("total must be non-negative")
        self._extend(total)
        counts: dict[int, int] = {}
        for i in self._picks[:total]:
            counts[i] = counts.get(i, 0) + 1
        indices = sorted(counts)
        return indices, [counts[i] for i in indices]

    def patched(self, new_weights: Sequence[Fraction]) -> "PriceStream":
        """A stream for ``(new_weights, c)`` that reuses this stream's
        memoized picks.

        Only the *changed* parties' price ladders are re-heaped; unchanged
        parties' picks are replayed from this stream's prefix in their
        original (already sorted) order and merged by exact price
        comparison.  The merged pick sequence is bitwise-identical to a
        fresh ``PriceStream(new_weights, c)`` because both enumerate the
        same set of ``(price, party)`` keys in the same total order.

        ``new_weights`` may extend the base vector (joining parties) but
        not shrink it, and at least one positive-weight party must be
        unchanged (otherwise there is nothing to reuse -- build a fresh
        stream instead).
        """
        return _PatchedPriceStream(self, new_weights)

    def compact(self) -> "PriceStream":
        """A plain stream with the same memoized prefix and future picks.

        Flattens a (possibly patched) stream in ``O(depth + n)`` so that
        epoch-over-epoch patching never chains through old base streams.
        """
        s = PriceStream.__new__(PriceStream)
        s._weights = self._weights
        s._c = self._c
        s._picks = list(self._picks)
        s._pick_prices = list(self._pick_prices)
        next_m = [1] * len(self._weights)
        for i in s._picks:
            next_m[i] += 1
        s._heap = [
            ((next_m[i] - self._c) / w, i, next_m[i])
            for i, w in enumerate(self._weights)
            if w > 0
        ]
        heapq.heapify(s._heap)
        s._chain = 0
        return s


class _PatchedPriceStream(PriceStream):
    """Lazy merge of a base stream's pick prefix with changed parties'
    fresh price ladders (see :meth:`PriceStream.patched`)."""

    #: how many extra picks to materialize on the base stream at a time
    #: when the merge runs past its memoized prefix
    _BASE_CHUNK = 256

    def __init__(self, base: PriceStream, new_weights: Sequence[Fraction]) -> None:
        old = base._weights
        if len(new_weights) < len(old):
            raise ValueError(
                "patched stream cannot shrink the party set; build a fresh "
                "PriceStream instead"
            )
        changed = {
            i
            for i in range(len(new_weights))
            if i >= len(old) or new_weights[i] != old[i]
        }
        if not any(
            old[i] > 0 and i not in changed for i in range(len(old))
        ):
            raise ValueError(
                "patched stream needs at least one unchanged positive-weight "
                "party; build a fresh PriceStream instead"
            )
        self._weights = list(new_weights)
        self._c = base._c
        self._base = base
        self._changed = changed
        c = self._c
        self._changed_heap: list[tuple[Fraction, int, int]] = [
            ((1 - c) / new_weights[i], i, 1)
            for i in sorted(changed)
            if new_weights[i] > 0
        ]
        heapq.heapify(self._changed_heap)
        self._base_ptr = 0
        self._picks = []
        self._pick_prices = []
        self._heap = []  # unused; extension goes through the merge
        self._chain = base._chain + 1

    def _extend(self, total: int) -> None:
        base, changed = self._base, self._changed
        base_picks, base_prices = base._picks, base._pick_prices
        heap = self._changed_heap
        picks, prices = self._picks, self._pick_prices
        c, weights = self._c, self._weights
        ptr = self._base_ptr
        while len(picks) < total:
            # Next unchanged pick from the base prefix (skipping picks that
            # belonged to now-changed parties), extending the base on demand.
            while True:
                if ptr >= len(base_picks):
                    base._extend(len(base_picks) + self._BASE_CHUNK)
                bi = base_picks[ptr]
                if bi in changed:
                    ptr += 1
                    continue
                break
            bp = base_prices[ptr]
            if heap and (heap[0][0], heap[0][1]) < (bp, bi):
                price, i, m = heapq.heappop(heap)
                picks.append(i)
                prices.append(price)
                heapq.heappush(heap, ((m + 1 - c) / weights[i], i, m + 1))
            else:
                picks.append(bi)
                prices.append(bp)
                ptr += 1
        self._base_ptr = ptr


def assignment_for_total(
    weights: Sequence[Fraction], c: Fraction, total: int
) -> list[int]:
    """The unique family member with exactly ``total`` tickets.

    Selects the ``total`` globally cheapest ticket prices using an exact
    rational heap.  Runs in ``O(total * log n)`` exact-arithmetic steps.
    Zero-weight parties never receive tickets (their prices are infinite).
    One-shot form of :class:`PriceStream`; repeated probes over the same
    ``(weights, c)`` should share a stream instead.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return [0] * len(weights)
    return PriceStream(weights, c).assignment(total)


def total_at_scale(weights: Sequence[Fraction], c: Fraction, s: Fraction) -> int:
    """Total tickets of the *full* floor assignment at scale ``s``:
    ``sum_i floor(s * w_i + c)`` (i.e. ``T(s, |B_s|)``)."""
    if s < 0:
        raise ValueError("scale s must be non-negative")
    total = 0
    for w in weights:
        if w > 0:
            val = s * w + c
            total += val.numerator // val.denominator
    return total


def scale_for_total(
    weights: Sequence[Fraction], c: Fraction, total: int
) -> Fraction:
    """The smallest scale ``s`` whose full floor assignment reaches
    ``total`` tickets -- i.e. the price of the ``total``-th cheapest ticket.

    Provided for introspection and tests; the solver itself works directly
    in "total tickets" space via :func:`assignment_for_total`.
    """
    if total < 1:
        raise ValueError("total must be >= 1 to define a positive scale")
    heap: list[tuple[Fraction, int, int]] = []
    for i, w in enumerate(weights):
        if w > 0:
            heap.append(((1 - c) / w, i, 1))
    if not heap:
        raise ValueError("total weight W must be non-zero")
    heapq.heapify(heap)
    price = heap[0][0]
    for _ in range(total):
        price, i, m = heapq.heappop(heap)
        heapq.heappush(heap, ((m + 1 - c) / weights[i], i, m + 1))
    return price
