"""Core weight-reduction machinery: problems, bounds, the Swiper solver,
validity checkers, and exact reference solvers (paper, Sections 2-3)."""

from .bounds import (
    wq_bound_value,
    wq_ticket_bound,
    wr_bound_value,
    wr_ticket_bound,
    ws_bound_value,
    ws_ticket_bound,
)
from .exact import brute_force_valid, solve_exact_milp, solve_family_optimal
from .prices import assignment_for_total, scale_for_total, ticket_price, total_at_scale
from .problems import (
    WeightQualification,
    WeightReductionProblem,
    WeightRestriction,
    WeightSeparation,
)
from .solver import Swiper, SwiperResult, is_valid_assignment, solve, solve_with_constant
from .types import Number, TicketAssignment, as_fraction, normalize_weights
from .verify import CheckStats, RestrictionChecker, SeparationChecker, Verdict, make_checker

__all__ = [
    "WeightRestriction",
    "WeightQualification",
    "WeightSeparation",
    "WeightReductionProblem",
    "Swiper",
    "SwiperResult",
    "solve",
    "solve_with_constant",
    "is_valid_assignment",
    "TicketAssignment",
    "Number",
    "as_fraction",
    "normalize_weights",
    "Verdict",
    "CheckStats",
    "RestrictionChecker",
    "SeparationChecker",
    "make_checker",
    "assignment_for_total",
    "total_at_scale",
    "scale_for_total",
    "ticket_price",
    "brute_force_valid",
    "solve_family_optimal",
    "solve_exact_milp",
    "wr_bound_value",
    "wq_bound_value",
    "ws_bound_value",
    "wr_ticket_bound",
    "wq_ticket_bound",
    "ws_ticket_bound",
]

#: facade names reachable through this module for compatibility; the
#: canonical home is :mod:`repro.api`
_API_SHIMS = (
    "Committee",
    "CommitteeValidationError",
    "WeightSource",
    "SolverPolicy",
    "TicketAssignmentResult",
    "solve_with_policy",
    "register_policy",
)


def __getattr__(name: str):
    """Thin deprecation shim: the committee-centric facade consolidated
    the public entry points under :mod:`repro.api`; resolving them
    through ``repro.core`` still works but warns."""
    if name in _API_SHIMS:
        import warnings

        from .. import api

        warnings.warn(
            f"importing {name!r} from repro.core is deprecated; "
            f"use repro.api.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
