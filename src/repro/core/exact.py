"""Exact and reference solvers used for cross-validation and gap studies.

Three tools, all exponential-ish and meant for small instances:

* :func:`brute_force_valid` -- decide viability of an assignment straight
  from the problem definitions by enumerating all ``2^n`` subsets.  This is
  the ground-truth oracle the property tests compare every other checker
  against.
* :func:`solve_family_optimal` -- the *globally* minimal valid member of
  the Swiper ticket family, found by a linear scan.  Swiper proper returns
  a *local* minimum; the difference quantifies the cost of binary search.
* :func:`solve_exact_milp` -- the true optimum over *all* integer
  assignments via the mixed-integer formulation of Appendix B, linearized
  as ``q * t(S) - p * T <= -1`` for every weight-feasible subset ``S``
  (``alpha_n = p / q``), solved with scipy's HiGHS backend.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .prices import assignment_for_total
from .problems import (
    WeightQualification,
    WeightReductionProblem,
    WeightRestriction,
    WeightSeparation,
)
from .types import Number, TicketAssignment, normalize_weights

__all__ = [
    "brute_force_valid",
    "solve_family_optimal",
    "solve_exact_milp",
    "enumerate_feasible_subsets",
]

_BRUTE_FORCE_LIMIT = 20
_MILP_LIMIT = 16


def _subset_sums(values: Sequence, n: int) -> list:
    """Sum of ``values`` over every bitmask subset of ``[n]`` (index = mask)."""
    zero = Fraction(0) if values and isinstance(values[0], Fraction) else 0
    sums = [zero] * (1 << n)
    for mask in range(1, 1 << n):
        low = mask & (-mask)
        sums[mask] = sums[mask ^ low] + values[low.bit_length() - 1]
    return sums


def brute_force_valid(
    problem: WeightReductionProblem,
    weights: Iterable[Number],
    tickets: Sequence[int] | TicketAssignment,
) -> bool:
    """Ground-truth viability straight from Problems 1-3 (``n <= 20``).

    WQ is checked against its *own* definition (not the WR reduction), so
    the Theorem 2.2 equivalence itself is testable against this oracle.
    """
    ws = normalize_weights(weights)
    ts = [int(t) for t in tickets]
    n = len(ws)
    if len(ts) != n:
        raise ValueError("tickets and weights must have equal length")
    if n > _BRUTE_FORCE_LIMIT:
        raise ValueError(f"brute force limited to n <= {_BRUTE_FORCE_LIMIT}")
    total_w = sum(ws, start=Fraction(0))
    total_t = sum(ts)
    if total_t <= 0:
        return False
    w_sums = _subset_sums(ws, n)
    t_sums = _subset_sums(ts, n)

    if isinstance(problem, WeightRestriction):
        cap_w = problem.alpha_w * total_w
        cap_t = problem.alpha_n * total_t
        return all(
            t_sums[m] < cap_t for m in range(1 << n) if w_sums[m] < cap_w
        )
    if isinstance(problem, WeightQualification):
        floor_w = problem.beta_w * total_w
        floor_t = problem.beta_n * total_t
        return all(
            t_sums[m] > floor_t for m in range(1 << n) if w_sums[m] > floor_w
        )
    if isinstance(problem, WeightSeparation):
        cap_w = problem.alpha * total_w
        floor_w = problem.beta * total_w
        max_low = max(
            (t_sums[m] for m in range(1 << n) if w_sums[m] < cap_w), default=None
        )
        min_high = min(
            (t_sums[m] for m in range(1 << n) if w_sums[m] > floor_w), default=None
        )
        if max_low is None or min_high is None:
            return True
        return max_low < min_high
    raise TypeError(f"unknown weight reduction problem: {problem!r}")


def solve_family_optimal(
    problem: WeightReductionProblem,
    weights: Iterable[Number],
) -> TicketAssignment:
    """Globally minimal valid member of the Swiper family (linear scan).

    Scans totals ``1 .. ticket_bound`` and returns the first brute-force
    valid assignment; intended for small ``n`` (uses the exact oracle).
    """
    ws = normalize_weights(weights)
    n = len(ws)
    effective = (
        problem.to_restriction()
        if isinstance(problem, WeightQualification)
        else problem
    )
    c = effective.rounding_constant
    bound = problem.ticket_bound(n)
    for total in range(1, bound + 1):
        tickets = assignment_for_total(ws, c, total)
        if brute_force_valid(problem, ws, tickets):
            return TicketAssignment(tuple(tickets))
    # Theorems 2.1 / 2.4 guarantee the bound itself is valid.
    raise AssertionError(
        "no valid family member within the theorem bound -- theory violated"
    )


def enumerate_feasible_subsets(
    weights: Sequence[Fraction], capacity: Fraction, *, maximal_only: bool = True
) -> list[tuple[int, ...]]:
    """All subsets with ``w(S) < capacity``, optionally only the
    inclusion-maximal ones (sufficient for the MILP constraints because
    tickets are non-negative: ``t(S) <= t(S')`` whenever ``S subset S'``)."""
    n = len(weights)
    feasible_masks = []
    w_sums = _subset_sums(list(weights), n)
    for mask in range(1 << n):
        if w_sums[mask] < capacity:
            feasible_masks.append(mask)
    if maximal_only:
        feasible_set = set(feasible_masks)
        feasible_masks = [
            m
            for m in feasible_masks
            if not any(
                (m | (1 << i)) in feasible_set
                for i in range(n)
                if not m & (1 << i)
            )
        ]
    return [
        tuple(i for i in range(n) if mask & (1 << i)) for mask in feasible_masks
    ]


def solve_exact_milp(
    problem: WeightReductionProblem,
    weights: Iterable[Number],
    *,
    ticket_cap: Optional[int] = None,
) -> TicketAssignment:
    """True minimum-``T`` assignment via MILP (Appendix B), ``n <= 16``.

    For WR with ``alpha_n = p / q`` the strict constraint
    ``t(S) < alpha_n * T`` over integers is exactly
    ``q * t(S) - p * T <= -1``; one such row per inclusion-maximal
    weight-feasible subset.  WQ is solved through the Theorem 2.2
    reduction.  WS adds a row ``t(S1) - t(S2) <= -1`` per (maximal
    low-side, minimal high-side) pair.
    """
    ws = normalize_weights(weights)
    n = len(ws)
    if n > _MILP_LIMIT:
        raise ValueError(f"MILP solver limited to n <= {_MILP_LIMIT}")
    if isinstance(problem, WeightQualification):
        reduced = problem.to_restriction()
        result = solve_exact_milp(reduced, ws, ticket_cap=ticket_cap)
        return result
    total_w = sum(ws, start=Fraction(0))
    cap = ticket_cap if ticket_cap is not None else problem.ticket_bound(n)

    rows: list[np.ndarray] = []
    uppers: list[float] = []
    if isinstance(problem, WeightRestriction):
        p, q = problem.alpha_n.numerator, problem.alpha_n.denominator
        subsets = enumerate_feasible_subsets(ws, problem.alpha_w * total_w)
        for subset in subsets:
            row = np.full(n, -p, dtype=float)
            for i in subset:
                row[i] += q
            rows.append(row)
            uppers.append(-1.0)
    elif isinstance(problem, WeightSeparation):
        low_sets = enumerate_feasible_subsets(ws, problem.alpha * total_w)
        # High-side sets: w(S) > beta * W; minimal ones via complements of
        # maximal sets with w(S^c) < (1 - beta) * W.
        high_complements = enumerate_feasible_subsets(ws, (1 - problem.beta) * total_w)
        high_sets = [
            tuple(i for i in range(n) if i not in set(comp))
            for comp in high_complements
        ]
        for s1 in low_sets:
            for s2 in high_sets:
                row = np.zeros(n, dtype=float)
                for i in s1:
                    row[i] += 1
                for i in s2:
                    row[i] -= 1
                rows.append(row)
                uppers.append(-1.0)
    else:
        raise TypeError(f"unknown weight reduction problem: {problem!r}")

    # Viability demands at least one ticket overall.
    rows.append(np.full(n, -1.0))
    uppers.append(-1.0)

    a_matrix = np.vstack(rows)
    constraint = LinearConstraint(a_matrix, ub=np.array(uppers))
    res = milp(
        c=np.ones(n),
        constraints=[constraint],
        integrality=np.ones(n),
        bounds=Bounds(lb=0, ub=cap),
    )
    if not res.success:
        raise RuntimeError(f"MILP failed: {res.message}")
    tickets = tuple(int(round(x)) for x in res.x)
    return TicketAssignment(tickets)
