"""Knapsack machinery backing the validity checks (paper, Section 3.1).

Verifying a Swiper ticket assignment is a Knapsack instance: "does some
subset of weight strictly below a capacity collect at least a target number
of tickets?".  The paper solves it with *dynamic programming by profits*
([Kellerer-Pferschy-Pisinger, Lemma 2.3.2], ``O(n * T)``) and filters most
invocations out with quasilinear lower/upper bounds.

This module provides three tiers, all decided *soundly*:

1. exact big-integer DP on weights scaled by their common denominator
   (the oracle; used directly for small instances and as a fallback);
2. vectorized numpy DP on weights scaled to ``2**40`` relative precision,
   run twice -- once with weights rounded *down* (enlarges the feasible
   family: a "no" here is a certified no) and once rounded *up* (shrinks
   it: a "yes" here is a certified yes); disagreements fall back to (1);
3. quasilinear greedy bounds: the fractional (LP) relaxation as an upper
   bound and an integral greedy + best-single-item value as an achievable
   lower bound.  These implement the paper's conservative/liberal quick
   checks.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "strict_cap_int",
    "scale_weights_exact",
    "scale_weights_rounded",
    "min_weight_for_profit",
    "max_profit_under",
    "min_weight_for_profit_numpy",
    "max_profit_under_numpy",
    "fractional_upper_bound",
    "greedy_lower_bound",
    "SCALE_BITS",
]

#: Relative precision (bits) of the rounded integer scaling used by the
#: numpy DP tier.  2**40 leaves ample headroom in int64 accumulators.
SCALE_BITS = 40

_INT64_INF = np.int64(1) << np.int64(62)


def strict_cap_int(capacity: Fraction) -> int:
    """Largest integer strictly below ``capacity`` (``-1`` if none >= 0).

    Integer subset weights satisfy ``w(S) < capacity`` iff
    ``w(S) <= strict_cap_int(capacity)``.
    """
    if capacity <= 0:
        return -1
    p, q = capacity.numerator, capacity.denominator
    return (p - 1) // q


def scale_weights_exact(weights: Sequence[Fraction]) -> tuple[list[int], int]:
    """Scale rational weights to exact integers.

    Returns ``(int_weights, denominator)`` where
    ``int_weights[i] == weights[i] * denominator`` exactly, with
    ``denominator`` the LCM of all weight denominators.
    """
    denom = 1
    for w in weights:
        denom = denom * w.denominator // math.gcd(denom, w.denominator)
    return [int(w * denom) for w in weights], denom


def scale_weights_rounded(
    weights: Sequence[Fraction], total: Fraction, *, round_up: bool
) -> np.ndarray:
    """Scale weights to ``w_i * 2**SCALE_BITS / total`` rounded to int64.

    ``round_up=False`` rounds down (never overstates a subset's weight, so
    every truly feasible subset stays feasible); ``round_up=True`` rounds
    up (every subset feasible after scaling is truly feasible).
    """
    scale = Fraction(1 << SCALE_BITS) / total
    out = np.empty(len(weights), dtype=np.int64)
    for i, w in enumerate(weights):
        v = w * scale
        if round_up:
            out[i] = -((-v.numerator) // v.denominator)
        else:
            out[i] = v.numerator // v.denominator
    return out


# ---------------------------------------------------------------------------
# Tier 1: exact dynamic programming by profits
# ---------------------------------------------------------------------------


def min_weight_for_profit(
    int_weights: Sequence[int], profits: Sequence[int], target: int
) -> Optional[int]:
    """Minimum total integer weight of a subset with profit >= ``target``.

    Exact DP by profits, ``O(n * target)``; returns ``None`` when even the
    full set falls short of ``target``.  ``target <= 0`` returns ``0`` (the
    empty set).
    """
    if target <= 0:
        return 0
    dp: list[Optional[int]] = [0] + [None] * target
    for w, t in zip(int_weights, profits):
        if t <= 0:
            continue
        for p in range(target, 0, -1):
            src = dp[p - t] if p > t else dp[0]
            if src is not None:
                cand = src + w
                cur = dp[p]
                if cur is None or cand < cur:
                    dp[p] = cand
    return dp[target]


def max_profit_under(
    int_weights: Sequence[int], profits: Sequence[int], cap: int
) -> int:
    """Maximum profit of a subset with total integer weight <= ``cap``.

    Exact DP by profits over the full profit range.  ``cap < 0`` admits no
    subset at all (not even the empty one) and returns ``0`` by convention
    with the understanding that callers treat a negative cap as "vacuous".
    """
    if cap < 0:
        return 0
    total_profit = sum(t for t in profits if t > 0)
    if total_profit == 0:
        return 0
    dp: list[Optional[int]] = [0] + [None] * total_profit
    for w, t in zip(int_weights, profits):
        if t <= 0:
            continue
        for p in range(total_profit, 0, -1):
            src = dp[p - t] if p > t else dp[0]
            if src is not None:
                cand = src + w
                cur = dp[p]
                if cur is None or cand < cur:
                    dp[p] = cand
    best = 0
    for p in range(total_profit, -1, -1):
        if dp[p] is not None and dp[p] <= cap:
            best = p
            break
    return best


# ---------------------------------------------------------------------------
# Tier 2: vectorized numpy DP on rounded integer weights
# ---------------------------------------------------------------------------


def min_weight_for_profit_numpy(
    weights64: np.ndarray, profits: Sequence[int], target: int
) -> Optional[int]:
    """Numpy counterpart of :func:`min_weight_for_profit`.

    ``weights64`` must come from :func:`scale_weights_rounded`; the result
    is in the same scaled units.
    """
    if target <= 0:
        return 0
    dp = np.full(target + 1, _INT64_INF, dtype=np.int64)
    dp[0] = 0
    shifted = np.empty_like(dp)
    for w, t in zip(weights64.tolist(), profits):
        if t <= 0:
            continue
        if t >= target:
            # Taking this item alone reaches the target from dp[0].
            if w < dp[target]:
                dp[target] = w
            continue
        shifted[:t] = dp[0] + w
        shifted[t:] = dp[:-t] + w
        np.minimum(dp, shifted, out=dp)
    result = int(dp[target])
    return None if result >= int(_INT64_INF) else result


def max_profit_under_numpy(
    weights64: np.ndarray, profits: Sequence[int], cap: int
) -> int:
    """Numpy counterpart of :func:`max_profit_under` (scaled units)."""
    if cap < 0:
        return 0
    total_profit = sum(t for t in profits if t > 0)
    if total_profit == 0:
        return 0
    dp = np.full(total_profit + 1, _INT64_INF, dtype=np.int64)
    dp[0] = 0
    shifted = np.empty_like(dp)
    for w, t in zip(weights64.tolist(), profits):
        if t <= 0:
            continue
        shifted[:t] = dp[0] + w
        shifted[t:] = dp[:-t] + w
        np.minimum(dp, shifted, out=dp)
    feasible = np.nonzero(dp <= np.int64(cap))[0]
    return int(feasible[-1]) if feasible.size else 0


# ---------------------------------------------------------------------------
# Tier 3: quasilinear greedy bounds (the paper's quick checks)
# ---------------------------------------------------------------------------


def _density_order(
    weights: Sequence[Fraction], profits: Sequence[int]
) -> list[int]:
    """Indices of profit-bearing items by non-increasing profit density."""
    items = [i for i, t in enumerate(profits) if t > 0]
    # Zero-weight profit-bearing items get infinite density; sort first by
    # the zero-weight flag then by exact rational density.
    return sorted(
        items,
        key=lambda i: (
            0 if weights[i] == 0 else 1,
            -Fraction(profits[i], 1) / weights[i] if weights[i] > 0 else 0,
        ),
    )


def fractional_upper_bound(
    weights: Sequence[Fraction], profits: Sequence[int], capacity: Fraction
) -> Fraction:
    """LP-relaxation value: an upper bound on the strict-capacity optimum.

    Fills items in density order, taking a fractional piece of the first
    item that no longer fits.  Computed with closed capacity, which only
    weakens (never invalidates) the bound for the strict problem.
    """
    if capacity <= 0:
        return Fraction(0)
    value = Fraction(0)
    remaining = capacity
    for i in _density_order(weights, profits):
        w, t = weights[i], profits[i]
        if w == 0:
            value += t
            continue
        if w <= remaining:
            value += t
            remaining -= w
        else:
            value += Fraction(t) * remaining / w
            break
    return value


def greedy_lower_bound(
    weights: Sequence[Fraction], profits: Sequence[int], capacity: Fraction
) -> int:
    """An *achievable* profit under the strict capacity.

    Classic half-approximation: max of the density-greedy packing and the
    best single feasible item.  Every value returned is realized by an
    actual subset with ``w(S) < capacity``.
    """
    if capacity <= 0:
        return 0
    packed = 0
    cum = Fraction(0)
    best_single = 0
    for i in _density_order(weights, profits):
        w, t = weights[i], profits[i]
        if cum + w < capacity:
            packed += t
            cum += w
        if w < capacity and t > best_single:
            best_single = t
    return max(packed, best_single)
