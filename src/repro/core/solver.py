"""Swiper: the approximate solver for weight reduction problems (Section 3).

The solver searches the totally-ordered ticket-assignment family of
:mod:`repro.core.prices` with a binary search on the total ticket count,
maintaining the invariant "low end invalid, high end valid".  The high
anchor is the theorem bound: Appendix A proves every *invalid* family
member has strictly fewer tickets than the bound, hence every family member
at or above the bound is valid and never needs to be checked.  The search
therefore terminates at a *local minimum* of the family -- an assignment
that is valid while its immediate predecessor is not -- exactly the object
the paper's Swiper returns.

Two modes mirror the prototype:

* ``mode="full"``: quick test first, knapsack DP on "uncertain"
  (``~O(n^2)`` worst case, locally minimal result);
* ``mode="linear"``: quick test only (``~O(n)``); guaranteed valid and
  within the bounds, possibly slightly more tickets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from .prices import PriceStream
from .problems import (
    WeightQualification,
    WeightReductionProblem,
    WeightRestriction,
    WeightSeparation,
)
from .types import Number, TicketAssignment, normalize_weights
from .verify import CheckStats, make_checker

__all__ = ["Swiper", "SwiperResult", "solve", "is_valid_assignment"]


@dataclass(frozen=True)
class SwiperResult:
    """Outcome of a Swiper solve.

    Attributes
    ----------
    problem:
        The weight reduction problem that was solved.
    assignment:
        The locally minimal (full mode) or bound-respecting (linear mode)
        ticket assignment found.
    ticket_bound:
        The theoretical upper bound used as the binary-search anchor.
    mode:
        ``"full"`` or ``"linear"``.
    stats:
        Checker work counters (quick-test verdicts, DP calls, fallbacks).
    probes:
        Number of family members the binary search examined.
    elapsed_seconds:
        Wall-clock duration of the solve.
    """

    problem: WeightReductionProblem
    assignment: TicketAssignment
    ticket_bound: int
    mode: str
    stats: CheckStats
    probes: int
    elapsed_seconds: float

    @property
    def total_tickets(self) -> int:
        """``T``: total tickets allocated (Table 2's headline metric)."""
        return self.assignment.total

    @property
    def max_tickets(self) -> int:
        """Largest per-party allocation (Figure 1's middle row)."""
        return self.assignment.max_tickets

    @property
    def holders(self) -> int:
        """Parties with at least one ticket (Figure 1's bottom row)."""
        return self.assignment.holders


class Swiper:
    """Deterministic approximate solver for WR / WQ / WS.

    Parameters
    ----------
    mode:
        ``"full"`` (default) or ``"linear"`` -- see module docstring.
    use_quick_test:
        Full mode only: disable to force the DP on every probe (used by the
        quick-test ablation benchmark; results are identical, just slower).
    """

    def __init__(self, mode: str = "full", *, use_quick_test: bool = True) -> None:
        if mode not in ("full", "linear"):
            raise ValueError(f"mode must be 'full' or 'linear', got {mode!r}")
        self.mode = mode
        self.use_quick_test = use_quick_test

    def solve(
        self,
        problem: WeightReductionProblem,
        weights: Iterable[Number],
        *,
        stream: Optional[PriceStream] = None,
        sparse: bool = False,
        checker=None,
        total_weight=None,
    ) -> SwiperResult:
        """Solve ``problem`` on ``weights``; deterministic for fixed input.

        Determinism is the property that lets every party of a distributed
        system run the solver locally and agree on the ticket assignment
        without any extra protocol (paper, Section 3 "Determinism").

        ``stream`` injects a pre-built (e.g. patched, see
        :meth:`PriceStream.patched`) price stream for these exact weights;
        ``sparse`` probes the checker through its holder-only entry point;
        ``checker`` injects a pre-built fresh checker for these weights and
        this problem/mode (``total_weight`` likewise short-circuits the
        exact W sum inside a solver-built checker).  All are pure
        accelerations: the probe sequence, every verdict, and the final
        assignment are identical to the default path.
        """
        start = time.perf_counter()
        ws = normalize_weights(weights)
        n = len(ws)
        effective = (
            problem.to_restriction()
            if isinstance(problem, WeightQualification)
            else problem
        )
        c = effective.rounding_constant
        bound = problem.ticket_bound(n)
        if checker is None:
            checker = make_checker(
                effective,
                ws,
                use_quick_test=self.use_quick_test,
                linear_mode=(self.mode == "linear"),
                total_weight=total_weight,
            )
        elif (
            checker.problem != effective
            or checker.use_quick_test != self.use_quick_test
            or checker.linear_mode != (self.mode == "linear")
            or checker.ctx.weights != tuple(ws)
            or checker.stats.checks
        ):
            raise ValueError(
                "injected checker must be fresh and built for these exact "
                "weights, this problem, and this solver mode"
            )
        # One memoized price stream serves every probe: the binary search
        # revisits overlapping prefixes of the same cheapest-ticket
        # sequence, so each ticket's exact-Fraction price is computed once.
        if stream is None:
            stream = PriceStream(ws, c)
        elif stream.rounding_constant != c or stream.weights != tuple(ws):
            raise ValueError(
                "injected price stream was built for different weights or "
                "rounding constant"
            )
        use_sparse = sparse and hasattr(checker, "check_sparse")
        # Invariant: family member with total `hi` is valid (members at the
        # theorem bound are valid without checking -- Appendix A), family
        # member with total `lo` is invalid (T = 0 is never viable).
        lo, hi = 0, bound
        probes = 0
        while hi - lo > 1:
            mid = (lo + hi) // 2
            probes += 1
            if use_sparse:
                indices, counts = stream.sparse_counts(mid)
                ok = checker.check_sparse(indices, counts, mid)
            else:
                ok = checker.check(stream.assignment(mid), mid)
            if ok:
                hi = mid
            else:
                lo = mid
        final = TicketAssignment(tuple(stream.assignment(hi)))
        return SwiperResult(
            problem=problem,
            assignment=final,
            ticket_bound=bound,
            mode=self.mode,
            stats=checker.stats,
            probes=probes,
            elapsed_seconds=time.perf_counter() - start,
        )


def solve(
    problem: WeightReductionProblem,
    weights: Iterable[Number],
    *,
    mode: str = "full",
) -> SwiperResult:
    """Convenience one-shot wrapper around :class:`Swiper`."""
    return Swiper(mode=mode).solve(problem, weights)


def solve_with_constant(
    problem: WeightReductionProblem,
    weights: Iterable[Number],
    c: Number,
    *,
    max_doublings: int = 20,
) -> SwiperResult:
    """Solve with an explicit rounding constant ``c`` (ablation support).

    The paper credits the constant ``c`` in ``t_i = floor(s w_i + c)``
    (suggested by Benny Pinkas) with significantly reducing ticket counts;
    the optimal values are those of ``rounding_constant``.  This variant
    lets benchmarks quantify that claim by, e.g., passing ``c = 0``.

    The theorem bounds only hold for the optimal ``c``, so the binary
    search anchor is *verified* here and doubled until valid.
    """
    from .types import as_fraction

    start = time.perf_counter()
    ws = normalize_weights(weights)
    n = len(ws)
    effective = (
        problem.to_restriction()
        if isinstance(problem, WeightQualification)
        else problem
    )
    const = as_fraction(c)
    if not 0 <= const < 1:
        raise ValueError("rounding constant must be in [0, 1)")
    checker = make_checker(effective, ws)
    stream = PriceStream(ws, const)
    hi = problem.ticket_bound(n)
    probes = 0
    for _ in range(max_doublings):
        tickets = stream.assignment(hi)
        probes += 1
        if checker.check(tickets, hi):
            break
        hi *= 2
    else:
        raise RuntimeError("no valid assignment found within doubling budget")
    lo = 0
    while hi - lo > 1:
        mid = (lo + hi) // 2
        tickets = stream.assignment(mid)
        probes += 1
        if checker.check(tickets, mid):
            hi = mid
        else:
            lo = mid
    final = TicketAssignment(tuple(stream.assignment(hi)))
    return SwiperResult(
        problem=problem,
        assignment=final,
        ticket_bound=problem.ticket_bound(n),
        mode="full",
        stats=checker.stats,
        probes=probes,
        elapsed_seconds=time.perf_counter() - start,
    )


def is_valid_assignment(
    problem: WeightReductionProblem,
    weights: Iterable[Number],
    tickets: Sequence[int] | TicketAssignment,
    *,
    use_quick_test: bool = True,
) -> bool:
    """Exact validity of an *arbitrary* assignment for ``problem``.

    Unlike the solver this accepts assignments outside the Swiper family
    (e.g. from the exact MILP solver or hand-crafted ones in tests); the
    decision is always sound and exact.
    """
    ws = normalize_weights(weights)
    ts = list(tickets)
    if len(ts) != len(ws):
        raise ValueError("tickets and weights must have equal length")
    checker = make_checker(problem, ws, use_quick_test=use_quick_test)
    return checker.check(ts)
