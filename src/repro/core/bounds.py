"""Closed-form theorem bounds (Theorems 2.1, 2.4; Corollary 2.3).

Thin functional wrappers over the ``ticket_bound`` methods of the problem
classes, plus the exact rational bound *values* (before the integer
rounding) used by the analysis layer when plotting "bound vs. achieved"
curves.
"""

from __future__ import annotations

from fractions import Fraction

from .problems import WeightQualification, WeightRestriction, WeightSeparation
from .types import Number, as_fraction

__all__ = [
    "wr_bound_value",
    "wq_bound_value",
    "ws_bound_value",
    "wr_ticket_bound",
    "wq_ticket_bound",
    "ws_ticket_bound",
]


def wr_bound_value(alpha_w: Number, alpha_n: Number, n: int) -> Fraction:
    """Exact value ``alpha_w (1 - alpha_w) / (alpha_n - alpha_w) * n``
    whose ceiling is the Theorem 2.1 ticket bound."""
    aw, an = as_fraction(alpha_w), as_fraction(alpha_n)
    if not (0 < aw < an < 1):
        raise ValueError("need 0 < alpha_w < alpha_n < 1")
    return aw * (1 - aw) / (an - aw) * n


def wq_bound_value(beta_w: Number, beta_n: Number, n: int) -> Fraction:
    """Exact value ``beta_w (1 - beta_w) / (beta_w - beta_n) * n``
    whose ceiling is the Corollary 2.3 ticket bound."""
    bw, bn = as_fraction(beta_w), as_fraction(beta_n)
    if not (0 < bn < bw < 1):
        raise ValueError("need 0 < beta_n < beta_w < 1")
    return bw * (1 - bw) / (bw - bn) * n


def ws_bound_value(alpha: Number, beta: Number, n: int) -> Fraction:
    """Exact value ``(alpha + beta)(1 - alpha) / (beta - alpha) * n``
    bounding Weight Separation (Theorem 2.4)."""
    a, b = as_fraction(alpha), as_fraction(beta)
    if not (0 < a < b < 1):
        raise ValueError("need 0 < alpha < beta < 1")
    return (a + b) * (1 - a) / (b - a) * n


def wr_ticket_bound(alpha_w: Number, alpha_n: Number, n: int) -> int:
    """Integer Theorem 2.1 bound (ceiling of :func:`wr_bound_value`)."""
    return WeightRestriction(alpha_w, alpha_n).ticket_bound(n)


def wq_ticket_bound(beta_w: Number, beta_n: Number, n: int) -> int:
    """Integer Corollary 2.3 bound (ceiling of :func:`wq_bound_value`)."""
    return WeightQualification(beta_w, beta_n).ticket_bound(n)


def ws_ticket_bound(alpha: Number, beta: Number, n: int) -> int:
    """Integer Theorem 2.4 bound (ceiling of :func:`ws_bound_value`)."""
    return WeightSeparation(alpha, beta).ticket_bound(n)
