"""Fundamental value types shared by the weight-reduction machinery.

The paper maps large *real* weights ``w_1..w_n`` to small *integer* ticket
counts ``t_1..t_n``.  Everything in :mod:`repro.core` manipulates weights as
exact :class:`fractions.Fraction` values so that the strict inequalities in
the problem definitions (``w(S) < alpha_w * W`` and friends) are decided
without any rounding ambiguity, mirroring the paper's prototype which "uses
the Fraction class to avoid any possible rounding errors" (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Union

Number = Union[int, float, str, Fraction]

__all__ = [
    "Number",
    "as_fraction",
    "normalize_weights",
    "TicketAssignment",
]


def as_fraction(value: Number) -> Fraction:
    """Convert ``value`` to an exact :class:`~fractions.Fraction`.

    Integers, strings (``"1/3"``, ``"0.25"``), :class:`~fractions.Fraction`
    and floats are accepted.  Floats are converted *exactly* (binary
    expansion), which is deterministic and never silently rounds.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("weights and thresholds must be numeric, not bool")
    if isinstance(value, (int, str)):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite value {value!r} is not a weight")
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as an exact rational")


def normalize_weights(weights: Iterable[Number]) -> tuple[Fraction, ...]:
    """Validate and convert a weight sequence to exact fractions.

    Weights must be non-negative and at least one must be positive (the
    paper's problems require ``W != 0``).

    Already-normalized vectors (tuples of :class:`Fraction`) pass through
    unchanged after a cheap validation scan -- callers that re-solve the
    same large vector (the epoch service's incremental path) avoid ``n``
    redundant conversions.
    """
    if (
        isinstance(weights, tuple)
        and weights
        and all(type(w) is Fraction for w in weights)
    ):
        if any(w.numerator < 0 for w in weights):
            for i, w in enumerate(weights):
                if w < 0:
                    raise ValueError(
                        f"weight #{i} is negative ({w}); weights are R>=0"
                    )
        if not any(w.numerator for w in weights):
            raise ValueError("total weight W must be non-zero")
        return weights
    ws = tuple(as_fraction(w) for w in weights)
    if not ws:
        raise ValueError("weight vector must be non-empty")
    for i, w in enumerate(ws):
        if w < 0:
            raise ValueError(f"weight #{i} is negative ({w}); weights are R>=0")
    if not any(ws):
        raise ValueError("total weight W must be non-zero")
    return ws


@dataclass(frozen=True)
class TicketAssignment:
    """An integer ticket assignment ``t_1..t_n`` (the solver's output).

    Instances are immutable value objects.  ``tickets[i]`` is the number of
    tickets given to party ``i``; the paper calls the units of the assigned
    integer weights "tickets".
    """

    tickets: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tickets", tuple(int(t) for t in self.tickets))
        for i, t in enumerate(self.tickets):
            if t < 0:
                raise ValueError(f"ticket count #{i} is negative ({t})")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.tickets)

    def __iter__(self) -> Iterator[int]:
        return iter(self.tickets)

    def __getitem__(self, index: int) -> int:
        return self.tickets[index]

    # -- aggregate metrics used throughout the paper's evaluation -----------
    @property
    def total(self) -> int:
        """``T``: the total number of tickets (the minimized objective)."""
        return sum(self.tickets)

    @property
    def max_tickets(self) -> int:
        """The largest number of tickets held by a single party."""
        return max(self.tickets) if self.tickets else 0

    @property
    def holders(self) -> int:
        """Number of parties holding at least one ticket ("# Holders")."""
        return sum(1 for t in self.tickets if t > 0)

    @property
    def support(self) -> tuple[int, ...]:
        """Indices of parties holding at least one ticket."""
        return tuple(i for i, t in enumerate(self.tickets) if t > 0)

    def subset_total(self, subset: Iterable[int]) -> int:
        """``t(S)``: total tickets held by the parties in ``subset``."""
        return sum(self.tickets[i] for i in subset)

    def to_list(self) -> list[int]:
        """Return the tickets as a plain list (defensive copy)."""
        return list(self.tickets)

    @staticmethod
    def zeros(n: int) -> "TicketAssignment":
        """The all-zero assignment over ``n`` parties (never *viable*)."""
        return TicketAssignment(tickets=(0,) * n)


def weight_of(weights: Sequence[Fraction], subset: Iterable[int]) -> Fraction:
    """``w(S)``: total weight of the parties in ``subset``."""
    return sum((weights[i] for i in subset), start=Fraction(0))
