"""Validity checking of ticket assignments (paper, Section 3.1).

A Weight Restriction assignment is *viable* when ``T >= 1`` and no subset
``S`` with ``w(S) < alpha_w * W`` collects ``t(S) >= ceil(alpha_n * T)``
tickets.  Deciding this is a Knapsack instance; the checkers below layer
the paper's architecture on top of :mod:`repro.core.knapsack`:

* a *quick test* built from quasilinear bounds that answers
  ``VALID`` / ``INVALID`` / ``UNCERTAIN`` (conservative + liberal checks);
* a *full test* that resolves ``UNCERTAIN`` with dynamic programming --
  first the sound two-sided numpy tier, then the exact big-integer tier.

``--linear`` mode (paper terminology) maps ``UNCERTAIN`` to "invalid",
which keeps the solver quasilinear and still never violates the theorem
bounds, at the cost of possibly stopping above the family's local minimum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from . import knapsack
from .problems import (
    WeightQualification,
    WeightReductionProblem,
    WeightRestriction,
    WeightSeparation,
)

__all__ = ["Verdict", "CheckStats", "RestrictionChecker", "SeparationChecker", "make_checker"]

#: Instances with ``n * profit_range`` at most this many DP cells skip the
#: rounded numpy tier and run the exact DP directly (it is fast enough and
#: avoids any fallback bookkeeping).
_EXACT_DP_CELL_LIMIT = 2_000_000


class Verdict(enum.Enum):
    """Outcome of the three-valued quick test."""

    VALID = "valid"
    INVALID = "invalid"
    UNCERTAIN = "uncertain"


@dataclass
class CheckStats:
    """Counters describing how hard the checker had to work.

    Used by the ablation benchmarks to reproduce the paper's claim that the
    quick test filters out most knapsack invocations (Section 3.1).
    """

    checks: int = 0
    quick_valid: int = 0
    quick_invalid: int = 0
    quick_uncertain: int = 0
    dp_calls: int = 0
    exact_fallbacks: int = 0

    def merge(self, other: "CheckStats") -> None:
        """Accumulate ``other`` into ``self``."""
        self.checks += other.checks
        self.quick_valid += other.quick_valid
        self.quick_invalid += other.quick_invalid
        self.quick_uncertain += other.quick_uncertain
        self.dp_calls += other.dp_calls
        self.exact_fallbacks += other.exact_fallbacks


def _ceil_frac(x: Fraction) -> int:
    """Smallest integer >= ``x``."""
    return -((-x.numerator) // x.denominator)


class _WeightsContext:
    """Per-weight-vector caches shared by the checkers.

    Holds the exact integer scaling and the two soundly-rounded int64
    scalings, each computed lazily (the solver may never need them).
    """

    def __init__(
        self, weights: Sequence[Fraction], total: Optional[Fraction] = None
    ):
        self.weights = tuple(weights)
        # ``total`` lets epoch-style callers that maintain W across small
        # weight deltas skip the O(n) exact sum; it must equal the true sum.
        self.total: Fraction = (
            sum(self.weights, start=Fraction(0)) if total is None else total
        )
        if self.total <= 0:
            raise ValueError("total weight W must be positive")
        self.n = len(self.weights)
        self._exact: Optional[tuple[list[int], int]] = None
        self._down: Optional[np.ndarray] = None
        self._up: Optional[np.ndarray] = None

    @property
    def exact_scaled(self) -> tuple[list[int], int]:
        """``(integer weights, common denominator)`` exact scaling."""
        if self._exact is None:
            self._exact = knapsack.scale_weights_exact(self.weights)
        return self._exact

    @property
    def rounded_down(self) -> np.ndarray:
        if self._down is None:
            self._down = knapsack.scale_weights_rounded(
                self.weights, self.total, round_up=False
            )
        return self._down

    @property
    def rounded_up(self) -> np.ndarray:
        if self._up is None:
            self._up = knapsack.scale_weights_rounded(
                self.weights, self.total, round_up=True
            )
        return self._up


class RestrictionChecker:
    """Validity checker for Weight Restriction assignments.

    Parameters
    ----------
    weights:
        Exact rational weights (see :func:`repro.core.types.normalize_weights`).
    problem:
        The :class:`~repro.core.problems.WeightRestriction` instance.
    use_quick_test:
        Enable the quasilinear three-valued filter (paper default).  The
        ablation benchmark disables it to measure the filter's speedup.
    linear_mode:
        Paper's ``--linear``: never run the DP; ``UNCERTAIN`` counts as
        invalid.  Conservative and quasilinear.
    """

    def __init__(
        self,
        weights: Sequence[Fraction],
        problem: WeightRestriction,
        *,
        use_quick_test: bool = True,
        linear_mode: bool = False,
        total_weight: Optional[Fraction] = None,
    ) -> None:
        self.ctx = _WeightsContext(weights, total=total_weight)
        self.problem = problem
        self.use_quick_test = use_quick_test
        self.linear_mode = linear_mode
        self.stats = CheckStats()
        #: strict capacity ``alpha_w * W`` of the violating-subset knapsack
        self.capacity: Fraction = problem.alpha_w * self.ctx.total

    def violation_target(self, total: int) -> int:
        """Smallest ticket count that would violate ``t(S) < alpha_n * T``."""
        return _ceil_frac(self.problem.alpha_n * Fraction(total))

    # -- quick (quasilinear) test -------------------------------------------
    def quick(self, tickets: Sequence[int], total: int) -> Verdict:
        """Three-valued quick test from the greedy knapsack bounds."""
        target = self.violation_target(total)
        upper = knapsack.fractional_upper_bound(
            self.ctx.weights, tickets, self.capacity
        )
        if upper < target:
            return Verdict.VALID
        lower = knapsack.greedy_lower_bound(self.ctx.weights, tickets, self.capacity)
        if lower >= target:
            return Verdict.INVALID
        return Verdict.UNCERTAIN

    # -- full (DP) test -------------------------------------------------------
    def _dp_violating_subset_exists(self, tickets: Sequence[int], target: int) -> bool:
        """Does some subset with ``w(S) < capacity`` reach ``target`` tickets?

        Decided soundly: small instances run the exact DP; large ones run
        the two rounded numpy passes and fall back to exact arithmetic only
        if the passes disagree.
        """
        self.stats.dp_calls += 1
        n_items = sum(1 for t in tickets if t > 0)
        if n_items * target <= _EXACT_DP_CELL_LIMIT:
            return self._dp_exact(tickets, target)
        scaled_cap = knapsack.strict_cap_int(
            self.problem.alpha_w * (1 << knapsack.SCALE_BITS)
        )
        mw_down = knapsack.min_weight_for_profit_numpy(
            self.ctx.rounded_down, tickets, target
        )
        exists_down = mw_down is not None and mw_down <= scaled_cap
        if not exists_down:
            # Even with under-stated weights no subset violates: certified valid.
            return False
        mw_up = knapsack.min_weight_for_profit_numpy(
            self.ctx.rounded_up, tickets, target
        )
        exists_up = mw_up is not None and mw_up <= scaled_cap
        if exists_up:
            # With over-stated weights a violating subset exists: certified.
            return True
        self.stats.exact_fallbacks += 1
        return self._dp_exact(tickets, target)

    def _dp_exact(self, tickets: Sequence[int], target: int) -> bool:
        int_weights, denom = self.ctx.exact_scaled
        cap = knapsack.strict_cap_int(self.capacity * denom)
        mw = knapsack.min_weight_for_profit(int_weights, tickets, target)
        return mw is not None and mw <= cap

    # -- public decision -------------------------------------------------------
    def check(self, tickets: Sequence[int], total: Optional[int] = None) -> bool:
        """Decide viability of ``tickets`` for this WR instance."""
        if total is None:
            total = sum(tickets)
        self.stats.checks += 1
        if total <= 0:
            return False
        if self.use_quick_test:
            verdict = self.quick(tickets, total)
            if verdict is Verdict.VALID:
                self.stats.quick_valid += 1
                return True
            if verdict is Verdict.INVALID:
                self.stats.quick_invalid += 1
                return False
            self.stats.quick_uncertain += 1
        if self.linear_mode:
            # Conservative: cannot certify validity quasilinearly, reject.
            return False
        target = self.violation_target(total)
        return not self._dp_violating_subset_exists(tickets, target)

    def check_sparse(
        self, indices: Sequence[int], counts: Sequence[int], total: int
    ) -> bool:
        """Identical decision to :meth:`check` on the dense vector with
        ``counts[k]`` tickets at party ``indices[k]`` and zero elsewhere.

        ``indices`` must be ascending and ``counts`` positive (the form
        :meth:`repro.core.prices.PriceStream.sparse_counts` produces).
        Every knapsack routine already skips zero-ticket items and breaks
        density ties by input position, so restricting the item arrays to
        holders changes no bound, no DP value, and no verdict -- it only
        drops the ``O(n)`` dense scans, the per-probe cost that dominates
        large-committee re-solves.
        """
        self.stats.checks += 1
        if total <= 0:
            return False
        w = self.ctx.weights
        holder_weights = [w[i] for i in indices]
        if self.use_quick_test:
            target = self.violation_target(total)
            upper = knapsack.fractional_upper_bound(
                holder_weights, counts, self.capacity
            )
            if upper < target:
                self.stats.quick_valid += 1
                return True
            lower = knapsack.greedy_lower_bound(
                holder_weights, counts, self.capacity
            )
            if lower >= target:
                self.stats.quick_invalid += 1
                return False
            self.stats.quick_uncertain += 1
        if self.linear_mode:
            return False
        target = self.violation_target(total)
        self.stats.dp_calls += 1
        if len(counts) * target <= _EXACT_DP_CELL_LIMIT:
            return self._dp_exact_sparse(indices, counts, target)
        scaled_cap = knapsack.strict_cap_int(
            self.problem.alpha_w * (1 << knapsack.SCALE_BITS)
        )
        idx = np.asarray(indices, dtype=np.intp)
        mw_down = knapsack.min_weight_for_profit_numpy(
            self.ctx.rounded_down[idx], counts, target
        )
        if mw_down is None or mw_down > scaled_cap:
            return True
        mw_up = knapsack.min_weight_for_profit_numpy(
            self.ctx.rounded_up[idx], counts, target
        )
        if mw_up is not None and mw_up <= scaled_cap:
            return False
        self.stats.exact_fallbacks += 1
        return self._dp_exact_sparse(indices, counts, target)

    def _dp_exact_sparse(
        self, indices: Sequence[int], counts: Sequence[int], target: int
    ) -> bool:
        int_weights, denom = self.ctx.exact_scaled
        cap = knapsack.strict_cap_int(self.capacity * denom)
        mw = knapsack.min_weight_for_profit(
            [int_weights[i] for i in indices], counts, target
        )
        return not (mw is not None and mw <= cap)


class SeparationChecker:
    """Validity checker for Weight Separation assignments.

    Valid iff ``K(alpha) + K(1 - beta) < T`` where ``K(g)`` is the maximum
    ticket count over subsets with ``w(S) < g * W`` (the minimum over
    qualified sets is ``T - K(1 - beta)`` by complementation).
    """

    def __init__(
        self,
        weights: Sequence[Fraction],
        problem: WeightSeparation,
        *,
        use_quick_test: bool = True,
        linear_mode: bool = False,
        total_weight: Optional[Fraction] = None,
    ) -> None:
        self.ctx = _WeightsContext(weights, total=total_weight)
        self.problem = problem
        self.use_quick_test = use_quick_test
        self.linear_mode = linear_mode
        self.stats = CheckStats()
        self.cap_low: Fraction = problem.alpha * self.ctx.total
        self.cap_high: Fraction = (1 - problem.beta) * self.ctx.total

    # -- quick test -------------------------------------------------------------
    def quick(self, tickets: Sequence[int], total: int) -> Verdict:
        """Three-valued quick test from greedy bounds on both knapsacks."""
        ub = knapsack.fractional_upper_bound(
            self.ctx.weights, tickets, self.cap_low
        ) + knapsack.fractional_upper_bound(self.ctx.weights, tickets, self.cap_high)
        if ub < total:
            return Verdict.VALID
        lb = knapsack.greedy_lower_bound(
            self.ctx.weights, tickets, self.cap_low
        ) + knapsack.greedy_lower_bound(self.ctx.weights, tickets, self.cap_high)
        if lb >= total:
            return Verdict.INVALID
        return Verdict.UNCERTAIN

    # -- full test ---------------------------------------------------------------
    def _max_profit_exact(self, tickets: Sequence[int], capacity: Fraction) -> int:
        int_weights, denom = self.ctx.exact_scaled
        cap = knapsack.strict_cap_int(capacity * denom)
        return knapsack.max_profit_under(int_weights, tickets, cap)

    def _full(self, tickets: Sequence[int], total: int) -> bool:
        self.stats.dp_calls += 1
        n_items = sum(1 for t in tickets if t > 0)
        if n_items * max(total, 1) <= _EXACT_DP_CELL_LIMIT:
            k1 = self._max_profit_exact(tickets, self.cap_low)
            k2 = self._max_profit_exact(tickets, self.cap_high)
            return k1 + k2 < total
        scale_total = Fraction(1 << knapsack.SCALE_BITS)
        cap_low = knapsack.strict_cap_int(self.problem.alpha * scale_total)
        cap_high = knapsack.strict_cap_int((1 - self.problem.beta) * scale_total)
        # Rounded-down weights enlarge the feasible family => upper bounds.
        k1_hi = knapsack.max_profit_under_numpy(self.ctx.rounded_down, tickets, cap_low)
        k2_hi = knapsack.max_profit_under_numpy(self.ctx.rounded_down, tickets, cap_high)
        if k1_hi + k2_hi < total:
            return True
        # Rounded-up weights shrink it => achievable lower bounds.
        k1_lo = knapsack.max_profit_under_numpy(self.ctx.rounded_up, tickets, cap_low)
        k2_lo = knapsack.max_profit_under_numpy(self.ctx.rounded_up, tickets, cap_high)
        if k1_lo + k2_lo >= total:
            return False
        self.stats.exact_fallbacks += 1
        k1 = self._max_profit_exact(tickets, self.cap_low)
        k2 = self._max_profit_exact(tickets, self.cap_high)
        return k1 + k2 < total

    # -- public decision -----------------------------------------------------------
    def check(self, tickets: Sequence[int], total: Optional[int] = None) -> bool:
        """Decide viability of ``tickets`` for this WS instance."""
        if total is None:
            total = sum(tickets)
        self.stats.checks += 1
        if total <= 0:
            return False
        if self.use_quick_test:
            verdict = self.quick(tickets, total)
            if verdict is Verdict.VALID:
                self.stats.quick_valid += 1
                return True
            if verdict is Verdict.INVALID:
                self.stats.quick_invalid += 1
                return False
            self.stats.quick_uncertain += 1
        if self.linear_mode:
            return False
        return self._full(tickets, total)

    def check_sparse(
        self, indices: Sequence[int], counts: Sequence[int], total: int
    ) -> bool:
        """Identical decision to :meth:`check` on the corresponding dense
        vector (same contract as ``RestrictionChecker.check_sparse``)."""
        self.stats.checks += 1
        if total <= 0:
            return False
        w = self.ctx.weights
        holder_weights = [w[i] for i in indices]
        if self.use_quick_test:
            ub = knapsack.fractional_upper_bound(
                holder_weights, counts, self.cap_low
            ) + knapsack.fractional_upper_bound(holder_weights, counts, self.cap_high)
            if ub < total:
                self.stats.quick_valid += 1
                return True
            lb = knapsack.greedy_lower_bound(
                holder_weights, counts, self.cap_low
            ) + knapsack.greedy_lower_bound(holder_weights, counts, self.cap_high)
            if lb >= total:
                self.stats.quick_invalid += 1
                return False
            self.stats.quick_uncertain += 1
        if self.linear_mode:
            return False
        self.stats.dp_calls += 1
        if len(counts) * max(total, 1) <= _EXACT_DP_CELL_LIMIT:
            return self._full_exact_sparse(indices, counts, total)
        scale_total = Fraction(1 << knapsack.SCALE_BITS)
        cap_low = knapsack.strict_cap_int(self.problem.alpha * scale_total)
        cap_high = knapsack.strict_cap_int((1 - self.problem.beta) * scale_total)
        idx = np.asarray(indices, dtype=np.intp)
        down = self.ctx.rounded_down[idx]
        k1_hi = knapsack.max_profit_under_numpy(down, counts, cap_low)
        k2_hi = knapsack.max_profit_under_numpy(down, counts, cap_high)
        if k1_hi + k2_hi < total:
            return True
        up = self.ctx.rounded_up[idx]
        k1_lo = knapsack.max_profit_under_numpy(up, counts, cap_low)
        k2_lo = knapsack.max_profit_under_numpy(up, counts, cap_high)
        if k1_lo + k2_lo >= total:
            return False
        self.stats.exact_fallbacks += 1
        return self._full_exact_sparse(indices, counts, total)

    def _full_exact_sparse(
        self, indices: Sequence[int], counts: Sequence[int], total: int
    ) -> bool:
        int_weights, denom = self.ctx.exact_scaled
        holder_ints = [int_weights[i] for i in indices]
        k1 = knapsack.max_profit_under(
            holder_ints, counts, knapsack.strict_cap_int(self.cap_low * denom)
        )
        k2 = knapsack.max_profit_under(
            holder_ints, counts, knapsack.strict_cap_int(self.cap_high * denom)
        )
        return k1 + k2 < total


def make_checker(
    problem: WeightReductionProblem,
    weights: Sequence[Fraction],
    *,
    use_quick_test: bool = True,
    linear_mode: bool = False,
    total_weight: Optional[Fraction] = None,
) -> "RestrictionChecker | SeparationChecker":
    """Build the appropriate checker; WQ is checked via its WR reduction
    (Theorem 2.2: the two validity predicates coincide).

    ``total_weight``, when given, must equal ``sum(weights)`` exactly; it
    lets epoch-style callers skip the O(n) sum on re-solves.
    """
    if linear_mode:
        # Linear mode is *defined* by relying on the quasilinear bounds only.
        use_quick_test = True
    if isinstance(problem, WeightQualification):
        problem = problem.to_restriction()
    if isinstance(problem, WeightRestriction):
        return RestrictionChecker(
            weights,
            problem,
            use_quick_test=use_quick_test,
            linear_mode=linear_mode,
            total_weight=total_weight,
        )
    if isinstance(problem, WeightSeparation):
        return SeparationChecker(
            weights,
            problem,
            use_quick_test=use_quick_test,
            linear_mode=linear_mode,
            total_weight=total_weight,
        )
    raise TypeError(f"unknown weight reduction problem: {problem!r}")
