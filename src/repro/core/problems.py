"""Definitions of the three weight reduction problems (paper, Section 2).

Each problem takes real weights ``w_1..w_n`` and asks for integer ticket
counts ``t_1..t_n`` minimizing ``T = sum(t_i)`` subject to a structural
constraint relating weighty subsets to ticket-holding subsets:

* :class:`WeightRestriction` (WR) -- any subset with less than an
  ``alpha_w`` fraction of the weight gets less than an ``alpha_n`` fraction
  of the tickets (Problem 1).
* :class:`WeightQualification` (WQ) -- any subset with more than a
  ``beta_w`` fraction of the weight gets more than a ``beta_n`` fraction of
  the tickets (Problem 2).  WQ(beta_w, beta_n) is identical to
  WR(1 - beta_w, 1 - beta_n) (Theorem 2.2).
* :class:`WeightSeparation` (WS) -- any subset with more than a ``beta``
  fraction of the weight gets strictly more tickets than any subset with
  less than an ``alpha`` fraction (Problem 3).

These classes are pure problem *descriptions*: parameter validation, the
rounding constant ``c`` used by Swiper's ticket-assignment family, and the
theoretical ticket upper bounds (Theorems 2.1, 2.4 and Corollary 2.3).
The solver lives in :mod:`repro.core.solver`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from .types import Number, as_fraction

__all__ = [
    "WeightRestriction",
    "WeightQualification",
    "WeightSeparation",
    "WeightReductionProblem",
]


def _check_open_unit(name: str, value: Fraction) -> None:
    if not (0 < value < 1):
        raise ValueError(f"{name} must lie strictly in (0, 1), got {value}")


@dataclass(frozen=True)
class WeightRestriction:
    """Weight Restriction problem ``WR(alpha_w, alpha_n)`` (Problem 1).

    Constraint: for every subset ``S`` with ``w(S) < alpha_w * W`` it must
    hold that ``t(S) < alpha_n * T``.  Requires ``alpha_w < alpha_n``.
    """

    alpha_w: Fraction
    alpha_n: Fraction

    def __init__(self, alpha_w: Number, alpha_n: Number) -> None:
        object.__setattr__(self, "alpha_w", as_fraction(alpha_w))
        object.__setattr__(self, "alpha_n", as_fraction(alpha_n))
        _check_open_unit("alpha_w", self.alpha_w)
        _check_open_unit("alpha_n", self.alpha_n)
        if not self.alpha_w < self.alpha_n:
            raise ValueError(
                f"WR requires alpha_w < alpha_n (Theorem 2.1); got "
                f"alpha_w={self.alpha_w}, alpha_n={self.alpha_n}"
            )

    @property
    def rounding_constant(self) -> Fraction:
        """The constant ``c`` of the Swiper family; ``c = alpha_w`` for WR."""
        return self.alpha_w

    def ticket_bound(self, n: int) -> int:
        """Theorem 2.1: a valid assignment exists with
        ``T <= ceil(alpha_w * (1 - alpha_w) / (alpha_n - alpha_w) * n)``."""
        if n <= 0:
            raise ValueError("n must be positive")
        value = self.alpha_w * (1 - self.alpha_w) / (self.alpha_n - self.alpha_w) * n
        return math.ceil(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WR(alpha_w={self.alpha_w}, alpha_n={self.alpha_n})"


@dataclass(frozen=True)
class WeightQualification:
    """Weight Qualification problem ``WQ(beta_w, beta_n)`` (Problem 2).

    Constraint: for every subset ``S`` with ``w(S) > beta_w * W`` it must
    hold that ``t(S) > beta_n * T``.  Requires ``beta_n < beta_w``.
    """

    beta_w: Fraction
    beta_n: Fraction

    def __init__(self, beta_w: Number, beta_n: Number) -> None:
        object.__setattr__(self, "beta_w", as_fraction(beta_w))
        object.__setattr__(self, "beta_n", as_fraction(beta_n))
        _check_open_unit("beta_w", self.beta_w)
        _check_open_unit("beta_n", self.beta_n)
        if not self.beta_n < self.beta_w:
            raise ValueError(
                f"WQ requires beta_n < beta_w (Corollary 2.3); got "
                f"beta_w={self.beta_w}, beta_n={self.beta_n}"
            )

    def to_restriction(self) -> WeightRestriction:
        """The Theorem 2.2 reduction: ``WQ(bw, bn) == WR(1 - bw, 1 - bn)``.

        Any valid solution of one is a valid solution of the other, so the
        solver handles WQ by solving the reduced WR instance.
        """
        return WeightRestriction(1 - self.beta_w, 1 - self.beta_n)

    @property
    def rounding_constant(self) -> Fraction:
        """``c = 1 - beta_w`` for WQ (Section 3.1), consistent with the
        reduction to WR where ``c = alpha_w = 1 - beta_w``."""
        return 1 - self.beta_w

    def ticket_bound(self, n: int) -> int:
        """Corollary 2.3: a valid assignment exists with
        ``T <= ceil(beta_w * (1 - beta_w) / (beta_w - beta_n) * n)``."""
        if n <= 0:
            raise ValueError("n must be positive")
        value = self.beta_w * (1 - self.beta_w) / (self.beta_w - self.beta_n) * n
        return math.ceil(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WQ(beta_w={self.beta_w}, beta_n={self.beta_n})"


@dataclass(frozen=True)
class WeightSeparation:
    """Weight Separation problem ``WS(alpha, beta)`` (Problem 3).

    Constraint: for all subsets ``S1, S2`` with ``w(S1) < alpha * W`` and
    ``w(S2) > beta * W`` it must hold that ``t(S1) < t(S2)``.  Requires
    ``alpha < beta``.
    """

    alpha: Fraction
    beta: Fraction

    def __init__(self, alpha: Number, beta: Number) -> None:
        object.__setattr__(self, "alpha", as_fraction(alpha))
        object.__setattr__(self, "beta", as_fraction(beta))
        _check_open_unit("alpha", self.alpha)
        _check_open_unit("beta", self.beta)
        if not self.alpha < self.beta:
            raise ValueError(
                f"WS requires alpha < beta (Theorem 2.4); got "
                f"alpha={self.alpha}, beta={self.beta}"
            )

    @property
    def rounding_constant(self) -> Fraction:
        """``c = (alpha + beta) / 2`` for WS (Section 3.1, Appendix A.2)."""
        return (self.alpha + self.beta) / 2

    def ticket_bound(self, n: int) -> int:
        """Theorem 2.4: a valid assignment exists with
        ``T <= (alpha + beta) * (1 - alpha) / (beta - alpha) * n``.

        Appendix A.2 shows any *invalid* assignment of the Swiper family has
        strictly fewer tickets than this value, so ``ceil`` of it is a safe
        "always valid" anchor for the solver's binary search.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        value = (self.alpha + self.beta) * (1 - self.alpha) / (self.beta - self.alpha) * n
        return math.ceil(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WS(alpha={self.alpha}, beta={self.beta})"


#: Union of the three problem descriptions accepted by the solver.
WeightReductionProblem = WeightRestriction | WeightQualification | WeightSeparation
