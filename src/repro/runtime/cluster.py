"""Cluster orchestration: spin up ``n`` live nodes, run, measure.

The runtime analogue of :func:`repro.sim.runner.build_world`: build the
parties with a factory, wire them full-mesh over a chosen transport, run
the protocol to a stop condition, and collect :class:`RuntimeMetrics`
(message/byte counters like the sim's ``NetworkMetrics``, plus wall-clock
latency overall and per named phase).

Two entry styles:

* ``async with Cluster(...) as cluster`` for tests and applications that
  already live on an event loop;
* :func:`run_cluster` for synchronous callers (CLI, benchmarks): builds
  the loop, runs setup -> stop condition -> teardown, returns the cluster
  with its frozen metrics.
"""

from __future__ import annotations

import asyncio
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from ..sim.process import Party
from .codec import CodecRegistry, default_registry
from .faults import FaultController
from .node import RuntimeNode
from .transport import InProcTransport, ProcMeshTransport, TcpTransport, Transport

__all__ = ["RuntimeMetrics", "Cluster", "run_cluster", "TRANSPORTS"]

#: transport name -> constructor, for CLI/config selection.  ``proc`` maps
#: to the worker-side mesh endpoint; a whole-cluster ``proc`` run is
#: orchestrated by :class:`repro.parallel.proc.ProcCluster` (one process
#: per party), which a single-loop :class:`Cluster` cannot host.
TRANSPORTS = {"inproc": InProcTransport, "tcp": TcpTransport, "proc": ProcMeshTransport}


@dataclass
class RuntimeMetrics:
    """Counters mirroring the sim's ``NetworkMetrics`` plus wall-clock."""

    messages: int = 0
    bytes: int = 0
    by_type: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_type: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    elapsed_seconds: float = 0.0
    #: phase name -> seconds since cluster start when the phase was marked
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: failure-detector transitions (proc mesh heartbeats; 0 elsewhere)
    suspect_transitions: int = 0
    alive_transitions: int = 0

    def record(self, type_name: str, size: int) -> None:
        self.messages += 1
        self.bytes += size
        self.by_type[type_name] += 1
        self.bytes_by_type[type_name] += size

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (CLI ``--json`` and benchmark rows)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_type": dict(self.by_type),
            "bytes_by_type": dict(self.bytes_by_type),
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "suspect_transitions": self.suspect_transitions,
            "alive_transitions": self.alive_transitions,
        }


class Cluster:
    """``n`` parties hosted on one event loop over a live transport."""

    def __init__(
        self,
        party_factory: Callable[[int], Party],
        n: Optional[int] = None,
        *,
        transport: Union[str, Transport] = "inproc",
        registry: Optional[CodecRegistry] = None,
        faults: Optional[FaultController] = None,
        committee=None,
    ) -> None:
        # A committee (repro.api.committee.Committee) supplies the node
        # count when n is omitted and is kept for provenance; drivers
        # hosting virtual users may still size the cluster explicitly.
        if n is None:
            if committee is None:
                raise ValueError("cluster needs n or a committee")
            n = committee.n
        if n < 1:
            raise ValueError("cluster needs at least one node")
        self.n = n
        self.committee = committee
        self.registry = registry or default_registry()
        self.faults = faults or FaultController()
        self.metrics = RuntimeMetrics()
        if isinstance(transport, str):
            if transport == "proc":
                raise ValueError(
                    "transport 'proc' is process-per-party and cannot be "
                    "hosted on one event loop; run it via "
                    "run_scenario(backend='proc') or repro.parallel.ProcCluster"
                )
            try:
                ctor = TRANSPORTS[transport]
            except KeyError:
                raise ValueError(
                    f"unknown transport {transport!r}; choose from {sorted(TRANSPORTS)}"
                ) from None
            transport = ctor(
                self.registry, faults=self.faults, record=self.metrics.record
            )
        self.transport = transport
        peer_ids = list(range(n))
        self.nodes = [
            RuntimeNode(party_factory(pid), self.transport, peer_ids)
            for pid in peer_ids
        ]
        self._started_at: Optional[float] = None
        #: when the final settle() first observed quiescence -- lets
        #: elapsed_seconds exclude the idle-confirmation window
        self._quiesced_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        await self.transport.start()
        for node in self.nodes:
            node.start()
        self._started_at = time.perf_counter()

    async def stop(self) -> None:
        if self._started_at is not None:
            end = (
                self._quiesced_at
                if self._quiesced_at is not None
                else time.perf_counter()
            )
            self.metrics.elapsed_seconds = end - self._started_at
        for node in self.nodes:
            await node.stop()
        await self.transport.stop()

    async def __aenter__(self) -> "Cluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- access -------------------------------------------------------------------
    def party(self, pid: int) -> Party:
        return self.nodes[pid].party

    @property
    def parties(self) -> list[Party]:
        return [node.party for node in self.nodes]

    def total_counter(self, name: str) -> int:
        """Sum a named computation counter over all parties (sim parity)."""
        return sum(p.counters.get(name, 0) for p in self.parties)

    # -- control ------------------------------------------------------------------
    def crash_node(self, pid: int) -> None:
        """Full crash: the party stops reacting AND its traffic is dropped."""
        self.party(pid).crash()
        self.faults.crash(pid)

    def restart_node(self, pid: int) -> None:
        """Crash-restart rejoin: traffic flows again first, then the
        party recovers (recoverable parties replay their WAL and
        broadcast a state-sync request from inside ``restart``)."""
        self.faults.restart(pid)
        self.party(pid).restart()

    def mark_phase(self, name: str) -> None:
        """Record wall-clock latency-to-now under ``name``."""
        if self._started_at is None:
            raise RuntimeError("cluster is not running")
        self.metrics.phase_seconds[name] = time.perf_counter() - self._started_at

    async def run_until(
        self,
        predicate: Callable[[], bool],
        *,
        timeout: float = 30.0,
        poll: float = 0.002,
        phase: Optional[str] = None,
    ) -> None:
        """Poll ``predicate`` until true; raise ``TimeoutError`` otherwise.

        With ``phase``, the satisfaction time is recorded in
        ``metrics.phase_seconds`` -- per-phase latency measurement.
        """
        self._quiesced_at = None
        deadline = time.perf_counter() + timeout
        while not predicate():
            self._raise_node_failures()
            if time.perf_counter() > deadline:
                backlog = {node.pid: node.inbox.qsize() for node in self.nodes}
                raise TimeoutError(
                    f"stop condition not reached within {timeout}s "
                    f"(inbox backlog per node: {backlog})"
                )
            await asyncio.sleep(poll)
        if phase is not None:
            self.mark_phase(phase)

    def _raise_node_failures(self) -> None:
        """Re-raise the first pump-task exception (codec or handler error)."""
        for node in self.nodes:
            if node.failure is not None:
                raise RuntimeError(
                    f"node {node.pid} failed while pumping messages"
                ) from node.failure
        if self.transport.failure is not None:
            raise RuntimeError(
                "transport failed at the delivery point"
            ) from self.transport.failure

    async def settle(self, *, idle_for: float = 0.02, timeout: float = 30.0) -> None:
        """Wait until the cluster has been quiescent for ``idle_for``
        seconds -- the runtime's approximation of the simulator running to
        quiescence.  Quiescent means every node's queues are drained AND
        the transport has no message in flight (socket buffers, injected
        delay timers)."""
        self._quiesced_at = None
        deadline = time.perf_counter() + timeout
        quiet_since: Optional[float] = None
        while True:
            self._raise_node_failures()
            now = time.perf_counter()
            if self.transport.quiescent and all(node.idle for node in self.nodes):
                if quiet_since is None:
                    quiet_since = now
                elif now - quiet_since >= idle_for:
                    self._quiesced_at = quiet_since
                    return
            else:
                quiet_since = None
            if now > deadline:
                raise TimeoutError(f"cluster did not settle within {timeout}s")
            await asyncio.sleep(idle_for / 4)


def run_cluster(
    party_factory: Callable[[int], Party],
    n: Optional[int] = None,
    *,
    transport: Union[str, Transport] = "inproc",
    setup: Optional[Callable[[Cluster], None]] = None,
    stop_when: Optional[Callable[[Cluster], bool]] = None,
    registry: Optional[CodecRegistry] = None,
    faults: Optional[FaultController] = None,
    timeout: float = 30.0,
    committee=None,
) -> Cluster:
    """Synchronous convenience driver: start, setup, run, stop.

    ``setup(cluster)`` fires protocol entry points (proposals, broadcast
    initiations); ``stop_when(cluster)`` is the completion predicate
    (default: settle to quiescence).  Returns the stopped cluster, whose
    ``metrics`` then hold the run's counters and latency.
    """

    async def _drive() -> Cluster:
        cluster = Cluster(
            party_factory,
            n,
            transport=transport,
            registry=registry,
            faults=faults,
            committee=committee,
        )
        # One deadline covers the stop condition AND the post-condition
        # drain, so the caller's timeout bounds total wall time.
        deadline = time.perf_counter() + timeout
        async with cluster:
            if setup is not None:
                setup(cluster)
            if stop_when is not None:
                await cluster.run_until(
                    lambda: stop_when(cluster), timeout=timeout, phase="stop_condition"
                )
            # Drain to quiescence even after an explicit stop condition:
            # stop_when can turn true while trailing messages are still
            # queued in outboxes, and cutting them off would make the
            # run's message/byte counts nondeterministic.
            remaining = max(deadline - time.perf_counter(), 0.05)
            await cluster.settle(timeout=remaining)
        return cluster

    return asyncio.run(_drive())
