"""Transport-level fault injection for the live runtime.

Mirrors the roles of :mod:`repro.sim.adversary` in the discrete-event
world: crash a node, partition the cluster into groups, or add link
delay.  Faults apply at the *delivery point* of a transport, so the two
transport implementations behave identically under the same plan.

Like the sim's :class:`~repro.sim.network.TargetedDelay`, delays model an
asynchronous adversary -- they slow links, never permanently drop
honest-to-honest traffic.  Partitions *do* drop traffic while active;
heal the partition to restore the asynchrony assumption before asserting
liveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["DeliveryDecision", "FaultController"]


@dataclass(frozen=True)
class DeliveryDecision:
    """What the transport should do with one message on link ``src -> dst``."""

    deliver: bool
    delay: float = 0.0

    DELIVER = None  # type: DeliveryDecision  # populated below
    DROP = None  # type: DeliveryDecision


DeliveryDecision.DELIVER = DeliveryDecision(deliver=True)
DeliveryDecision.DROP = DeliveryDecision(deliver=False)


class FaultController:
    """Mutable fault plan shared by every link of a cluster.

    All mutators are safe to call while the cluster runs (single event
    loop; no locking needed).  Counters record what was actually injected
    so tests can assert the fault fired.
    """

    def __init__(self) -> None:
        self.crashed: set[int] = set()
        self.restarted: set[int] = set()
        self._groups: list[frozenset[int]] = []
        self._link_delay: dict[tuple[int, int], float] = {}
        self._global_delay: float = 0.0
        self.dropped_messages = 0
        self.delayed_messages = 0

    # -- plan mutation ------------------------------------------------------------
    def crash(self, pid: int) -> None:
        """Silence ``pid``: all its inbound and outbound traffic is dropped."""
        self.crashed.add(pid)

    def restart(self, pid: int) -> None:
        """Un-crash ``pid`` (crash-restart fault): traffic flows again.

        The transport-level half of a restart; the party itself must
        separately recover its state (WAL replay + state sync).
        """
        self.crashed.discard(pid)
        self.restarted.add(pid)

    def partition(self, *groups: Iterable[int]) -> None:
        """Split the cluster: a message is delivered only if some group
        contains both endpoints.  Replaces any previous partition."""
        self._groups = [frozenset(g) for g in groups]

    def heal(self) -> None:
        """Remove the partition (crashes stay crashed)."""
        self._groups = []

    def delay_link(self, src: int, dst: int, seconds: float) -> None:
        """Add ``seconds`` of latency to one directed link."""
        self._link_delay[(src, dst)] = float(seconds)

    def delay_all(self, seconds: float) -> None:
        """Add baseline latency to every link (uniform-delay network)."""
        self._global_delay = float(seconds)

    @property
    def partitioned(self) -> bool:
        return bool(self._groups)

    # -- the transport-facing query -------------------------------------------------
    def decide(self, src: int, dst: int) -> DeliveryDecision:
        """Fate of one message on ``src -> dst`` under the current plan."""
        if src in self.crashed or dst in self.crashed:
            self.dropped_messages += 1
            return DeliveryDecision.DROP
        if self._groups and not any(src in g and dst in g for g in self._groups):
            self.dropped_messages += 1
            return DeliveryDecision.DROP
        delay = self._global_delay + self._link_delay.get((src, dst), 0.0)
        if delay > 0:
            self.delayed_messages += 1
            return DeliveryDecision(deliver=True, delay=delay)
        return DeliveryDecision.DELIVER
