"""Transport-level fault injection for the live runtime.

Mirrors the roles of :mod:`repro.sim.adversary` in the discrete-event
world: crash a node, partition the cluster into groups, or add link
delay.  *Terminal* faults (crash, partition, weather loss) are decided at
the **send point** via :meth:`FaultController.condemn` -- a condemned
message is counted and never transmitted, so frame disposition under a
partition is identical on every backend instead of depending on what a
transport had buffered when the heal landed.  Delay/duplication faults
are decided at the delivery point via :meth:`FaultController.decide`,
which also re-checks the terminal conditions for messages that were
already in flight when a fault was injected.

Like the sim's :class:`~repro.sim.network.TargetedDelay`, delays model an
asynchronous adversary -- they slow links, never permanently drop
honest-to-honest traffic.  Partitions *do* drop traffic while active;
heal the partition to restore the asynchrony assumption before asserting
liveness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["DeliveryDecision", "FaultController"]

#: how many per-link outcomes the postmortem trace ring retains
TRACE_DEPTH = 64


@dataclass(frozen=True)
class DeliveryDecision:
    """What the transport should do with one message on link ``src -> dst``.

    ``duplicates`` asks the transport to deliver that many *extra* copies
    of the message (network-weather duplication); copies are spaced a few
    milliseconds apart so reordering-sensitive code actually sees them as
    distinct arrivals.
    """

    deliver: bool
    delay: float = 0.0
    duplicates: int = 0

    DELIVER = None  # type: DeliveryDecision  # populated below
    DROP = None  # type: DeliveryDecision


DeliveryDecision.DELIVER = DeliveryDecision(deliver=True)
DeliveryDecision.DROP = DeliveryDecision(deliver=False)


class FaultController:
    """Mutable fault plan shared by every link of a cluster.

    All mutators are safe to call while the cluster runs (single event
    loop; no locking needed).  Counters record what was actually injected
    so tests can assert the fault fired.
    """

    def __init__(self) -> None:
        self.crashed: set[int] = set()
        self.restarted: set[int] = set()
        self._groups: list[frozenset[int]] = []
        self._link_delay: dict[tuple[int, int], float] = {}
        self._global_delay: float = 0.0
        self.dropped_messages = 0
        self.delayed_messages = 0
        #: optional :class:`repro.chaos.weather.NetworkWeather` (duck-typed:
        #: anything with ``on_send``/``on_deliver``/``counters``); loss is
        #: charged to the weather's own counters, not ``dropped_messages``
        self.weather = None
        #: last-N per-link outcomes ``(src, dst, fate)`` for postmortems
        self.trace: deque = deque(maxlen=TRACE_DEPTH)

    # -- plan mutation ------------------------------------------------------------
    def crash(self, pid: int) -> None:
        """Silence ``pid``: all its inbound and outbound traffic is dropped."""
        self.crashed.add(pid)

    def restart(self, pid: int) -> None:
        """Un-crash ``pid`` (crash-restart fault): traffic flows again.

        The transport-level half of a restart; the party itself must
        separately recover its state (WAL replay + state sync).
        """
        self.crashed.discard(pid)
        self.restarted.add(pid)

    def partition(self, *groups: Iterable[int]) -> None:
        """Split the cluster: a message is delivered only if some group
        contains both endpoints.  Replaces any previous partition."""
        self._groups = [frozenset(g) for g in groups]

    def heal(self) -> None:
        """Remove the partition (crashes stay crashed)."""
        self._groups = []

    def delay_link(self, src: int, dst: int, seconds: float) -> None:
        """Add ``seconds`` of latency to one directed link."""
        self._link_delay[(src, dst)] = float(seconds)

    def delay_all(self, seconds: float) -> None:
        """Add baseline latency to every link (uniform-delay network)."""
        self._global_delay = float(seconds)

    @property
    def partitioned(self) -> bool:
        return bool(self._groups)

    def _severed(self, src: int, dst: int) -> bool:
        """True when the link is terminally cut (crash or partition)."""
        if src in self.crashed or dst in self.crashed:
            return True
        return bool(
            self._groups and not any(src in g and dst in g for g in self._groups)
        )

    # -- the transport-facing queries -----------------------------------------------
    def condemn(self, src: int, dst: int) -> bool:
        """Send-point check: True when the message must not be transmitted.

        Terminal faults (crash, partition, weather loss) fire *here*, so a
        message to a partitioned peer is deterministically dropped and
        counted where it is sent -- the same disposition on the sim, the
        in-process queues, and the retrying proc transport, none of which
        can then differ on what they had buffered at heal time.
        """
        if self._severed(src, dst):
            self.dropped_messages += 1
            self.trace.append((src, dst, "condemned"))
            return True
        if self.weather is not None and self.weather.on_send(src, dst):
            self.trace.append((src, dst, "lost"))
            return True
        self.trace.append((src, dst, "sent"))
        return False

    def decide(self, src: int, dst: int) -> DeliveryDecision:
        """Delivery-point fate of one in-flight message on ``src -> dst``.

        Re-checks the terminal conditions (a fault injected after the
        send still stops the message) and adds the re-timing faults:
        configured link delay plus weather duplication/reorder/jitter.
        """
        if self._severed(src, dst):
            self.dropped_messages += 1
            self.trace.append((src, dst, "dropped"))
            return DeliveryDecision.DROP
        delay = self._global_delay + self._link_delay.get((src, dst), 0.0)
        duplicates = 0
        if self.weather is not None:
            wd = self.weather.on_deliver(src, dst)
            delay += wd.delay
            duplicates = wd.duplicates
        if delay > 0:
            self.delayed_messages += 1
            return DeliveryDecision(deliver=True, delay=delay, duplicates=duplicates)
        if duplicates:
            return DeliveryDecision(deliver=True, duplicates=duplicates)
        return DeliveryDecision.DELIVER
