"""Binary message codec for the live runtime.

The discrete-event simulator charges messages an *estimated* wire size
(``wire_size()`` or a flat header plus payload length).  The runtime
serializes messages for real, so the byte counters it reports are actual
payload bytes on the wire -- a cross-check of the sim's Table 1 numbers.

Design: a :class:`CodecRegistry` maps message dataclasses to short string
tags.  Encoding is a tagged, self-describing binary format covering the
value shapes protocol messages actually use (ints of any size, bytes,
strings, bools, ``None``, tuples, and nested registered dataclasses such
as :class:`~repro.codes.reed_solomon.BlockFragment` inside an AVID
message).  Frames are length-prefixed (4-byte big-endian), so a TCP
stream can be cut back into messages with :class:`FrameAssembler`.

Bytes payloads ride a zero-copy fast path: block fragments are single
``bytes`` values appended to the output buffer in one C-level operation
(no per-symbol marshalling), :meth:`CodecRegistry.encode_frame` builds
the length prefix and body in one buffer (no concatenation copy), and
:class:`FrameAssembler` decodes straight out of its stream buffer
through a memoryview instead of materializing each frame body first.
The transports encode each message exactly once per send -- the byte
metric is taken from that same encode, never from a second pass.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Iterator, Optional, Type

__all__ = [
    "CodecError",
    "CodecRegistry",
    "FrameAssembler",
    "default_registry",
    "frame",
    "read_frame_body",
]

_LEN = struct.Struct(">I")

# one-byte type markers of the value encoding
_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"I"
_BYTES = b"B"
_STR = b"S"
_TUPLE = b"L"
_DATACLASS = b"D"


class CodecError(ValueError):
    """Raised on unknown tags, unregistered types, or malformed frames."""


class CodecRegistry:
    """Bidirectional mapping ``message class <-> wire tag``.

    Only registered dataclasses can cross a transport; an attempt to
    encode anything else raises :class:`CodecError` so protocol authors
    find out at send time rather than with a silent drop.
    """

    def __init__(self) -> None:
        self._by_tag: dict[str, Type] = {}
        self._by_cls: dict[Type, str] = {}

    # -- registration ------------------------------------------------------------
    def register(self, cls: Type, tag: Optional[str] = None) -> Type:
        """Register ``cls`` (a dataclass) under ``tag`` (default: class name)."""
        if not dataclasses.is_dataclass(cls):
            raise CodecError(f"{cls!r} is not a dataclass")
        tag = tag or cls.__name__
        if len(tag.encode()) > 0xFFFF:
            raise CodecError("tag too long")
        existing = self._by_tag.get(tag)
        if existing is not None and existing is not cls:
            raise CodecError(f"tag {tag!r} already bound to {existing!r}")
        self._by_tag[tag] = cls
        self._by_cls[cls] = tag
        return cls

    def registered_types(self) -> list[Type]:
        return list(self._by_cls)

    def is_registered(self, cls: Type) -> bool:
        return cls in self._by_cls

    # -- value encoding ----------------------------------------------------------
    def _encode_value(self, value: Any, out: bytearray) -> None:
        if value is None:
            out += _NONE
        elif value is True:
            out += _TRUE
        elif value is False:
            out += _FALSE
        elif isinstance(value, int):
            raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
            out += _INT
            out += _LEN.pack(len(raw))
            out += raw
        elif isinstance(value, (bytes, bytearray)):
            # Fast path: += on the bytearray appends the buffer directly;
            # no intermediate bytes() copy for the (large) block payloads.
            out += _BYTES
            out += _LEN.pack(len(value))
            out += value
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out += _STR
            out += _LEN.pack(len(raw))
            out += raw
        elif isinstance(value, (tuple, list)):
            out += _TUPLE
            out += _LEN.pack(len(value))
            for item in value:
                self._encode_value(item, out)
        elif dataclasses.is_dataclass(value):
            out += _DATACLASS
            self._encode_body(value, out)
        else:
            raise CodecError(f"cannot encode value of type {type(value).__name__}")

    def _decode_value(self, buf: memoryview, pos: int) -> tuple[Any, int]:
        marker = bytes(buf[pos : pos + 1])
        pos += 1
        if marker == _NONE:
            return None, pos
        if marker == _TRUE:
            return True, pos
        if marker == _FALSE:
            return False, pos
        if marker == _INT:
            n, pos = self._read_len(buf, pos)
            return int.from_bytes(buf[pos : pos + n], "big", signed=True), pos + n
        if marker == _BYTES:
            n, pos = self._read_len(buf, pos)
            return bytes(buf[pos : pos + n]), pos + n
        if marker == _STR:
            n, pos = self._read_len(buf, pos)
            return bytes(buf[pos : pos + n]).decode("utf-8"), pos + n
        if marker == _TUPLE:
            n, pos = self._read_len(buf, pos)
            items = []
            for _ in range(n):
                item, pos = self._decode_value(buf, pos)
                items.append(item)
            return tuple(items), pos
        if marker == _DATACLASS:
            return self._decode_body(buf, pos)
        raise CodecError(f"unknown value marker {marker!r}")

    @staticmethod
    def _read_len(buf: memoryview, pos: int) -> tuple[int, int]:
        if pos + 4 > len(buf):
            raise CodecError("truncated frame")
        return _LEN.unpack_from(buf, pos)[0], pos + 4

    # -- message encoding ----------------------------------------------------------
    def _encode_body(self, message: Any, out: bytearray) -> None:
        tag = self._by_cls.get(type(message))
        if tag is None:
            raise CodecError(f"unregistered message type {type(message).__name__}")
        raw = tag.encode()
        out += struct.pack(">H", len(raw))
        out += raw
        for field in dataclasses.fields(message):
            self._encode_value(getattr(message, field.name), out)

    def _decode_body(self, buf: memoryview, pos: int) -> tuple[Any, int]:
        if pos + 2 > len(buf):
            raise CodecError("truncated frame")
        (tag_len,) = struct.unpack_from(">H", buf, pos)
        pos += 2
        try:
            tag = bytes(buf[pos : pos + tag_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"malformed message tag: {exc}") from exc
        pos += tag_len
        cls = self._by_tag.get(tag)
        if cls is None:
            raise CodecError(f"unknown message tag {tag!r}")
        kwargs = {}
        for field in dataclasses.fields(cls):
            value, pos = self._decode_value(buf, pos)
            kwargs[field.name] = value
        return cls(**kwargs), pos

    def encode(self, message: Any) -> bytes:
        """Serialize one message (no frame prefix)."""
        out = bytearray()
        self._encode_body(message, out)
        return bytes(out)

    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode`; raises on trailing garbage."""
        return self.decode_view(memoryview(data))

    def decode_view(self, buf: memoryview) -> Any:
        """Decode one message straight out of a memoryview (zero-copy
        entry point: no frame-body materialization before decoding)."""
        message, pos = self._decode_body(buf, 0)
        if pos != len(buf):
            raise CodecError(f"{len(buf) - pos} trailing bytes after message")
        return message

    def encoded_size(self, message: Any) -> int:
        """Real payload bytes of ``message`` -- the runtime's metric unit.

        Diagnostic helper only: the transports never call this, they
        meter the length of the one encode they already perform per send
        (see ``Transport._encode_and_record``).
        """
        return len(self.encode(message))

    # -- framing -------------------------------------------------------------------
    def encode_frame(self, message: Any) -> bytes:
        """Length-prefixed encoding suitable for a byte stream.

        Built in a single buffer: the 4-byte prefix is reserved up front
        and patched after the body is appended, avoiding the
        concatenation copy of ``frame(encode(message))``.
        """
        out = bytearray(_LEN.size)
        self._encode_body(message, out)
        _LEN.pack_into(out, 0, len(out) - _LEN.size)
        return bytes(out)

    def decode_frame(self, frame: bytes) -> Any:
        """Decode one complete length-prefixed frame."""
        if len(frame) < 4:
            raise CodecError("short frame")
        (n,) = _LEN.unpack_from(frame, 0)
        if len(frame) != 4 + n:
            raise CodecError("frame length mismatch")
        return self.decode(frame[4:])


def frame(body: bytes) -> bytes:
    """Wrap an encoded message body in the 4-byte length prefix.

    The single definition of the stream framing -- the TCP transport and
    :class:`FrameAssembler` both build on it.
    """
    return _LEN.pack(len(body)) + body


async def read_frame_body(reader) -> bytes:
    """Read one framed message body from an ``asyncio.StreamReader``.

    Raises ``asyncio.IncompleteReadError`` at EOF, like ``readexactly``.
    """
    header = await reader.readexactly(_LEN.size)
    (n,) = _LEN.unpack(header)
    return await reader.readexactly(n)


class FrameAssembler:
    """Incremental frame cutter for a TCP byte stream.

    Feed arbitrary chunks; iterate complete message bodies as they become
    available.  Keeps at most one partial frame of state.
    """

    def __init__(self, registry: CodecRegistry) -> None:
        self.registry = registry
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> Iterator[Any]:
        self._buffer += chunk
        while True:
            if len(self._buffer) < 4:
                return
            (n,) = _LEN.unpack_from(self._buffer, 0)
            if len(self._buffer) < 4 + n:
                return
            # Decode straight from the stream buffer (zero-copy): both
            # views must be released before the buffer can shrink (on
            # errors the traceback would otherwise keep the slice's
            # export alive).  The frame is consumed even when decoding
            # raises, so one bad frame surfaces one error instead of
            # wedging the stream.
            view = memoryview(self._buffer)
            body = view[4 : 4 + n]
            try:
                message = self.registry.decode_view(body)
            finally:
                body.release()
                view.release()
                del self._buffer[: 4 + n]
            yield message

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def default_registry() -> CodecRegistry:
    """A registry pre-loaded with every protocol message type in the repo.

    Nested payload dataclasses (Reed-Solomon fragments, signature shares,
    DLEQ proofs) are registered too so AVID and beacon traffic round-trips.
    """
    from ..codes.reed_solomon import BlockFragment, Fragment
    from ..crypto.dleq import DleqProof
    from ..crypto.threshold_sig import SignatureShare
    from ..protocols.avid import AvidDisperse, AvidEcho, AvidFragments, AvidRetrieveRequest
    from ..protocols.checkpointing import CheckpointShare, CheckpointVote
    from ..protocols.common_coin import CoinShareMsg
    from ..protocols.ec_broadcast import EcFragment, EcRequest
    from ..protocols.reliable_broadcast import RbcEcho, RbcReady, RbcSend
    from ..protocols.smr import BatchEcho, BatchReady, BatchSend
    from ..protocols.vaba import Commit, Decide, Proposal, Vote, Vouch
    from ..recovery.smr import StateSyncRequest, StateSyncResponse

    registry = CodecRegistry()
    for cls in (
        # nested payloads
        Fragment,
        BlockFragment,
        DleqProof,
        SignatureShare,
        # Bracha RBC
        RbcSend,
        RbcEcho,
        RbcReady,
        # SMR batches
        BatchSend,
        BatchEcho,
        BatchReady,
        # AVID
        AvidDisperse,
        AvidEcho,
        AvidRetrieveRequest,
        AvidFragments,
        # randomness beacon
        CoinShareMsg,
        # checkpointing
        CheckpointVote,
        CheckpointShare,
        # erasure-coded broadcast
        EcRequest,
        EcFragment,
        # VABA
        Proposal,
        Vote,
        Commit,
        Decide,
        Vouch,
        # crash recovery (always registered: the fault-free wire format
        # is unchanged because these are only ever sent after a restart)
        StateSyncRequest,
        StateSyncResponse,
    ):
        registry.register(cls)
    return registry
