"""Host one unmodified :class:`~repro.sim.process.Party` on an event loop.

The sim's parties talk to a ``Network`` duck type: ``send``,
``broadcast``, and ``party_ids``.  :class:`NodeNetwork` implements that
surface over the runtime, so every existing protocol subclass runs live
without modification -- handler code stays synchronous and single-
threaded (one dispatch task per node), exactly like the simulator's
delivery model.

Outbound sends are buffered on a queue and shipped by a sender task;
that keeps ``Party`` handlers non-async while the actual transport I/O
awaits freely.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, Sequence

from ..sim.process import Party
from .transport import Transport

__all__ = ["NodeNetwork", "RuntimeNode"]


class NodeNetwork:
    """The ``Network`` facade a hosted party sees.

    Implements the attribute surface protocols actually use
    (``send``/``broadcast``/``party_ids``); anything simulator-specific
    is deliberately absent.
    """

    def __init__(self, node: "RuntimeNode", peer_ids: Sequence[int]) -> None:
        self._node = node
        self._peer_ids = sorted(peer_ids)

    @property
    def party_ids(self) -> list[int]:
        return list(self._peer_ids)

    def send(self, src: int, dst: int, message: Any) -> None:
        if dst not in self._peer_ids:
            raise KeyError(f"unknown destination {dst}")
        self._node.queue_send(dst, message)

    def broadcast(self, src: int, message: Any, *, include_self: bool = True) -> None:
        for dst in self._peer_ids:
            if dst == src and not include_self:
                continue
            self._node.queue_send(dst, message)


class RuntimeNode:
    """One cluster member: a party, its inbox/outbox, and two pump tasks."""

    def __init__(
        self, party: Party, transport: Transport, peer_ids: Sequence[int]
    ) -> None:
        self.party = party
        self.pid = party.pid
        self.transport = transport
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.messages_dispatched = 0
        #: first exception raised by a pump task (send/dispatch), if any --
        #: surfaced by the cluster so codec/handler errors fail loudly
        #: instead of silently stalling the node
        self.failure: Optional[BaseException] = None
        self._pending_sends = 0
        self._pending_dispatch = 0
        self._tasks: list[asyncio.Task] = []
        party.network = NodeNetwork(self, peer_ids)
        transport.bind(self.pid, self._on_delivery)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self._tasks = [
            asyncio.ensure_future(self._sender_loop()),
            asyncio.ensure_future(self._dispatch_loop()),
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    def detach(self) -> list[asyncio.Task]:
        """Synchronously cancel the pump tasks (epoch retirement).

        Callable from inside protocol callbacks -- cancellation only lands
        at the tasks' next ``await``, so the caller's synchronous
        continuation completes first.  The caller must gather the returned
        tasks during shutdown.
        """
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        return tasks

    # -- data path ----------------------------------------------------------------
    def queue_send(self, dst: int, message: Any) -> None:
        """Called synchronously from inside party handlers."""
        self._pending_sends += 1
        self.outbox.put_nowait((dst, message))

    def _on_delivery(self, src: int, message: Any) -> None:
        """Transport delivery callback."""
        self._pending_dispatch += 1
        self.inbox.put_nowait((src, message))

    async def _sender_loop(self) -> None:
        while True:
            dst, message = await self.outbox.get()
            try:
                await self.transport.send(self.pid, dst, message)
            except Exception as exc:  # noqa: BLE001 -- recorded, then re-raised
                if self.failure is None:
                    self.failure = exc
                raise
            finally:
                self._pending_sends -= 1

    async def _dispatch_loop(self) -> None:
        while True:
            src, message = await self.inbox.get()
            try:
                self.party.receive(message, src)
            except Exception as exc:  # noqa: BLE001 -- recorded, then re-raised
                if self.failure is None:
                    self.failure = exc
                raise
            finally:
                self.messages_dispatched += 1
                self._pending_dispatch -= 1

    @property
    def idle(self) -> bool:
        """No inbound or outbound work queued or being pumped right now."""
        return self._pending_sends == 0 and self._pending_dispatch == 0
