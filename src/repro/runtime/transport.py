"""Live transports: asyncio queues in-process, asyncio streams over TCP.

Both implementations push every message through the
:class:`~repro.runtime.codec.CodecRegistry` -- even the in-process one --
so byte metrics measure real serialized payloads and a protocol that
works on :class:`InProcTransport` is guaranteed to serialize for
:class:`TcpTransport`.

Delivery semantics match the simulator's network: reliable point-to-point
links with arbitrary (but finite) delays, no ordering guarantee across
links.  Fault injection (:class:`~repro.runtime.faults.FaultController`)
is consulted at two points, identically for every transport: terminal
faults (crash, partition, weather loss) at the send point via
``condemn``, re-timing faults (delay, jitter, duplication) plus an
in-flight terminal re-check at the delivery point via ``decide``.
"""

from __future__ import annotations

import asyncio
import struct
from collections import deque
from typing import Any, Callable, Optional

from ..recovery.backoff import BackoffSchedule
from ..recovery.heartbeat import HeartbeatMonitor
from .codec import CodecRegistry, read_frame_body
from .faults import FaultController

__all__ = ["Transport", "InProcTransport", "TcpTransport", "ProcMeshTransport"]

_HELLO = struct.Struct(">I")
#: proc-mesh hello: (dialer pid, dialer incarnation) -- the incarnation
#: lets a receiver reset its dedup watermark when a peer comes back
#: reborn (its link sequence numbers restart from 1)
_MESH_HELLO = struct.Struct(">II")
#: proc-mesh per-frame sequence header; seq 0 is reserved for heartbeats
_SEQ = struct.Struct(">Q")
#: persist every Nth watermark advance (recovery only needs an
#: approximate floor -- protocol handlers absorb redelivered duplicates)
_WATERMARK_EVERY = 16
#: an empty frame body's length prefix (heartbeats carry no payload)
_LEN_ZERO = struct.pack(">I", 0)
#: default cap on parked frames per destination in the proc mesh's
#: self-healing retry queue (drop-oldest beyond it; see ``_park``)
DEFAULT_RETRY_LIMIT = 256

#: synchronous delivery callback: ``handler(src, message)``
Handler = Callable[[int, Any], None]
#: metrics hook: ``record(type_name, encoded_size)`` called once per send
Recorder = Callable[[str, int], None]


class Transport:
    """Interface both transports implement, plus the shared delivery path."""

    def __init__(
        self,
        registry: CodecRegistry,
        *,
        faults: Optional[FaultController] = None,
        record: Optional[Recorder] = None,
    ) -> None:
        self.registry = registry
        self.faults = faults or FaultController()
        self._record = record
        self._handlers: dict[int, Handler] = {}
        self._delayed_tasks: set[asyncio.Task] = set()
        #: messages sent but not yet resolved (delivered, dropped, or lost
        #: to shutdown) -- lets the cluster detect true quiescence even
        #: while messages sit in socket buffers or delay timers
        self.in_flight = 0
        #: first delivery-path exception (e.g. a frame that fails to
        #: decode) -- surfaced by the cluster instead of a silent stall
        self.failure: Optional[BaseException] = None

    # -- wiring -------------------------------------------------------------------
    def bind(self, pid: int, handler: Handler) -> None:
        """Attach the delivery callback for node ``pid`` (before start).

        Transports that support node replacement (the epoch service
        retiring one committee's nodes and binding the next's) accept a
        ``bind`` after :meth:`unbind` of the same pid, even mid-run.
        """
        if pid in self._handlers:
            raise ValueError(f"duplicate transport binding for node {pid}")
        self._handlers[pid] = handler

    def unbind(self, pid: int) -> None:
        """Detach node ``pid`` so the id can be rebound (epoch rotation).

        Messages already addressed to the node are dropped, exactly as if
        it had crashed; subclasses additionally release any per-node
        delivery machinery.
        """
        self._handlers.pop(pid, None)

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._handlers)

    # -- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        raise NotImplementedError

    async def stop(self) -> None:
        for task in list(self._delayed_tasks):
            task.cancel()
        if self._delayed_tasks:
            await asyncio.gather(*self._delayed_tasks, return_exceptions=True)
        self._delayed_tasks.clear()

    async def send(self, src: int, dst: int, message: Any) -> int:
        """Serialize and ship one message; returns payload bytes sent."""
        raise NotImplementedError

    @property
    def quiescent(self) -> bool:
        """True when no sent message is still awaiting its fate."""
        return self.in_flight == 0

    # -- shared helpers -------------------------------------------------------------
    def _encode_and_record(self, message: Any) -> bytes:
        """The single encode of a message's lifetime on the send side;
        the byte metric is the length of this very buffer (no second
        metering encode anywhere)."""
        data = self.registry.encode(message)
        if self._record is not None:
            self._record(type(message).__name__, len(data))
        self.in_flight += 1
        return data

    def _encode_frame_and_record(self, message: Any) -> bytes:
        """Stream-transport variant: one single-buffer *framed* encode;
        metered bytes exclude the 4-byte length prefix so both transports
        report identical payload counts."""
        framed = self.registry.encode_frame(message)
        if self._record is not None:
            self._record(type(message).__name__, len(framed) - 4)
        self.in_flight += 1
        return framed

    def _resolve(self) -> None:
        self.in_flight -= 1

    def _deliver(self, src: int, dst: int, data: bytes) -> None:
        """Fault check, decode, dispatch -- the common delivery point.

        Weather duplication delivers ``decision.duplicates`` extra copies
        of the message as distinct later arrivals (each holding its own
        in-flight slot), matching the sim network's dispatch."""
        handler = self._handlers.get(dst)
        decision = self.faults.decide(src, dst)
        if handler is None or not decision.deliver:
            self._resolve()
            return
        try:
            message = self.registry.decode(data)
        except Exception as exc:  # noqa: BLE001 -- recorded, then re-raised
            if self.failure is None:
                self.failure = exc
            self._resolve()
            raise
        for copy in range(decision.duplicates):
            self.in_flight += 1
            self._dispatch_later(
                handler, src, message, decision.delay + 0.005 * (copy + 1)
            )
        if decision.delay > 0:
            self._dispatch_later(handler, src, message, decision.delay)
        else:
            try:
                handler(src, message)
            finally:
                self._resolve()

    def _dispatch_later(
        self, handler: Handler, src: int, message: Any, delay: float
    ) -> None:
        task = asyncio.ensure_future(
            self._deliver_later(handler, src, message, delay)
        )
        self._delayed_tasks.add(task)
        task.add_done_callback(self._delayed_tasks.discard)

    async def _deliver_later(
        self, handler: Handler, src: int, message: Any, delay: float
    ) -> None:
        try:
            await asyncio.sleep(delay)
            handler(src, message)
        finally:
            self._resolve()


class InProcTransport(Transport):
    """All nodes on one event loop, linked by per-destination queues.

    The fast deterministic backend: no sockets, no syscalls, FIFO per
    destination.  Messages still round-trip the codec, so byte counts and
    serialization failures are identical to TCP.
    """

    def __init__(
        self,
        registry: CodecRegistry,
        *,
        faults: Optional[FaultController] = None,
        record: Optional[Recorder] = None,
    ) -> None:
        super().__init__(registry, faults=faults, record=record)
        self._queues: dict[int, asyncio.Queue] = {}
        self._pumps: dict[int, asyncio.Task] = {}
        self._started = False

    async def start(self) -> None:
        self._started = True
        for pid in self.node_ids:
            if pid not in self._queues:
                self._attach(pid)

    def _attach(self, pid: int) -> None:
        self._queues[pid] = asyncio.Queue()
        self._pumps[pid] = asyncio.ensure_future(self._pump(pid))

    def bind(self, pid: int, handler: Handler) -> None:
        super().bind(pid, handler)
        # Mid-run bind (epoch rotation): wire the queue and pump now; the
        # usual pre-start binds get theirs in start().
        if self._started:
            self._attach(pid)

    def unbind(self, pid: int) -> None:
        super().unbind(pid)
        pump = self._pumps.pop(pid, None)
        if pump is not None:
            pump.cancel()
        queue = self._queues.pop(pid, None)
        if queue is not None:
            # Queued messages die with the node; resolve them so
            # quiescence tracking doesn't count them in flight forever.
            while not queue.empty():
                queue.get_nowait()
                self._resolve()

    async def stop(self) -> None:
        self._started = False
        pumps = list(self._pumps.values())
        for task in pumps:
            task.cancel()
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)
        self._pumps.clear()
        self._queues.clear()
        await super().stop()

    async def send(self, src: int, dst: int, message: Any) -> int:
        queue = self._queues.get(dst)
        if queue is None:
            raise KeyError(f"unknown destination {dst}")
        data = self._encode_and_record(message)
        # Terminal faults fire at the send point (metrics already counted,
        # matching the sim): a condemned message never enters the queue.
        if self.faults.condemn(src, dst):
            self._resolve()
            return len(data)
        queue.put_nowait((src, data))
        return len(data)

    async def _pump(self, pid: int) -> None:
        queue = self._queues[pid]
        while True:
            src, data = await queue.get()
            self._deliver(src, pid, data)


class TcpTransport(Transport):
    """One TCP listener per node; lazily-dialed full mesh of streams.

    Frames are length-prefixed codec payloads; each outbound connection
    starts with a 4-byte hello carrying the dialer's node id, after which
    the link is identified and frames need no per-message source field.
    Ports are ephemeral (bound to ``host`` with port 0) and discoverable
    through :meth:`address` -- the cluster orchestrator shares them.
    """

    def __init__(
        self,
        registry: CodecRegistry,
        *,
        faults: Optional[FaultController] = None,
        record: Optional[Recorder] = None,
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__(registry, faults=faults, record=record)
        self.host = host
        #: dial/write attempts per send before the error propagates; the
        #: sleeps between attempts follow a seeded-jitter backoff
        self.send_retries = 3
        self.reconnects = 0
        self._backoff = BackoffSchedule(base=0.02, max_delay=0.5, seed=host)
        self._servers: dict[int, asyncio.AbstractServer] = {}
        self._ports: dict[int, int] = {}
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._reader_tasks: set[asyncio.Task] = set()

    def address(self, pid: int) -> tuple[str, int]:
        """The listening ``(host, port)`` of node ``pid`` (after start)."""
        return (self.host, self._ports[pid])

    async def start(self) -> None:
        for pid in self.node_ids:
            server = await asyncio.start_server(
                lambda r, w, dst=pid: self._accept(dst, r, w), self.host, 0
            )
            self._servers[pid] = server
            self._ports[pid] = server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        for writer in self._writers.values():
            writer.close()
        for writer in list(self._writers.values()):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        self._reader_tasks.clear()
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        self._ports.clear()
        await super().stop()

    # -- outbound -----------------------------------------------------------------
    async def send(self, src: int, dst: int, message: Any) -> int:
        if dst not in self._ports:
            raise KeyError(f"unknown destination {dst}")
        framed = self._encode_frame_and_record(message)
        if self.faults.condemn(src, dst):
            self._resolve()
            return len(framed) - 4
        # Self-healing: a dropped stream (peer restarting its listener, a
        # flaky localhost accept queue) is retried on a fresh connection
        # with backoff before the failure propagates to the node.
        attempt = 0
        while True:
            try:
                writer = await self._writer_for(src, dst)
                writer.write(framed)
                await writer.drain()
                self._backoff.reset()
                return len(framed) - 4
            except (ConnectionError, OSError):
                self._writers.pop((src, dst), None)
                attempt += 1
                if attempt > self.send_retries:
                    self._resolve()
                    raise
                self.reconnects += 1
                await asyncio.sleep(self._backoff.next_delay())

    async def _writer_for(self, src: int, dst: int) -> asyncio.StreamWriter:
        key = (src, dst)
        writer = self._writers.get(key)
        if writer is None or writer.is_closing():
            host, port = self.address(dst)
            _, writer = await asyncio.open_connection(host, port)
            writer.write(_HELLO.pack(src))
            await writer.drain()
            self._writers[key] = writer
        return writer

    # -- inbound ------------------------------------------------------------------
    def _accept(
        self, dst: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._read_loop(dst, reader, writer))
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)

    async def _read_loop(
        self, dst: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await reader.readexactly(_HELLO.size)
            (src,) = _HELLO.unpack(hello)
            while True:
                data = await read_frame_body(reader)
                self._deliver(src, dst, data)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer hung up; the cluster is stopping or the node crashed
        finally:
            writer.close()


class ProcMeshTransport(Transport):
    """One node's endpoint of a process-per-party TCP mesh.

    The ``proc`` backend hosts every :class:`~repro.runtime.node.RuntimeNode`
    in its own OS process; this transport is the single-node slice each
    worker owns.  Wire format and handshake are :class:`TcpTransport`'s
    (length-prefixed codec frames behind a 4-byte dialer-id hello), so a
    protocol that runs on ``tcp`` runs on ``proc`` unchanged.

    The listener binds ``(host, 0)`` and :meth:`listen` returns the
    kernel-assigned port; the parent ProcCluster collects every worker's
    address over the control pipe and broadcasts the peer map back, so
    concurrent clusters can never collide on a hardcoded port.

    Quiescence is necessarily distributed: a sender cannot observe remote
    delivery, so an outbound frame is resolved once drained to the kernel
    and the *receiver* re-accounts it on arrival.  The parent detects
    global quiescence by frame-count conservation -- every worker idle and
    ``sum(frames_sent) == sum(frames_received)`` across two consecutive
    polls -- which is why both counters are public here.

    Fault injection is split by direction: each worker installs the full
    fault plan into its local :class:`FaultController`, the *sender*
    evaluates ``condemn(local, dst)`` (terminal faults, incl. weather
    loss), and the *receiver* evaluates ``decide(src, local)`` (delays,
    duplication, and the in-flight terminal re-check).  Each message is
    judged exactly once per point, so drop/delay counts sum across
    workers to exactly the single-process totals.

    Self-healing (the crash-recovery layer): every non-self frame carries
    an 8-byte per-link sequence number; the receiver keeps a per-source
    watermark and silently drops redelivered duplicates.  A send that
    hits a dead peer parks the framed bytes on a per-destination retry
    queue drained by a backoff task (bounded exponential, seeded jitter),
    so a SIGKILLed-and-respawned worker's links heal without losing the
    frames that failed at the socket.  The hello carries the dialer's
    *incarnation*: a reborn peer restarts its sequence numbers, and the
    higher incarnation tells the receiver to reset that source's
    watermark instead of discarding the fresh traffic as duplicates.
    Sequence 0 frames are heartbeats -- uncounted, undelivered, feeding
    the suspect/alive failure detector.
    """

    def __init__(
        self,
        registry: CodecRegistry,
        *,
        faults: Optional[FaultController] = None,
        record: Optional[Recorder] = None,
        host: str = "127.0.0.1",
        incarnation: int = 0,
    ) -> None:
        super().__init__(registry, faults=faults, record=record)
        self.host = host
        self.local_pid: Optional[int] = None
        self.port: Optional[int] = None
        #: bumped by the parent on every respawn of this node
        self.incarnation = incarnation
        #: cumulative frames shipped to / accepted from the mesh (self-sends
        #: count on both sides) -- the parent's conservation check.  Retry
        #: resends and dropped duplicates deliberately do not count.
        self.frames_sent = 0
        self.frames_received = 0
        self.duplicates_dropped = 0
        self.reconnects = 0
        #: cap on parked frames per destination; beyond it the *oldest*
        #: parked frame is discarded (counted in ``retries_dropped``) so a
        #: long partition under load cannot grow memory without bound.
        #: Oldest-first keeps what the reborn peer is most likely to still
        #: need; protocol retransmission covers the discarded prefix.
        self.retry_limit = DEFAULT_RETRY_LIMIT
        self.retries_dropped = 0
        #: optional persistence hook ``(src, seq)`` for receive watermarks
        #: (a recoverable party's WAL); sampled every ``_WATERMARK_EVERY``
        self.watermark_sink: Optional[Callable[[int, int], None]] = None
        self.heartbeat: Optional[HeartbeatMonitor] = None
        self._peers: dict[int, tuple[str, int]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        #: per-destination outbound sequence counters (start at 1; 0 = heartbeat)
        self._send_seq: dict[int, int] = {}
        #: per-source receive watermarks (highest seq delivered)
        self._watermarks: dict[int, int] = {}
        self._peer_incarnations: dict[int, int] = {}
        #: per-destination framed bytes awaiting a live connection
        self._retry: dict[int, deque] = {}
        self._retry_tasks: dict[int, asyncio.Task] = {}
        self._heartbeat_task: Optional[asyncio.Task] = None

    async def listen(self) -> int:
        """Bind the kernel-assigned port and return it (before peers)."""
        self._server = await asyncio.start_server(self._accept, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def configure(self, local_pid: int, peers: dict[int, tuple[str, int]]) -> None:
        """Install the identity and peer address map the parent collected."""
        self.local_pid = local_pid
        self._peers = {int(pid): (host, int(port)) for pid, (host, port) in peers.items()}

    def reconfigure(self, peers: dict[int, tuple[str, int]]) -> None:
        """Adopt a refreshed peer map (a respawned worker has a new
        kernel-assigned port).  Stale writers are dropped so the next
        send -- or the retry task already backing off -- re-dials the
        reborn peer; parked retry frames survive and flush there."""
        for pid, (host, port) in (
            {int(p): (h, int(pt)) for p, (h, pt) in peers.items()}
        ).items():
            if self._peers.get(pid) != (host, port):
                self._peers[pid] = (host, port)
                writer = self._writers.pop(pid, None)
                if writer is not None:
                    writer.close()

    def restore_watermarks(self, watermarks: dict[int, int]) -> None:
        """Seed receive watermarks from a replayed WAL (restart path).

        The floor may lag reality by up to ``_WATERMARK_EVERY`` frames;
        the protocol layer's idempotent handlers absorb the resulting
        duplicates, so an approximate floor is sufficient."""
        for src, seq in watermarks.items():
            self._watermarks[int(src)] = max(
                self._watermarks.get(int(src), 0), int(seq)
            )

    def enable_heartbeat(
        self,
        *,
        interval: float = 0.2,
        suspect_after: int = 3,
        on_suspect: Optional[Callable[[int], None]] = None,
        on_alive: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Start heartbeat emission and suspect/alive detection (after
        :meth:`configure`; heartbeats ride existing connections only)."""
        self.heartbeat = HeartbeatMonitor(
            (pid for pid in self._peers if pid != self.local_pid),
            interval=interval,
            suspect_after=suspect_after,
            on_suspect=on_suspect,
            on_alive=on_alive,
        )
        loop = asyncio.get_running_loop()
        # grace period: every peer starts "just seen" so the detector
        # measures silence from now, not from the monotonic-clock epoch
        now = loop.time()
        for pid in self._peers:
            if pid != self.local_pid:
                self.heartbeat.observe(pid, now)
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop(loop))

    async def _heartbeat_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        assert self.heartbeat is not None
        beat = _SEQ.pack(0) + _LEN_ZERO
        while True:
            await asyncio.sleep(self.heartbeat.interval)
            now = loop.time()
            self.heartbeat.check(now)
            for dst, writer in list(self._writers.items()):
                if writer.is_closing():
                    continue
                try:
                    writer.write(beat)
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    async def start(self) -> None:
        if self._server is None:
            await self.listen()

    async def stop(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._heartbeat_task = None
        for task in list(self._retry_tasks.values()):
            task.cancel()
        if self._retry_tasks:
            await asyncio.gather(
                *self._retry_tasks.values(), return_exceptions=True
            )
        self._retry_tasks.clear()
        for backlog in self._retry.values():
            # frames die with the transport; close their in-flight slots
            for _ in backlog:
                self._resolve()
            backlog.clear()
        for writer in self._writers.values():
            writer.close()
        for writer in list(self._writers.values()):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        self._reader_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await super().stop()

    # -- outbound -----------------------------------------------------------------
    async def send(self, src: int, dst: int, message: Any) -> int:
        if dst == self.local_pid:
            # Self-sends short-circuit the socket but still round-trip the
            # codec, and still count on both frame ledgers so the parent's
            # conservation check balances.
            data = self._encode_and_record(message)
            if self.faults.condemn(src, dst):
                self._resolve()
                return len(data)
            self.frames_sent += 1
            self.frames_received += 1
            self._deliver(src, dst, data)
            return len(data)
        if dst not in self._peers:
            raise KeyError(f"unknown destination {dst}")
        framed = self._encode_frame_and_record(message)
        # Terminal faults fire before sequencing: a condemned frame never
        # touches the frame ledgers, so the parent's sent == received
        # conservation check stays balanced without transmitting it.
        if self.faults.condemn(src, dst):
            self._resolve()
            return len(framed) - 4
        seq = self._send_seq.get(dst, 0) + 1
        self._send_seq[dst] = seq
        framed = _SEQ.pack(seq) + framed
        self.frames_sent += 1
        backlog = self._retry.get(dst)
        if backlog:
            # keep per-link FIFO: never overtake frames already parked
            self._park(dst, framed)
            return len(framed) - _SEQ.size - 4
        try:
            writer = await self._writer_for(dst)
            writer.write(framed)
            await writer.drain()
        except (ConnectionError, OSError):
            # Peer is down (crashed, restarting, or mid-respawn): park the
            # frame for the backoff task instead of failing the node.  The
            # in-flight slot stays open, so the worker does not look idle
            # while frames await redelivery.
            self._writers.pop(dst, None)
            self._park(dst, framed)
            return len(framed) - _SEQ.size - 4
        # Drained to the kernel: the receiving worker's in_flight takes
        # over the moment the frame arrives, so resolve locally (the
        # frame's fate is no longer observable here).
        self._resolve()
        return len(framed) - _SEQ.size - 4

    def _park(self, dst: int, framed: bytes) -> None:
        """Queue a frame for the backoff task, bounding the backlog.

        Drop-oldest: the discarded frame's in-flight slot closes (its
        fate is decided -- gone) and ``retries_dropped`` counts it, so
        tests and postmortems can see a partition shedding load."""
        backlog = self._retry.setdefault(dst, deque())
        backlog.append(framed)
        while len(backlog) > self.retry_limit:
            backlog.popleft()
            self.retries_dropped += 1
            self.faults.trace.append((self.local_pid, dst, "retry-dropped"))
            self._resolve()
        self._ensure_retry_task(dst)

    def _ensure_retry_task(self, dst: int) -> None:
        task = self._retry_tasks.get(dst)
        if task is None or task.done():
            self._retry_tasks[dst] = asyncio.ensure_future(self._retry_loop(dst))

    async def _retry_loop(self, dst: int) -> None:
        """Drain ``dst``'s parked frames once the link heals.

        Bounded exponential backoff with jitter seeded per (node, link),
        so a cluster-wide reconnect storm against a reborn worker is
        spread instead of synchronized.  Runs until the backlog is empty;
        frames flush in sequence order and the receiver's watermark
        drops any the crashed peer already processed.
        """
        backoff = BackoffSchedule(
            base=0.02, max_delay=0.5, seed=f"{self.local_pid}->{dst}"
        )
        while True:
            backlog = self._retry.get(dst)
            if not backlog:
                return
            await asyncio.sleep(backoff.next_delay())
            try:
                writer = await self._writer_for(dst)
                while backlog:
                    framed = backlog[0]
                    writer.write(framed)
                    await writer.drain()
                    backlog.popleft()
                    self._resolve()
                backoff.reset()
            except (ConnectionError, OSError):
                self._writers.pop(dst, None)
                self.reconnects += 1

    async def _writer_for(self, dst: int) -> asyncio.StreamWriter:
        writer = self._writers.get(dst)
        if writer is None or writer.is_closing():
            host, port = self._peers[dst]
            _, writer = await asyncio.open_connection(host, port)
            writer.write(_MESH_HELLO.pack(self.local_pid, self.incarnation))
            await writer.drain()
            self._writers[dst] = writer
        return writer

    # -- inbound ------------------------------------------------------------------
    def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._read_loop(reader, writer))
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)

    async def _read_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await reader.readexactly(_MESH_HELLO.size)
            src, incarnation = _MESH_HELLO.unpack(hello)
            if incarnation > self._peer_incarnations.get(src, 0):
                # the peer was reborn: its sequence numbers restart, so
                # the old watermark would wrongly discard all new traffic
                self._peer_incarnations[src] = incarnation
                self._watermarks[src] = 0
            loop = asyncio.get_running_loop()
            while True:
                seq_raw = await reader.readexactly(_SEQ.size)
                (seq,) = _SEQ.unpack(seq_raw)
                data = await read_frame_body(reader)
                if self.heartbeat is not None:
                    self.heartbeat.observe(src, loop.time())
                if seq == 0:
                    continue  # heartbeat: observed above, nothing to deliver
                if seq <= self._watermarks.get(src, 0):
                    # redelivered from a retry queue; the first copy was
                    # already counted and dispatched
                    self.duplicates_dropped += 1
                    continue
                self._watermarks[src] = seq
                if self.watermark_sink is not None and seq % _WATERMARK_EVERY == 0:
                    self.watermark_sink(src, seq)
                self.frames_received += 1
                # The sender resolved on drain; re-open the in-flight slot
                # here so delays/drops settle through the shared _deliver.
                self.in_flight += 1
                self._deliver(src, self.local_pid, data)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer hung up; the cluster is stopping or the node crashed
        finally:
            writer.close()
