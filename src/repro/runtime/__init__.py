"""Live asyncio execution runtime (second backend beside :mod:`repro.sim`).

Runs the *same* :class:`~repro.sim.process.Party` subclasses that the
discrete-event simulator executes, but over real concurrent transports:
in-process asyncio queues (:class:`InProcTransport`) for fast
deterministic tests, or TCP streams (:class:`TcpTransport`) with one
listener per node for wall-clock measurements.  Messages are serialized
through a registry-based binary codec, so reported byte counts are real
wire payloads rather than the sim's estimates.
"""

from .cluster import TRANSPORTS, Cluster, RuntimeMetrics, run_cluster
from .codec import CodecError, CodecRegistry, FrameAssembler, default_registry
from .faults import DeliveryDecision, FaultController
from .node import NodeNetwork, RuntimeNode
from .transport import InProcTransport, ProcMeshTransport, TcpTransport, Transport

__all__ = [
    "Cluster",
    "RuntimeMetrics",
    "run_cluster",
    "TRANSPORTS",
    "CodecError",
    "CodecRegistry",
    "FrameAssembler",
    "default_registry",
    "DeliveryDecision",
    "FaultController",
    "NodeNetwork",
    "RuntimeNode",
    "Transport",
    "InProcTransport",
    "TcpTransport",
    "ProcMeshTransport",
]
