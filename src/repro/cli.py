"""Command-line interface mirroring the paper's prototype solver.

The Swiper prototype is a CLI with a ``--linear`` flag (Section 3.1);
this module reproduces that interface and extends it with a live-cluster
runner::

    python -m repro.cli wr --alpha-w 1/3 --alpha-n 1/2 --weights 40 25 15 10
    python -m repro.cli wq --beta-w 2/3 --beta-n 1/2 --weights-file stake.txt
    python -m repro.cli ws --alpha 1/3 --beta 1/2 --chain tezos --linear
    python -m repro.cli cluster rbc --n 7 --transport tcp --weights-file stake.txt
    python -m repro.cli cluster smr --n 7 --epochs 2 --json
    python -m repro.cli scenario --list
    python -m repro.cli scenario zipf-stake-smr --backend inproc --json

Weights come from ``--weights`` (inline), ``--weights-file`` (one number
per line), or ``--chain`` (a calibrated snapshot); all three are parsed
by the shared :mod:`repro.api.weight_source` module and materialize as a
:class:`repro.api.Committee`, which also centralizes feasibility
validation.  Output is the ticket assignment summary, or the full
per-party list with ``--full-output``; ``--json`` switches every
subcommand to machine-readable output.  Invalid parameter combinations
exit with status 2 and -- under ``--json`` -- emit one uniform
``{"error": ...}`` object on stderr.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from fractions import Fraction
from typing import Optional, Sequence

from .api import Committee, weight_source_from_args
from .core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
)

__all__ = ["main", "build_parser"]

#: solver policies selectable from the command line (registry names)
_CLI_POLICIES = ("swiper", "swiper-linear", "milp", "brute-force")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Swiper: approximate solver for weight reduction problems",
    )
    sub = parser.add_subparsers(dest="problem", required=True)

    def add_weight_source(p: argparse.ArgumentParser, *, required: bool) -> None:
        source = p.add_mutually_exclusive_group(required=required)
        source.add_argument(
            "--weights", nargs="+", help="inline weights (ints, floats, or a/b)"
        )
        source.add_argument(
            "--weights-file", help="file with one weight per line"
        )
        source.add_argument(
            "--chain",
            choices=["aptos", "tezos", "filecoin", "algorand"],
            help="calibrated chain snapshot",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        add_weight_source(p, required=True)
        p.add_argument(
            "--linear",
            action="store_true",
            help="quasilinear mode: quick test only (paper's --linear)",
        )
        p.add_argument(
            "--policy",
            choices=_CLI_POLICIES,
            default=None,
            help="solver policy from the repro.api registry "
            "(default: swiper; --linear implies swiper-linear)",
        )
        p.add_argument(
            "--full-output",
            action="store_true",
            help="print the complete per-party ticket list",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="machine-readable JSON output",
        )

    wr = sub.add_parser("wr", help="Weight Restriction (Problem 1)")
    wr.add_argument("--alpha-w", required=True)
    wr.add_argument("--alpha-n", required=True)
    add_common(wr)

    wq = sub.add_parser("wq", help="Weight Qualification (Problem 2)")
    wq.add_argument("--beta-w", required=True)
    wq.add_argument("--beta-n", required=True)
    add_common(wq)

    ws = sub.add_parser("ws", help="Weight Separation (Problem 3)")
    ws.add_argument("--alpha", required=True)
    ws.add_argument("--beta", required=True)
    add_common(ws)

    cluster = sub.add_parser(
        "cluster",
        help="run a weighted protocol live over the asyncio runtime",
        description=(
            "Execute a protocol over real transports (repro.runtime) and "
            "report message/byte/latency metrics.  With a weight source the "
            "protocol uses weighted quorums (resilience --f-w); without one "
            "it falls back to nominal n = 3t + 1 thresholds."
        ),
    )
    cluster.add_argument(
        "protocol", choices=["rbc", "smr"], help="protocol to execute"
    )
    cluster.add_argument(
        "--n", type=int, default=None, help="cluster size (default: len(weights))"
    )
    cluster.add_argument(
        "--transport",
        choices=["inproc", "tcp", "proc"],
        default="inproc",
        help="live transport backend (proc = one OS process per party)",
    )
    add_weight_source(cluster, required=False)
    cluster.add_argument(
        "--f-w", default="1/3", help="weighted resilience threshold (default 1/3)"
    )
    cluster.add_argument(
        "--payload-size", type=int, default=32, help="bytes per broadcast payload"
    )
    cluster.add_argument(
        "--epochs", type=int, default=1, help="SMR epochs to run (smr only)"
    )
    cluster.add_argument(
        "--timeout", type=float, default=60.0, help="seconds before giving up"
    )
    cluster.add_argument(
        "--crash", type=int, nargs="*", default=[], help="node ids to crash at start"
    )
    cluster.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived epoch service under open-loop load",
        description=(
            "Start an epoch service (repro.service): pipelined SMR slots "
            "over rotating weighted committees, with checkpoint handover "
            "between epochs and an open-loop Poisson workload.  Stake "
            "drifts (--drift) change the weight vector at a given epoch; "
            "small drifts exercise the incremental re-solve fast path.  "
            "Reports ops/sec, latency percentiles, and per-epoch records."
        ),
    )
    add_weight_source(serve, required=False)
    serve.add_argument(
        "--backend",
        choices=["sim", "inproc"],
        default="sim",
        help="execution backend (default: sim -- deterministic virtual time)",
    )
    serve.add_argument(
        "--f-w", default="1/3", help="weighted resilience threshold (default 1/3)"
    )
    serve.add_argument(
        "--rate", type=float, default=100.0, help="Poisson arrival rate (req/s)"
    )
    serve.add_argument(
        "--requests", type=int, default=50, help="total requests to submit"
    )
    serve.add_argument(
        "--payload-size", type=int, default=32, help="bytes per request payload"
    )
    serve.add_argument(
        "--slot-interval",
        type=float,
        default=0.05,
        help="seconds between slot-cut attempts",
    )
    serve.add_argument(
        "--slots-per-epoch",
        type=int,
        default=4,
        help="rotate the committee after this many slots (0 disables)",
    )
    serve.add_argument(
        "--epoch-seconds",
        type=float,
        default=0.0,
        help="rotate the committee after this much scenario time (0 disables)",
    )
    serve.add_argument(
        "--drift",
        action="append",
        default=[],
        metavar="E:I:W",
        help="stake drift: from epoch E on, party I weighs W (repeatable; "
        "I == n appends a new party)",
    )
    serve.add_argument("--seed", type=int, default=0, help="determinism seed")
    serve.add_argument(
        "--timeout", type=float, default=60.0, help="hard stop (scenario seconds)"
    )
    serve.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    scenario = sub.add_parser(
        "scenario",
        help="run a named declarative scenario on a chosen backend",
        description=(
            "Execute a built-in scenario (repro.scenarios) on the "
            "discrete-event simulator or the live runtime and print its "
            "unified metrics record.  --list enumerates the registry."
        ),
    )
    scenario.add_argument(
        "name", nargs="?", default=None, help="scenario name (see --list)"
    )
    scenario.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    scenario.add_argument(
        "--all",
        action="store_true",
        help="run every registry scenario (a sweep; combine with --jobs)",
    )
    scenario.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for an --all sweep (a positive int or 'auto'; "
        "records are byte-identical at any value)",
    )
    scenario.add_argument(
        "--backend",
        choices=["sim", "inproc", "tcp", "proc"],
        default="sim",
        help="execution backend (default: sim; proc = one OS process per party)",
    )
    scenario.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    scenario.add_argument(
        "--timeout", type=float, default=60.0, help="runtime-backend timeout (s)"
    )
    scenario.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="directory for durable per-party write-ahead logs (crash-restart "
        "scenarios persist and recover protocol state here; default: a "
        "run-scoped temporary directory)",
    )
    scenario.add_argument(
        "--save", action="store_true", help="also write the record to results/"
    )
    scenario.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="run a seeded adversarial fuzz campaign (or replay a failure)",
        description=(
            "Sample committees, Byzantine strategies, and protocol mixes "
            "from a seeded RNG, run N episodes, and check the safety "
            "invariants (agreement, validity, liveness, gap-free service "
            "log) on every record.  Violations are persisted as one-line "
            "JSON replay specs; --replay re-runs one byte-identically."
        ),
    )
    fuzz.add_argument(
        "--episodes", type=int, default=50, help="episodes to run (default: 50)"
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    fuzz.add_argument(
        "--backend",
        choices=["sim", "inproc"],
        default="sim",
        help="backend for scenario episodes (default: sim)",
    )
    fuzz.add_argument(
        "--timeout", type=float, default=30.0, help="per-episode timeout (s)"
    )
    fuzz.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for the campaign (a positive int or 'auto'; "
        "the result is byte-identical at any value)",
    )
    fuzz.add_argument(
        "--failures-out",
        default=None,
        metavar="PATH",
        help="write violating replay specs (one JSON line each) to PATH",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="SPEC",
        help="re-run replay specs: a JSON line, @FILE (every line of a "
        "failures file), or @DIR/ (every line of every file in DIR); "
        "exits 0 clean / 1 violations / 2 error",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    return parser


def _fail(args: argparse.Namespace, message) -> int:
    """The one error path every subcommand shares: status 2, and under
    ``--json`` the same ``{"error": ...}`` object (on stderr, so piped
    stdout never mixes records with diagnostics)."""
    if getattr(args, "json", False):
        print(json.dumps({"error": str(message)}), file=sys.stderr)
    else:
        print(f"error: {message}", file=sys.stderr)
    return 2


def _load_committee(args: argparse.Namespace) -> Optional[Committee]:
    """The committee named by the mutually-exclusive weight-source flags
    (``None`` when the subcommand allows running without one)."""
    source = weight_source_from_args(
        weights=args.weights,
        weights_file=args.weights_file,
        chain=getattr(args, "chain", None),
    )
    if source is None:
        return None
    return Committee.from_source(source)


# -- solver subcommands (wr / wq / ws) -------------------------------------------------


def _run_solver_command(args: argparse.Namespace) -> int:
    policy = args.policy or ("swiper-linear" if args.linear else "swiper")
    if args.linear and args.policy not in (None, "swiper-linear"):
        return _fail(args, "--linear conflicts with the chosen --policy")
    try:
        if args.problem == "wr":
            problem = WeightRestriction(args.alpha_w, args.alpha_n)
        elif args.problem == "wq":
            problem = WeightQualification(args.beta_w, args.beta_n)
        else:
            problem = WeightSeparation(args.alpha, args.beta)
        committee = _load_committee(args)
        assert committee is not None  # the source group is required here
        result = committee.solve(problem, policy, verify=False)
    except (ValueError, ZeroDivisionError, OSError) as exc:
        return _fail(args, exc)

    a = result.assignment
    mode = "linear" if policy == "swiper-linear" else "full"
    if args.json:
        payload = {
            "problem": args.problem,
            "problem_repr": str(problem),
            "parties": len(a),
            "mode": mode,
            "policy": result.policy,
            "total_tickets": result.achieved,
            "ticket_bound": _bound_as_json(result.bound),
            "max_per_party": result.max_tickets,
            "ticket_holders": result.holders,
            "solve_seconds": result.elapsed_seconds,
        }
        if args.full_output:
            payload["tickets"] = list(a)
        print(json.dumps(payload))
        return 0

    print(f"problem         : {problem}")
    print(f"parties (n)     : {len(a)}")
    print(f"mode            : {mode}")
    print(f"policy          : {result.policy}")
    print(f"total tickets   : {result.achieved}")
    print(f"theorem bound   : {result.bound}")
    print(f"max per party   : {result.max_tickets}")
    print(f"ticket holders  : {result.holders}")
    print(f"solve time      : {result.elapsed_seconds:.3f}s")
    if args.full_output:
        for i, t in enumerate(a):
            print(f"party {i}: {t}")
    return 0


def _bound_as_json(bound):
    """Theorem bounds may be exact fractions; JSON wants numbers/strings."""
    if isinstance(bound, Fraction):
        return int(bound) if bound.denominator == 1 else str(bound)
    if isinstance(bound, (int, float)):
        return bound
    return str(bound)


# -- cluster subcommand ------------------------------------------------------------


def _run_cluster_proc(args: argparse.Namespace) -> int:
    """``cluster --transport proc``: process-per-party over the scenario
    engine (a single-loop cluster cannot host it).  Quorums are always
    weighted here -- without a weight source the committee is uniform."""
    from .scenarios.harness import run_scenario
    from .scenarios.spec import FaultSpec, ScenarioSpec, WeightSpec, WorkloadSpec

    try:
        committee = _load_committee(args)
        crash = tuple(sorted(set(args.crash)))
        if committee is not None:
            weights = WeightSpec(kind="explicit", values=tuple(committee.int_weights))
            layout = "weighted"
        else:
            if args.n is None:
                raise ValueError("need --n or a weight source (--weights/...)")
            weights = WeightSpec(kind="constant", n=args.n, total=args.n * 100)
            layout = "uniform"
        spec = ScenarioSpec(
            name=f"cluster-{args.protocol}",
            protocol=args.protocol,
            weights=weights,
            f_w=str(args.f_w),
            faults=FaultSpec(crashes=crash),
            workload=WorkloadSpec(
                payload_size=args.payload_size,
                epochs=args.epochs if args.protocol == "smr" else 1,
            ),
        )
        result = run_scenario(spec, backend="proc", timeout=args.timeout)
    except (ValueError, ZeroDivisionError, RuntimeError, OSError, TimeoutError) as exc:
        return _fail(args, exc)

    rec = result.record()
    if args.json:
        print(
            json.dumps(
                {
                    "protocol": args.protocol,
                    "transport": "proc",
                    "layout": layout,
                    "n": rec["n_real"],
                    "crashed": list(crash),
                    "epochs": args.epochs if args.protocol == "smr" else None,
                    "payload_size": args.payload_size,
                    "completed": rec["completed"],
                    "workers": rec["workers"],
                    "metrics": {
                        "messages": rec["messages"],
                        "bytes": rec["bytes"],
                        "by_type": rec["by_type"],
                        "bytes_by_type": rec["bytes_by_type"],
                        "elapsed_seconds": rec["wall_seconds"],
                    },
                }
            )
        )
        return 0

    print(f"protocol        : {args.protocol} ({layout} quorums)")
    print("transport       : proc (one OS process per party)")
    print(f"cluster size    : {rec['n_real']} ({rec['n_real'] - len(crash)} live)")
    print(f"completed       : {rec['completed']}")
    print(f"worker pids     : {' '.join(str(p) for p in rec['workers'].values())}")
    print(f"messages        : {rec['messages']}")
    print(f"payload bytes   : {rec['bytes']}")
    print(f"wall clock      : {rec['wall_seconds'] * 1000:.1f} ms")
    for type_name in sorted(rec["by_type"]):
        print(
            f"  {type_name:<14}: {rec['by_type'][type_name]} msgs / "
            f"{rec['bytes_by_type'][type_name]} B"
        )
    return 0


def _run_cluster_command(args: argparse.Namespace) -> int:
    if args.transport == "proc":
        return _run_cluster_proc(args)
    from .core.types import as_fraction
    from .protocols.common_coin import deterministic_coin
    from .protocols.reliable_broadcast import BroadcastParty
    from .protocols.smr import SmrParty
    from .runtime import run_cluster
    from .weighted.quorum import NominalQuorums

    try:
        # Validate the f_w domain eagerly even when the nominal layout
        # ends up ignoring it; the *budget* check against f_w is only
        # meaningful for weighted quorums and stays out of the nominal path.
        f_w = as_fraction(args.f_w)
        if not 0 < f_w < Fraction(1, 2):
            raise ValueError("f_w must be in (0, 1/2)")
        committee = _load_committee(args)
        crash = sorted(set(args.crash))
        if committee is not None:
            committee.validate(
                expect_n=args.n,
                f_w=args.f_w,
                crashes=crash,
                payload_size=args.payload_size,
                epochs=args.epochs,
            )
            n = committee.n
            quorums = committee.quorums(args.f_w)
            layout = "weighted"
        else:
            if args.n is None:
                raise ValueError("need --n or a weight source (--weights/...)")
            n = args.n
            if n < 4:
                raise ValueError("nominal quorums need n >= 4 (n = 3t + 1, t >= 1)")
            # The egalitarian committee carries the shared feasibility
            # checks (crash ids in range, workload sanity); the nominal
            # t-budget below replaces the weighted f_w*W budget check.
            committee = Committee.uniform(n)
            committee.validate(
                crashes=crash,
                payload_size=args.payload_size,
                epochs=args.epochs,
            )
            quorums = NominalQuorums(n=n, t=(n - 1) // 3)
            layout = "nominal"
            if len(crash) > quorums.t:
                raise ValueError(
                    f"--crash set of {len(crash)} exceeds the nominal "
                    f"fault tolerance t = {quorums.t}; quorums can never form"
                )

        live = [pid for pid in range(n) if pid not in crash]
        payload_for = lambda pid, epoch: hashlib.sha256(
            f"{args.protocol}|{epoch}|{pid}".encode()
        ).digest() * ((args.payload_size + 31) // 32)

        if args.protocol == "rbc":
            sender = live[0]
            expected = payload_for(sender, 0)[: args.payload_size]

            def factory(pid: int) -> BroadcastParty:
                return BroadcastParty(pid, quorums)

            def setup(cluster) -> None:
                for pid in crash:
                    cluster.crash_node(pid)
                cluster.party(sender).broadcast_value(expected)

            def done(cluster) -> bool:
                return all(
                    cluster.party(pid).delivered == expected for pid in live
                )

        else:  # smr
            epochs = range(args.epochs)

            coin = deterministic_coin("cli")

            def factory(pid: int) -> SmrParty:
                return SmrParty(pid, n, quorums, coin)

            def setup(cluster) -> None:
                for pid in crash:
                    cluster.crash_node(pid)
                for epoch in epochs:
                    for pid in live:
                        cluster.party(pid).propose_batch(
                            epoch, payload_for(pid, epoch)[: args.payload_size]
                        )

            def done(cluster) -> bool:
                return all(
                    len(cluster.party(pid).ordered_log(epoch)) == len(live)
                    for pid in live
                    for epoch in epochs
                )

        # The committee sizes the cluster (n == committee.n on both
        # layouts) and rides along as provenance.
        cluster = run_cluster(
            factory,
            transport=args.transport,
            setup=setup,
            stop_when=done,
            timeout=args.timeout,
            committee=committee,
        )
    except (ValueError, ZeroDivisionError, OSError, TimeoutError) as exc:
        return _fail(args, exc)

    m = cluster.metrics
    if args.json:
        print(
            json.dumps(
                {
                    "protocol": args.protocol,
                    "transport": args.transport,
                    "layout": layout,
                    "n": n,
                    "crashed": crash,
                    "epochs": args.epochs if args.protocol == "smr" else None,
                    "payload_size": args.payload_size,
                    "metrics": m.as_dict(),
                }
            )
        )
        return 0

    print(f"protocol        : {args.protocol} ({layout} quorums)")
    print(f"transport       : {args.transport}")
    print(f"cluster size    : {n} ({len(live)} live)")
    print(f"messages        : {m.messages}")
    print(f"payload bytes   : {m.bytes}")
    print(f"wall clock      : {m.elapsed_seconds * 1000:.1f} ms")
    for name, t in sorted(m.phase_seconds.items()):
        print(f"phase {name:<10}: {t * 1000:.1f} ms")
    for type_name in sorted(m.by_type):
        print(
            f"  {type_name:<14}: {m.by_type[type_name]} msgs / "
            f"{m.bytes_by_type[type_name]} B"
        )
    return 0


# -- serve subcommand --------------------------------------------------------------


def _parse_drifts(specs: Sequence[str]) -> tuple[tuple[int, int, int], ...]:
    drifts = []
    for text in specs:
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"--drift wants E:I:W, got {text!r}")
        drifts.append((int(parts[0]), int(parts[1]), int(parts[2])))
    return tuple(drifts)


def _run_serve_command(args: argparse.Namespace) -> int:
    from .service import (
        DriftSchedule,
        EpochManager,
        EpochService,
        InprocServiceBackend,
        LoadGenerator,
        ServiceConfig,
        SimServiceBackend,
    )

    try:
        committee = _load_committee(args)
        if committee is None:
            committee = Committee.synthetic(
                "zipf", n=8, total=800, skew=1.2, seed=args.seed
            )
        committee.validate(f_w=args.f_w, payload_size=args.payload_size)
        schedule = DriftSchedule(
            initial=tuple(committee.int_weights),
            drifts=_parse_drifts(args.drift),
        )
        manager = EpochManager(schedule, f_w=args.f_w)
        config = ServiceConfig(
            f_w=args.f_w,
            slot_interval=args.slot_interval,
            slots_per_epoch=args.slots_per_epoch,
            epoch_seconds=args.epoch_seconds,
            max_time=args.timeout,
        )
        if args.backend == "sim":
            backend = SimServiceBackend(seed=args.seed)
        else:
            backend = InprocServiceBackend()
        load = LoadGenerator(
            args.rate,
            args.requests,
            payload_size=args.payload_size,
            seed=args.seed,
        )
        service = EpochService(
            backend, manager, config, name="serve", seed=args.seed, load=load
        )
        result = service.run()
    except (ValueError, ZeroDivisionError, OSError, TimeoutError) as exc:
        return _fail(args, exc)
    if result.error is not None:
        # Rotation infeasibility (and timeouts) surface through the same
        # uniform {"error": ...} exit-2 path as bad parameters.
        return _fail(args, result.error)

    rec = result.record()
    if args.json:
        print(json.dumps(rec))
        return 0
    svc = rec["service"]
    print(f"backend         : {rec['backend']}")
    print(f"committee       : {committee.n} parties ({committee.provenance})")
    print(f"requests        : {svc['requests_committed']}/{svc['requests_submitted']} committed")
    print(f"slots           : {svc['slots']}")
    print(f"rotations       : {svc['rotations']}")
    print(f"ops/sec         : {svc['ops_per_sec']}")
    print(f"latency p50     : {svc['latency_p50_s']}s")
    print(f"latency p99     : {svc['latency_p99_s']}s")
    for ep in svc["epochs"]:
        print(
            f"  epoch {ep['epoch']}: n={ep['n']} slots "
            f"[{ep['first_slot']},{ep['last_slot']}) requests={ep['requests']} "
            f"tickets={ep['total_tickets']} solve={ep['solver_mode']} "
            f"handover={ep['rotation_seconds']}s"
        )
    print(f"messages        : {rec['messages']}")
    print(f"payload bytes   : {rec['bytes']}")
    return 0


# -- scenario subcommand -----------------------------------------------------------


def _run_scenario_command(args: argparse.Namespace) -> int:
    from .api import Session
    from .scenarios import SCENARIOS, get_scenario

    if args.list:
        if args.json:
            print(
                json.dumps(
                    {
                        "scenarios": [
                            {
                                "name": spec.name,
                                "protocol": spec.protocol,
                                "description": spec.description,
                            }
                            for spec in SCENARIOS.values()
                        ]
                    }
                )
            )
            return 0
        print(f"{'name':<20} {'protocol':<10} description")
        for spec in SCENARIOS.values():
            print(f"{spec.name:<20} {spec.protocol:<10} {spec.description}")
        return 0

    if args.all:
        from .parallel import parse_jobs, run_specs

        try:
            jobs = parse_jobs(args.jobs)
            specs = list(SCENARIOS.values())
            if args.seed is not None:
                specs = [spec.with_seed(args.seed) for spec in specs]
            records = run_specs(
                specs, backend=args.backend, timeout=args.timeout, jobs=jobs
            )
        except (KeyError, ValueError, RuntimeError, TimeoutError, OSError) as exc:
            return _fail(args, exc)
        if args.json:
            print(json.dumps({"records": records}, sort_keys=True))
            return 0
        for rec in records:
            print(
                f"{rec['scenario']:<20} completed={rec['completed']} "
                f"messages={rec['messages']} bytes={rec['bytes']}"
            )
        return 0

    if args.name is None:
        return _fail(args, "need a scenario name (or --list/--all)")
    try:
        from .parallel import parse_jobs

        parse_jobs(args.jobs)  # malformed --jobs fails uniformly
        spec = get_scenario(args.name)
        if args.seed is not None:
            spec = spec.with_seed(args.seed)
        session = Session.from_spec(
            spec,
            backend=args.backend,
            timeout=args.timeout,
            state_dir=args.state_dir,
        )
        result = session.run()
    except (KeyError, ValueError, RuntimeError, TimeoutError, OSError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        return _fail(args, message)

    if args.save:
        result.write()
    if args.json:
        print(result.record_json())
        return 0

    rec = result.record()
    print(f"scenario        : {rec['scenario']} ({spec.description})")
    print(f"protocol        : {rec['protocol']}")
    print(f"backend         : {rec['backend']}")
    print(f"parties         : {rec['n_real']} real / {rec['n_nodes']} nodes")
    print(f"completed       : {rec['completed']}")
    print(f"distinct decided: {len(set(rec['decided'].values()))}")
    print(f"messages        : {rec['messages']}")
    print(f"payload bytes   : {rec['bytes']}")
    print(f"dropped/delayed : {rec['dropped_messages']}/{rec['delayed_messages']}")
    if result.backend == "sim":
        print(f"sim time        : {rec['sim_time']:.3f} (virtual s, {rec['sim_events']} events)")
    else:
        print(f"wall clock      : {rec['wall_seconds'] * 1000:.1f} ms")
    for type_name in sorted(rec["by_type"]):
        print(
            f"  {type_name:<14}: {rec['by_type'][type_name]} msgs / "
            f"{rec['bytes_by_type'][type_name]} B"
        )
    return 0


def _load_replay_specs(raw: str) -> list:
    """Replay-spec sources: an inline JSON line, ``@FILE`` (every JSON
    line of the file), or ``@DIR/`` (every JSON line of every file in the
    directory, sorted by name)."""
    import os

    if not raw.startswith("@"):
        return [json.loads(raw)]
    path = raw[1:]
    if os.path.isdir(path):
        paths = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if os.path.isfile(os.path.join(path, name))
        )
    else:
        paths = [path]
    specs = []
    for file_path in paths:
        with open(file_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    specs.append(json.loads(line))
    if not specs:
        raise ValueError(f"no replay specs found under {path!r}")
    return specs


def _run_fuzz_command(args: argparse.Namespace) -> int:
    from .adversary import FuzzConfig, replay_episode, run_campaign

    if args.replay is not None:
        try:
            specs = _load_replay_specs(args.replay)
            outcomes = [
                (spec, replay_episode(spec, timeout=args.timeout))
                for spec in specs
            ]
        except (ValueError, KeyError, TimeoutError, OSError) as exc:
            return _fail(args, exc)
        violating = sum(1 for _, o in outcomes if o.violations)
        if len(outcomes) == 1:
            spec, outcome = outcomes[0]
            payload = {
                "replayed": {k: v for k, v in spec.items() if k != "violations"},
                "violations": outcome.violations,
                "skipped": outcome.skipped,
            }
        else:
            payload = {
                "replayed": [
                    {
                        "episode": {
                            k: v for k, v in spec.items() if k != "violations"
                        },
                        "violations": outcome.violations,
                        "skipped": outcome.skipped,
                    }
                    for spec, outcome in outcomes
                ],
                "violations": violating,
            }
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            for spec, outcome in outcomes:
                print(f"episode   : {spec.get('episode')} (seed {spec.get('seed')})")
                print(f"kind      : {spec.get('kind')}")
                print(f"violations: {outcome.violations or 'none'}")
            if len(outcomes) != 1:
                print(f"replayed  : {len(outcomes)}  violating: {violating}")
        return 1 if violating else 0

    try:
        from .parallel import parse_jobs

        jobs = parse_jobs(args.jobs)
        config = FuzzConfig(
            episodes=args.episodes,
            seed=args.seed,
            backend=args.backend,
            timeout=args.timeout,
        )
        result = run_campaign(config, jobs=jobs)
        if args.failures_out is not None and result.failures:
            result.write_failures(args.failures_out)
    except (ValueError, RuntimeError, TimeoutError, OSError) as exc:
        return _fail(args, exc)

    summary = result.summary()
    if args.json:
        print(json.dumps({**summary, "failures": result.failures}, sort_keys=True))
    else:
        print(f"episodes  : {summary['episodes']} (seed {summary['seed']}, "
              f"backend {summary['backend']})")
        print(f"checked   : {summary['checked']}  skipped: {summary['skipped']}")
        for kind, count in summary["by_kind"].items():
            print(f"  {kind:<28}: {count}")
        print(f"violations: {summary['violations']}")
        for failure in result.failures:
            line = json.dumps(failure, sort_keys=True)
            print(f"  replay with: repro fuzz --replay '{line}'")
    return 1 if result.failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.problem == "cluster":
        return _run_cluster_command(args)
    if args.problem == "serve":
        return _run_serve_command(args)
    if args.problem == "scenario":
        return _run_scenario_command(args)
    if args.problem == "fuzz":
        return _run_fuzz_command(args)
    return _run_solver_command(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
