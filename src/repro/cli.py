"""Command-line interface mirroring the paper's prototype solver.

The Swiper prototype is a CLI with a ``--linear`` flag (Section 3.1);
this module reproduces that interface::

    python -m repro.cli wr --alpha-w 1/3 --alpha-n 1/2 --weights 40 25 15 10
    python -m repro.cli wq --beta-w 2/3 --beta-n 1/2 --weights-file stake.txt
    python -m repro.cli ws --alpha 1/3 --beta 1/2 --chain tezos --linear

Weights come from ``--weights`` (inline), ``--weights-file`` (one number
per line), or ``--chain`` (a calibrated snapshot).  Output is the ticket
assignment summary, or the full per-party list with ``--full-output``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    solve,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Swiper: approximate solver for weight reduction problems",
    )
    sub = parser.add_subparsers(dest="problem", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        source = p.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--weights", nargs="+", help="inline weights (ints, floats, or a/b)"
        )
        source.add_argument(
            "--weights-file", help="file with one weight per line"
        )
        source.add_argument(
            "--chain",
            choices=["aptos", "tezos", "filecoin", "algorand"],
            help="calibrated chain snapshot",
        )
        p.add_argument(
            "--linear",
            action="store_true",
            help="quasilinear mode: quick test only (paper's --linear)",
        )
        p.add_argument(
            "--full-output",
            action="store_true",
            help="print the complete per-party ticket list",
        )

    wr = sub.add_parser("wr", help="Weight Restriction (Problem 1)")
    wr.add_argument("--alpha-w", required=True)
    wr.add_argument("--alpha-n", required=True)
    add_common(wr)

    wq = sub.add_parser("wq", help="Weight Qualification (Problem 2)")
    wq.add_argument("--beta-w", required=True)
    wq.add_argument("--beta-n", required=True)
    add_common(wq)

    ws = sub.add_parser("ws", help="Weight Separation (Problem 3)")
    ws.add_argument("--alpha", required=True)
    ws.add_argument("--beta", required=True)
    add_common(ws)

    return parser


def _load_weights(args: argparse.Namespace) -> list:
    if args.weights is not None:
        return list(args.weights)
    if args.weights_file is not None:
        with open(args.weights_file) as fh:
            return [line.strip() for line in fh if line.strip()]
    from .datasets import load_chain

    return list(load_chain(args.chain).weights)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    mode = "linear" if args.linear else "full"
    try:
        if args.problem == "wr":
            problem = WeightRestriction(args.alpha_w, args.alpha_n)
        elif args.problem == "wq":
            problem = WeightQualification(args.beta_w, args.beta_n)
        else:
            problem = WeightSeparation(args.alpha, args.beta)
        weights = _load_weights(args)
        result = solve(problem, weights, mode=mode)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    a = result.assignment
    print(f"problem         : {problem}")
    print(f"parties (n)     : {len(a)}")
    print(f"mode            : {mode}")
    print(f"total tickets   : {a.total}")
    print(f"theorem bound   : {result.ticket_bound}")
    print(f"max per party   : {a.max_tickets}")
    print(f"ticket holders  : {a.holders}")
    print(f"solve time      : {result.elapsed_seconds:.3f}s")
    if args.full_output:
        for i, t in enumerate(a):
            print(f"party {i}: {t}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
