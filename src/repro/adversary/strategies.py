"""Weight-aware Byzantine strategies and the :class:`Adversary` that
applies them to a scenario run.

The paper's adversary corrupts any party set holding *weight* strictly
below ``f_w * W`` (Section 1.1) -- not a count of nodes.  Every strategy
here spends that budget differently:

* ``equivocate`` -- the heaviest corruptible party equivocates in its
  own broadcast instance (two conflicting payloads to two weight-halves).
* ``garble-echo`` -- corrupted parties vote for garbled payloads and
  withhold honest echoes/readies, attacking the content-keyed vote maps.
* ``pivot-delay`` -- no corruption: targeted asynchrony against the
  *pivotal-weight* parties every quorum must intersect.
* ``adaptive-corrupt`` -- greedy budget spend for maximum captured
  tickets (the worst case for a weight reduction); corrupted parties go
  silent.
* ``share-flood`` -- corrupted checkpoint validators flood forged
  threshold-signature shares under honest signer indices and withhold
  their own, stressing the batch verifier's bisection path and the
  collector's content-keyed liveness property.
* ``bad-handover`` -- the service-workload analogue of ``share-flood``:
  the flood fires inside every epoch-rotation checkpoint handover.

Strategies are selected by :class:`~repro.scenarios.spec.ByzantineSpec`
entries in a fault plan and materialize deterministically from the
committee weights and the scenario seed, so one spec entry is the same
attack on the sim and the live runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Sequence

from ..core.types import as_fraction
from ..sim.adversary import corrupt_weight_fraction, heaviest_under, most_tickets_under
from . import byzantine

__all__ = ["STRATEGIES", "Strategy", "StrategyContext", "Adversary", "weight_split"]


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy sees when choosing its corruption set and
    configuring corrupted parties."""

    committee: object
    weights: tuple[int, ...]
    f_w: Fraction
    protocol: str
    seed: int
    params: tuple[tuple[str, object], ...] = ()

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def rng(self, tag: str) -> random.Random:
        return random.Random(f"{self.seed}|{tag}")


def weight_split(
    weights: Sequence[int], pids: Sequence[int]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Partition ``pids`` into two weight-balanced halves (greedy,
    deterministic): the equivocation targets."""
    a: list[int] = []
    b: list[int] = []
    wa = wb = 0
    for pid in sorted(pids, key=lambda i: (-weights[i], i)):
        if wa <= wb:
            a.append(pid)
            wa += weights[pid]
        else:
            b.append(pid)
            wb += weights[pid]
    return tuple(sorted(a)), tuple(sorted(b))


class Strategy:
    """One Byzantine strategy: who to corrupt and how they misbehave."""

    name: str = ""
    #: protocols this strategy knows how to attack
    protocols: frozenset[str] = frozenset()

    def __init__(self, ctx: StrategyContext) -> None:
        if ctx.protocol not in self.protocols:
            raise ValueError(
                f"strategy {self.name!r} does not attack protocol "
                f"{ctx.protocol!r} (supported: {sorted(self.protocols)})"
            )
        self.ctx = ctx
        self.corrupted = self.select_corrupted(ctx)

    def keeps_liveness(self) -> bool:
        """Whether honest parties still terminate under this strategy."""
        return True

    def select_corrupted(self, ctx: StrategyContext) -> frozenset[int]:
        return frozenset()

    def install_network_faults(self, faults, map_pid) -> None:
        """Hook for message-scheduling attacks (shared FaultController)."""

    def corrupt_party(self, party, pid: int) -> None:
        """Rewrite a corrupted party's behavior (instance patching)."""


class EquivocateStrategy(Strategy):
    """The heaviest party the budget can afford equivocates in its own
    broadcast instance.  RBC with a Byzantine designated sender has no
    liveness guarantee (honest parties may deliver nothing); SMR keeps
    liveness for every honest proposer's instance."""

    name = "equivocate"
    protocols = frozenset({"rbc", "smr"})

    def keeps_liveness(self) -> bool:
        return self.ctx.protocol != "rbc"

    def select_corrupted(self, ctx: StrategyContext) -> frozenset[int]:
        weights = ctx.weights
        budget = ctx.f_w * sum(weights)
        affordable = [i for i in range(len(weights)) if weights[i] < budget]
        if not affordable:
            raise ValueError(
                "equivocate: no single party's weight fits strictly below "
                f"the f_w={ctx.f_w} budget"
            )
        pid = max(affordable, key=lambda i: (weights[i], -i))
        return frozenset({pid})

    def corrupt_party(self, party, pid: int) -> None:
        groups = weight_split(self.ctx.weights, range(len(self.ctx.weights)))
        if self.ctx.protocol == "rbc":
            byzantine.make_rbc_equivocator(party, groups)
        else:
            byzantine.make_smr_equivocator(party, groups)


class GarbleEchoStrategy(Strategy):
    """Corrupted parties echo garbled payloads and withhold their honest
    votes; honest quorums must form from honest weight alone (which they
    can: honest weight stays strictly above ``(1 - f_w) W``)."""

    name = "garble-echo"
    protocols = frozenset({"rbc", "smr"})

    def select_corrupted(self, ctx: StrategyContext) -> frozenset[int]:
        return frozenset(heaviest_under(ctx.weights, ctx.f_w))

    def corrupt_party(self, party, pid: int) -> None:
        byzantine.make_garbler(party, self.ctx.protocol)


class PivotDelayStrategy(Strategy):
    """Targeted asynchrony: delay every link touching the pivotal-weight
    parties -- the smallest heavy prefix whose complement cannot form an
    echo/deliver quorum alone, so every quorum must wait for a delayed
    member.  A pure network adversary (no corruption budget spent);
    asynchronous safety and liveness must both survive."""

    name = "pivot-delay"
    protocols = frozenset({"rbc", "smr", "checkpoint"})

    def pivotal(self) -> tuple[int, ...]:
        weights = self.ctx.weights
        total = sum(weights)
        bound = (1 - self.ctx.f_w) * total
        chosen: list[int] = []
        remaining = total
        for pid in sorted(range(len(weights)), key=lambda i: (-weights[i], i)):
            if remaining <= bound:
                break
            chosen.append(pid)
            remaining -= weights[pid]
        return tuple(sorted(chosen))

    def install_network_faults(self, faults, map_pid) -> None:
        delay = float(self.ctx.param("delay", 0.05))
        n = len(self.ctx.weights)
        targets = {nid for pid in self.pivotal() for nid in map_pid(pid)}
        others = {nid for pid in range(n) for nid in map_pid(pid)} - targets
        for t in targets:
            for o in others:
                faults.delay_link(o, t, delay)
                faults.delay_link(t, o, delay)


class AdaptiveCorruptStrategy(Strategy):
    """Greedy adaptive corruption: spend the weight budget on the parties
    carrying the most tickets per unit weight (the most damaging set
    against a weight reduction), then go silent -- a maximal omission
    attack that must not break honest liveness."""

    name = "adaptive-corrupt"
    protocols = frozenset({"rbc", "smr", "checkpoint"})

    def select_corrupted(self, ctx: StrategyContext) -> frozenset[int]:
        from ..core.problems import WeightRestriction

        try:
            tickets = ctx.committee.solve(
                WeightRestriction(ctx.f_w, Fraction(1, 2))
            ).assignment
            return frozenset(most_tickets_under(ctx.weights, tickets, ctx.f_w))
        except ValueError:
            return frozenset(heaviest_under(ctx.weights, ctx.f_w))

    def corrupt_party(self, party, pid: int) -> None:
        byzantine.make_silent(party)


class ShareFloodStrategy(Strategy):
    """Corrupted checkpoint validators flood forged shares under honest
    signer indices (forged to pass every cheap per-item check and die in
    the aggregate, forcing the bisection) while withholding their own
    honest shares.  Honest parties hold at least ``ceil(T/2)`` tickets
    under WR(f_w, 1/2), so certificates must still form."""

    name = "share-flood"
    protocols = frozenset({"checkpoint"})

    def select_corrupted(self, ctx: StrategyContext) -> frozenset[int]:
        return frozenset(heaviest_under(ctx.weights, ctx.f_w))

    def corrupt_party(self, party, pid: int) -> None:
        honest = [
            vid + 1
            for p in range(len(self.ctx.weights))
            if p not in self.corrupted
            for vid in party.vmap.virtual_ids(p)
        ]
        if not honest:
            return
        byzantine.make_share_flooder(
            party,
            honest_indices=honest,
            rng=self.ctx.rng(f"flood|{pid}"),
            flood=int(self.ctx.param("flood", 8)),
            withhold=bool(self.ctx.param("withhold", True)),
        )


class BadHandoverStrategy(Strategy):
    """Epoch-rotation attack for service workloads: during every
    checkpoint handover the corrupted validators (re-selected per epoch
    committee) flood forged handover shares and withhold honest ones.
    The blunt WR(f_w, 1/2) handover setup must still certify from honest
    tickets alone, on every rotation."""

    name = "bad-handover"
    protocols = frozenset({"service"})

    def select_corrupted(self, ctx: StrategyContext) -> frozenset[int]:
        return frozenset(heaviest_under(ctx.weights, ctx.f_w))

    def corrupt_epoch(self, weights: Sequence[int]) -> frozenset[int]:
        """The corruption set against one epoch's committee (adaptive:
        re-chosen as stake drifts)."""
        return frozenset(heaviest_under(weights, self.ctx.f_w))

    def corrupt_handover_party(self, party, pid: int, epoch: int, corrupted) -> None:
        honest = [
            vid + 1
            for p in range(party.vmap.n_parties)
            if p not in corrupted
            for vid in party.vmap.virtual_ids(p)
        ]
        if not honest:
            return
        byzantine.make_share_flooder(
            party,
            honest_indices=honest,
            rng=self.ctx.rng(f"handover|{epoch}|{pid}"),
            flood=int(self.ctx.param("flood", 6)),
            withhold=bool(self.ctx.param("withhold", True)),
        )


STRATEGIES: dict[str, type[Strategy]] = {
    cls.name: cls
    for cls in (
        EquivocateStrategy,
        GarbleEchoStrategy,
        PivotDelayStrategy,
        AdaptiveCorruptStrategy,
        ShareFloodStrategy,
        BadHandoverStrategy,
    )
}


class Adversary:
    """The materialized Byzantine adversary of one scenario run.

    Built from a spec's ``faults.byzantine`` entries against a resolved
    committee; validates the combined corruption budget (crashed plus
    corrupted weight strictly below ``f_w * W``), wraps the driver's
    party factory so corrupted parties misbehave identically on every
    backend, and installs message-scheduling attacks on the shared
    :class:`~repro.runtime.faults.FaultController`.
    """

    def __init__(self, spec, committee, *, protocol: Optional[str] = None) -> None:
        from ..api.committee import CommitteeValidationError

        protocol = protocol or spec.protocol
        weights = tuple(committee.int_weights)
        f_w = as_fraction(spec.f_w)
        self.spec = spec
        self.committee = committee
        self.protocol = protocol
        self.strategies: list[Strategy] = []
        for entry in spec.faults.byzantine:
            cls = STRATEGIES.get(entry.strategy)
            if cls is None:
                raise ValueError(
                    f"unknown byzantine strategy {entry.strategy!r}; "
                    f"options: {sorted(STRATEGIES)}"
                )
            ctx = StrategyContext(
                committee=committee,
                weights=weights,
                f_w=f_w,
                protocol=protocol,
                seed=spec.seed,
                params=entry.params,
            )
            self.strategies.append(cls(ctx))
        self.corrupted: frozenset[int] = frozenset().union(
            *(s.corrupted for s in self.strategies)
        ) if self.strategies else frozenset()
        budget_set = set(self.corrupted) | set(spec.faults.crashes)
        self.corrupted_weight = corrupt_weight_fraction(weights, budget_set)
        if budget_set and self.corrupted_weight >= f_w:
            raise CommitteeValidationError(
                f"corrupted+crashed weight {self.corrupted_weight} is not "
                f"strictly below the f_w={f_w} adversary budget"
            )
        self.expect_liveness = all(s.keeps_liveness() for s in self.strategies)

    @property
    def sender_override(self) -> Optional[int]:
        """The corrupted designated RBC sender, when an equivocation
        strategy wants the sender role."""
        if self.protocol != "rbc":
            return None
        for s in self.strategies:
            if isinstance(s, EquivocateStrategy):
                return min(s.corrupted)
        return None

    def wrap_factory(self, factory: Callable) -> Callable:
        """The driver's party factory with corruption applied.  Only
        identity-mapped protocols take corruption strategies, so the node
        id *is* the real pid."""

        def corrupted_factory(nid: int):
            party = factory(nid)
            if nid in self.corrupted:
                for s in self.strategies:
                    if nid in s.corrupted:
                        s.corrupt_party(party, nid)
            return party

        return corrupted_factory

    def install_network_faults(self, faults, map_pid) -> None:
        for s in self.strategies:
            s.install_network_faults(faults, map_pid)

    def wrap_handover_factory(
        self, factory: Callable, *, weights: Sequence[int], epoch: int
    ) -> Callable:
        """Service-workload hook: corrupt the epoch's checkpoint handover
        parties (bad-handover strategies only)."""
        attackers = [s for s in self.strategies if isinstance(s, BadHandoverStrategy)]
        if not attackers:
            return factory

        def corrupted_factory(pid: int):
            party = factory(pid)
            for s in attackers:
                corrupted = s.corrupt_epoch(weights)
                if pid in corrupted:
                    s.corrupt_handover_party(party, pid, epoch, corrupted)
            return party

        return corrupted_factory

    def describe(self) -> dict:
        """The record section: deterministic, JSON-able."""
        return {
            "strategies": [s.name for s in self.strategies],
            "corrupted": sorted(self.corrupted),
            "corrupted_weight": str(self.corrupted_weight),
            "expect_liveness": self.expect_liveness,
        }
