"""Party-level Byzantine behaviors: the code a corrupted party runs.

Strategies (:mod:`repro.adversary.strategies`) decide *who* is corrupted
and with which parameters; the functions here rewrite a just-constructed
party's entry points and handlers to misbehave.  Both execution backends
build parties through the same driver factory, so instance-level patching
makes a corruption mean exactly the same thing on the simulator and on
the live runtime.

Every behavior draws its randomness from a :class:`random.Random` seeded
by the scenario seed, keeping sim-backend records byte-identical across
runs -- the property the fuzz campaign's replay specs rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

from ..crypto.dleq import DleqProof, _challenge
from ..crypto.threshold_sig import SignatureShare

__all__ = [
    "alt_payload",
    "make_silent",
    "make_rbc_equivocator",
    "make_smr_equivocator",
    "make_garbler",
    "make_share_flooder",
    "forge_share",
]


def alt_payload(payload: bytes, tag: str = "equivocate") -> bytes:
    """A deterministic second payload of the same length as ``payload``."""
    block = hashlib.sha256(tag.encode() + b"|" + payload).digest()
    reps = (len(payload) + len(block) - 1) // len(block)
    return (block * reps)[: len(payload)] if payload else block[:1]


def make_silent(party) -> None:
    """Byzantine omission: the party receives nothing and initiates
    nothing.  Entry points are patched per protocol surface."""
    party.receive = lambda message, sender: None
    for entry in ("broadcast_value", "propose_batch", "sign_checkpoint", "propose"):
        if hasattr(party, entry):
            setattr(party, entry, lambda *a, **k: None)


def _split_send(party, groups, build_message) -> None:
    """Send ``build_message(0)`` to group 0 and ``build_message(1)`` to
    group 1 (node ids), instead of one honest broadcast."""
    for half, dsts in enumerate(groups):
        message = build_message(half)
        for dst in dsts:
            party.send(dst, message)


def make_rbc_equivocator(party, groups: Sequence[Sequence[int]]) -> None:
    """Equivocating RBC sender: one payload to each weight-half."""
    from ..protocols.reliable_broadcast import RbcSend

    def broadcast_value(payload: bytes) -> None:
        payloads = (payload, alt_payload(payload))
        _split_send(party, groups, lambda half: RbcSend(payloads[half]))

    party.broadcast_value = broadcast_value


def make_smr_equivocator(party, groups: Sequence[Sequence[int]]) -> None:
    """Equivocating SMR proposer: conflicting batches to the two halves
    of its own RBC instance; other instances proceed honestly."""
    from ..protocols.smr import BatchSend

    def propose_batch(epoch: int, payload: bytes) -> None:
        payloads = (payload, alt_payload(payload))
        _split_send(
            party,
            groups,
            lambda half: BatchSend(epoch=epoch, proposer=party.pid, payload=payloads[half]),
        )

    party.propose_batch = propose_batch


def make_garbler(party, protocol: str) -> None:
    """Wrong-payload voter: echoes a garbled copy of every SEND it sees
    (attacking the content-keyed vote maps) and withholds its honest
    echoes and readies entirely."""
    if protocol == "rbc":
        from ..protocols.reliable_broadcast import RbcEcho, RbcReady, RbcSend

        def handle_send(message, sender: int) -> None:
            party.broadcast(RbcEcho(alt_payload(message.payload, "garble")))

        party.on(RbcSend, handle_send)
        party.on(RbcEcho, lambda message, sender: None)
        party.on(RbcReady, lambda message, sender: None)
    else:
        from ..protocols.smr import BatchEcho, BatchReady, BatchSend

        def handle_send(message, sender: int) -> None:
            party.broadcast(
                BatchEcho(
                    message.epoch,
                    message.proposer,
                    alt_payload(message.payload, "garble"),
                )
            )

        party.on(BatchSend, handle_send)
        party.on(BatchEcho, lambda message, sender: None)
        party.on(BatchReady, lambda message, sender: None)


def forge_share(scheme, message: bytes, index: int, rng: random.Random) -> SignatureShare:
    """A forged signature share under an *honest* signer's index, built to
    survive every cheap per-item check of the batch verifier.

    The Fiat-Shamir challenge is computed honestly over forged values and
    all elements are real group members, so the forgery passes the range,
    membership, and challenge-recomputation checks and reaches the
    random-linear-combination aggregate -- which fails, driving the
    bisection down to the per-share oracle.  This is the most expensive
    rejection path a Byzantine share can force.
    """
    group = scheme.group
    g, h = group.generator, scheme.hash_message(message)
    y1 = scheme.keys.public_shares[index]
    y2 = group.fast_power(h, group.random_exponent(rng))
    a1 = group.fast_power(g, group.random_exponent(rng))
    a2 = group.fast_power(h, group.random_exponent(rng))
    c = _challenge(group, g, y1, h, y2, a1, a2)
    r = group.random_exponent(rng)
    return SignatureShare(
        index=index, value=y2, proof=DleqProof(challenge=c, response=r, commit1=a1, commit2=a2)
    )


def make_share_flooder(
    party,
    *,
    honest_indices: Sequence[int],
    rng: random.Random,
    flood: int = 8,
    withhold: bool = True,
) -> None:
    """Checkpoint-share flooder: on every ``sign_checkpoint`` the party
    broadcasts ``flood`` forged shares under honest signer indices (so
    naive index-keyed collectors would block) and, when ``withhold`` is
    set, contributes none of its own honest shares."""
    from ..protocols.checkpointing import CheckpointShare

    original = party.sign_checkpoint
    indices = list(honest_indices)

    def sign_checkpoint(checkpoint: bytes) -> None:
        for _ in range(flood):
            index = indices[rng.randrange(len(indices))]
            share = forge_share(party.scheme, checkpoint, index, rng)
            party.broadcast(CheckpointShare(checkpoint=checkpoint, share=share))
        if not withhold:
            original(checkpoint)

    party.sign_checkpoint = sign_checkpoint
