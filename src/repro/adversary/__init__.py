"""Weight-aware Byzantine adversary library and fuzz campaign runner.

Three layers:

* :mod:`repro.adversary.byzantine` -- party-level misbehaviors
  (equivocation, garbling, silence, forged-share floods);
* :mod:`repro.adversary.strategies` -- budgeted strategies choosing *who*
  is corrupted and the :class:`Adversary` applying them to a run;
* :mod:`repro.adversary.fuzz` -- the seeded campaign runner sampling
  committees x strategies x protocols, checking the safety invariants of
  :mod:`repro.adversary.invariants` on every record, and persisting
  violations as one-line replay specs.
"""

from .byzantine import alt_payload, forge_share
from .fuzz import (
    CampaignResult,
    EpisodeOutcome,
    FuzzConfig,
    build_episode,
    replay_episode,
    run_campaign,
    run_coin_probe,
    run_dleq_probe,
    run_episode,
    run_rs_probe,
)
from .invariants import EMPTY_DIGEST, check_record
from .strategies import STRATEGIES, Adversary, Strategy, StrategyContext, weight_split

__all__ = [
    "Adversary",
    "STRATEGIES",
    "Strategy",
    "StrategyContext",
    "weight_split",
    "alt_payload",
    "forge_share",
    "EMPTY_DIGEST",
    "check_record",
    "FuzzConfig",
    "EpisodeOutcome",
    "CampaignResult",
    "build_episode",
    "run_episode",
    "replay_episode",
    "run_campaign",
    "run_dleq_probe",
    "run_rs_probe",
    "run_coin_probe",
]
