"""Seed-replayable fuzz campaigns over committees, strategies, and
protocol mixes.

A campaign runs ``episodes`` independently sampled episodes from one
seeded RNG.  Most episodes execute a randomized :class:`ScenarioSpec`
(random committee distribution, protocol, and Byzantine strategy) and
check every safety invariant on the emitted record
(:mod:`repro.adversary.invariants`); the rest are direct probes against
the crypto and coding engines' Byzantine branches -- forged DLEQ-share
batches, Reed-Solomon error-decoder floods, and beacon-unpredictability
checks that no scenario driver reaches.

Every violation is persisted as a **one-line replay spec** -- a JSON
object carrying the campaign seed, episode index, and the fully resolved
scenario/probe parameters -- and :func:`replay_episode` re-runs it.  On
the sim backend the replayed record is byte-identical to the original
(the episode embeds everything the run depends on), which is what makes
a campaign failure a unit test and not an anecdote.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Union

from ..scenarios.spec import ByzantineSpec, FaultSpec, ScenarioSpec, WeightSpec, WorkloadSpec
from .invariants import check_record
from .strategies import STRATEGIES

__all__ = [
    "FuzzConfig",
    "EpisodeOutcome",
    "CampaignResult",
    "build_episode",
    "run_episode",
    "replay_episode",
    "run_campaign",
    "run_dleq_probe",
    "run_rs_probe",
    "run_coin_probe",
]

#: probe kinds mixed into a campaign alongside scenario episodes
PROBE_KINDS = ("dleq-forge", "rs-error-flood", "coin-unpredictability")

#: strategies the scenario sampler draws from (None = fault-free control)
DEFAULT_STRATEGIES = (
    None,
    "equivocate",
    "garble-echo",
    "pivot-delay",
    "adaptive-corrupt",
    "share-flood",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Campaign shape; every episode is a pure function of
    ``(seed, index)`` and these fields."""

    episodes: int = 50
    seed: int = 0
    backend: str = "sim"
    protocols: tuple[str, ...] = ("rbc", "smr", "checkpoint")
    strategies: tuple[Optional[str], ...] = DEFAULT_STRATEGIES
    include_probes: bool = True
    include_service: bool = True
    include_chaos: bool = True
    timeout: float = 30.0


@dataclass
class EpisodeOutcome:
    """What one episode produced."""

    episode: dict
    violations: list[str] = field(default_factory=list)
    record: Optional[dict] = None
    skipped: bool = False  # infeasible sample (budget/feasibility reject)

    @property
    def replay_spec(self) -> dict:
        """The one-line JSON replay spec for this episode."""
        return {**self.episode, "violations": list(self.violations)}


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign."""

    config: FuzzConfig
    outcomes: list[EpisodeOutcome]

    @property
    def checked(self) -> int:
        return sum(1 for o in self.outcomes if not o.skipped)

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.skipped)

    @property
    def failures(self) -> list[dict]:
        return [o.replay_spec for o in self.outcomes if o.violations]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            key = o.episode["kind"]
            if o.episode.get("strategy"):
                key = f"{key}:{o.episode['strategy']}"
            elif (o.episode.get("scenario") or {}).get("faults", {}).get("restarts"):
                key = f"{key}:crash-restart"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        return {
            "episodes": len(self.outcomes),
            "checked": self.checked,
            "skipped": self.skipped,
            "violations": len(self.failures),
            "by_kind": self.by_kind(),
            "seed": self.config.seed,
            "backend": self.config.backend,
        }

    def write_failures(self, path) -> int:
        """Persist replay specs one JSON line each; returns the count."""
        lines = [json.dumps(f, sort_keys=True) for f in self.failures]
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)


# -- episode sampling ------------------------------------------------------------------


def _sample_weights(rng: random.Random) -> WeightSpec:
    kind = rng.choice(("zipf", "uniform", "exponential", "explicit"))
    n = rng.randint(4, 9)
    if kind == "explicit":
        return WeightSpec(
            kind="explicit", values=tuple(rng.randint(1, 40) for _ in range(n))
        )
    return WeightSpec(
        kind=kind, n=n, total=n * rng.randint(20, 60), skew=1.0 + rng.random()
    )


def _sample_crash(weights: WeightSpec, seed: int, rng: random.Random) -> tuple[int, ...]:
    """Maybe crash the lightest party, staying strictly under the 1/3
    weight budget (shared with the -- empty -- corruption set)."""
    if rng.random() > 0.3:
        return ()
    values = weights.materialize(seed)
    lightest = min(range(len(values)), key=lambda i: (values[i], i))
    if Fraction(values[lightest], sum(values)) < Fraction(1, 3):
        return (lightest,)
    return ()


def _sample_restart(
    weights: WeightSpec, seed: int, rng: random.Random
) -> tuple[tuple[int, float, float], ...]:
    """Maybe crash-restart the lightest party: down from ``crash_at`` to
    ``restart_at`` (scenario seconds), then a WAL-replay + state-sync
    rejoin.  Same 1/3 weight-budget guard as permanent crashes -- the
    party counts against the budget while it is down."""
    if rng.random() > 0.3:
        return ()
    values = weights.materialize(seed)
    lightest = min(range(len(values)), key=lambda i: (values[i], i))
    if Fraction(values[lightest], sum(values)) >= Fraction(1, 3):
        return ()
    crash_at = round(rng.uniform(0.05, 0.3), 3)
    restart_at = round(crash_at + rng.uniform(0.3, 0.7), 3)
    return ((lightest, crash_at, restart_at),)


def _sample_scenario(config: FuzzConfig, index: int, rng: random.Random) -> dict:
    protocol = rng.choice(list(config.protocols))
    compatible = [
        s
        for s in config.strategies
        if s is None or protocol in STRATEGIES[s].protocols
    ]
    strategy = rng.choice(compatible) if compatible else None
    weights = _sample_weights(rng)
    spec_seed = rng.getrandbits(32)
    # Crash-restart episodes ride the fault-free SMR path (only the SMR
    # driver builds recoverable parties); a restarted party displaces the
    # permanent-crash sample so the two never fight over the budget.
    restarts = (
        _sample_restart(weights, spec_seed, rng)
        if strategy is None and protocol == "smr"
        else ()
    )
    faults = FaultSpec(
        byzantine=(ByzantineSpec(strategy),) if strategy else (),
        crashes=(
            _sample_crash(weights, spec_seed, rng)
            if strategy is None and not restarts
            else ()
        ),
        restarts=restarts,
    )
    params: tuple[tuple[str, object], ...] = ()
    epochs = 1
    if protocol == "checkpoint" and strategy != "share-flood" and rng.random() < 0.25:
        params = (("mode", "tight"), ("beta", "1/2"))
    if protocol in ("smr", "checkpoint"):
        epochs = rng.randint(1, 2)
    spec = ScenarioSpec(
        name=f"fuzz-{index}",
        protocol=protocol,
        weights=weights,
        faults=faults,
        workload=WorkloadSpec(payload_size=rng.choice((16, 32, 64)), epochs=epochs),
        seed=spec_seed,
        params=params,
    )
    return {
        "kind": "scenario",
        "backend": config.backend,
        "strategy": strategy,
        "scenario": spec.to_dict(),
    }


def _sample_service(config: FuzzConfig, index: int, rng: random.Random) -> dict:
    n = rng.randint(4, 6)
    strategy = rng.choice(("bad-handover", "bad-handover", None))
    spec = ScenarioSpec(
        name=f"fuzz-{index}",
        protocol="smr",
        weights=WeightSpec(kind="zipf", n=n, total=n * 100, skew=1.2),
        faults=FaultSpec(
            byzantine=(ByzantineSpec(strategy),) if strategy else ()
        ),
        workload=WorkloadSpec(
            payload_size=rng.choice((16, 32)),
            epochs=rng.randint(2, 3),
            kind="service",
        ),
        seed=rng.getrandbits(32),
        params=(
            ("arrival_rate", float(rng.randint(40, 80))),
            ("requests", rng.randint(12, 24)),
            ("slot_interval", 0.05),
            ("slots_per_epoch", rng.randint(2, 3)),
        ),
    )
    return {
        "kind": "service",
        "backend": config.backend,
        "strategy": strategy,
        "scenario": spec.to_dict(),
    }


def _sample_chaos(config: FuzzConfig, index: int, rng: random.Random) -> dict:
    """A staged chaos timeline over SMR: partition at t=0, heal, and a
    second epoch scheduled strictly after the heal, optionally with a
    staged corruption and ambient weather (duplication/reordering/jitter
    only -- loss would void the liveness claim the invariants check)."""
    from ..chaos.schedule import ChaosSpec, ChaosStage, TriggerSpec
    from ..chaos.weather import WeatherSpec

    weights = _sample_weights(rng)
    spec_seed = rng.getrandbits(32)
    n = weights.n or len(weights.values)
    pids = list(range(n))
    rng.shuffle(pids)
    cut = rng.randint(1, n - 1)
    groups = (tuple(sorted(pids[:cut])), tuple(sorted(pids[cut:])))
    heal_at = round(rng.uniform(0.25, 0.4), 3)
    epoch1_at = round(heal_at + rng.uniform(0.1, 0.2), 3)
    stages = [
        ChaosStage(
            action="partition",
            trigger=TriggerSpec(kind="time", value=0.0),
            params=(("groups", groups),),
        ),
        ChaosStage(action="heal", trigger=TriggerSpec(kind="time", value=heal_at)),
    ]
    strategy = None
    if rng.random() < 0.4:
        strategy = "adaptive-corrupt"
        stages.append(
            ChaosStage(
                action="byzantine",
                trigger=TriggerSpec(
                    kind="time", value=round(heal_at + 0.05, 3)
                ),
                params=(("strategy", strategy),),
            )
        )
    weather = None
    if rng.random() < 0.5:
        weather = WeatherSpec(
            duplicate=round(rng.uniform(0.05, 0.2), 3),
            reorder=round(rng.uniform(0.1, 0.3), 3),
            jitter=0.02,
        )
    spec = ScenarioSpec(
        name=f"fuzz-{index}",
        protocol="smr",
        weights=weights,
        workload=WorkloadSpec(
            payload_size=rng.choice((16, 32)),
            epochs=2,
            epoch_times=(0.0, epoch1_at),
        ),
        seed=spec_seed,
        chaos=ChaosSpec(stages=tuple(stages), weather=weather),
    )
    return {
        "kind": "chaos",
        "backend": config.backend,
        "strategy": strategy,
        "scenario": spec.to_dict(),
    }


def build_episode(config: FuzzConfig, index: int) -> dict:
    """The fully resolved episode ``index`` of a campaign: a replay spec
    minus the outcome.  Pure function of ``(config, index)``."""
    rng = random.Random(f"{config.seed}|episode|{index}")
    roll = rng.random()
    if config.include_probes and roll < 0.25:
        kind = PROBE_KINDS[rng.randrange(len(PROBE_KINDS))]
        episode = {"kind": kind, "probe_seed": rng.getrandbits(32)}
    elif config.include_service and roll < 0.35 and config.backend == "sim":
        episode = _sample_service(config, index, rng)
    elif config.include_chaos and roll < 0.45:
        episode = _sample_chaos(config, index, rng)
    else:
        episode = _sample_scenario(config, index, rng)
    return {"seed": config.seed, "episode": index, **episode}


# -- direct probes ---------------------------------------------------------------------


def run_dleq_probe(probe_seed: int) -> tuple[list[str], dict]:
    """Forged-share flood against the batch DLEQ verifier: every batch
    verdict must equal the per-proof oracle's, for floods including
    all-bad and all-but-one-bad batches."""
    from ..crypto.dleq import _challenge, prove_dleq, verify_dleq, verify_dleq_batch
    from ..crypto.dleq import DleqProof
    from ..crypto.group import TEST_GROUP_256 as group

    rng = random.Random(f"dleq|{probe_seed}")
    g1 = group.generator
    g2 = group.fast_power(g1, group.random_exponent(rng))
    n = rng.randint(4, 10)
    n_bad = rng.choice((1, n // 2, n - 1, n))
    bad_positions = set(rng.sample(range(n), n_bad))
    statements = []
    for i in range(n):
        x = group.random_exponent(rng)
        y1, y2, proof = prove_dleq(group, x, g1, g2, rng)
        if i in bad_positions:
            mode = rng.choice(("forged", "tampered", "stripped", "range"))
            if mode == "forged":
                # Survives every cheap check, dies in the aggregate.
                y2 = group.fast_power(g2, group.random_exponent(rng))
                a1 = group.fast_power(g1, group.random_exponent(rng))
                a2 = group.fast_power(g2, group.random_exponent(rng))
                c = _challenge(group, g1, y1, g2, y2, a1, a2)
                proof = DleqProof(c, group.random_exponent(rng), a1, a2)
            elif mode == "tampered":
                y2 = y2 * g2 % group.p
            elif mode == "stripped":
                proof = DleqProof(proof.challenge, (proof.response + 1) % group.order)
            else:  # the r + q malleability must stay closed
                proof = DleqProof(proof.challenge, proof.response + group.order,
                                  proof.commit1, proof.commit2)
        statements.append((y1, y2, proof))
    verdicts = verify_dleq_batch(group, g1, g2, statements, rng=rng)
    oracle = [verify_dleq(group, g1, y1, g2, y2, pr) for (y1, y2, pr) in statements]
    violations = []
    if verdicts != oracle:
        violations.append(f"dleq: batch verdicts {verdicts} != oracle {oracle}")
    for i in range(n):
        if i in bad_positions and verdicts[i]:
            violations.append(f"dleq: forged statement {i} accepted")
        if i not in bad_positions and not verdicts[i]:
            violations.append(f"dleq: honest statement {i} rejected")
    record = {"kind": "dleq-forge", "n": n, "bad": sorted(bad_positions),
              "verdicts": verdicts}
    return violations, record


def run_rs_probe(probe_seed: int) -> tuple[list[str], dict]:
    """Forged-fragment flood against the RS error decoder: with at most
    ``(m - k) // 2`` corrupted fragment blocks the original payload must
    decode exactly."""
    from ..codes.reed_solomon import ReedSolomon

    rng = random.Random(f"rs|{probe_seed}")
    k = rng.randint(2, 6)
    extra = rng.randint(2, 6)
    m = k + 2 * extra
    rs = ReedSolomon(k, m)
    payload = bytes(rng.randrange(256) for _ in range(rng.randint(2 * k, 160)))
    systematic = rng.random() < 0.5
    fragments = rs.encode_blocks(payload, systematic=systematic)
    n_bad = rng.randint(1, extra)
    bad = rng.sample(range(m), n_bad)
    received = []
    for idx, block in enumerate(fragments):
        if idx in bad:
            forged = bytes(rng.randrange(256) for _ in range(len(block)))
            if forged == block:  # ensure the corruption is real
                forged = bytes((forged[0] ^ 1,)) + forged[1:]
            block = forged
        received.append((idx, block))
    decoded = rs.decode_errors_blocks(received, len(payload), systematic=systematic)
    violations = []
    if decoded != payload:
        violations.append(
            f"rs: decode with {n_bad} forged fragments (budget {extra}) "
            "did not return the original payload"
        )
    record = {"kind": "rs-error-flood", "k": k, "m": m, "bad": sorted(bad),
              "systematic": systematic, "ok": decoded == payload}
    return violations, record


def run_coin_probe(probe_seed: int) -> tuple[list[str], dict]:
    """Beacon unpredictability: a coalition strictly under the ``f_w``
    weight budget must control fewer virtual signers than the coin
    threshold, while the honest complement both opens the coin and opens
    it to the unique value."""
    from ..crypto.common_coin import WeightedCoin
    from ..crypto.group import TEST_GROUP_256 as group
    from ..sim.adversary import heaviest_under
    from ..weighted.transform import blunt_setup

    rng = random.Random(f"coin|{probe_seed}")
    n = rng.randint(4, 8)
    weights = [rng.randint(1, 50) for _ in range(n)]
    setup = blunt_setup(weights, "1/3", "1/2")
    coin = WeightedCoin(group, setup.vmap.tickets, "1/2", rng)
    corrupt = sorted(heaviest_under(weights, Fraction(1, 3)))
    honest = [i for i in range(n) if i not in corrupt]
    violations = []
    if corrupt and coin.coalition_can_open(corrupt):
        violations.append(
            f"coin: corrupt coalition {corrupt} under the 1/3 budget can "
            "open the beacon alone (predictability)"
        )
    if not coin.coalition_can_open(honest):
        violations.append("coin: honest complement cannot open the beacon")
    else:
        opened_honest = coin.open_with_parties(honest, 0, rng)
        opened_all = coin.open_with_parties(list(range(n)), 0, rng)
        if opened_honest != opened_all:
            violations.append("coin: opened value depends on the coalition")
    record = {"kind": "coin-unpredictability", "weights": weights,
              "corrupt": corrupt, "threshold": coin.threshold,
              "total_shares": coin.total_shares}
    return violations, record


_PROBES: dict[str, Callable[[int], tuple[list[str], dict]]] = {
    "dleq-forge": run_dleq_probe,
    "rs-error-flood": run_rs_probe,
    "coin-unpredictability": run_coin_probe,
}


# -- execution -------------------------------------------------------------------------


def run_episode(episode: dict, *, timeout: float = 30.0) -> EpisodeOutcome:
    """Execute one episode (freshly sampled or replayed) and check it."""
    from ..api.committee import CommitteeValidationError
    from ..scenarios.harness import run_scenario

    kind = episode["kind"]
    if kind in _PROBES:
        violations, record = _PROBES[kind](episode["probe_seed"])
        return EpisodeOutcome(episode=episode, violations=violations, record=record)
    spec = ScenarioSpec.from_dict(episode["scenario"])
    try:
        result = run_scenario(
            spec, backend=episode.get("backend", "sim"), timeout=timeout
        )
    except CommitteeValidationError:
        return EpisodeOutcome(episode=episode, skipped=True)
    except TimeoutError:
        return EpisodeOutcome(
            episode=episode,
            violations=["liveness: run timed out on a runtime backend"],
        )
    record = result.record()
    return EpisodeOutcome(
        episode=episode, violations=check_record(spec, record), record=record
    )


def replay_episode(replay_spec: dict, *, timeout: float = 30.0) -> EpisodeOutcome:
    """Re-run a persisted replay spec byte-identically (sim backend: the
    record, not just the verdict, reproduces)."""
    episode = {k: v for k, v in replay_spec.items() if k != "violations"}
    return run_episode(episode, timeout=timeout)


def _campaign_episode(config: FuzzConfig, index: int) -> EpisodeOutcome:
    """One campaign step as a pure function of ``(config, index)`` -- the
    unit the parallel executor fans out.  All randomness comes from
    ``build_episode``'s ``f"{config.seed}|episode|{index}"`` stream, so a
    worker process needs nothing but this tuple."""
    return run_episode(build_episode(config, index), timeout=config.timeout)


def run_campaign(
    config: FuzzConfig,
    *,
    jobs: Union[int, str] = 1,
    progress: Optional[Callable[[int, EpisodeOutcome], None]] = None,
) -> CampaignResult:
    """Run the whole campaign; never raises on a violation -- violations
    are data (replay specs) in the result.

    ``jobs`` fans episodes out over worker processes (``"auto"`` = one
    per core); outcomes are merged in episode order, so the result --
    summary, failures, every record -- is byte-identical to ``jobs=1``.
    """
    import functools

    from ..parallel.executor import ParallelExecutor

    executor = ParallelExecutor(jobs)
    if executor.jobs > 1:
        outcomes = executor.map(
            functools.partial(_campaign_episode, config),
            range(config.episodes),
            progress=progress,
        )
        return CampaignResult(config=config, outcomes=outcomes)
    outcomes = []
    for index in range(config.episodes):
        outcome = _campaign_episode(config, index)
        outcomes.append(outcome)
        if progress is not None:
            progress(index, outcome)
    return CampaignResult(config=config, outcomes=outcomes)
