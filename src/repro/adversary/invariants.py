"""Safety invariants machine-checked on every scenario record.

The campaign runner (:mod:`repro.adversary.fuzz`) applies these to each
episode's unified record; a non-empty return is a violation and becomes
a one-line replay spec.  The invariants are the paper's correctness
claims, stated over the record shape:

* **agreement** -- honest parties that decided decided the same value.
  For SMR the decided digest is computed over the ordered log, so equal
  digests are simultaneously the *total order* check.
* **validity** -- with an honest RBC sender, anything delivered is the
  sender's payload.
* **liveness** -- when no strategy in the fault plan breaks liveness,
  the run completed.
* **gap-free committed log** (service workloads) -- epoch slot ranges
  are contiguous from slot 0 and every submitted request committed.
* **recovery** (crash-restart fault plans) -- every restarted party
  decided in a completed run; a recovered party stuck at the empty
  digest means rejoin silently failed.

Beacon unpredictability is checked by a direct probe
(:func:`repro.adversary.fuzz.run_coin_probe`) rather than from records:
no scenario driver exposes the coin's coalition structure.
"""

from __future__ import annotations

import hashlib

__all__ = ["EMPTY_DIGEST", "check_record"]

#: the digest every driver emits for "no output yet" (sha256 of nothing)
EMPTY_DIGEST = hashlib.sha256(b"").hexdigest()[:16]


def _expected_rbc_digest(spec, record) -> str | None:
    """The honest sender's payload digest, or ``None`` when the sender is
    corrupted (no validity claim to check)."""
    from ..scenarios.harness import _digest, _payload

    adversary = record.get("adversary") or {}
    corrupted = set(adversary.get("corrupted", ()))
    live = [
        pid for pid in range(record["n_real"]) if pid not in spec.faults.crashes
    ]
    honest = [pid for pid in live if pid not in corrupted]
    if not honest:
        return None
    sender = min(honest)
    # An equivocation strategy takes over the sender role entirely.
    if "equivocate" in adversary.get("strategies", ()):
        return None
    return _digest(_payload(spec, sender, 0))


def _check_service(record: dict) -> list[str]:
    violations: list[str] = []
    service = record.get("service") or {}
    epochs = service.get("epochs", ())
    cursor = 0
    for ep in epochs:
        if ep["first_slot"] != cursor:
            violations.append(
                f"gap in committed log: epoch {ep['epoch']} starts at slot "
                f"{ep['first_slot']}, expected {cursor}"
            )
        if ep["last_slot"] < ep["first_slot"]:
            violations.append(
                f"epoch {ep['epoch']} slot range inverted: "
                f"[{ep['first_slot']}, {ep['last_slot']})"
            )
        cursor = ep["last_slot"]
    if record.get("completed"):
        submitted = service.get("requests_submitted", 0)
        committed = service.get("requests_committed", 0)
        if committed != submitted:
            violations.append(
                f"request loss: {committed}/{submitted} committed in a "
                "completed run"
            )
        if epochs and service.get("rotations") != len(epochs) - 1:
            violations.append(
                f"rotation count {service.get('rotations')} does not match "
                f"{len(epochs)} epoch records"
            )
    return violations


def check_record(spec, record: dict) -> list[str]:
    """All safety-invariant violations of one scenario ``record`` (the
    dict from ``ScenarioResult.record()``) executed from ``spec``.
    Empty list = the record is safe."""
    violations: list[str] = []
    adversary = record.get("adversary") or {}
    expect_liveness = adversary.get("expect_liveness", True)

    if expect_liveness and not record.get("completed"):
        violations.append("liveness: run did not complete with no "
                          "liveness-breaking strategy in the fault plan")

    decided = record.get("decided") or {}
    values = {v for v in decided.values() if v != EMPTY_DIGEST}
    if len(values) > 1:
        violations.append(
            f"agreement: honest parties decided {len(values)} distinct "
            f"values: {sorted(values)}"
        )

    if spec.protocol == "rbc" and values:
        expected = _expected_rbc_digest(spec, record)
        if expected is not None and values != {expected}:
            violations.append(
                f"validity: delivered {sorted(values)} but the honest "
                f"sender broadcast {expected}"
            )

    # Crash-restarted parties must come all the way back: a completed run
    # where a recovered party never decided means rejoin silently failed
    # (agreement alone would not catch it -- EMPTY_DIGEST is filtered).
    restarts = getattr(spec.faults, "restarts", ())
    if restarts and record.get("completed"):
        for pid, _crash_at, _restart_at in restarts:
            digest = decided.get(str(pid), EMPTY_DIGEST)
            if digest == EMPTY_DIGEST:
                violations.append(
                    f"recovery: restarted party {pid} decided nothing in a "
                    "completed run"
                )

    if record.get("service") is not None:
        violations.extend(_check_service(record))
    if record.get("chaos") is not None:
        violations.extend(_check_chaos(spec, record))
    return violations


def _check_chaos(spec, record: dict) -> list[str]:
    """Chaos-plan invariants over the record's ``chaos`` section.

    * **delivery idempotence** -- duplicated/reordered delivery must
      never commit the same proposer twice in one epoch's log.
    * **progress after heal** -- on the sim backend a completed run whose
      partitions all healed must have converged within a bounded virtual
      time after the last heal (a run that limps to completion through
      retries long after the heal is a liveness regression).
    """
    violations: list[str] = []
    chaos = record["chaos"]
    duplicates = chaos.get("duplicate_commits", 0)
    if duplicates:
        violations.append(
            f"idempotence: {duplicates} duplicate commit(s) in ordered "
            "logs under duplication/reordering"
        )
    heal = spec.chaos.heal_time() if spec.chaos is not None else None
    if (
        record.get("backend") == "sim"
        and record.get("completed")
        and heal is not None
    ):
        bound = heal + 5.0
        sim_time = record.get("sim_time", 0.0)
        if sim_time > bound:
            violations.append(
                f"progress: healed run converged at t={sim_time:.3f}, "
                f"past the bound {bound:.3f} (heal at {heal:.3f})"
            )
    return violations
