"""Declarative scenario engine: one spec, every execution backend.

``ScenarioSpec`` describes a workload (protocol, weights, faults,
network, payloads, seed); :func:`run_scenario` executes it on the
discrete-event simulator or the live asyncio runtime and returns a
unified metrics record; :data:`SCENARIOS` is the registry of built-in
named scenarios the CLI and CI sweep.
"""

from .harness import BACKENDS, RunContext, ScenarioResult, run_scenario
from .registry import INPROC_SCENARIOS, SCENARIOS, get_scenario, scenario_names
from .spec import ByzantineSpec, FaultSpec, NetSpec, ScenarioSpec, WeightSpec, WorkloadSpec

__all__ = [
    "ScenarioSpec",
    "WeightSpec",
    "ByzantineSpec",
    "FaultSpec",
    "NetSpec",
    "WorkloadSpec",
    "ScenarioResult",
    "RunContext",
    "run_scenario",
    "BACKENDS",
    "SCENARIOS",
    "INPROC_SCENARIOS",
    "get_scenario",
    "scenario_names",
]

#: facade names reachable through this module for compatibility; the
#: canonical home is :mod:`repro.api`
_API_SHIMS = ("Committee", "Session", "BackendSpec", "WeightSource")


def __getattr__(name: str):
    """Thin deprecation shim: the execution-facing facade objects moved
    to :mod:`repro.api`; resolving them through ``repro.scenarios``
    still works but warns."""
    if name in _API_SHIMS:
        import warnings

        from .. import api

        warnings.warn(
            f"importing {name!r} from repro.scenarios is deprecated; "
            f"use repro.api.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
