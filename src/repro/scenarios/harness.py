"""One harness, every backend: execute a :class:`ScenarioSpec` on the
discrete-event simulator or the live asyncio runtime.

The harness translates a declarative spec into the pieces an execution
backend needs -- a party factory, workload entry points, a completion
predicate, and a fault plan -- via per-protocol *drivers*.  Both backends
share one :class:`~repro.runtime.faults.FaultController` implementation
(the sim consults it at its delivery point, see
:mod:`repro.sim.network`), so a fault plan means the same thing on both.

The result is a unified, JSON-able metrics record.  On the sim backend
the record is fully deterministic for a fixed seed -- byte-identical
across runs -- which the determinism regression test pins down.  Across
backends, the *decided values* must agree for fault-free scenarios, and
message counts additionally agree for protocols that send each phase
message exactly once (RBC, SMR, checkpointing); VABA's round advancement
is timing-dependent, so its counts are reported but not comparable.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..runtime.faults import FaultController
from ..sim.process import Party
from .spec import ScenarioSpec

__all__ = ["ScenarioResult", "RunContext", "run_scenario", "build_driver", "BACKENDS"]

#: execution backends ``run_scenario`` accepts; ``proc`` is
#: process-per-party (one OS process per node), orchestrated by
#: :mod:`repro.parallel.proc`
BACKENDS = ("sim", "inproc", "tcp", "proc")


def _digest(data: bytes) -> str:
    """Short stable fingerprint of a decided value."""
    return hashlib.sha256(data).hexdigest()[:16]


def _payload(spec: ScenarioSpec, pid: int, epoch: int) -> bytes:
    """Deterministic per-(party, epoch) workload payload."""
    seed = f"{spec.name}|{spec.seed}|{epoch}|{pid}".encode()
    block = hashlib.sha256(seed).digest()
    reps = (spec.workload.payload_size + len(block) - 1) // len(block)
    return (block * reps)[: spec.workload.payload_size]


@dataclass
class RunContext:
    """What a driver sees of the running backend: the parties, the set of
    live node ids, and a scenario-time scheduler (sim: virtual seconds via
    the simulator; runtime: wall seconds via ``loop.call_later``)."""

    parties: Sequence[Party]
    live_nodes: tuple[int, ...]
    schedule: Callable[[float, Callable[[], None]], None]

    def party(self, nid: int) -> Party:
        return self.parties[nid]

    def at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at scenario time ``when`` (immediately when 0)."""
        if when <= 0:
            fn()
        else:
            self.schedule(when, fn)


# -- protocol drivers ------------------------------------------------------------------


class ProtocolDriver:
    """Backend-independent execution recipe for one protocol.

    ``map_pid`` translates a *real* party id from the fault plan into the
    node ids hosting it -- identity except for the black-box VABA driver,
    whose nodes are virtual users.
    """

    #: message counts match across backends (phase messages sent exactly once)
    count_comparable = True

    #: ``spec.f_w`` governs this driver's quorums, so crash plans are
    #: pre-checked against the f_w*W resilience budget (a crash set at or
    #: above it could never complete and would only burn the timeout)
    uses_f_w = True

    #: the driver supports the process-per-party backend: its workload,
    #: completion check, and output are all expressible per node (the
    #: ``start_node``/``node_done``/``node_output`` forms below), so a
    #: worker that hosts exactly one party can drive its slice alone
    proc_capable = True

    #: the driver's parties implement crash-restart recovery (WAL replay
    #: plus state sync); only then may a fault plan carry ``restarts``
    supports_restarts = False

    def __init__(self, spec: ScenarioSpec, committee, adversary=None) -> None:
        self.spec = spec
        self.committee = committee
        self.adversary = adversary
        #: directory for durable per-party write-ahead logs (``None`` =
        #: in-memory WALs; set by ``build_driver`` from ``--state-dir``)
        self.state_dir: Optional[str] = None
        self.weights = committee.int_weights
        if spec.faults.restarts and not self.supports_restarts:
            raise ValueError(
                f"protocol {spec.protocol!r} has no crash-recoverable "
                "party; crash-restart plans need one (smr)"
            )
        self.live_real = tuple(
            pid for pid in range(len(self.weights)) if pid not in spec.faults.crashes
        )
        if not self.live_real:
            raise ValueError("fault plan crashes every party; nothing left to run")
        # Corruption strategies only apply to identity-mapped protocols
        # (node id == real pid), so the corrupted set is in node-id terms.
        corrupted = adversary.corrupted if adversary is not None else frozenset()
        self.honest_real = tuple(
            pid for pid in self.live_real if pid not in corrupted
        )

    def observers(self, ctx: "RunContext") -> tuple[int, ...]:
        """The nodes whose outputs carry correctness claims: live honest
        nodes (corrupted parties stay live but their state means nothing)."""
        if self.adversary is None:
            return tuple(ctx.live_nodes)
        corrupted = self.adversary.corrupted
        return tuple(nid for nid in ctx.live_nodes if nid not in corrupted)

    @property
    def n_nodes(self) -> int:
        return len(self.weights)

    def map_pid(self, pid: int) -> Sequence[int]:
        return (pid,)

    def factory(self, nid: int) -> Party:
        raise NotImplementedError

    def start(self, ctx: RunContext) -> None:
        raise NotImplementedError

    def done(self, ctx: RunContext) -> bool:
        raise NotImplementedError

    def outputs(self, ctx: RunContext) -> dict[str, str]:
        """Canonical decided values per live party (digest strings)."""
        raise NotImplementedError

    # -- per-node forms (proc backend) ------------------------------------------
    # One worker hosts one party, so the workload and the correctness
    # checks must decompose by node.  ``done``/``outputs`` above are (for
    # proc-capable drivers) exactly the aggregation of these forms over
    # ``observers(ctx)``; ``start`` stays a separate whole-cluster recipe
    # because its iteration order fixes the sim backend's event order.

    def start_node(self, ctx: RunContext, nid: int) -> None:
        """Fire node ``nid``'s share of the workload (and nothing else)."""
        raise NotImplementedError(f"{type(self).__name__} is not proc-capable")

    def node_done(self, ctx: RunContext, nid: int) -> bool:
        """Completion as observable by node ``nid`` alone."""
        raise NotImplementedError(f"{type(self).__name__} is not proc-capable")

    def node_output(self, ctx: RunContext, nid: int) -> str:
        """Node ``nid``'s canonical decided value (digest string)."""
        raise NotImplementedError(f"{type(self).__name__} is not proc-capable")

    def restart_node(self, ctx: RunContext, nid: int) -> None:
        """Rejoin hook fired right after a crash-restarted node comes
        back (its party has already replayed its WAL and broadcast the
        state-sync request); drivers re-fire the node's workload here."""
        raise NotImplementedError(f"{type(self).__name__} has no recoverable party")


class RbcDriver(ProtocolDriver):
    """Weighted Bracha reliable broadcast; the lowest live honest party
    sends -- unless an equivocation strategy claims the sender role."""

    def __init__(self, spec: ScenarioSpec, committee, adversary=None) -> None:
        super().__init__(spec, committee, adversary)
        self.quorums = committee.quorums(spec.f_w)
        override = adversary.sender_override if adversary is not None else None
        if override is not None:
            self.sender = override
        else:
            self.sender = min(self.honest_real or self.live_real)
        self.payload = _payload(spec, self.sender, 0)

    def factory(self, nid: int) -> Party:
        from ..protocols.reliable_broadcast import BroadcastParty

        return BroadcastParty(nid, self.quorums)

    def start(self, ctx: RunContext) -> None:
        ctx.at(
            self.spec.workload.start_time(0),
            lambda: ctx.party(self.sender).broadcast_value(self.payload),
        )

    def done(self, ctx: RunContext) -> bool:
        return all(self.node_done(ctx, nid) for nid in self.observers(ctx))

    def outputs(self, ctx: RunContext) -> dict[str, str]:
        return {
            str(nid): self.node_output(ctx, nid) for nid in self.observers(ctx)
        }

    def start_node(self, ctx: RunContext, nid: int) -> None:
        if nid != self.sender:
            return
        ctx.at(
            self.spec.workload.start_time(0),
            lambda: ctx.party(self.sender).broadcast_value(self.payload),
        )

    def node_done(self, ctx: RunContext, nid: int) -> bool:
        return ctx.party(nid).delivered == self.payload

    def node_output(self, ctx: RunContext, nid: int) -> str:
        return _digest(ctx.party(nid).delivered or b"")


class SmrDriver(ProtocolDriver):
    """Composed SMR: every live party proposes a batch per epoch.

    Epochs started while a partition is active are best-effort (the
    cross-partition RBC instances lose messages and cannot commit
    everywhere); completion requires full logs only for epochs started at
    or after ``heal_at``.
    """

    supports_restarts = True

    def __init__(self, spec: ScenarioSpec, committee, adversary=None) -> None:
        super().__init__(spec, committee, adversary)
        from ..protocols.common_coin import deterministic_coin

        self.quorums = committee.quorums(spec.f_w)
        self.coin = deterministic_coin(f"{spec.name}|{spec.seed}")
        if spec.faults.restarts:
            # recovery traffic (state sync, re-proposals) depends on
            # timing, so message counts stop being comparable
            self.count_comparable = False
        # Reject specs with nothing to certify: a vacuously-true done()
        # would report a successful run in which no epoch committed.
        if not self._required_epochs():
            raise ValueError(
                "no SMR epoch can commit everywhere under this fault plan: "
                "a partition needs heal_at and at least one epoch starting "
                "at or after it"
            )

    def factory(self, nid: int) -> Party:
        from ..protocols.smr import SmrParty

        if self.spec.faults.restarts:
            # crash-restart plans need durable commits and rejoin logic;
            # every party gets the recoverable subclass so sync requests
            # are answered cluster-wide
            from ..recovery.smr import RecoverableSmrParty
            from ..recovery.wal import open_wal

            wal = open_wal(self.state_dir, f"{self.spec.name}-party{nid}")
            return RecoverableSmrParty(
                nid, self.n_nodes, self.quorums, self.coin, wal=wal
            )
        return SmrParty(nid, self.n_nodes, self.quorums, self.coin)

    def _required_epochs(self) -> list[int]:
        epochs = range(self.spec.workload.epochs)
        barriers = []
        if self.spec.faults.partition:
            heal = self.spec.faults.heal_at
            if heal is None:
                return []  # never heals: no epoch can commit everywhere
            barriers.append(heal)
        if self.spec.chaos is not None:
            start, heal = self.spec.chaos.partition_window()
            if start is not None:
                if heal is None:
                    # A chaos partition that never heals is the watchdog's
                    # stall case: keep every epoch required so done() stays
                    # unsatisfiable and the stall is classified, not hidden
                    # behind a vacuous completion.
                    return list(epochs)
                barriers.append(heal)
        if not barriers:
            return list(epochs)
        floor = max(barriers)
        return [e for e in epochs if self.spec.workload.start_time(e) >= floor]

    def start(self, ctx: RunContext) -> None:
        for epoch in range(self.spec.workload.epochs):

            def fire(e: int = epoch) -> None:
                for nid in ctx.live_nodes:
                    ctx.party(nid).propose_batch(e, _payload(self.spec, nid, e))

            ctx.at(self.spec.workload.start_time(epoch), fire)

    def done(self, ctx: RunContext) -> bool:
        return all(self.node_done(ctx, nid) for nid in self.observers(ctx))

    def outputs(self, ctx: RunContext) -> dict[str, str]:
        return {
            str(nid): self.node_output(ctx, nid) for nid in self.observers(ctx)
        }

    def start_node(self, ctx: RunContext, nid: int) -> None:
        for epoch in range(self.spec.workload.epochs):

            def fire(e: int = epoch) -> None:
                ctx.party(nid).propose_batch(e, _payload(self.spec, nid, e))

            ctx.at(self.spec.workload.start_time(epoch), fire)

    def restart_node(self, ctx: RunContext, nid: int) -> None:
        # Re-propose every epoch's batch: receivers absorb duplicates
        # (``_echoed`` dedups per instance) and the payloads are a pure
        # function of the spec, so re-proposal cannot fork an instance.
        # Needed when the crash predates the original proposal -- no live
        # peer can supply a batch that was never broadcast.
        for epoch in range(self.spec.workload.epochs):
            ctx.party(nid).propose_batch(epoch, _payload(self.spec, nid, epoch))

    def node_done(self, ctx: RunContext, nid: int) -> bool:
        if self.adversary is None:
            want = len(ctx.live_nodes)
            return all(
                len(ctx.party(nid).ordered_log(e)) == want
                for e in self._required_epochs()
            )
        # Under an active adversary only the honest proposers' batches are
        # guaranteed to commit (a Byzantine proposer's instance may never
        # terminate); require every honest log to contain all of them.
        honest = set(self.honest_real)
        return all(
            honest <= {p for p, _ in ctx.party(nid).ordered_log(e)}
            for e in self._required_epochs()
        )

    def node_output(self, ctx: RunContext, nid: int) -> str:
        honest = set(self.honest_real)
        h = hashlib.sha256()
        for e in self._required_epochs():
            for proposer, payload in ctx.party(nid).ordered_log(e):
                # A Byzantine proposer's batch may legitimately commit
                # at some honest parties and not others; the agreement
                # claim covers the honest proposers' sub-log.
                if self.adversary is not None and proposer not in honest:
                    continue
                h.update(f"{e}|{proposer}|".encode())
                h.update(payload)
        return h.hexdigest()[:16]


class VabaDriver(ProtocolDriver):
    """Black-box weighted VABA: nodes are *virtual users* of a WR(f_n -
    eps, f_n) solution; real party ``i`` drives ``vmap.virtual_ids(i)``
    (paper, Section 4.4).  Message counts are timing-dependent (round
    advancement races the decision), so they are not cross-backend
    comparable -- decided values are.
    """

    count_comparable = False
    #: resilience comes from the WR(f_n - eps, f_n) params, not spec.f_w
    uses_f_w = False
    #: real outputs aggregate *all* virtual parties' decisions through
    #: ``runner.real_output``, which no single-node worker can compute
    proc_capable = False

    def __init__(self, spec: ScenarioSpec, committee, adversary=None) -> None:
        super().__init__(spec, committee, adversary)
        from ..protocols.vaba import WeightedVabaRunner
        from ..weighted.transform import black_box_setup

        f_n = str(spec.param("f_n", "1/3"))
        epsilon = str(spec.param("epsilon", "1/12"))
        self.setup = black_box_setup(self.weights, f_n, epsilon)
        self.runner = WeightedVabaRunner(
            self.setup.vmap, self.weights, self.setup.f_w, coin_seed=spec.seed
        )
        self._parties = self.runner.build_parties(f_n, on_decide=lambda vid, v: None)

    @property
    def n_nodes(self) -> int:
        return self.setup.vmap.total_virtual

    def map_pid(self, pid: int) -> Sequence[int]:
        return tuple(self.setup.vmap.virtual_ids(pid))

    def factory(self, nid: int) -> Party:
        return self._parties[nid]

    def start(self, ctx: RunContext) -> None:
        def fire() -> None:
            for real in self.live_real:
                value = _payload(self.spec, real, 0)
                for vid in self.map_pid(real):
                    ctx.party(vid).propose(value)

        ctx.at(self.spec.workload.start_time(0), fire)

    def done(self, ctx: RunContext) -> bool:
        return all(ctx.party(nid).decided is not None for nid in ctx.live_nodes)

    def outputs(self, ctx: RunContext) -> dict[str, str]:
        virtual_outputs = {
            p.pid: p.decided for p in self._parties if p.decided is not None
        }
        real = self.runner.real_output(virtual_outputs)
        return {
            str(pid): _digest(value)
            for pid, value in sorted(real.items())
            if pid in self.live_real
        }


class CheckpointDriver(ProtocolDriver):
    """Threshold-signed checkpoints over a blunt WR(f_w, 1/2) setup; one
    checkpoint per workload epoch, ``mode`` / ``beta`` via params."""

    def __init__(self, spec: ScenarioSpec, committee, adversary=None) -> None:
        super().__init__(spec, committee, adversary)
        from ..crypto.group import TEST_GROUP_256
        from ..crypto.threshold_sig import ThresholdSignatureScheme
        from ..weighted.transform import blunt_setup

        self.mode = str(spec.param("mode", "blunt"))
        self.beta = str(spec.param("beta", "1/2"))
        self.setup = blunt_setup(self.weights, spec.f_w, "1/2")
        self.scheme = ThresholdSignatureScheme(
            TEST_GROUP_256, self.setup.total_virtual, self.setup.threshold
        )
        self.scheme.keygen(random.Random(spec.seed))
        self.checkpoints = [
            _payload(spec, 0, epoch) for epoch in range(spec.workload.epochs)
        ]

    def factory(self, nid: int) -> Party:
        from ..protocols.checkpointing import CheckpointParty

        return CheckpointParty(
            nid,
            self.scheme,
            self.setup.vmap,
            random.Random(f"{self.spec.seed}|{nid}"),
            mode=self.mode,
            weights=self.weights if self.mode == "tight" else None,
            beta=self.beta if self.mode == "tight" else None,
        )

    def start(self, ctx: RunContext) -> None:
        for epoch, checkpoint in enumerate(self.checkpoints):

            def fire(cp: bytes = checkpoint) -> None:
                for nid in ctx.live_nodes:
                    ctx.party(nid).sign_checkpoint(cp)

            ctx.at(self.spec.workload.start_time(epoch), fire)

    def done(self, ctx: RunContext) -> bool:
        return all(self.node_done(ctx, nid) for nid in self.observers(ctx))

    def outputs(self, ctx: RunContext) -> dict[str, str]:
        return {
            str(nid): self.node_output(ctx, nid) for nid in self.observers(ctx)
        }

    def start_node(self, ctx: RunContext, nid: int) -> None:
        for epoch, checkpoint in enumerate(self.checkpoints):

            def fire(cp: bytes = checkpoint) -> None:
                ctx.party(nid).sign_checkpoint(cp)

            ctx.at(self.spec.workload.start_time(epoch), fire)

    def node_done(self, ctx: RunContext, nid: int) -> bool:
        return all(cp in ctx.party(nid).certificates for cp in self.checkpoints)

    def node_output(self, ctx: RunContext, nid: int) -> str:
        certs = ctx.party(nid).certificates
        blob = "|".join(str(certs.get(cp, "")) for cp in self.checkpoints)
        return _digest(blob.encode())


_DRIVERS: dict[str, type[ProtocolDriver]] = {
    "rbc": RbcDriver,
    "smr": SmrDriver,
    "vaba": VabaDriver,
    "checkpoint": CheckpointDriver,
}


# -- results ---------------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """The unified metrics record of one scenario execution."""

    spec: ScenarioSpec
    backend: str
    n_real: int
    n_nodes: int
    weights_digest: str
    completed: bool
    decided: dict[str, str]
    count_comparable: bool
    messages: int
    bytes: int
    by_type: dict[str, int]
    bytes_by_type: dict[str, int]
    dropped_messages: int
    delayed_messages: int
    #: sim backend only: virtual completion time and event count
    sim_time: Optional[float] = None
    sim_events: Optional[int] = None
    #: runtime backends only: wall-clock duration (nondeterministic)
    wall_seconds: Optional[float] = None
    #: service workloads only: ops/sec, latency percentiles, epoch records
    service: Optional[dict] = None
    #: active-adversary runs only: strategies, corrupted set, liveness claim
    adversary: Optional[dict] = None
    #: proc backend only: node id -> OS process id of the hosting worker
    workers: Optional[dict[str, int]] = None
    #: crash-restart runs on proc only: per-node downtime/rejoin timings
    #: plus summed recovery counters (WAL replays, peer sync, dedup)
    recovery: Optional[dict] = None
    #: chaos runs only: stage timeline with fired flags, weather
    #: realization, the delivery-idempotence counter, and the watchdog
    #: verdict (plus a postmortem bundle when the run stalled)
    chaos: Optional[dict] = None

    def record(self) -> dict:
        """JSON-able snapshot.  On the sim backend every field is a pure
        function of the spec, so the record is byte-identical across runs
        (the determinism regression test relies on this); wall-clock only
        appears for runtime backends."""
        rec = {
            "scenario": self.spec.name,
            "protocol": self.spec.protocol,
            "backend": self.backend,
            "seed": self.spec.seed,
            "f_w": self.spec.f_w,
            "n_real": self.n_real,
            "n_nodes": self.n_nodes,
            "weights_digest": self.weights_digest,
            "completed": self.completed,
            "decided": dict(sorted(self.decided.items())),
            "count_comparable": self.count_comparable,
            "messages": self.messages,
            "bytes": self.bytes,
            "by_type": dict(sorted(self.by_type.items())),
            "bytes_by_type": dict(sorted(self.bytes_by_type.items())),
            "dropped_messages": self.dropped_messages,
            "delayed_messages": self.delayed_messages,
        }
        if self.backend == "sim":
            rec["sim_time"] = self.sim_time
            rec["sim_events"] = self.sim_events
        else:
            rec["wall_seconds"] = self.wall_seconds
        if self.service is not None:
            rec["service"] = self.service
        if self.adversary is not None:
            rec["adversary"] = self.adversary
        if self.workers is not None:
            rec["workers"] = dict(sorted(self.workers.items()))
        if self.recovery is not None:
            rec["recovery"] = self.recovery
        if self.chaos is not None:
            rec["chaos"] = self.chaos
        return rec

    def record_json(self) -> str:
        """Canonical JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.record(), sort_keys=True, separators=(",", ":"))

    def write(self, *, base=None):
        """Persist the record under ``results/`` (analysis artifact).

        The seed is part of the filename so seed sweeps of one scenario
        do not clobber each other's records.
        """
        from ..analysis.report import write_json

        name = f"scenario_{self.spec.name}_{self.backend}_seed{self.spec.seed}.json"
        return write_json(name, self.record(), base=base)


# -- execution -------------------------------------------------------------------------


def _fault_plan(
    spec: ScenarioSpec, driver: ProtocolDriver
) -> tuple[FaultController, list[int], list[frozenset[int]], list[tuple[int, int, float]]]:
    """Translate the spec's real-party fault plan into node-id terms."""
    faults = FaultController()
    crashed = sorted(
        {nid for pid in spec.faults.crashes for nid in driver.map_pid(pid)}
    )
    groups = [
        frozenset(nid for pid in group for nid in driver.map_pid(pid))
        for group in spec.faults.partition
    ]
    links = [
        (s, d, delay)
        for (src, dst, delay) in spec.faults.link_delays
        for s in driver.map_pid(src)
        for d in driver.map_pid(dst)
    ]
    return faults, crashed, groups, links


def build_driver(
    spec: ScenarioSpec,
    committee=None,
    *,
    validate: bool = True,
    state_dir: Optional[str] = None,
) -> ProtocolDriver:
    """Construct the spec's driver (committee resolved, adversary wired).

    Every piece is a deterministic function of the spec, which is what
    makes the ``proc`` backend possible: each worker process rebuilds an
    *identical* driver -- same committee, same corruption set, same key
    material (the checkpoint keygen draws from ``random.Random(seed)``) --
    from nothing but the pickled spec dict.  Workers pass
    ``validate=False`` because the parent already vetted the spec.
    """
    from ..api.committee import Committee

    if committee is None:
        committee = Committee.from_weight_spec(spec.weights, seed=spec.seed)
    driver_cls = _DRIVERS[spec.protocol]
    if validate:
        committee.validate(
            # Restarted parties are down for a window, so the crash
            # budget must cover crashes and restarts *together* -- the
            # conservative check for the worst moment of the run.
            f_w=spec.f_w if driver_cls.uses_f_w else None,
            crashes=tuple(spec.faults.crashes)
            + tuple(pid for pid, _, _ in spec.faults.restarts),
            partition=spec.faults.partition,
            link_delays=spec.faults.link_delays,
            payload_size=spec.workload.payload_size,
            epochs=spec.workload.epochs,
        )
    adversary = None
    if spec.chaos is not None:
        # Chaos plans always get the staged adversary (even with no
        # byzantine stages: it carries the merged liveness claim and the
        # chaos-crash budget check); it delegates flat strategies.
        from ..chaos.orchestrator import StagedAdversary

        if spec.workload.kind == "service":
            raise ValueError(
                "chaos plans run on batch workloads; service workloads "
                "have their own rotation-driven fault hooks"
            )
        adversary = StagedAdversary(spec, committee)
    elif spec.faults.byzantine:
        from ..adversary.strategies import Adversary

        adversary = Adversary(spec, committee)
    driver = driver_cls(spec, committee, adversary)
    driver.state_dir = state_dir
    if adversary is not None:
        # Corrupt at construction: every backend builds every party
        # through this factory, so the corruption is backend-agnostic.
        driver.factory = adversary.wrap_factory(driver.factory)
    return driver


def run_scenario(
    spec: ScenarioSpec,
    *,
    backend: str = "sim",
    timeout: float = 60.0,
    committee=None,
    state_dir: Optional[str] = None,
) -> ScenarioResult:
    """Execute ``spec`` on ``backend`` and return the unified record.

    ``backend`` is ``"sim"`` (discrete-event, deterministic, virtual
    time), ``"inproc"`` (live asyncio queues), ``"tcp"`` (live sockets,
    one event loop), or ``"proc"`` (process-per-party over TCP).  Runtime
    backends raise ``TimeoutError`` when the scenario does not complete
    within ``timeout``; the sim instead runs to quiescence and reports
    ``completed=False``.  ``committee`` lets a caller that already
    resolved the spec's weights (e.g. a :class:`repro.api.Session`) skip
    re-resolving the source.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; one of {BACKENDS}")
    if spec.workload.kind == "service":
        # Service workloads (open-loop load + committee rotation) have
        # their own driver stack; they return the same ScenarioResult.
        from ..service.scenario import run_service_spec

        if spec.protocol != "smr":
            raise ValueError("service workloads run on the smr protocol")
        if backend == "proc":
            raise ValueError(
                "service workloads run on the sim or inproc backends, not proc"
            )
        return run_service_spec(
            spec, backend=backend, timeout=timeout, committee=committee
        )
    if backend == "proc":
        from ..parallel.proc import run_proc_scenario

        return run_proc_scenario(
            spec, timeout=timeout, committee=committee, state_dir=state_dir
        )
    driver = build_driver(spec, committee, state_dir=state_dir)
    committee = driver.committee
    adversary = driver.adversary
    faults, crashed, groups, links = _fault_plan(spec, driver)
    live_nodes = tuple(
        nid for nid in range(driver.n_nodes) if nid not in set(crashed)
    )
    if not live_nodes:
        raise ValueError("fault plan crashes every node; nothing left to run")

    common = dict(
        spec=spec,
        backend=backend,
        n_real=committee.n,
        n_nodes=driver.n_nodes,
        weights_digest=committee.weights_digest,
        count_comparable=driver.count_comparable,
        adversary=adversary.describe() if adversary is not None else None,
    )

    if backend == "sim":
        return _run_sim(spec, driver, faults, crashed, groups, links, live_nodes, common)
    return _run_runtime(
        spec, driver, faults, crashed, groups, links, live_nodes, common,
        transport=backend, timeout=timeout,
    )


def _apply_static_faults(
    faults: FaultController,
    groups: Sequence[frozenset[int]],
    links: Sequence[tuple[int, int, float]],
) -> None:
    if groups:
        faults.partition(*groups)
    for src, dst, delay in links:
        faults.delay_link(src, dst, delay)


def _chaos_horizon(spec) -> float:
    """Latest scenario time at which anything is *scheduled* to fire
    (epoch starts, heal, restarts, chaos stages): before it, quiet is
    just waiting; after it, quiet without completion is a stall."""
    times = [spec.workload.start_time(e) for e in range(spec.workload.epochs)]
    if spec.faults.heal_at is not None:
        times.append(spec.faults.heal_at)
    for _pid, _crash_at, restart_at in spec.faults.restarts:
        times.append(restart_at)
    if spec.chaos is not None:
        times.append(spec.chaos.latest_time())
    return max(times + [0.0])


def _schedule_restarts(spec, driver, ctx, crash_fn, restart_fn) -> None:
    """Arm the crash-restart plan: crash at T, rejoin at T + delta.

    ``restart_fn`` un-crashes the node at the transport level *before*
    the party's own :meth:`restart` runs, so the state-sync request it
    broadcasts is not dropped by the fault controller.
    """
    for pid, crash_at, restart_at in spec.faults.restarts:
        for nid in driver.map_pid(pid):

            def rejoin(nid: int = nid) -> None:
                restart_fn(nid)
                driver.restart_node(ctx, nid)

            ctx.at(crash_at, lambda nid=nid: crash_fn(nid))
            ctx.at(restart_at, rejoin)


def _run_sim(spec, driver, faults, crashed, groups, links, live_nodes, common):
    from ..sim.network import UniformDelay
    from ..sim.runner import build_world

    world = build_world(
        driver.factory,
        driver.n_nodes,
        delay_model=UniformDelay(spec.net.delay_low, spec.net.delay_high),
        seed=spec.seed,
        faults=faults,
        committee=driver.committee,
    )
    for nid in crashed:
        world.party(nid).crash()
        faults.crash(nid)
    _apply_static_faults(faults, groups, links)
    if driver.adversary is not None:
        driver.adversary.install_network_faults(faults, driver.map_pid)
    ctx = RunContext(
        parties=world.parties,
        live_nodes=live_nodes,
        schedule=world.simulator.schedule,
    )
    if spec.faults.heal_at is not None:
        ctx.at(spec.faults.heal_at, faults.heal)
    _schedule_restarts(
        spec,
        driver,
        ctx,
        lambda nid: (world.party(nid).crash(), faults.crash(nid)),
        lambda nid: (faults.restart(nid), world.party(nid).restart()),
    )
    orchestrator = None
    if spec.chaos is not None:
        from ..chaos.orchestrator import ChaosOrchestrator

        orchestrator = ChaosOrchestrator(spec, driver)
        orchestrator.install(
            ctx,
            faults,
            metrics=world.metrics,
            restart_fn=lambda nid: (
                world.party(nid).restart(),
                driver.restart_node(ctx, nid),
            ),
        )
    driver.start(ctx)
    world.run()  # to quiescence: trailing messages count, as on the runtime
    completed = driver.done(ctx)
    chaos_section = None
    if orchestrator is not None:
        from ..chaos.watchdog import LivenessWatchdog

        watchdog = LivenessWatchdog(
            spec.chaos,
            expect_liveness=driver.adversary.expect_liveness,
            horizon=_chaos_horizon(spec),
        )
        # The sim ran to exact quiescence, so "not done" IS the stall.
        watchdog.observe_quiescence(completed)
        chaos_section = orchestrator.summary()
        chaos_section["watchdog"] = watchdog.report(
            faults=faults, orchestrator=orchestrator
        )
    m = world.metrics
    return ScenarioResult(
        completed=completed,
        decided=driver.outputs(ctx),
        messages=m.messages,
        bytes=m.bytes,
        by_type=dict(m.by_type),
        bytes_by_type=dict(m.bytes_by_type),
        dropped_messages=faults.dropped_messages,
        delayed_messages=faults.delayed_messages,
        sim_time=world.simulator.now,
        sim_events=world.simulator.events_processed,
        chaos=chaos_section,
        **common,
    )


def _run_runtime(
    spec, driver, faults, crashed, groups, links, live_nodes, common,
    *, transport, timeout,
):
    import asyncio

    from ..runtime.cluster import run_cluster

    holder: dict[str, RunContext] = {}

    def setup(cluster) -> None:
        loop = asyncio.get_running_loop()
        ctx = RunContext(
            parties=cluster.parties,
            live_nodes=live_nodes,
            schedule=lambda when, fn: loop.call_later(when, fn),
        )
        holder["ctx"] = ctx
        for nid in crashed:
            cluster.crash_node(nid)
        _apply_static_faults(faults, groups, links)
        if driver.adversary is not None:
            driver.adversary.install_network_faults(faults, driver.map_pid)
        if spec.faults.heal_at is not None:
            ctx.at(spec.faults.heal_at, faults.heal)
        _schedule_restarts(
            spec,
            driver,
            ctx,
            cluster.crash_node,
            cluster.restart_node,
        )
        if orchestrator is not None:
            orchestrator.install(
                ctx,
                faults,
                metrics=cluster.metrics,
                restart_fn=lambda nid: (
                    cluster.restart_node(nid),
                    driver.restart_node(ctx, nid),
                ),
            )
        driver.start(ctx)

    # A liveness-breaking strategy (e.g. an equivocating RBC sender) may
    # legitimately never satisfy done(); settle to quiescence instead of
    # burning the timeout, mirroring the sim's run-to-quiescence.
    expect_liveness = (
        driver.adversary.expect_liveness if driver.adversary is not None else True
    )
    orchestrator = None
    watchdog = None
    if spec.chaos is not None:
        from ..chaos.orchestrator import ChaosOrchestrator
        from ..chaos.watchdog import LivenessWatchdog

        orchestrator = ChaosOrchestrator(spec, driver)
        if spec.chaos.watchdog:
            watchdog = LivenessWatchdog(
                spec.chaos,
                expect_liveness=expect_liveness,
                horizon=_chaos_horizon(spec),
            )
    if watchdog is not None:
        # The watchdog stops a stalled run after ``stall_after`` seconds
        # of quiescence past the horizon -- a postmortem, not a timeout.
        stop_when = watchdog.stop_condition(lambda: driver.done(holder["ctx"]))
    elif expect_liveness:
        stop_when = lambda c: driver.done(holder["ctx"])  # noqa: E731
    else:
        stop_when = None
    cluster = run_cluster(
        driver.factory,
        driver.n_nodes,
        transport=transport,
        faults=faults,
        setup=setup,
        stop_when=stop_when,
        timeout=timeout,
        committee=driver.committee,
    )
    ctx = holder["ctx"]
    completed = driver.done(ctx)
    chaos_section = None
    if orchestrator is not None:
        chaos_section = orchestrator.summary()
        if watchdog is not None:
            watchdog.observe_quiescence(completed)
            chaos_section["watchdog"] = watchdog.report(
                faults=faults,
                orchestrator=orchestrator,
                queue_depths={
                    node.pid: node.inbox.qsize() for node in cluster.nodes
                },
            )
    m = cluster.metrics
    return ScenarioResult(
        completed=completed,
        decided=driver.outputs(ctx),
        messages=m.messages,
        bytes=m.bytes,
        by_type=dict(m.by_type),
        bytes_by_type=dict(m.bytes_by_type),
        dropped_messages=faults.dropped_messages,
        delayed_messages=faults.delayed_messages,
        wall_seconds=m.elapsed_seconds,
        chaos=chaos_section,
        **common,
    )
