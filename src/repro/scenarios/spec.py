"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything a protocol execution needs --
which protocol, how many parties, where the weights come from, which
faults fire when, the simulated network model, the workload size, and a
seed -- without saying *how* to execute it.  The same spec runs on the
discrete-event simulator or on the live asyncio runtime (see
:mod:`repro.scenarios.harness`), which is what lets one test sweep the
protocol x distribution x fault-model matrix on both backends.

Specs are plain data: every field round-trips through ``to_dict`` /
``from_dict`` (hence JSON), and materialization is deterministic for a
fixed seed -- two runs of the same spec draw identical weight vectors,
payloads, and fault timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..chaos.schedule import ChaosSpec

__all__ = [
    "WeightSpec",
    "ByzantineSpec",
    "FaultSpec",
    "NetSpec",
    "WorkloadSpec",
    "ScenarioSpec",
]

#: weight-distribution kinds understood by :meth:`WeightSpec.materialize`
WEIGHT_KINDS = (
    "explicit",
    "constant",
    "uniform",
    "zipf",
    "pareto",
    "lognormal",
    "exponential",
    "chain",
)


@dataclass(frozen=True)
class WeightSpec:
    """Where a scenario's weight vector comes from.

    ``kind`` selects a generator from :mod:`repro.datasets.synthetic`, a
    calibrated chain snapshot from :mod:`repro.datasets.chains` (truncated
    to the ``n`` heaviest parties so the resulting cluster stays
    runnable), or an explicit vector.
    """

    kind: str
    n: int = 0
    total: int = 0
    #: skew parameter: ``s`` for zipf, ``alpha`` for pareto, ``sigma`` for
    #: lognormal, ``rate`` for exponential (unused otherwise)
    skew: float = 1.0
    #: chain name for ``kind="chain"``
    chain: str = ""
    #: the vector itself for ``kind="explicit"``
    values: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WEIGHT_KINDS:
            raise ValueError(f"unknown weight kind {self.kind!r}; one of {WEIGHT_KINDS}")
        if self.kind == "explicit":
            if not self.values:
                raise ValueError("explicit weights need a non-empty values tuple")
        elif self.kind == "chain":
            if not self.chain or self.n < 1:
                raise ValueError("chain weights need a chain name and n >= 1")
        elif self.n < 1 or self.total < self.n:
            raise ValueError("generated weights need n >= 1 and total >= n")

    def to_source(self):
        """This spec as a :class:`repro.api.weight_source.WeightSource`
        (the canonical resolution recipe; ``materialize`` delegates here)."""
        from ..api.weight_source import ChainWeights, InlineWeights, SyntheticWeights

        if self.kind == "explicit":
            return InlineWeights(self.values)
        if self.kind == "chain":
            return ChainWeights(self.chain, n=self.n)
        return SyntheticWeights(self.kind, self.n, self.total, skew=self.skew)

    def materialize(self, seed: int) -> list[int]:
        """The concrete integer weight vector (deterministic in ``seed``)."""
        return self.to_source().resolve(seed)


@dataclass(frozen=True)
class ByzantineSpec:
    """One active (Byzantine) adversary strategy in a fault plan.

    ``strategy`` names an entry of the
    :data:`repro.adversary.STRATEGIES` registry (equivocate,
    garble-echo, pivot-delay, adaptive-corrupt, share-flood,
    bad-handover); ``params`` are strategy-specific JSON-scalar options.
    Which parties get corrupted is *not* part of the spec -- strategies
    pick their own corruption set under the spec's ``f_w`` weight budget,
    deterministically from the materialized weights and the seed, so the
    same entry means the same attack on every backend.
    """

    strategy: str
    params: tuple[tuple[str, object], ...] = ()

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class FaultSpec:
    """The fault plan, in scenario time (sim: virtual seconds; runtime:
    wall seconds -- both regimes use sub-second horizons).

    ``crashes`` fire at t=0.  ``partition`` (a tuple of pid groups) is
    active from t=0 until ``heal_at`` (``None`` = never heals).
    ``link_delays`` adds fixed latency to directed links for the whole
    run.  ``byzantine`` lists active adversary strategies (see
    :class:`ByzantineSpec`); corrupted parties stay live but misbehave.
    ``restarts`` is the crash-restart kind: ``(pid, crash_at,
    restart_at)`` crashes ``pid`` mid-run and brings it back, at which
    point it replays its write-ahead log and rejoins via state sync
    (see :mod:`repro.recovery`).  Fault pids refer to *real* parties;
    drivers that expand parties into virtual users translate them.
    """

    crashes: tuple[int, ...] = ()
    partition: tuple[tuple[int, ...], ...] = ()
    heal_at: Optional[float] = None
    link_delays: tuple[tuple[int, int, float], ...] = ()
    byzantine: tuple[ByzantineSpec, ...] = ()
    restarts: tuple[tuple[int, float, float], ...] = ()

    def __post_init__(self) -> None:
        for pid, crash_at, restart_at in self.restarts:
            if restart_at <= crash_at:
                raise ValueError(
                    f"restart_at must come after crash_at for pid {pid}"
                )
            if pid in self.crashes:
                raise ValueError(
                    f"pid {pid} cannot be both permanently crashed and restarted"
                )


@dataclass(frozen=True)
class NetSpec:
    """The simulated network's delay model (sim backend only; the live
    runtime's latency is whatever the transport really does)."""

    delay_low: float = 0.01
    delay_high: float = 0.1


#: workload kinds: ``batch`` is the classic fixed-instance run; ``service``
#: is the epoch service's open-loop request stream with committee rotation
WORKLOAD_KINDS = ("batch", "service")


@dataclass(frozen=True)
class WorkloadSpec:
    """What the parties are asked to do.

    For ``kind="batch"`` (the default), ``epochs`` counts SMR epochs /
    checkpoints (RBC and VABA run one instance) and ``epoch_times``
    optionally staggers epoch starts in scenario time (default:
    everything fires at t=0) -- the hook that lets the partition-heal
    scenario propose an epoch after the heal.  For ``kind="service"``,
    ``epochs`` counts committee *generations* (so ``epochs - 1``
    rotations) and the open-loop load is configured through scenario
    params (``arrival_rate``, ``requests``, ``slot_interval``,
    ``slots_per_epoch``).
    """

    payload_size: int = 32
    epochs: int = 1
    epoch_times: tuple[float, ...] = ()
    kind: str = "batch"

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; one of {WORKLOAD_KINDS}"
            )
        if self.payload_size < 1:
            raise ValueError("payload_size must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.epoch_times and len(self.epoch_times) != self.epochs:
            raise ValueError("epoch_times must have one entry per epoch")

    def start_time(self, epoch: int) -> float:
        return self.epoch_times[epoch] if self.epoch_times else 0.0


#: protocols the harness knows how to drive
PROTOCOLS = ("rbc", "smr", "vaba", "checkpoint")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, executable scenario description."""

    name: str
    protocol: str
    weights: WeightSpec
    f_w: str = "1/3"
    faults: FaultSpec = field(default_factory=FaultSpec)
    net: NetSpec = field(default_factory=NetSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    seed: int = 0
    #: free-form protocol options (e.g. checkpoint mode); values must be
    #: JSON scalars
    params: tuple[tuple[str, object], ...] = ()
    description: str = ""
    #: optional chaos plan: staged fault timeline, ambient network
    #: weather, and the liveness watchdog (see :mod:`repro.chaos`)
    chaos: Optional[ChaosSpec] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; one of {PROTOCOLS}")

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "protocol": self.protocol,
            "weights": {
                "kind": self.weights.kind,
                "n": self.weights.n,
                "total": self.weights.total,
                "skew": self.weights.skew,
                "chain": self.weights.chain,
                "values": list(self.weights.values),
            },
            "f_w": self.f_w,
            # "byzantine" is serialized only when non-empty, so crash-only
            # specs (and their golden records) keep their historical encoding
            "faults": {
                "crashes": list(self.faults.crashes),
                "partition": [list(g) for g in self.faults.partition],
                "heal_at": self.faults.heal_at,
                "link_delays": [list(d) for d in self.faults.link_delays],
                **(
                    {
                        "byzantine": [
                            {"strategy": b.strategy, "params": [list(p) for p in b.params]}
                            for b in self.faults.byzantine
                        ]
                    }
                    if self.faults.byzantine
                    else {}
                ),
                # "restarts" likewise serialized only when non-empty, so
                # pre-recovery specs keep their historical encoding
                **(
                    {"restarts": [list(r) for r in self.faults.restarts]}
                    if self.faults.restarts
                    else {}
                ),
            },
            "net": {"delay_low": self.net.delay_low, "delay_high": self.net.delay_high},
            # "kind" is serialized only when non-default, so batch specs
            # (and their golden records) keep their historical encoding
            "workload": {
                "payload_size": self.workload.payload_size,
                "epochs": self.workload.epochs,
                "epoch_times": list(self.workload.epoch_times),
                **(
                    {"kind": self.workload.kind}
                    if self.workload.kind != "batch"
                    else {}
                ),
            },
            "seed": self.seed,
            "params": [list(p) for p in self.params],
            "description": self.description,
            # "chaos" is serialized only when present, so chaos-free specs
            # (and their golden records) keep their historical encoding
            **({"chaos": self.chaos.to_dict()} if self.chaos is not None else {}),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        w = data["weights"]
        f = data.get("faults", {})
        n = data.get("net", {})
        wl = data.get("workload", {})
        return cls(
            name=data["name"],
            protocol=data["protocol"],
            weights=WeightSpec(
                kind=w["kind"],
                n=w.get("n", 0),
                total=w.get("total", 0),
                skew=w.get("skew", 1.0),
                chain=w.get("chain", ""),
                values=tuple(w.get("values", ())),
            ),
            f_w=data.get("f_w", "1/3"),
            faults=FaultSpec(
                crashes=tuple(f.get("crashes", ())),
                partition=tuple(tuple(g) for g in f.get("partition", ())),
                heal_at=f.get("heal_at"),
                link_delays=tuple(tuple(d) for d in f.get("link_delays", ())),
                byzantine=tuple(
                    ByzantineSpec(
                        strategy=b["strategy"],
                        params=tuple((k, v) for k, v in b.get("params", ())),
                    )
                    for b in f.get("byzantine", ())
                ),
                restarts=tuple(
                    (int(r[0]), float(r[1]), float(r[2]))
                    for r in f.get("restarts", ())
                ),
            ),
            net=NetSpec(
                delay_low=n.get("delay_low", 0.01),
                delay_high=n.get("delay_high", 0.1),
            ),
            workload=WorkloadSpec(
                payload_size=wl.get("payload_size", 32),
                epochs=wl.get("epochs", 1),
                epoch_times=tuple(wl.get("epoch_times", ())),
                kind=wl.get("kind", "batch"),
            ),
            seed=data.get("seed", 0),
            params=tuple((k, v) for k, v in data.get("params", ())),
            description=data.get("description", ""),
            chaos=(
                ChaosSpec.from_dict(data["chaos"]) if "chaos" in data else None
            ),
        )
