"""Built-in named scenarios: the regimes the paper evaluates, as specs.

Every scenario here completes on the sim backend (CI smoke-runs the full
registry); the ``INPROC_SCENARIOS`` subset additionally runs on the live
in-process runtime with decided values agreeing with the sim -- the
cross-backend acceptance bar.
"""

from __future__ import annotations

from ..chaos.schedule import ChaosSpec, ChaosStage, TriggerSpec
from ..chaos.weather import WeatherSpec
from .spec import ByzantineSpec, FaultSpec, NetSpec, ScenarioSpec, WeightSpec, WorkloadSpec

__all__ = ["SCENARIOS", "INPROC_SCENARIOS", "get_scenario", "scenario_names"]

#: the paper's running-example stake vector (skewed, n=8, W=100)
_STAKE = (40, 25, 15, 10, 5, 3, 1, 1)

_ALL = [
    ScenarioSpec(
        name="uniform-rbc",
        protocol="rbc",
        weights=WeightSpec(kind="constant", n=8, total=800),
        description="egalitarian weights (nominal model in disguise), Bracha RBC",
    ),
    ScenarioSpec(
        name="zipf-stake-smr",
        protocol="smr",
        weights=WeightSpec(kind="zipf", n=10, total=1000, skew=1.2),
        workload=WorkloadSpec(payload_size=64, epochs=1),
        description="Zipf(1.2) stake, one composed SMR epoch",
    ),
    ScenarioSpec(
        name="real-chain-rbc",
        protocol="rbc",
        weights=WeightSpec(kind="chain", chain="aptos", n=12),
        description="heaviest 12 validators of the calibrated Aptos snapshot",
    ),
    ScenarioSpec(
        name="crash-f-rbc",
        protocol="rbc",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(crashes=(4, 5, 6, 7)),
        description="crash the four lightest parties (weight 10 < f_w*W)",
    ),
    ScenarioSpec(
        name="partition-heal-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=(30, 25, 20, 10, 5, 5, 3, 2)),
        faults=FaultSpec(partition=((0, 1, 2, 3), (4, 5, 6, 7)), heal_at=0.15),
        workload=WorkloadSpec(payload_size=32, epochs=2, epoch_times=(0.0, 0.3)),
        description="partition during epoch 0, heal, epoch 1 commits everywhere",
    ),
    ScenarioSpec(
        name="link-delay-rbc",
        protocol="rbc",
        weights=WeightSpec(kind="uniform", n=8, total=400),
        faults=FaultSpec(
            link_delays=((0, 5, 0.12), (5, 0, 0.12), (1, 5, 0.12), (2, 5, 0.12))
        ),
        description="slow links to one party; asynchrony, not omission",
    ),
    ScenarioSpec(
        name="large-batch-smr",
        protocol="smr",
        weights=WeightSpec(kind="exponential", n=7, total=700),
        workload=WorkloadSpec(payload_size=4096, epochs=2),
        description="4 KiB batches over two epochs (byte-metric stressor)",
    ),
    ScenarioSpec(
        name="skewed-quorum-rbc",
        protocol="rbc",
        weights=WeightSpec(kind="explicit", values=(55, 20, 10, 5, 4, 3, 2, 1)),
        description="one party holds a majority of weight; quorums stay sound",
    ),
    ScenarioSpec(
        name="vaba-blackbox",
        protocol="vaba",
        # Moderate skew so WR(1/4, 1/3) yields several virtual users and
        # zero-ticket parties exercise the Section 4.4 vouching output rule.
        weights=WeightSpec(kind="explicit", values=(18, 15, 12, 11, 10, 9, 9, 8, 5, 3)),
        params=(("f_n", "1/3"), ("epsilon", "1/12")),
        description="black-box weighted VABA among WR(1/4, 1/3) virtual users",
    ),
    ScenarioSpec(
        name="checkpoint-tight",
        protocol="checkpoint",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        params=(("mode", "tight"), ("beta", "1/2")),
        description="tight threshold-signed checkpoint (one extra vote round)",
    ),
    ScenarioSpec(
        name="epoch-service",
        protocol="smr",
        weights=WeightSpec(kind="zipf", n=6, total=600, skew=1.2),
        workload=WorkloadSpec(payload_size=32, epochs=3, kind="service"),
        params=(
            ("arrival_rate", 60.0),
            ("requests", 36),
            ("slot_interval", 0.05),
            ("slots_per_epoch", 3),
        ),
        description="open-loop load over 3 committee generations with "
        "checkpoint handover and incremental re-solves",
    ),
    ScenarioSpec(
        name="crash-restart-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(restarts=((2, 0.2, 1.0),)),
        workload=WorkloadSpec(payload_size=32, epochs=2),
        description="party 2 crashes mid-run, restarts from its WAL, and "
        "rejoins via state sync; every log still commits gap-free",
    ),
    ScenarioSpec(
        name="crash-restart-mixed-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(crashes=(7,), restarts=((4, 0.1, 0.8),)),
        workload=WorkloadSpec(payload_size=32, epochs=2),
        description="a permanent crash plus a crash-restart under one "
        "combined f_w budget; the restarted party recovers, the dead one "
        "stays excluded from completion",
    ),
    # -- adversarial scenarios (all liveness-preserving: the registry bar
    # -- is "completes with one decided value"; the liveness-breaking
    # -- strategies, e.g. an equivocating RBC sender, live in the fuzz
    # -- campaign and the adversary test suite instead)
    ScenarioSpec(
        name="equivocate-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(byzantine=(ByzantineSpec("equivocate"),)),
        description="heaviest affordable proposer equivocates in its own "
        "instance; honest instances still commit everywhere",
    ),
    ScenarioSpec(
        name="garble-rbc",
        protocol="rbc",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(byzantine=(ByzantineSpec("garble-echo"),)),
        description="corrupted parties vote for garbled payloads and "
        "withhold honest echoes; honest weight alone forms the quorums",
    ),
    ScenarioSpec(
        name="pivot-delay-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(byzantine=(ByzantineSpec("pivot-delay"),)),
        description="targeted asynchrony against the pivotal-weight "
        "parties every quorum must intersect",
    ),
    ScenarioSpec(
        name="adaptive-silence-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(byzantine=(ByzantineSpec("adaptive-corrupt"),)),
        description="greedy ticket-maximizing corruption goes silent; "
        "maximal omission under the f_w weight budget",
    ),
    ScenarioSpec(
        name="share-flood-checkpoint",
        protocol="checkpoint",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(byzantine=(ByzantineSpec("share-flood"),)),
        description="corrupted validators flood forged threshold shares "
        "under honest indices; certificates form from honest tickets",
    ),
    # -- chaos scenarios: staged timelines driven by the orchestrator
    ScenarioSpec(
        name="partition-heal-corrupt-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=(30, 25, 20, 10, 5, 5, 3, 2)),
        net=NetSpec(delay_low=0.005, delay_high=0.02),
        workload=WorkloadSpec(payload_size=32, epochs=2, epoch_times=(0.0, 0.45)),
        chaos=ChaosSpec(
            stages=(
                ChaosStage(
                    action="partition",
                    trigger=TriggerSpec(kind="time", value=0.0),
                    params=(("groups", ((0, 1, 2, 3), (4, 5, 6, 7))),),
                ),
                ChaosStage(
                    action="heal",
                    trigger=TriggerSpec(kind="time", value=0.3),
                ),
                ChaosStage(
                    action="byzantine",
                    trigger=TriggerSpec(kind="time", value=0.35),
                    params=(("strategy", "adaptive-corrupt"),),
                ),
            ),
        ),
        description="staged timeline: partition at t=0, heal at 0.3, then "
        "adaptive corruption goes silent; epoch 1 still commits everywhere",
    ),
    ScenarioSpec(
        name="weather-storm-smr",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        workload=WorkloadSpec(payload_size=32, epochs=2),
        chaos=ChaosSpec(
            weather=WeatherSpec(duplicate=0.15, reorder=0.25, jitter=0.03),
        ),
        description="ambient network weather (duplication, reordering, "
        "jitter; no loss) over two SMR epochs; delivery idempotence keeps "
        "every log duplicate-free",
    ),
    ScenarioSpec(
        name="rolling-restart-under-load",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=_STAKE),
        faults=FaultSpec(restarts=((4, 0.2, 0.8), (5, 0.9, 1.5))),
        workload=WorkloadSpec(payload_size=32, epochs=2),
        chaos=ChaosSpec(
            stages=(
                ChaosStage(
                    action="load-surge",
                    trigger=TriggerSpec(kind="time", value=1.8),
                    params=(("epochs", 1),),
                ),
            ),
        ),
        description="two staggered crash-restarts ride under a late "
        "load-surge stage; recovered parties replay their WALs and the "
        "surge epoch commits on every log",
    ),
    ScenarioSpec(
        name="bad-handover-service",
        protocol="smr",
        weights=WeightSpec(kind="zipf", n=6, total=600, skew=1.2),
        faults=FaultSpec(byzantine=(ByzantineSpec("bad-handover"),)),
        workload=WorkloadSpec(payload_size=32, epochs=3, kind="service"),
        params=(
            ("arrival_rate", 60.0),
            ("requests", 36),
            ("slot_interval", 0.05),
            ("slots_per_epoch", 3),
        ),
        description="forged-share floods inside every epoch-rotation "
        "checkpoint handover; rotations still certify",
    ),
]

SCENARIOS: dict[str, ScenarioSpec] = {spec.name: spec for spec in _ALL}

#: scenarios additionally exercised on the live in-process runtime, whose
#: decided values must agree with the sim (and message counts too, where
#: the driver marks them comparable)
INPROC_SCENARIOS = (
    "uniform-rbc",
    "zipf-stake-smr",
    "skewed-quorum-rbc",
    "vaba-blackbox",
    "checkpoint-tight",
    "partition-heal-corrupt-smr",
)


def scenario_names() -> list[str]:
    """Registry names in definition order."""
    return [spec.name for spec in _ALL]


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; options: {scenario_names()}"
        ) from None
