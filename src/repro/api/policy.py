"""The solver-policy registry: one name, one way to turn a committee
into tickets.

Every registered policy maps ``(problem, weights)`` to a ticket
assignment; :func:`solve_with_policy` wraps whichever one ran in a
uniform :class:`TicketAssignmentResult` carrying the theorem bound, the
achieved total, and a validity verdict.  New strategies -- an ILP warm
start, a heuristic, an external solver -- plug in through
:func:`register_policy` without touching any caller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.exact import solve_exact_milp, solve_family_optimal
from ..core.prices import PriceStream
from ..core.problems import WeightQualification
from ..core.solver import Swiper, SwiperResult, is_valid_assignment
from ..core.types import TicketAssignment, normalize_weights

__all__ = [
    "SolverPolicy",
    "TicketAssignmentResult",
    "IncrementalSolver",
    "POLICIES",
    "register_policy",
    "get_policy",
    "solve_with_policy",
]


@dataclass(frozen=True)
class TicketAssignmentResult:
    """Uniform outcome of solving a weight-reduction problem via any policy.

    Attributes
    ----------
    problem:
        The WR / WQ / WS instance that was solved.
    policy:
        Registry name of the strategy that produced the assignment.
    assignment:
        The integer ticket assignment.
    bound:
        The theorem ticket bound for this problem at this ``n`` (the
        approximation yardstick every policy is measured against).
    achieved:
        Total tickets actually allocated (``assignment.total``).
    verdict:
        ``"valid"`` / ``"invalid"`` when the assignment was checked
        against the problem definition, ``"unverified"`` when the caller
        skipped the check (large instances).
    elapsed_seconds:
        Wall-clock duration of the solve (excludes verification).
    probes:
        Family members examined, for policies that search (else ``None``).
    """

    problem: object
    policy: str
    assignment: TicketAssignment
    bound: int
    achieved: int
    verdict: str
    elapsed_seconds: float
    probes: Optional[int] = None

    @property
    def total_tickets(self) -> int:
        return self.achieved

    @property
    def max_tickets(self) -> int:
        return self.assignment.max_tickets

    @property
    def holders(self) -> int:
        return self.assignment.holders

    @property
    def within_bound(self) -> bool:
        return self.achieved <= self.bound

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (CLI ``--json`` and benchmark rows)."""
        return {
            "problem": str(self.problem),
            "policy": self.policy,
            "total_tickets": self.achieved,
            "ticket_bound": self.bound,
            "max_per_party": self.max_tickets,
            "ticket_holders": self.holders,
            "verdict": self.verdict,
            "solve_seconds": self.elapsed_seconds,
        }


#: a policy's solve function: (problem, weights) -> assignment-ish
SolveFn = Callable[[object, Sequence], "TicketAssignment | SwiperResult"]


@dataclass(frozen=True)
class SolverPolicy:
    """A named ticket-assignment strategy."""

    name: str
    description: str
    fn: SolveFn


POLICIES: dict[str, SolverPolicy] = {}


def register_policy(name: str, fn: SolveFn, *, description: str = "") -> SolverPolicy:
    """Register (or replace) a policy under ``name``.

    ``fn(problem, weights)`` may return a ``TicketAssignment``, a raw
    ticket sequence, or a full ``SwiperResult``; the wrapper normalizes
    all three.  This is the ``custom`` hook: applications register their
    own strategies and the whole facade (``Committee.solve``, the CLI's
    internals, benchmarks) can name them.
    """
    policy = SolverPolicy(name=name, description=description, fn=fn)
    POLICIES[name] = policy
    return policy


def get_policy(name: str) -> SolverPolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown solver policy {name!r}; options: {sorted(POLICIES)}"
        ) from None


def solve_with_policy(
    problem,
    committee,
    policy: str = "swiper",
    *,
    verify: bool = True,
) -> TicketAssignmentResult:
    """Run ``policy`` on ``committee`` (anything with ``.weights``) and
    wrap the outcome uniformly.

    ``verify=True`` re-checks the assignment against the problem
    definition with the exact checker -- cheap for typical instances,
    skippable (``verdict="unverified"``) for throughput benchmarks.
    """
    chosen = get_policy(policy)
    weights = getattr(committee, "weights", committee)
    start = time.perf_counter()
    raw = chosen.fn(problem, weights)
    elapsed = time.perf_counter() - start
    probes: Optional[int] = None
    if isinstance(raw, SwiperResult):
        assignment = raw.assignment
        elapsed = raw.elapsed_seconds
        probes = raw.probes
    elif isinstance(raw, TicketAssignment):
        assignment = raw
    else:
        assignment = TicketAssignment(tuple(raw))
    bound = problem.ticket_bound(len(assignment))
    if verify:
        verdict = (
            "valid" if is_valid_assignment(problem, weights, assignment) else "invalid"
        )
    else:
        verdict = "unverified"
    return TicketAssignmentResult(
        problem=problem,
        policy=chosen.name,
        assignment=assignment,
        bound=bound,
        achieved=assignment.total,
        verdict=verdict,
        elapsed_seconds=elapsed,
        probes=probes,
    )


class IncrementalSolver:
    """Epoch-over-epoch ticket re-solver that reuses the memoized price
    stream when only a few weights changed.

    The epoch service re-forms its committee every rotation, usually after
    a small stake delta (one party bonding or unbonding).  A cold Swiper
    solve rebuilds the whole cheapest-ticket heap; the dominant cost on
    large committees is extending that heap to the first binary-search
    probe.  This solver keeps the previous epoch's
    :class:`~repro.core.prices.PriceStream` and, when at most
    ``max_delta`` parties changed, runs the *same* binary search on a
    patched stream (see :meth:`PriceStream.patched`) with holder-only
    sparse checks.

    The result is equal to a cold solve **by construction**: the patched
    stream enumerates bitwise-identical picks, so every probe sees the
    same assignment, every checker verdict matches (sparse checks are
    exact restrictions of the dense ones), and the search walks the same
    ``lo``/``hi`` path to the same family member.  This matters because
    family validity is *not* monotone in the total -- a warm-started
    search from the previous answer can land on a different local
    minimum, so replaying the cold search is the only incremental
    strategy that keeps every party's locally computed assignment in
    agreement.

    Not thread-safe; one instance per (service, problem).
    """

    #: patched-stream chains longer than this are flattened (``compact``)
    #: before being cached, bounding per-extension overhead for services
    #: that rotate many times
    _MAX_CHAIN = 8

    def __init__(
        self,
        problem,
        *,
        mode: str = "full",
        use_quick_test: bool = True,
        max_delta: int = 16,
        verify: bool = False,
    ) -> None:
        self.problem = problem
        self.max_delta = max_delta
        self.verify = verify
        self._mode = mode
        self._swiper = Swiper(mode=mode, use_quick_test=use_quick_test)
        self._effective = (
            problem.to_restriction()
            if isinstance(problem, WeightQualification)
            else problem
        )
        self._c = self._effective.rounding_constant
        self._raw: Optional[list] = None
        self._ws: Optional[tuple] = None
        self._total = None
        self._exact: Optional[tuple[list[int], int]] = None
        self._stream: Optional[PriceStream] = None
        #: ``"cold"`` or ``"incremental"`` -- how the last solve ran
        self.last_mode: Optional[str] = None
        #: parties whose weight differed from the cached epoch (cold: n)
        self.last_changed: int = 0
        self.solves = 0
        self.incremental_hits = 0

    def _delta(self, raw: list) -> Optional[list[int]]:
        """Changed party indices vs the cached epoch, or ``None`` when the
        cache cannot be reused (first solve, shrink, or large delta)."""
        old = self._raw
        if old is None or self._stream is None or len(raw) < len(old):
            return None
        # Numeric equality on the raw values; normalization preserves it,
        # so unchanged entries can share the cached Fraction objects.
        changed = [i for i, (a, b) in enumerate(zip(raw, old)) if a != b]
        changed.extend(range(len(old), len(raw)))
        if len(changed) > self.max_delta:
            return None
        return changed

    def _patched_exact(
        self, ws: tuple, changed: list[int]
    ) -> Optional[tuple[list[int], int]]:
        """Previous epoch's exact integer scaling patched in O(delta), when
        the changed weights share the cached common denominator."""
        if self._exact is None:
            return None
        ints, denom = self._exact
        ints = list(ints) + [0] * (len(ws) - len(ints))
        for i in changed:
            scaled = ws[i] * denom
            if scaled.denominator != 1:
                return None
            ints[i] = scaled.numerator
        return ints, denom

    def solve(self, weights: Sequence) -> TicketAssignmentResult:
        """Solve for ``weights``, incrementally when the delta from the
        previous call is small; returns the same
        :class:`TicketAssignmentResult` a cold ``"swiper"`` policy solve
        would (up to timing fields)."""
        from ..core.types import as_fraction
        from ..core.verify import make_checker

        raw = list(weights)
        changed = self._delta(raw)
        stream = checker = None
        total = None
        if changed is not None:
            base_ws = self._ws
            new_ws = list(base_ws) + [None] * (len(raw) - len(base_ws))
            total = self._total
            for i in changed:
                new_ws[i] = as_fraction(raw[i])
                total += new_ws[i] - (base_ws[i] if i < len(base_ws) else 0)
            ws = tuple(new_ws)
            try:
                stream = self._stream if not changed else self._stream.patched(ws)
            except ValueError:
                stream = None
        if stream is not None:
            self.last_mode = "incremental"
            self.last_changed = len(changed)
            self.incremental_hits += 1
        else:
            ws = normalize_weights(tuple(weights))
            total = None
            changed = None
            stream = PriceStream(ws, self._c)
            self.last_mode = "cold"
            self.last_changed = len(ws)
        checker = make_checker(
            self._effective,
            ws,
            use_quick_test=self._swiper.use_quick_test,
            linear_mode=(self._mode == "linear"),
            total_weight=total,
        )
        if changed is not None:
            exact = self._patched_exact(ws, changed)
            if exact is not None:
                checker.ctx._exact = exact
        self.solves += 1
        raw_result = self._swiper.solve(
            self.problem,
            ws,
            stream=stream,
            sparse=(self.last_mode == "incremental"),
            checker=checker,
        )
        self._raw = raw
        self._ws = ws
        self._stream = (
            stream.compact() if stream._chain >= self._MAX_CHAIN else stream
        )
        self._total = checker.ctx.total
        self._exact = checker.ctx._exact
        if self.verify:
            verdict = (
                "valid"
                if is_valid_assignment(self.problem, ws, raw_result.assignment)
                else "invalid"
            )
        else:
            verdict = "unverified"
        return TicketAssignmentResult(
            problem=self.problem,
            policy="swiper",
            assignment=raw_result.assignment,
            bound=raw_result.ticket_bound,
            achieved=raw_result.assignment.total,
            verdict=verdict,
            elapsed_seconds=raw_result.elapsed_seconds,
            probes=raw_result.probes,
        )


# -- built-in policies -----------------------------------------------------------------

register_policy(
    "swiper",
    lambda problem, weights: Swiper(mode="full").solve(problem, weights),
    description="binary search over the ticket family, knapsack-backed checks",
)
register_policy(
    "swiper-linear",
    lambda problem, weights: Swiper(mode="linear").solve(problem, weights),
    description="quasilinear quick-test-only mode (paper's --linear)",
)
register_policy(
    "milp",
    solve_exact_milp,
    description="true optimum over all integer assignments (Appendix B, n <= 16)",
)
register_policy(
    "brute-force",
    solve_family_optimal,
    description="globally minimal family member via the exact oracle (n <= 20)",
)
