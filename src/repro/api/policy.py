"""The solver-policy registry: one name, one way to turn a committee
into tickets.

Every registered policy maps ``(problem, weights)`` to a ticket
assignment; :func:`solve_with_policy` wraps whichever one ran in a
uniform :class:`TicketAssignmentResult` carrying the theorem bound, the
achieved total, and a validity verdict.  New strategies -- an ILP warm
start, a heuristic, an external solver -- plug in through
:func:`register_policy` without touching any caller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.exact import solve_exact_milp, solve_family_optimal
from ..core.solver import Swiper, SwiperResult, is_valid_assignment
from ..core.types import TicketAssignment

__all__ = [
    "SolverPolicy",
    "TicketAssignmentResult",
    "POLICIES",
    "register_policy",
    "get_policy",
    "solve_with_policy",
]


@dataclass(frozen=True)
class TicketAssignmentResult:
    """Uniform outcome of solving a weight-reduction problem via any policy.

    Attributes
    ----------
    problem:
        The WR / WQ / WS instance that was solved.
    policy:
        Registry name of the strategy that produced the assignment.
    assignment:
        The integer ticket assignment.
    bound:
        The theorem ticket bound for this problem at this ``n`` (the
        approximation yardstick every policy is measured against).
    achieved:
        Total tickets actually allocated (``assignment.total``).
    verdict:
        ``"valid"`` / ``"invalid"`` when the assignment was checked
        against the problem definition, ``"unverified"`` when the caller
        skipped the check (large instances).
    elapsed_seconds:
        Wall-clock duration of the solve (excludes verification).
    probes:
        Family members examined, for policies that search (else ``None``).
    """

    problem: object
    policy: str
    assignment: TicketAssignment
    bound: int
    achieved: int
    verdict: str
    elapsed_seconds: float
    probes: Optional[int] = None

    @property
    def total_tickets(self) -> int:
        return self.achieved

    @property
    def max_tickets(self) -> int:
        return self.assignment.max_tickets

    @property
    def holders(self) -> int:
        return self.assignment.holders

    @property
    def within_bound(self) -> bool:
        return self.achieved <= self.bound

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (CLI ``--json`` and benchmark rows)."""
        return {
            "problem": str(self.problem),
            "policy": self.policy,
            "total_tickets": self.achieved,
            "ticket_bound": self.bound,
            "max_per_party": self.max_tickets,
            "ticket_holders": self.holders,
            "verdict": self.verdict,
            "solve_seconds": self.elapsed_seconds,
        }


#: a policy's solve function: (problem, weights) -> assignment-ish
SolveFn = Callable[[object, Sequence], "TicketAssignment | SwiperResult"]


@dataclass(frozen=True)
class SolverPolicy:
    """A named ticket-assignment strategy."""

    name: str
    description: str
    fn: SolveFn


POLICIES: dict[str, SolverPolicy] = {}


def register_policy(name: str, fn: SolveFn, *, description: str = "") -> SolverPolicy:
    """Register (or replace) a policy under ``name``.

    ``fn(problem, weights)`` may return a ``TicketAssignment``, a raw
    ticket sequence, or a full ``SwiperResult``; the wrapper normalizes
    all three.  This is the ``custom`` hook: applications register their
    own strategies and the whole facade (``Committee.solve``, the CLI's
    internals, benchmarks) can name them.
    """
    policy = SolverPolicy(name=name, description=description, fn=fn)
    POLICIES[name] = policy
    return policy


def get_policy(name: str) -> SolverPolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown solver policy {name!r}; options: {sorted(POLICIES)}"
        ) from None


def solve_with_policy(
    problem,
    committee,
    policy: str = "swiper",
    *,
    verify: bool = True,
) -> TicketAssignmentResult:
    """Run ``policy`` on ``committee`` (anything with ``.weights``) and
    wrap the outcome uniformly.

    ``verify=True`` re-checks the assignment against the problem
    definition with the exact checker -- cheap for typical instances,
    skippable (``verdict="unverified"``) for throughput benchmarks.
    """
    chosen = get_policy(policy)
    weights = getattr(committee, "weights", committee)
    start = time.perf_counter()
    raw = chosen.fn(problem, weights)
    elapsed = time.perf_counter() - start
    probes: Optional[int] = None
    if isinstance(raw, SwiperResult):
        assignment = raw.assignment
        elapsed = raw.elapsed_seconds
        probes = raw.probes
    elif isinstance(raw, TicketAssignment):
        assignment = raw
    else:
        assignment = TicketAssignment(tuple(raw))
    bound = problem.ticket_bound(len(assignment))
    if verify:
        verdict = (
            "valid" if is_valid_assignment(problem, weights, assignment) else "invalid"
        )
    else:
        verdict = "unverified"
    return TicketAssignmentResult(
        problem=problem,
        policy=chosen.name,
        assignment=assignment,
        bound=bound,
        achieved=assignment.total,
        verdict=verdict,
        elapsed_seconds=elapsed,
        probes=probes,
    )


# -- built-in policies -----------------------------------------------------------------

register_policy(
    "swiper",
    lambda problem, weights: Swiper(mode="full").solve(problem, weights),
    description="binary search over the ticket family, knapsack-backed checks",
)
register_policy(
    "swiper-linear",
    lambda problem, weights: Swiper(mode="linear").solve(problem, weights),
    description="quasilinear quick-test-only mode (paper's --linear)",
)
register_policy(
    "milp",
    solve_exact_milp,
    description="true optimum over all integer assignments (Appendix B, n <= 16)",
)
register_policy(
    "brute-force",
    solve_family_optimal,
    description="globally minimal family member via the exact oracle (n <= 20)",
)
