"""The committee-centric public API: weights -> tickets -> execution.

One facade over the whole pipeline::

    from repro.api import Committee, Session, BackendSpec
    from repro.core import WeightRestriction

    committee = Committee.synthetic("zipf", n=10, total=1000, skew=1.2)
    tickets = committee.solve(WeightRestriction("1/3", "1/2"))   # -> TicketAssignmentResult
    record = Session(committee=committee, protocol="rbc").run()  # -> unified JSON record

* :class:`WeightSource` and its implementations say where weights come
  from (inline, file, chain snapshot, synthetic distribution);
* :class:`Committee` is the immutable weighted party set every layer
  shares, with one :meth:`~Committee.validate` for infeasible inputs;
* the :mod:`~repro.api.policy` registry maps policy names (``swiper``,
  ``swiper-linear``, ``milp``, ``brute-force``, or custom registrations)
  to a uniform :class:`TicketAssignmentResult`;
* :class:`Session` executes a committee + protocol + backend and emits
  the scenario engine's unified record.

The CLI, the scenario engine, and the examples all consume this facade;
adding a backend or a solver strategy is one registration, not a
per-layer rewiring.  This module's ``__all__`` is frozen in the
repo-root ``api_surface.txt`` -- CI fails on export drift.
"""

from .committee import Committee, CommitteeValidationError
from .policy import (
    POLICIES,
    SolverPolicy,
    TicketAssignmentResult,
    get_policy,
    register_policy,
    solve_with_policy,
)
from .session import BackendSpec, Session
from .weight_source import (
    SYNTHETIC_KINDS,
    ChainWeights,
    FileWeights,
    InlineWeights,
    SyntheticWeights,
    WeightSource,
    weight_source_from_args,
)

__all__ = [
    "Committee",
    "CommitteeValidationError",
    "WeightSource",
    "InlineWeights",
    "FileWeights",
    "ChainWeights",
    "SyntheticWeights",
    "SYNTHETIC_KINDS",
    "weight_source_from_args",
    "SolverPolicy",
    "TicketAssignmentResult",
    "POLICIES",
    "register_policy",
    "get_policy",
    "solve_with_policy",
    "BackendSpec",
    "Session",
]
