"""The committee-centric public API: weights -> tickets -> execution.

One facade over the whole pipeline::

    from repro.api import Committee, Session, BackendSpec
    from repro.core import WeightRestriction

    committee = Committee.synthetic("zipf", n=10, total=1000, skew=1.2)
    tickets = committee.solve(WeightRestriction("1/3", "1/2"))   # -> TicketAssignmentResult
    record = Session(committee=committee, protocol="rbc").run()  # -> unified JSON record

* :class:`WeightSource` and its implementations say where weights come
  from (inline, file, chain snapshot, synthetic distribution);
* :class:`Committee` is the immutable weighted party set every layer
  shares, with one :meth:`~Committee.validate` for infeasible inputs;
* the :mod:`~repro.api.policy` registry maps policy names (``swiper``,
  ``swiper-linear``, ``milp``, ``brute-force``, or custom registrations)
  to a uniform :class:`TicketAssignmentResult`;
* :class:`Session` executes a committee + protocol + backend and emits
  the scenario engine's unified record;
* the :mod:`repro.service` epoch-service names (:class:`EpochService`,
  :class:`EpochManager`, ...) are re-exported here for one-stop imports;
  a ``Session`` whose workload has ``kind="service"`` routes to the
  service stack automatically.

The CLI, the scenario engine, and the examples all consume this facade;
adding a backend or a solver strategy is one registration, not a
per-layer rewiring.  This module's ``__all__`` is frozen in the
repo-root ``api_surface.txt`` -- CI fails on export drift.
"""

from .committee import Committee, CommitteeValidationError
from .policy import (
    POLICIES,
    IncrementalSolver,
    SolverPolicy,
    TicketAssignmentResult,
    get_policy,
    register_policy,
    solve_with_policy,
)
from .session import BackendSpec, Session
from .weight_source import (
    SYNTHETIC_KINDS,
    ChainWeights,
    FileWeights,
    InlineWeights,
    SyntheticWeights,
    WeightSource,
    weight_source_from_args,
)

#: epoch-service names re-exported from :mod:`repro.service`.  Resolved
#: lazily (PEP 562) because the service package itself imports
#: ``repro.api.committee`` / ``repro.api.policy`` -- an eager re-import
#: here would be circular whenever ``repro.service`` is imported first.
_SERVICE_EXPORTS = (
    "DriftSchedule",
    "EpochManager",
    "EpochService",
    "InprocServiceBackend",
    "LoadGenerator",
    "ServiceConfig",
    "ServiceResult",
    "SimServiceBackend",
    "WeightSchedule",
)

#: adversary / fuzz-campaign names re-exported from
#: :mod:`repro.adversary`, lazily for the same circularity reason (the
#: adversary package imports the scenario and crypto layers).
_ADVERSARY_EXPORTS = (
    "Adversary",
    "CampaignResult",
    "FuzzConfig",
    "STRATEGIES",
    "check_record",
    "replay_episode",
    "run_campaign",
)

#: parallel-engine names re-exported from :mod:`repro.parallel`, lazily
#: because the proc orchestrator imports the scenario harness (which
#: imports this facade's committee module).
_PARALLEL_EXPORTS = (
    "ParallelExecutor",
    "ProcCluster",
    "parse_jobs",
    "run_proc_scenario",
    "run_specs",
)

#: crash-recovery names re-exported from :mod:`repro.recovery`, lazily
#: because the recoverable party imports the protocol layer (which
#: reaches back into this facade via the scenario harness).
_RECOVERY_EXPORTS = (
    "BackoffSchedule",
    "HeartbeatMonitor",
    "InMemoryWal",
    "RecoverableSmrParty",
    "StateSyncRequest",
    "StateSyncResponse",
    "WalError",
    "WriteAheadLog",
    "entries_digest",
    "open_wal",
)

#: chaos-engine names re-exported from :mod:`repro.chaos`, lazily because
#: the orchestrator half imports the adversary and harness layers (the
#: spec-level half would be safe, but one rule for the whole package is
#: simpler to audit).
_CHAOS_EXPORTS = (
    "ChaosOrchestrator",
    "ChaosSpec",
    "ChaosStage",
    "LivenessWatchdog",
    "NetworkWeather",
    "StagedAdversary",
    "TriggerSpec",
    "WeatherSpec",
    "register_stage_action",
)

__all__ = [
    "Committee",
    "CommitteeValidationError",
    "WeightSource",
    "InlineWeights",
    "FileWeights",
    "ChainWeights",
    "SyntheticWeights",
    "SYNTHETIC_KINDS",
    "weight_source_from_args",
    "SolverPolicy",
    "TicketAssignmentResult",
    "IncrementalSolver",
    "POLICIES",
    "register_policy",
    "get_policy",
    "solve_with_policy",
    "BackendSpec",
    "Session",
    *_SERVICE_EXPORTS,
    *_ADVERSARY_EXPORTS,
    *_PARALLEL_EXPORTS,
    *_RECOVERY_EXPORTS,
    *_CHAOS_EXPORTS,
]


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from .. import service

        return getattr(service, name)
    if name in _ADVERSARY_EXPORTS:
        from .. import adversary

        return getattr(adversary, name)
    if name in _PARALLEL_EXPORTS:
        from .. import parallel

        return getattr(parallel, name)
    if name in _RECOVERY_EXPORTS:
        from .. import recovery

        return getattr(recovery, name)
    if name in _CHAOS_EXPORTS:
        from .. import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
