"""Where weights come from: one abstraction for every source.

Before the facade existed, weight parsing was duplicated: ``repro.cli``
read ``--weights`` / ``--weights-file`` / ``--chain`` with its own
helper, and ``repro.scenarios.spec`` re-implemented the same dispatch
for its declarative ``WeightSpec``.  Both now route through the
:class:`WeightSource` hierarchy below, so a new kind of source (say, an
HTTP stake oracle) plugs into the CLI, the scenario DSL, and the
:class:`~repro.api.committee.Committee` constructors by subclassing in
exactly one place.

A source is a *recipe*, not a vector: :meth:`WeightSource.resolve`
produces the concrete weight list, deterministically for a fixed seed
(sources that do not sample simply ignore the seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.types import Number

__all__ = [
    "WeightSource",
    "InlineWeights",
    "FileWeights",
    "ChainWeights",
    "SyntheticWeights",
    "SYNTHETIC_KINDS",
    "weight_source_from_args",
]

#: generator names understood by :class:`SyntheticWeights`, matching the
#: generators of :mod:`repro.datasets.synthetic`
SYNTHETIC_KINDS = (
    "constant",
    "uniform",
    "zipf",
    "pareto",
    "lognormal",
    "exponential",
)


class WeightSource:
    """A recipe for a weight vector.

    Subclasses implement :meth:`resolve` (the concrete weights,
    deterministic in ``seed``) and :meth:`describe` (one-line provenance
    recorded on the committees built from the source).
    """

    def resolve(self, seed: int = 0) -> list[Number]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class InlineWeights(WeightSource):
    """An explicit weight vector, kept verbatim.

    Values may be ints, floats, ``Fraction`` instances, or strings like
    ``"1/3"`` / ``"0.25"`` -- exactness is decided downstream by
    :func:`repro.core.types.normalize_weights`, so CLI tokens pass
    through unparsed (a bogus token surfaces as ``ValueError`` there).
    """

    values: tuple[Number, ...]

    def __init__(self, values: Sequence[Number]) -> None:
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError("inline weights need a non-empty value list")

    def resolve(self, seed: int = 0) -> list[Number]:
        return list(self.values)

    def describe(self) -> str:
        return f"inline[{len(self.values)}]"


@dataclass(frozen=True)
class FileWeights(WeightSource):
    """One weight per line; blank lines are skipped (CLI ``--weights-file``)."""

    path: str

    def resolve(self, seed: int = 0) -> list[Number]:
        with open(self.path) as fh:
            values = [line.strip() for line in fh if line.strip()]
        if not values:
            raise ValueError(f"weights file {self.path!r} contains no weights")
        return values

    def describe(self) -> str:
        return f"file:{self.path}"


@dataclass(frozen=True)
class ChainWeights(WeightSource):
    """A calibrated chain snapshot (:mod:`repro.datasets.chains`).

    With ``n`` the snapshot is truncated to its ``n`` heaviest parties
    (the scenario engine's convention, keeping clusters runnable); without
    it the full validator set is used (the CLI's convention).
    """

    chain: str
    n: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("chain weights need a chain name")
        if self.n is not None and self.n < 1:
            raise ValueError("chain truncation needs n >= 1")

    def resolve(self, seed: int = 0) -> list[Number]:
        from ..datasets import load_chain

        snapshot = load_chain(self.chain)
        if self.n is None:
            return list(snapshot.weights)
        return sorted(snapshot.weights, reverse=True)[: self.n]

    def describe(self) -> str:
        suffix = f"[top {self.n}]" if self.n is not None else ""
        return f"chain:{self.chain}{suffix}"


@dataclass(frozen=True)
class SyntheticWeights(WeightSource):
    """A seeded synthetic distribution (:mod:`repro.datasets.synthetic`).

    ``skew`` is the generator's shape parameter: ``s`` for zipf,
    ``alpha`` for pareto, ``sigma`` for lognormal, ``rate`` for
    exponential (ignored by constant/uniform).
    """

    kind: str
    n: int
    total: int
    skew: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in SYNTHETIC_KINDS:
            raise ValueError(
                f"unknown synthetic kind {self.kind!r}; one of {SYNTHETIC_KINDS}"
            )
        if self.n < 1 or self.total < self.n:
            raise ValueError("synthetic weights need n >= 1 and total >= n")

    def resolve(self, seed: int = 0) -> list[Number]:
        from ..datasets import synthetic

        if self.kind == "constant":
            return synthetic.constant_weights(self.n, self.total)
        if self.kind == "uniform":
            return synthetic.uniform_weights(self.n, self.total, seed=seed)
        if self.kind == "zipf":
            return synthetic.zipf_weights(self.n, self.total, s=self.skew, seed=seed)
        if self.kind == "pareto":
            return synthetic.pareto_weights(
                self.n, self.total, alpha=self.skew, seed=seed
            )
        if self.kind == "lognormal":
            return synthetic.lognormal_weights(
                self.n, self.total, sigma=self.skew, seed=seed
            )
        if self.kind == "exponential":
            return synthetic.exponential_weights(
                self.n, self.total, rate=self.skew, seed=seed
            )
        raise AssertionError(f"unhandled kind {self.kind!r}")

    def describe(self) -> str:
        return f"{self.kind}(n={self.n}, total={self.total}, skew={self.skew})"


def weight_source_from_args(
    weights: Optional[Sequence[Number]] = None,
    weights_file: Optional[str] = None,
    chain: Optional[str] = None,
) -> Optional[WeightSource]:
    """The CLI's mutually-exclusive weight-source triple as a source.

    Returns ``None`` when no source was given (the cluster subcommand's
    nominal-layout fallback); raises if more than one is set -- argparse
    enforces exclusivity for the CLI, this guards programmatic callers.
    """
    given = [x for x in (weights, weights_file, chain) if x is not None]
    if len(given) > 1:
        raise ValueError("weights, weights_file, and chain are mutually exclusive")
    if weights is not None:
        return InlineWeights(weights)
    if weights_file is not None:
        return FileWeights(weights_file)
    if chain is not None:
        return ChainWeights(chain)
    return None
