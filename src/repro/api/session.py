"""The :class:`Session` runner: committee + policy + backend + protocol.

A session is the facade's executable object: it binds a
:class:`~repro.api.committee.Committee` to a protocol, an execution
backend, and (optionally) a solver policy, and produces exactly the
unified JSON record the scenario engine emits -- ``Session.run()`` on
the sim backend is byte-identical to the pre-facade
``run_scenario(spec)`` for the same spec (pinned by a golden test).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..scenarios.harness import BACKENDS, ScenarioResult, run_scenario
from ..scenarios.spec import FaultSpec, NetSpec, ScenarioSpec, WeightSpec, WorkloadSpec
from .committee import Committee

__all__ = ["BackendSpec", "Session"]


@dataclass(frozen=True)
class BackendSpec:
    """Which execution backend runs the session, and its patience."""

    name: str = "sim"
    timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.name not in BACKENDS:
            raise ValueError(f"unknown backend {self.name!r}; one of {BACKENDS}")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")

    @classmethod
    def of(cls, backend: Union[str, "BackendSpec"]) -> "BackendSpec":
        """Coerce a backend name to a spec (identity on specs)."""
        return backend if isinstance(backend, BackendSpec) else cls(name=backend)


@dataclass(frozen=True)
class Session:
    """One executable protocol run over a committee.

    Built either directly (``Session(committee=..., protocol="rbc")``)
    or from a registry scenario (:meth:`from_spec`), which preserves the
    original spec verbatim so records stay reproducible byte-for-byte.
    """

    committee: Committee
    protocol: str
    backend: BackendSpec = field(default_factory=BackendSpec)
    name: str = "session"
    f_w: str = "1/3"
    faults: FaultSpec = field(default_factory=FaultSpec)
    net: NetSpec = field(default_factory=NetSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    params: tuple = ()
    policy: str = "swiper"
    description: str = ""
    #: directory for durable per-party WALs (None = ephemeral/in-memory;
    #: required by the proc backend's crash-restart recovery path)
    state_dir: Optional[str] = None
    #: the originating scenario spec, when built via :meth:`from_spec`
    base_spec: Optional[ScenarioSpec] = None

    @classmethod
    def from_spec(
        cls,
        spec: ScenarioSpec,
        *,
        backend: Union[str, BackendSpec] = "sim",
        timeout: Optional[float] = None,
        policy: str = "swiper",
        state_dir: Optional[str] = None,
    ) -> "Session":
        """Wrap a declarative scenario spec as a runnable session."""
        chosen = BackendSpec.of(backend)
        if timeout is not None:
            chosen = replace(chosen, timeout=timeout)
        committee = Committee.from_weight_spec(spec.weights, seed=spec.seed)
        return cls(
            committee=committee,
            protocol=spec.protocol,
            backend=chosen,
            name=spec.name,
            f_w=spec.f_w,
            faults=spec.faults,
            net=spec.net,
            workload=spec.workload,
            params=spec.params,
            policy=policy,
            description=spec.description,
            state_dir=state_dir,
            base_spec=spec,
        )

    def with_backend(
        self, backend: Union[str, BackendSpec], *, timeout: Optional[float] = None
    ) -> "Session":
        chosen = BackendSpec.of(backend)
        if timeout is not None:
            chosen = replace(chosen, timeout=timeout)
        return replace(self, backend=chosen)

    def to_spec(self) -> ScenarioSpec:
        """The scenario spec this session executes.

        Sessions built from a spec return it verbatim; directly-built
        sessions pin the committee's already-resolved weights as an
        explicit vector, so the run is reproducible even when the
        committee came from a sampled source.
        """
        if self.base_spec is not None:
            return self.base_spec
        return ScenarioSpec(
            name=self.name,
            protocol=self.protocol,
            weights=WeightSpec(
                kind="explicit", values=tuple(self.committee.int_weights)
            ),
            f_w=self.f_w,
            faults=self.faults,
            net=self.net,
            workload=self.workload,
            seed=self.committee.seed,
            params=self.params,
            description=self.description,
        )

    def run(self) -> ScenarioResult:
        """Execute on the configured backend; returns the unified record
        object (``.record()`` / ``.record_json()`` / ``.write()``).

        Passes the already-resolved committee through, so the weight
        source (a chain snapshot, a sampled distribution) is resolved
        once at session construction, not again per run.
        """
        return run_scenario(
            self.to_spec(),
            backend=self.backend.name,
            timeout=self.backend.timeout,
            committee=self.committee,
            state_dir=self.state_dir,
        )

    def solve(self, problem, *, policy: Optional[str] = None, verify: bool = True):
        """Solve a weight-reduction problem on this session's committee
        with the session's (or an explicit) solver policy."""
        return self.committee.solve(problem, policy or self.policy, verify=verify)
