"""The :class:`Committee` value object: a weighted party set with provenance.

A committee is the noun every layer of the pipeline shares: the solvers
take its weights, the quorum policies take its normalized fractions, the
scenario harness sizes clusters from it, and the CLI validates user
input against it.  It is immutable, constructible from every
:class:`~repro.api.weight_source.WeightSource`, and deterministic --
building the same source with the same seed yields an equal committee.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..core.types import Number, as_fraction, normalize_weights
from .weight_source import (
    ChainWeights,
    FileWeights,
    InlineWeights,
    SyntheticWeights,
    WeightSource,
)

__all__ = ["Committee", "CommitteeValidationError"]


class CommitteeValidationError(ValueError):
    """An infeasible committee/parameter combination.

    A :class:`ValueError` subclass so pre-facade ``except ValueError``
    paths keep working; carries a stable payload shape for the CLI's
    machine-readable error output (every invalid combination exits with
    status 2 and the same ``{"error": ...}`` JSON object).
    """

    def as_payload(self) -> dict:
        return {"error": str(self)}


@dataclass(frozen=True)
class Committee:
    """An immutable weighted party set.

    ``weights`` are kept exactly as resolved from the source (ints for
    every built-in source; fraction strings survive untouched until
    normalization).  ``normalized`` is the exact-rational view consumed
    by solvers and quorum policies.
    """

    weights: tuple[Number, ...]
    provenance: str = "inline"
    seed: int = 0
    normalized: tuple[Fraction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", tuple(self.weights))
        # Normalization doubles as validation: non-empty, no negatives,
        # W > 0 -- the invariants every consumer may assume.
        object.__setattr__(self, "normalized", normalize_weights(self.weights))

    # -- constructors ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source: WeightSource, *, seed: int = 0) -> "Committee":
        """Resolve ``source`` (deterministically in ``seed``)."""
        return cls(
            weights=tuple(source.resolve(seed)),
            provenance=source.describe(),
            seed=seed,
        )

    @classmethod
    def from_weights(
        cls, values: Iterable[Number], *, provenance: str = "inline"
    ) -> "Committee":
        return cls(weights=tuple(values), provenance=provenance)

    @classmethod
    def from_file(cls, path: str) -> "Committee":
        return cls.from_source(FileWeights(path))

    @classmethod
    def from_chain(cls, chain: str, *, n: Optional[int] = None) -> "Committee":
        return cls.from_source(ChainWeights(chain, n=n))

    @classmethod
    def synthetic(
        cls, kind: str, n: int, total: int, *, skew: float = 1.0, seed: int = 0
    ) -> "Committee":
        return cls.from_source(SyntheticWeights(kind, n, total, skew=skew), seed=seed)

    @classmethod
    def uniform(cls, n: int) -> "Committee":
        """The egalitarian committee (one vote each): the nominal model."""
        if n < 1:
            raise CommitteeValidationError("a committee needs at least one party")
        return cls(weights=(1,) * n, provenance=f"uniform[{n}]")

    @classmethod
    def from_weight_spec(cls, spec, *, seed: int = 0) -> "Committee":
        """Build from a scenario ``WeightSpec`` (duck-typed: anything with
        ``to_source()``), preserving the spec's materialization exactly."""
        return cls.from_source(spec.to_source(), seed=seed)

    # -- views -------------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.weights)

    def __len__(self) -> int:
        return self.n

    @property
    def total_weight(self) -> Fraction:
        return sum(self.normalized, start=Fraction(0))

    @property
    def int_weights(self) -> list[int]:
        """The weights as plain ints (every built-in source yields ints);
        raises when a weight is not integral."""
        out = []
        for i, w in enumerate(self.normalized):
            if w.denominator != 1:
                raise ValueError(f"weight #{i} ({w}) is not an integer")
            out.append(int(w))
        return out

    @property
    def weights_digest(self) -> str:
        """Short stable fingerprint, matching the scenario engine's
        historical ``sha256(repr(materialized list))[:16]`` convention so
        facade-produced records stay byte-identical to pre-facade ones."""
        return hashlib.sha256(repr(self.int_weights).encode()).hexdigest()[:16]

    def weight_of(self, parties: Iterable[int]) -> Fraction:
        return sum((self.normalized[i] for i in set(parties)), start=Fraction(0))

    # -- integrations ------------------------------------------------------------------
    def quorums(self, f_w: Number = Fraction(1, 3)):
        """Weighted quorum thresholds over this committee
        (:class:`repro.weighted.quorum.WeightedQuorums`)."""
        from ..weighted.quorum import WeightedQuorums

        return WeightedQuorums.for_committee(self, f_w)

    def solve(self, problem, policy: str = "swiper", *, verify: bool = True):
        """Solve a weight-reduction problem on this committee via a named
        :mod:`~repro.api.policy` entry; returns ``TicketAssignmentResult``."""
        from .policy import solve_with_policy

        return solve_with_policy(problem, self, policy, verify=verify)

    # -- validation --------------------------------------------------------------------
    def validate(
        self,
        *,
        expect_n: Optional[int] = None,
        f_w: Optional[Number] = None,
        crashes: Sequence[int] = (),
        partition: Sequence[Sequence[int]] = (),
        link_delays: Sequence[tuple] = (),
        payload_size: Optional[int] = None,
        epochs: Optional[int] = None,
    ) -> None:
        """Reject infeasible parameter combinations in one place.

        Both CLI entry points (``cluster`` and ``scenario``) and the
        scenario harness route their feasibility checks through here, so
        an invalid combination produces the same error text, the same
        exit status (2), and the same JSON error shape everywhere.
        Raises :class:`CommitteeValidationError`; passes silently when
        everything is feasible.
        """
        n = self.n
        if expect_n is not None and expect_n != n:
            raise CommitteeValidationError(
                f"--n {expect_n} does not match the {n} provided weights"
            )
        f = None
        if f_w is not None:
            f = as_fraction(f_w)
            if not 0 < f < Fraction(1, 2):
                raise CommitteeValidationError("f_w must be in (0, 1/2)")
        if payload_size is not None and payload_size < 1:
            raise CommitteeValidationError("payload_size must be positive")
        if epochs is not None and epochs < 1:
            raise CommitteeValidationError("epochs must be positive")

        referenced = set(crashes)
        referenced.update(pid for group in partition for pid in group)
        referenced.update(pid for (src, dst, *_rest) in link_delays for pid in (src, dst))
        bad = sorted(pid for pid in referenced if not 0 <= pid < n)
        if bad:
            raise CommitteeValidationError(
                f"fault plan references pids {bad} out of range for {n} parties"
            )
        crash_set = set(crashes)
        if crash_set and len(crash_set) == n:
            raise CommitteeValidationError(
                "fault plan crashes every party; nothing left to run"
            )
        if f is not None and crash_set:
            # Refuse crash sets that make weighted quorums provably
            # unreachable -- the run would only burn its timeout.
            crashed_weight = self.weight_of(crash_set)
            budget = f * self.total_weight
            if crashed_weight >= budget:
                raise CommitteeValidationError(
                    f"crash set holds weight {crashed_weight} >= the "
                    f"resilience budget f_w*W = {budget}; quorums can never form"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Committee(n={self.n}, source={self.provenance!r}, seed={self.seed})"
