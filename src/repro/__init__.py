"""repro -- reproduction of "Swiper: a new paradigm for efficient weighted
distributed protocols" (Tonkikh & Freitas, PODC 2024).

The package implements the paper's weight reduction problems and the Swiper
solver (:mod:`repro.core`), the cryptographic and coding substrates the
applications rely on (:mod:`repro.crypto`, :mod:`repro.codes`), an
asynchronous network simulator with Byzantine adversaries
(:mod:`repro.sim`), the nominal distributed protocols and their weighted
transformations (:mod:`repro.protocols`, :mod:`repro.weighted`), calibrated
weight-distribution datasets (:mod:`repro.datasets`), the experiment
harness regenerating every table and figure (:mod:`repro.analysis`), and
a declarative scenario engine running one spec on the simulator or the
live asyncio runtime (:mod:`repro.scenarios`, :mod:`repro.runtime`).

Quickstart::

    from repro import WeightRestriction, solve

    weights = [100.0, 50.0, 20.0, 5.0, 1.0, 1.0]
    result = solve(WeightRestriction("1/3", "1/2"), weights)
    print(result.assignment.to_list(), result.total_tickets)
"""

from .core import (
    CheckStats,
    Number,
    Swiper,
    SwiperResult,
    TicketAssignment,
    Verdict,
    WeightQualification,
    WeightReductionProblem,
    WeightRestriction,
    WeightSeparation,
    as_fraction,
    brute_force_valid,
    is_valid_assignment,
    normalize_weights,
    solve,
    solve_with_constant,
    solve_exact_milp,
    solve_family_optimal,
)

__version__ = "1.0.0"

__all__ = [
    "WeightRestriction",
    "WeightQualification",
    "WeightSeparation",
    "WeightReductionProblem",
    "Swiper",
    "SwiperResult",
    "solve",
    "solve_with_constant",
    "is_valid_assignment",
    "TicketAssignment",
    "Number",
    "as_fraction",
    "normalize_weights",
    "Verdict",
    "CheckStats",
    "brute_force_valid",
    "solve_family_optimal",
    "solve_exact_milp",
    "__version__",
]

#: facade objects re-exported lazily (canonical home: :mod:`repro.api`);
#: lazy so ``import repro`` does not pull the scenario/runtime stack
_API_EXPORTS = (
    "Committee",
    "Session",
    "BackendSpec",
    "WeightSource",
    "TicketAssignmentResult",
)

__all__ += list(_API_EXPORTS)  # PEP 562 keeps their import lazy


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
