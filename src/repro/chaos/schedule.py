"""Chaos schedules: typed fault stages fired by declarative triggers.

Pure data -- the (de)serializable half of the chaos engine, kept free of
scenario/harness imports so :mod:`repro.scenarios.spec` can embed a
:class:`ChaosSpec` without an import cycle.  The executable half lives in
:mod:`repro.chaos.orchestrator`, which interprets these specs against the
same :class:`~repro.runtime.faults.FaultController` and adversary hooks
every backend already shares.

A stage is ``(action, trigger, params)``.  Actions are registry-extensible
(see :data:`repro.chaos.orchestrator.STAGE_ACTIONS`); the built-ins are
``partition``, ``heal``, ``crash``, ``restart``, ``byzantine``,
``weather``, and ``load-surge``.  Triggers fire on virtual/wall time
(``time``), a committed slot appearing in some honest log (``slot``), an
epoch rotation committing (``epoch``), or a metric predicate crossing a
threshold (``metric``); the non-time triggers are polled with a bounded
deadline so a schedule can never hang a run waiting for a condition that
an earlier fault made unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .weather import WeatherSpec

__all__ = ["TriggerSpec", "ChaosStage", "ChaosSpec"]

#: trigger kinds the orchestrator knows how to arm
TRIGGER_KINDS = ("time", "slot", "epoch", "metric")


def _freeze(value):
    """Recursively turn lists/dicts into tuples for frozen-dataclass params."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze` for serialization: tuples back to lists."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class TriggerSpec:
    """When a stage fires.

    ``kind='time'``: at virtual time ``value`` (wall time on the live
    runtime -- the same clock the backend schedules everything else on).
    ``kind='slot'``: when committed slot ``value`` appears in any honest
    observer's log.  ``kind='epoch'``: when epoch ``value`` has committed
    at some honest observer.  ``kind='metric'``: when the named network
    metric reaches ``value``.  Non-time triggers are polled and give up
    (stage never fires, recorded as such) after ``deadline`` seconds.
    """

    kind: str = "time"
    value: float = 0.0
    metric: str = "messages"
    deadline: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in TRIGGER_KINDS:
            raise ValueError(
                f"unknown trigger kind {self.kind!r}; options: {TRIGGER_KINDS}"
            )
        if self.kind == "time" and self.value < 0:
            raise ValueError(f"time trigger cannot be negative: {self.value}")

    def to_dict(self) -> dict:
        record: dict = {"kind": self.kind, "value": self.value}
        if self.kind == "metric":
            record["metric"] = self.metric
        if self.kind != "time" and self.deadline != 5.0:
            record["deadline"] = self.deadline
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TriggerSpec":
        return cls(
            kind=record.get("kind", "time"),
            value=record.get("value", 0.0),
            metric=record.get("metric", "messages"),
            deadline=float(record.get("deadline", 5.0)),
        )


@dataclass(frozen=True)
class ChaosStage:
    """One step of a chaos timeline: do ``action`` when ``trigger`` fires.

    ``params`` is a tuple of ``(key, value)`` pairs (values recursively
    frozen) so the stage stays hashable; :meth:`param` reads one back.
    """

    action: str
    trigger: TriggerSpec = field(default_factory=TriggerSpec)
    params: Tuple = ()

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def to_dict(self) -> dict:
        record: dict = {"action": self.action, "trigger": self.trigger.to_dict()}
        if self.params:
            record["params"] = {k: _thaw(v) for k, v in self.params}
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ChaosStage":
        params = record.get("params", {})
        return cls(
            action=record["action"],
            trigger=TriggerSpec.from_dict(record.get("trigger", {})),
            params=tuple(sorted((k, _freeze(v)) for k, v in params.items())),
        )


@dataclass(frozen=True)
class ChaosSpec:
    """A full chaos plan: staged timeline + ambient weather + watchdog.

    ``stall_after`` is how long committed-slot progress and message flow
    may both be quiescent (with the run incomplete) before the watchdog
    declares a stall and assembles a postmortem.
    """

    stages: Tuple[ChaosStage, ...] = ()
    weather: Optional[WeatherSpec] = None
    watchdog: bool = True
    stall_after: float = 1.0

    def __post_init__(self) -> None:
        if self.stall_after <= 0:
            raise ValueError(f"stall_after must be positive: {self.stall_after}")

    # -- liveness reasoning ---------------------------------------------------------
    def partition_window(self) -> tuple:
        """``(start, heal)`` of the first time-triggered partition stage,
        with ``heal=None`` when no later heal stage exists (an unhealed
        partition -- expected no-liveness, the watchdog's stall case)."""
        start = None
        heal = None
        for stage in self.stages:
            if stage.trigger.kind != "time":
                continue
            if stage.action == "partition" and start is None:
                start = stage.trigger.value
            elif stage.action == "heal" and start is not None:
                if stage.trigger.value >= start:
                    heal = max(heal or 0.0, stage.trigger.value)
        return (start, heal)

    def heal_time(self) -> Optional[float]:
        """Latest heal time, or None if a partition never heals (or there
        is no partition at all)."""
        start, heal = self.partition_window()
        if start is None:
            return 0.0
        return heal

    def keeps_liveness(self) -> bool:
        """Whether a run under this plan is still expected to complete.

        False when a partition stage has no later heal, or when the
        ambient weather (or a weather stage) can lose messages outright
        -- loss is omission, which breaks the asynchrony assumption the
        liveness arguments rest on.
        """
        start, heal = self.partition_window()
        if start is not None and heal is None:
            return False
        if self.weather is not None and self.weather.any_loss:
            return False
        for stage in self.stages:
            if stage.action == "weather":
                spec = WeatherSpec.from_dict(dict(stage.param("weather", ())))
                if spec.any_loss:
                    return False
        return True

    def latest_time(self) -> float:
        """Latest time-triggered stage time (0.0 when none): the point
        after which the plan mutates nothing further on its own."""
        times = [s.trigger.value for s in self.stages if s.trigger.kind == "time"]
        deadlines = [s.trigger.deadline for s in self.stages
                     if s.trigger.kind != "time"]
        return max(times + deadlines + [0.0])

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict:
        record: dict = {}
        if self.stages:
            record["stages"] = [stage.to_dict() for stage in self.stages]
        if self.weather is not None:
            record["weather"] = self.weather.to_dict()
        if not self.watchdog:
            record["watchdog"] = False
        if self.stall_after != 1.0:
            record["stall_after"] = self.stall_after
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ChaosSpec":
        weather = record.get("weather")
        return cls(
            stages=tuple(
                ChaosStage.from_dict(s) for s in record.get("stages", ())
            ),
            weather=WeatherSpec.from_dict(weather) if weather is not None else None,
            watchdog=bool(record.get("watchdog", True)),
            stall_after=float(record.get("stall_after", 1.0)),
        )
