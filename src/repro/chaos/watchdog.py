"""Liveness watchdog: turn a silent stall into a structured postmortem.

A run under chaos can legitimately never complete (an unhealed partition
below the deliver quorum, weather that loses messages, an equivocating
sender) -- that is *expected no-liveness*, and the interesting question
is only what state the cluster froze in.  A run that was expected to
complete but went quiescent without doing so is a *genuine stall* -- a
bug in the protocol or the harness.  The watchdog distinguishes the two
via the adversary/chaos liveness claim and, either way, assembles a
postmortem bundle (per-link last-N message trace, queue depths, fault
and weather counters, the chaos timeline with fired flags) that rides on
the scenario record instead of a bare ``TimeoutError``.

On the sim backend quiescence is exact (the event queue drained), so the
watchdog is a post-hoc classifier.  On the live runtimes it is a polled
stop condition: once the chaos plan has nothing left to fire, sustained
message-flow quiescence without completion for ``stall_after`` wall
seconds stops the run early -- a postmortem in ~1 s instead of a burned
timeout.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["LivenessWatchdog"]


class LivenessWatchdog:
    """One run's liveness monitor (see module docstring)."""

    def __init__(
        self,
        chaos,
        *,
        expect_liveness: bool = True,
        horizon: float = 0.0,
    ) -> None:
        self.chaos = chaos
        self.stall_after = chaos.stall_after
        self.expect_liveness = expect_liveness
        #: scenario time after which nothing is scheduled to fire anymore
        #: (latest chaos stage, heal, epoch start, restart); a stall is
        #: only declarable past it
        self.horizon = max(horizon, chaos.latest_time())
        self.stalled = False
        self._started_at: Optional[float] = None
        self._quiet_since: Optional[float] = None
        self._last_messages = -1

    # -- runtime polling ------------------------------------------------------------
    def stop_condition(self, done: Callable[[], bool]) -> Callable:
        """A ``stop_when(cluster)`` predicate: done, or stalled.

        Progress means new sends (``metrics.messages`` advancing) or
        non-quiescent transports/nodes; ``stall_after`` seconds without
        any -- after the horizon -- declares the stall and stops the run.
        """

        def check(cluster) -> bool:
            if done():
                return True
            now = time.perf_counter()
            if self._started_at is None:
                self._started_at = now
            if now - self._started_at < self.horizon:
                self._quiet_since = None
                return False
            messages = cluster.metrics.messages
            quiescent = cluster.transport.quiescent and all(
                node.idle for node in cluster.nodes
            )
            if quiescent and messages == self._last_messages:
                if self._quiet_since is None:
                    self._quiet_since = now
                elif now - self._quiet_since >= self.stall_after:
                    self.stalled = True
                    return True
            else:
                self._quiet_since = None
            self._last_messages = messages
            return False

        return check

    # -- sim classification ---------------------------------------------------------
    def observe_quiescence(self, completed: bool) -> None:
        """Sim backend: the world ran to quiescence; classify the result."""
        self.stalled = not completed

    @property
    def classification(self) -> str:
        if not self.stalled:
            return "completed"
        return "expected-no-liveness" if not self.expect_liveness else "stall"

    # -- the postmortem bundle -------------------------------------------------------
    def report(
        self,
        *,
        faults=None,
        orchestrator=None,
        queue_depths: Optional[dict] = None,
        suspects: Optional[dict] = None,
    ) -> dict:
        """The ``watchdog`` record section; a ``postmortem`` key appears
        only for stalled runs (keeping completed records deterministic
        across backends)."""
        section: dict = {
            "stalled": self.stalled,
            "expect_liveness": self.expect_liveness,
        }
        if not self.stalled:
            return section
        section["classification"] = self.classification
        postmortem: dict = {}
        if orchestrator is not None:
            postmortem["stages"] = orchestrator.describe_stages()
        if faults is not None:
            postmortem["dropped_messages"] = faults.dropped_messages
            postmortem["delayed_messages"] = faults.delayed_messages
            postmortem["partitioned"] = faults.partitioned
            postmortem["crashed"] = sorted(faults.crashed)
            postmortem["trace"] = [list(entry) for entry in faults.trace]
            if faults.weather is not None:
                postmortem["weather"] = faults.weather.describe()
        if queue_depths is not None:
            postmortem["queues"] = {str(k): v for k, v in sorted(queue_depths.items())}
        if suspects is not None:
            postmortem["suspects"] = suspects
        section["postmortem"] = postmortem
        return section
