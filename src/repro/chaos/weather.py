"""Network weather: per-link seeded loss, duplication, reordering, jitter.

A :class:`WeatherSpec` describes imperfect links declaratively; a
:class:`NetworkWeather` instance turns the spec into *deterministic*
per-link randomness.  Every effect on every directed link draws from its
own ``random.Random`` stream keyed ``{seed}|weather|{effect}|{src}|{dst}``,
so the k-th message on a link meets the k-th draw of each stream on every
backend: the sim consumes all streams in one process, while the proc
backend splits them -- the *sender* draws only the loss stream (weather
loss is decided at send time, like partitions) and the *receiver* draws
only the duplication/reorder/jitter streams.  Because links deliver FIFO
per (src, dst) pair and lost messages are never transmitted, the split
consumes the streams in exactly the same order as the single-process
backends, which is what makes one weather spec mean the same thing on
sim, inproc, tcp, and proc.

Loss is an *omission* fault: it breaks the asynchrony assumption, so any
spec with positive loss is treated as not liveness-preserving (see
:meth:`repro.chaos.schedule.ChaosSpec.keeps_liveness`).  Duplication,
reordering, and jitter only re-time or repeat deliveries; protocols are
expected to decide identically under them (the delivery-idempotence
property tests pin this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["WeatherSpec", "WeatherDecision", "NetworkWeather"]

#: spacing between duplicate copies of one message (simulated seconds)
DUPLICATE_SPACING = 0.005

#: reorder hold when the spec sets no jitter: long enough to overtake
#: later sends, short enough not to stall quiescence detection
DEFAULT_REORDER_SCALE = 0.05


@dataclass(frozen=True)
class WeatherSpec:
    """Declarative imperfect-link model.

    Global probabilities apply to every directed link; ``links`` holds
    asymmetric per-link overrides as ``(src, dst, loss, duplicate,
    reorder, jitter)`` 6-tuples (an override replaces *all four* knobs
    for that directed link, so a storm can rage one way while the
    reverse path stays clean).
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    jitter: float = 0.0
    links: tuple = ()

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"weather {name} must be a probability, got {p}")
        if self.jitter < 0:
            raise ValueError(f"weather jitter must be >= 0, got {self.jitter}")
        for link in self.links:
            if len(link) != 6:
                raise ValueError(
                    "weather link overrides are (src, dst, loss, duplicate, "
                    f"reorder, jitter) 6-tuples, got {link!r}"
                )

    def knobs(self, src: int, dst: int) -> tuple:
        """``(loss, duplicate, reorder, jitter)`` effective on one link."""
        for link in self.links:
            if link[0] == src and link[1] == dst:
                return (float(link[2]), float(link[3]), float(link[4]), float(link[5]))
        return (self.loss, self.duplicate, self.reorder, self.jitter)

    @property
    def any_loss(self) -> bool:
        """True when any link (global or override) can drop messages."""
        if self.loss > 0:
            return True
        return any(link[2] > 0 for link in self.links)

    def to_dict(self) -> dict:
        record: dict = {}
        for name in ("loss", "duplicate", "reorder", "jitter"):
            value = getattr(self, name)
            if value:
                record[name] = value
        if self.links:
            record["links"] = [list(link) for link in self.links]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "WeatherSpec":
        return cls(
            loss=float(record.get("loss", 0.0)),
            duplicate=float(record.get("duplicate", 0.0)),
            reorder=float(record.get("reorder", 0.0)),
            jitter=float(record.get("jitter", 0.0)),
            links=tuple(tuple(link) for link in record.get("links", ())),
        )


@dataclass(frozen=True)
class WeatherDecision:
    """Delivery-point outcome for one (surviving) message: how many extra
    copies to deliver and how much extra delay to add."""

    duplicates: int = 0
    delay: float = 0.0

    CLEAN = None  # type: WeatherDecision  # populated below


WeatherDecision.CLEAN = WeatherDecision()


class NetworkWeather:
    """Seeded realization of a :class:`WeatherSpec`.

    ``on_send`` decides loss (consumed by the *sending* side on every
    backend); ``on_deliver`` decides duplication, reordering, and jitter
    (consumed where the message is dispatched to its handler).  Counters
    record what actually fired so tests and postmortems can see the storm.
    """

    def __init__(self, spec: WeatherSpec, *, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        self._streams: dict[tuple, random.Random] = {}
        self.lost = 0
        self.duplicated = 0
        self.reordered = 0
        self.jittered = 0

    def _rng(self, effect: str, src: int, dst: int) -> random.Random:
        key = (effect, src, dst)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(f"{self.seed}|weather|{effect}|{src}|{dst}")
            self._streams[key] = rng
        return rng

    def on_send(self, src: int, dst: int) -> bool:
        """True when this message is lost (never transmitted)."""
        loss, _, _, _ = self.spec.knobs(src, dst)
        if loss <= 0:
            return False
        if self._rng("loss", src, dst).random() < loss:
            self.lost += 1
            return True
        return False

    def on_deliver(self, src: int, dst: int) -> WeatherDecision:
        """Duplication / reorder-hold / jitter for one surviving message."""
        _, duplicate, reorder, jitter = self.spec.knobs(src, dst)
        duplicates = 0
        delay = 0.0
        if duplicate > 0 and self._rng("duplicate", src, dst).random() < duplicate:
            duplicates = 1
            self.duplicated += 1
        if reorder > 0 and self._rng("reorder", src, dst).random() < reorder:
            # Hold the message long enough that later sends overtake it.
            scale = jitter if jitter > 0 else DEFAULT_REORDER_SCALE
            delay += self._rng("reorder-hold", src, dst).uniform(1.0, 3.0) * scale
            self.reordered += 1
        if jitter > 0:
            delay += self._rng("jitter", src, dst).uniform(0.0, jitter)
            self.jittered += 1
        if duplicates == 0 and delay == 0.0:
            return WeatherDecision.CLEAN
        return WeatherDecision(duplicates=duplicates, delay=delay)

    def counters(self) -> dict:
        return {
            "lost": self.lost,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "jittered": self.jittered,
        }

    def describe(self) -> dict:
        return {"spec": self.spec.to_dict(), "seed": self.seed,
                "counters": self.counters()}
