"""The chaos engine's executable half: fire stages, mutate faults.

A :class:`ChaosOrchestrator` interprets a :class:`~repro.chaos.schedule.ChaosSpec`
against the *existing* fault machinery -- the shared
:class:`~repro.runtime.faults.FaultController`, the party objects, and
the adversary hooks -- so a staged attack means exactly the same thing on
the sim, the in-process runtime, and the process-per-party mesh.  Nothing
here duplicates fault semantics; every action resolves to a call the
flat fault plans already make, just later and conditionally.

Stage actions are registry-extensible: :func:`register_stage_action` adds
a handler ``fn(orchestrator, stage)`` under a new action name, and specs
referring to it replay everywhere the registry is imported.

On the proc backend every worker runs its own orchestrator with
``scope=(local_nid,)``: fault-controller mutations (partition, heal,
weather, transport-level crash) apply in every worker -- each controller
must agree on the plan -- while party-level effects (the crash itself,
restarts, staged corruption, surge proposals) fire only on the scoped
node, which is the only party instance the worker hosts.  Non-time
triggers are polled per worker against local state; a chaos restart on
proc is a *soft* restart (party-level, in-process) -- real SIGKILL
respawns remain the crash-restart plan's job (``spec.faults.restarts``).
"""

from __future__ import annotations

from typing import Callable, Optional

from .schedule import ChaosSpec, ChaosStage, TriggerSpec
from .weather import NetworkWeather, WeatherSpec

__all__ = [
    "STAGE_ACTIONS",
    "register_stage_action",
    "ChaosOrchestrator",
    "StagedAdversary",
    "count_duplicate_commits",
]

#: action name -> ``handler(orchestrator, stage)``
STAGE_ACTIONS: dict[str, Callable] = {}

#: poll interval for slot/epoch/metric triggers (scenario seconds)
POLL_INTERVAL = 0.05


def register_stage_action(name: str) -> Callable:
    """Register a chaos stage action (decorator); last writer wins, so a
    plugin can also override a built-in."""

    def decorate(fn: Callable) -> Callable:
        STAGE_ACTIONS[name] = fn
        return fn

    return decorate


def count_duplicate_commits(driver, ctx) -> int:
    """Total duplicate entries (same proposer twice in one epoch's log)
    across every observer -- the delivery-idempotence invariant's counter.
    Zero on protocols without an ordered log."""
    total = 0
    surge = getattr(driver, "surge_epochs", 0)
    epochs = range(driver.spec.workload.epochs + surge)
    for nid in driver.observers(ctx):
        # proc workers host a single party (a dict keyed by nid); count
        # only what is local
        try:
            party = ctx.parties[nid]
        except (KeyError, IndexError):
            continue
        if not hasattr(party, "ordered_log"):
            return 0
        for e in epochs:
            log = party.ordered_log(e)
            total += len(log) - len({proposer for proposer, _ in log})
    return total


class ChaosOrchestrator:
    """Arm one scenario's chaos plan on one backend instance.

    Construction is pure; :meth:`install` wires triggers into the run
    context and is the only entry point a backend calls.  ``fired`` and
    ``gave_up`` track each stage for the record and the postmortem.
    """

    def __init__(self, spec, driver) -> None:
        self.spec = spec  # the full ScenarioSpec
        self.chaos: ChaosSpec = spec.chaos
        if self.chaos is None:
            raise ValueError("scenario has no chaos section")
        self.driver = driver
        self.fired = [False] * len(self.chaos.stages)
        self.gave_up = [False] * len(self.chaos.stages)
        self.current_index: Optional[int] = None
        self.ctx = None
        self.faults = None
        self.scope: Optional[tuple] = None
        self.metrics = None
        self.crash_fn: Optional[Callable] = None
        self.restart_fn: Optional[Callable] = None

    # -- wiring -------------------------------------------------------------------
    def install(
        self,
        ctx,
        faults,
        *,
        scope: Optional[tuple] = None,
        metrics=None,
        crash_fn: Optional[Callable] = None,
        restart_fn: Optional[Callable] = None,
    ) -> None:
        """Arm every stage trigger and the ambient weather.

        ``scope`` limits party-level effects to the listed node ids (the
        proc backend's one-node workers); ``None`` means all.  ``crash_fn``
        / ``restart_fn`` perform the backend-appropriate crash/restart of
        one node id (defaults mutate the fault controller only).
        """
        self.ctx = ctx
        self.faults = faults
        self.scope = tuple(scope) if scope is not None else None
        self.metrics = metrics
        self.crash_fn = crash_fn or (lambda nid: faults.crash(nid))
        self.restart_fn = restart_fn or (lambda nid: faults.restart(nid))
        if self.chaos.weather is not None:
            faults.weather = NetworkWeather(
                self.chaos.weather, seed=self.spec.seed
            )
        for index, stage in enumerate(self.chaos.stages):
            self._arm(index, stage)

    def _arm(self, index: int, stage: ChaosStage) -> None:
        trigger = stage.trigger
        if trigger.kind == "time":
            self.ctx.at(trigger.value, lambda: self._fire(index, stage))
            return
        budget = max(1, int(trigger.deadline / POLL_INTERVAL))

        def poll(remaining: int) -> None:
            if self.fired[index]:
                return
            if self._satisfied(trigger):
                self._fire(index, stage)
            elif remaining <= 1:
                self.gave_up[index] = True
            else:
                self.ctx.schedule(POLL_INTERVAL, lambda: poll(remaining - 1))

        poll(budget)

    def _fire(self, index: int, stage: ChaosStage) -> None:
        handler = STAGE_ACTIONS.get(stage.action)
        if handler is None:
            raise ValueError(
                f"unknown chaos stage action {stage.action!r}; "
                f"options: {sorted(STAGE_ACTIONS)}"
            )
        self.fired[index] = True
        self.current_index = index  # handlers that need it (byzantine stages)
        handler(self, stage)

    # -- trigger predicates --------------------------------------------------------
    def _scoped_observers(self) -> list[int]:
        nids = self.driver.observers(self.ctx)
        if self.scope is None:
            return list(nids)
        return [nid for nid in nids if nid in self.scope]

    def _satisfied(self, trigger: TriggerSpec) -> bool:
        if trigger.kind == "slot":
            epochs = range(self.spec.workload.epochs)
            for nid in self._scoped_observers():
                party = self.ctx.party(nid)
                if not hasattr(party, "ordered_log"):
                    continue
                committed = sum(len(party.ordered_log(e)) for e in epochs)
                if committed >= trigger.value:
                    return True
            return False
        if trigger.kind == "epoch":
            for nid in self._scoped_observers():
                party = self.ctx.party(nid)
                if hasattr(party, "ordered_log") and party.ordered_log(
                    int(trigger.value)
                ):
                    return True
            return False
        if trigger.kind == "metric":
            for source in (self.metrics, self.faults):
                value = getattr(source, trigger.metric, None)
                if value is not None:
                    return value >= trigger.value
            return False
        raise ValueError(f"unarmed trigger kind {trigger.kind!r}")

    # -- helpers for stage handlers ------------------------------------------------
    def map_nids(self, pids) -> list[int]:
        return [nid for pid in pids for nid in self.driver.map_pid(pid)]

    def in_scope(self, nid: int) -> bool:
        return self.scope is None or nid in self.scope

    # -- record section ------------------------------------------------------------
    def describe_stages(self) -> list:
        out = []
        for stage, fired, gave_up in zip(self.chaos.stages, self.fired, self.gave_up):
            entry = {
                "action": stage.action,
                "trigger": stage.trigger.to_dict(),
                "fired": fired,
            }
            if gave_up:
                entry["gave_up"] = True
            out.append(entry)
        return out

    def summary(self) -> dict:
        """The deterministic ``chaos`` record section of a finished run."""
        section: dict = {"stages": self.describe_stages()}
        if self.faults is not None and self.faults.weather is not None:
            section["weather"] = self.faults.weather.describe()
        section["duplicate_commits"] = count_duplicate_commits(
            self.driver, self.ctx
        )
        return section


# -- built-in stage actions -------------------------------------------------------------


@register_stage_action("partition")
def _stage_partition(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    groups = stage.param("groups", ())
    mapped = [frozenset(orch.map_nids(group)) for group in groups]
    orch.faults.partition(*mapped)


@register_stage_action("heal")
def _stage_heal(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    orch.faults.heal()


@register_stage_action("crash")
def _stage_crash(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    for nid in orch.map_nids(stage.param("pids", ())):
        orch.faults.crash(nid)
        if orch.in_scope(nid):
            party = orch.ctx.party(nid)
            if hasattr(party, "crash"):
                party.crash()


@register_stage_action("restart")
def _stage_restart(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    for nid in orch.map_nids(stage.param("pids", ())):
        # transport-level un-crash first, so the recovering party's
        # state-sync traffic is not condemned (same order as the
        # crash-restart plan's rejoin)
        orch.faults.restart(nid)
        if orch.in_scope(nid):
            orch.restart_fn(nid)


@register_stage_action("byzantine")
def _stage_byzantine(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    adversary = orch.driver.adversary
    if adversary is None or not isinstance(adversary, StagedAdversary):
        raise ValueError(
            "a 'byzantine' chaos stage needs the StagedAdversary the "
            "harness builds for chaos specs"
        )
    adversary.activate(stage, orch)


@register_stage_action("weather")
def _stage_weather(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    spec = WeatherSpec.from_dict(dict(stage.param("weather", ())))
    orch.faults.weather = NetworkWeather(spec, seed=orch.spec.seed)


@register_stage_action("load-surge")
def _stage_load_surge(orch: ChaosOrchestrator, stage: ChaosStage) -> None:
    from ..scenarios.harness import _payload

    extra = int(stage.param("epochs", 1))
    base = orch.spec.workload.epochs
    driver = orch.driver
    # Completion never waits on surge epochs (they are load, not claims),
    # but the idempotence counter scans them.
    driver.surge_epochs = max(getattr(driver, "surge_epochs", 0), extra)
    for offset in range(extra):
        epoch = base + offset
        for nid in orch.ctx.live_nodes:
            if not orch.in_scope(nid):
                continue
            party = orch.ctx.party(nid)
            if hasattr(party, "propose_batch"):
                party.propose_batch(epoch, _payload(orch.spec, nid, epoch))


# -- the staged adversary ---------------------------------------------------------------


def _staged_entries(chaos: ChaosSpec) -> list:
    """(stage index, strategy name, params) of every byzantine stage."""
    out = []
    for index, stage in enumerate(chaos.stages):
        if stage.action == "byzantine":
            out.append((index, stage.param("strategy"), stage.param("params", ())))
    return out


class StagedAdversary:
    """An adversary whose corruptions can arrive *mid-run*.

    Extends the flat :class:`~repro.adversary.strategies.Adversary` with
    the chaos schedule's ``byzantine`` stages: their strategies are
    materialized up front (the corrupted set must be deterministic and
    budget-checked before the run), but their ``corrupt_party`` patches
    are applied only when the stage fires.  ``corrupted`` reports the
    *merged* set -- a party that will be corrupted later carries no
    correctness claim for any part of the run, the conservative reading.

    ``expect_liveness`` is the conjunction of the base strategies', the
    staged strategies', and the chaos plan's own
    :meth:`~repro.chaos.schedule.ChaosSpec.keeps_liveness`.
    """

    def __init__(self, spec, committee, *, protocol: Optional[str] = None) -> None:
        from ..adversary.strategies import STRATEGIES, Adversary, StrategyContext
        from ..api.committee import CommitteeValidationError
        from ..core.types import as_fraction
        from ..sim.adversary import corrupt_weight_fraction

        self._base = Adversary(spec, committee, protocol=protocol)
        self.spec = spec
        self.committee = committee
        self.protocol = self._base.protocol
        chaos: ChaosSpec = spec.chaos
        self.chaos = chaos
        weights = tuple(committee.int_weights)
        f_w = as_fraction(spec.f_w)
        #: stage index -> materialized (but not yet applied) strategy
        self.staged: dict[int, object] = {}
        for index, name, params in _staged_entries(chaos):
            cls = STRATEGIES.get(name)
            if cls is None:
                raise ValueError(
                    f"unknown staged byzantine strategy {name!r}; "
                    f"options: {sorted(STRATEGIES)}"
                )
            ctx = StrategyContext(
                committee=committee,
                weights=weights,
                f_w=f_w,
                protocol=self.protocol,
                seed=spec.seed,
                params=tuple(params),
            )
            self.staged[index] = cls(ctx)
        self.corrupted = frozenset(self._base.corrupted).union(
            *(s.corrupted for s in self.staged.values())
        ) if self.staged else frozenset(self._base.corrupted)
        # Re-validate the budget over everything that can be down or lying
        # at once: corrupted (flat + staged), crashed, and chaos-crashed.
        chaos_crashes = {
            pid
            for stage in chaos.stages
            if stage.action == "crash"
            for pid in stage.param("pids", ())
        }
        budget_set = set(self.corrupted) | set(spec.faults.crashes) | chaos_crashes
        self.corrupted_weight = corrupt_weight_fraction(weights, budget_set)
        if budget_set and self.corrupted_weight >= f_w:
            raise CommitteeValidationError(
                f"staged corrupted+crashed weight {self.corrupted_weight} is "
                f"not strictly below the f_w={f_w} adversary budget"
            )
        self.expect_liveness = (
            self._base.expect_liveness
            and all(s.keeps_liveness() for s in self.staged.values())
            and chaos.keeps_liveness()
        )
        #: stage indices whose corruption has been applied (per backend
        #: instance; postmortem material, not record material)
        self.activated: list[int] = []

    # -- flat-adversary surface (delegation) ----------------------------------------
    @property
    def strategies(self):
        return self._base.strategies

    @property
    def sender_override(self):
        return self._base.sender_override

    def wrap_factory(self, factory: Callable) -> Callable:
        # Only the *flat* strategies corrupt at construction; staged ones
        # wait for their stage to fire.
        return self._base.wrap_factory(factory)

    def install_network_faults(self, faults, map_pid) -> None:
        self._base.install_network_faults(faults, map_pid)

    def wrap_handover_factory(self, factory, **kwargs):
        return self._base.wrap_handover_factory(factory, **kwargs)

    def describe(self) -> dict:
        record = self._base.describe()
        record["corrupted"] = sorted(self.corrupted)
        record["corrupted_weight"] = str(self.corrupted_weight)
        record["expect_liveness"] = self.expect_liveness
        record["staged"] = [
            {"stage": index, "strategy": strategy.name}
            for index, strategy in sorted(self.staged.items())
        ]
        return record

    # -- stage activation -----------------------------------------------------------
    def activate(self, stage: ChaosStage, orch: ChaosOrchestrator) -> None:
        """Apply one byzantine stage's corruption now (mid-run)."""
        index = orch.current_index
        strategy = self.staged.get(index)
        if strategy is None:  # pragma: no cover -- _fire guards the action
            return
        strategy.install_network_faults(orch.faults, orch.driver.map_pid)
        for pid in sorted(strategy.corrupted):
            for nid in orch.driver.map_pid(pid):
                if orch.in_scope(nid):
                    strategy.corrupt_party(orch.ctx.party(nid), nid)
        self.activated.append(index)
