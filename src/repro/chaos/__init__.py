"""Chaos orchestration: staged fault timelines, network weather, and a
liveness watchdog.

The data layer (:mod:`~repro.chaos.weather`, :mod:`~repro.chaos.schedule`)
imports eagerly -- :mod:`repro.scenarios.spec` embeds it.  The executable
layer (:mod:`~repro.chaos.orchestrator`, :mod:`~repro.chaos.watchdog`)
loads lazily via PEP 562: the orchestrator reaches into the adversary and
harness packages, which themselves import the spec (and hence this
package), so eager imports here would cycle.
"""

from .schedule import ChaosSpec, ChaosStage, TriggerSpec
from .weather import NetworkWeather, WeatherDecision, WeatherSpec

__all__ = [
    "ChaosSpec",
    "ChaosStage",
    "TriggerSpec",
    "WeatherSpec",
    "WeatherDecision",
    "NetworkWeather",
    "ChaosOrchestrator",
    "StagedAdversary",
    "LivenessWatchdog",
    "STAGE_ACTIONS",
    "register_stage_action",
    "count_duplicate_commits",
]

_ORCHESTRATOR_EXPORTS = (
    "ChaosOrchestrator",
    "StagedAdversary",
    "STAGE_ACTIONS",
    "register_stage_action",
    "count_duplicate_commits",
)
_WATCHDOG_EXPORTS = ("LivenessWatchdog",)


def __getattr__(name: str):
    if name in _ORCHESTRATOR_EXPORTS:
        from . import orchestrator

        return getattr(orchestrator, name)
    if name in _WATCHDOG_EXPORTS:
        from . import watchdog

        return getattr(watchdog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
