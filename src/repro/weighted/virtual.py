"""Virtual-user mapping: the mechanical core of the black-box transform.

A Weight Restriction solution hands party ``i`` a number ``t_i`` of
tickets; the transformation (paper, Sections 4.2 and 4.4) instantiates a
nominal protocol with ``T = sum(t_i)`` *virtual users* and lets party
``i`` control ``t_i`` of them.  This module is the deterministic
bookkeeping: globally agreed virtual ids, owner lookup, and corruption
accounting.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.types import TicketAssignment

__all__ = ["VirtualUserMap"]


@dataclass(frozen=True)
class VirtualUserMap:
    """Deterministic bijection between tickets and virtual user ids.

    Virtual ids are ``0 .. T-1``, assigned to parties in party-index order
    -- every honest party computes the identical map from the (common
    knowledge) ticket assignment, which is what lets nominal protocols run
    unmodified (paper: "it is sufficient for all parties to run an agreed
    upon deterministic weight-restriction protocol").
    """

    tickets: tuple[int, ...]
    _starts: tuple[int, ...]

    def __init__(self, assignment: TicketAssignment | Sequence[int]) -> None:
        tickets = tuple(int(t) for t in assignment)
        starts = []
        acc = 0
        for t in tickets:
            starts.append(acc)
            acc += t
        object.__setattr__(self, "tickets", tickets)
        object.__setattr__(self, "_starts", tuple(starts))

    @property
    def n_parties(self) -> int:
        return len(self.tickets)

    @property
    def total_virtual(self) -> int:
        """``T``: number of virtual users."""
        return self._starts[-1] + self.tickets[-1] if self.tickets else 0

    def virtual_ids(self, party: int) -> range:
        """Virtual ids controlled by ``party``."""
        start = self._starts[party]
        return range(start, start + self.tickets[party])

    def owner(self, virtual_id: int) -> int:
        """The party controlling ``virtual_id``."""
        if not 0 <= virtual_id < self.total_virtual:
            raise IndexError(f"virtual id {virtual_id} out of range")
        idx = bisect_right(self._starts, virtual_id) - 1
        # Skip zero-ticket parties whose start collides with the next.
        while self.tickets[idx] == 0 or virtual_id >= self._starts[idx] + self.tickets[idx]:
            idx += 1
        return idx

    def corrupted_virtual(self, corrupt_parties: Iterable[int]) -> set[int]:
        """Virtual ids controlled by a corrupt party set."""
        out: set[int] = set()
        for p in set(corrupt_parties):
            out.update(self.virtual_ids(p))
        return out

    def corrupted_fraction(self, corrupt_parties: Iterable[int]) -> float:
        """Fraction of virtual users the corrupt coalition controls."""
        total = self.total_virtual
        if total == 0:
            return 0.0
        return len(self.corrupted_virtual(corrupt_parties)) / total

    def parties_with_tickets(self) -> list[int]:
        """Parties controlling at least one virtual user."""
        return [i for i, t in enumerate(self.tickets) if t > 0]
