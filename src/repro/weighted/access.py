"""Access and adversary structures (paper, Section 4.2).

An *access structure* is the family of party sets able to perform a
protected action; an *adversary structure* is the family of sets the
adversary may corrupt simultaneously.  The paper's key definition is the
*blunt* access structure: it excludes every corruptible set and contains
at least one all-honest set -- precisely what liveness + safety of coins,
blunt threshold signatures, etc. require (Definition 4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..core.types import Number, as_fraction, normalize_weights

__all__ = [
    "NominalThresholdAccess",
    "WeightedThresholdAccess",
    "TicketThresholdAccess",
    "WeightedAdversaryStructure",
    "is_blunt_for",
]


@dataclass(frozen=True)
class NominalThresholdAccess:
    """``A_n(alpha) = {P : |P| > alpha * n}`` -- nominal threshold access."""

    n: int
    alpha: Fraction

    def __init__(self, n: int, alpha: Number) -> None:
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "alpha", as_fraction(alpha))
        if self.n <= 0 or not 0 < self.alpha < 1:
            raise ValueError("need n > 0 and alpha in (0, 1)")

    def contains(self, party_set: Iterable[int]) -> bool:
        return len(set(party_set)) > self.alpha * self.n

    @property
    def min_size(self) -> int:
        """Smallest set size in the structure."""
        return math.floor(self.alpha * self.n) + 1


@dataclass(frozen=True)
class WeightedThresholdAccess:
    """``A_w(alpha) = {P : w(P) > alpha * W}`` -- weighted threshold access."""

    weights: tuple[Fraction, ...]
    alpha: Fraction

    def __init__(self, weights: Sequence[Number], alpha: Number) -> None:
        object.__setattr__(self, "weights", normalize_weights(weights))
        object.__setattr__(self, "alpha", as_fraction(alpha))
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")

    @property
    def total(self) -> Fraction:
        return sum(self.weights, start=Fraction(0))

    def contains(self, party_set: Iterable[int]) -> bool:
        w = sum((self.weights[i] for i in set(party_set)), start=Fraction(0))
        return w > self.alpha * self.total


@dataclass(frozen=True)
class TicketThresholdAccess:
    """Access by ticket count: ``{P : t(P) >= ceil(alpha_n * T)}``.

    This is what a Weight Restriction solution induces when each ticket
    becomes a virtual user in a nominal threshold scheme (Theorem 4.2).
    """

    tickets: tuple[int, ...]
    alpha_n: Fraction

    def __init__(self, tickets: Sequence[int], alpha_n: Number) -> None:
        object.__setattr__(self, "tickets", tuple(int(t) for t in tickets))
        object.__setattr__(self, "alpha_n", as_fraction(alpha_n))
        if not 0 < self.alpha_n < 1:
            raise ValueError("alpha_n must be in (0, 1)")
        if sum(self.tickets) <= 0:
            raise ValueError("assignment must allocate at least one ticket")

    @property
    def total(self) -> int:
        return sum(self.tickets)

    @property
    def threshold(self) -> int:
        """``ceil(alpha_n * T)`` shares/virtual users needed."""
        value = self.alpha_n * self.total
        return -((-value.numerator) // value.denominator)

    def contains(self, party_set: Iterable[int]) -> bool:
        held = sum(self.tickets[i] for i in set(party_set))
        return held >= self.threshold


@dataclass(frozen=True)
class WeightedAdversaryStructure:
    """``F_w(f_w) = {P : w(P) < f_w * W}`` -- weighted corruption family."""

    weights: tuple[Fraction, ...]
    f_w: Fraction

    def __init__(self, weights: Sequence[Number], f_w: Number) -> None:
        object.__setattr__(self, "weights", normalize_weights(weights))
        object.__setattr__(self, "f_w", as_fraction(f_w))
        if not 0 < self.f_w < 1:
            raise ValueError("f_w must be in (0, 1)")

    @property
    def total(self) -> Fraction:
        return sum(self.weights, start=Fraction(0))

    def corruptible(self, party_set: Iterable[int]) -> bool:
        w = sum((self.weights[i] for i in set(party_set)), start=Fraction(0))
        return w < self.f_w * self.total

    def max_corruptible_sets(self) -> None:
        raise NotImplementedError(
            "enumeration is exponential; use repro.sim.adversary strategies"
        )


def is_blunt_for(
    access,
    adversary: WeightedAdversaryStructure,
    *,
    n: int,
) -> bool:
    """Definition 4.1 check by exhaustive enumeration (small ``n`` only).

    ``access`` must be blunt w.r.t. ``adversary``: no corruptible set is in
    the access structure, and the complement of some corruptible set
    containing every honest party is in it.  Checking all subsets is
    exponential; intended for tests (``n <= 16``).
    """
    if n > 16:
        raise ValueError("exhaustive bluntness check limited to n <= 16")
    universe = list(range(n))
    from itertools import combinations

    all_sets = [
        frozenset(c) for r in range(n + 1) for c in combinations(universe, r)
    ]
    corruptible = [s for s in all_sets if adversary.corruptible(s)]
    for f in corruptible:
        if access.contains(f):
            return False
    for f in corruptible:
        honest = frozenset(universe) - f
        if access.contains(honest):
            continue
        return False
    return True
