"""The weighted-model layer: access structures, quorum policies, virtual
users, and the paper's transformations (Sections 4-5)."""

from .access import (
    NominalThresholdAccess,
    TicketThresholdAccess,
    WeightedAdversaryStructure,
    WeightedThresholdAccess,
    is_blunt_for,
)
from .quorum import NominalQuorums, QuorumPolicy, WeightedQuorums
from .tight import TightGate
from .transform import (
    BlackBoxSetup,
    BluntSetup,
    ErrorCorrectionSetup,
    QualificationSetup,
    black_box_setup,
    blunt_setup,
    error_correction_setup,
    qualification_setup,
)
from .virtual import VirtualUserMap

__all__ = [
    "NominalThresholdAccess",
    "WeightedThresholdAccess",
    "TicketThresholdAccess",
    "WeightedAdversaryStructure",
    "is_blunt_for",
    "QuorumPolicy",
    "NominalQuorums",
    "WeightedQuorums",
    "VirtualUserMap",
    "TightGate",
    "BluntSetup",
    "BlackBoxSetup",
    "QualificationSetup",
    "ErrorCorrectionSetup",
    "blunt_setup",
    "black_box_setup",
    "qualification_setup",
    "error_correction_setup",
]
