"""Tight access structures via one extra vote round (paper, Section 4.3).

A blunt primitive only guarantees "honest can, corrupt alone cannot".  To
get a *tight* weighted threshold ``A_w(beta)`` -- the action happens iff
parties of weight more than ``beta * W`` want it -- the paper prepends a
vote round: an honest party first broadcasts a weightless VOTE; only when
it has seen votes of weight above ``beta * W`` does it contribute its
actual secret share.  The blunt structure underneath then ensures the
action completes exactly when a weighted threshold of parties voted.

:class:`TightGate` is the pure state machine of that vote round; protocol
code drives it with delivered votes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from ..core.types import Number, as_fraction, normalize_weights

__all__ = ["TightGate"]


class TightGate:
    """Vote-collection gate for one action.

    The gate opens when distinct voters accumulate weight strictly above
    ``beta * W``; once open it stays open (votes are never retracted).
    """

    def __init__(self, weights: Sequence[Number], beta: Number) -> None:
        self.weights = normalize_weights(weights)
        self.beta = as_fraction(beta)
        if not 0 < self.beta < 1:
            raise ValueError("beta must be in (0, 1)")
        self.total = sum(self.weights, start=Fraction(0))
        self._voters: set[int] = set()
        self._weight = Fraction(0)

    @property
    def voters(self) -> frozenset[int]:
        return frozenset(self._voters)

    @property
    def voted_weight(self) -> Fraction:
        return self._weight

    @property
    def open(self) -> bool:
        """Has the weighted vote threshold been crossed?"""
        return self._weight > self.beta * self.total

    def add_vote(self, party: int) -> bool:
        """Record a vote (idempotent); returns the gate state after it."""
        if not 0 <= party < len(self.weights):
            raise IndexError(f"unknown party {party}")
        if party not in self._voters:
            self._voters.add(party)
            self._weight += self.weights[party]
        return self.open

    def missing_weight(self) -> Fraction:
        """Weight still needed to open (0 when already open)."""
        needed = self.beta * self.total - self._weight
        return max(needed, Fraction(0))
