"""The paper's transformations, packaged as setup helpers.

* :func:`blunt_setup` -- Theorem 4.2: solve ``WR(f_w, alpha_n)`` and
  return the virtual-user map plus the nominal threshold, turning any
  nominal threshold primitive into a weighted one with a *blunt* access
  structure.
* :func:`black_box_setup` -- Section 4.4: for a nominal protocol with
  resilience ``f_n``, choose ``f_w = f_n - epsilon`` and solve
  ``WR(f_w, f_n)``; the nominal protocol then runs among ``T`` virtual
  users of which the adversary controls less than a fraction ``f_n``.
* :func:`qualification_setup` -- Section 5: solve ``WQ(beta_w, beta_n)``
  for erasure/error-coded protocols, returning the fragment layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..core.problems import WeightQualification, WeightRestriction
from ..core.solver import Swiper, SwiperResult
from ..core.types import Number, TicketAssignment, as_fraction
from .virtual import VirtualUserMap

__all__ = [
    "BluntSetup",
    "BlackBoxSetup",
    "QualificationSetup",
    "ErrorCorrectionSetup",
    "blunt_setup",
    "black_box_setup",
    "qualification_setup",
    "error_correction_setup",
]


def _ceil_frac(x: Fraction) -> int:
    return -((-x.numerator) // x.denominator)


@dataclass(frozen=True)
class BluntSetup:
    """Weighted threshold primitive setup (Theorem 4.2).

    ``threshold`` is the nominal share threshold ``ceil(alpha_n * T)``;
    instantiate the nominal ``(T, threshold)`` primitive and give party
    ``i`` the virtual users ``vmap.virtual_ids(i)``.
    """

    result: SwiperResult
    vmap: VirtualUserMap
    alpha_n: Fraction
    threshold: int

    @property
    def total_virtual(self) -> int:
        return self.vmap.total_virtual


def blunt_setup(
    weights: Sequence[Number],
    f_w: Number,
    alpha_n: Number,
    *,
    mode: str = "full",
) -> BluntSetup:
    """Solve ``WR(f_w, alpha_n)`` (requires ``alpha_n <= 1/2`` for the
    honest-liveness half of bluntness) and package the virtual-user map."""
    aw, an = as_fraction(f_w), as_fraction(alpha_n)
    if an > Fraction(1, 2):
        raise ValueError(
            "blunt access structures need alpha_n <= 1/2 (Theorem 4.2)"
        )
    result = Swiper(mode=mode).solve(WeightRestriction(aw, an), weights)
    vmap = VirtualUserMap(result.assignment)
    threshold = _ceil_frac(an * vmap.total_virtual)
    return BluntSetup(result=result, vmap=vmap, alpha_n=an, threshold=threshold)


@dataclass(frozen=True)
class BlackBoxSetup:
    """Black-box transformation setup (Section 4.4).

    Run the nominal protocol among ``vmap.total_virtual`` virtual users
    with nominal resilience ``f_n``; the weighted protocol tolerates
    corrupt weight below ``f_w = f_n - epsilon``.
    """

    result: SwiperResult
    vmap: VirtualUserMap
    f_n: Fraction
    f_w: Fraction

    @property
    def total_virtual(self) -> int:
        return self.vmap.total_virtual

    def nominal_fault_budget(self) -> int:
        """Largest corrupt virtual-user count the nominal protocol takes:
        strictly fewer than ``f_n * T``."""
        value = self.f_n * self.vmap.total_virtual
        # strictly less than value
        if value.denominator == 1:
            return value.numerator - 1
        return value.numerator // value.denominator


def black_box_setup(
    weights: Sequence[Number],
    f_n: Number,
    epsilon: Number,
    *,
    mode: str = "full",
) -> BlackBoxSetup:
    """Solve ``WR(f_n - epsilon, f_n)`` for the black-box transformation."""
    fn = as_fraction(f_n)
    eps = as_fraction(epsilon)
    if eps <= 0 or eps >= fn:
        raise ValueError("need 0 < epsilon < f_n")
    fw = fn - eps
    result = Swiper(mode=mode).solve(WeightRestriction(fw, fn), weights)
    return BlackBoxSetup(
        result=result,
        vmap=VirtualUserMap(result.assignment),
        f_n=fn,
        f_w=fw,
    )


@dataclass(frozen=True)
class QualificationSetup:
    """Erasure-coding layout from a WQ solution (Section 5.1).

    Use ``(data_shards, total_shards)`` Reed-Solomon coding; party ``i``
    stores the fragments with indices ``vmap.virtual_ids(i)``.
    """

    result: SwiperResult
    vmap: VirtualUserMap
    beta_n: Fraction

    @property
    def total_shards(self) -> int:
        """``m = T``: total fragments."""
        return self.vmap.total_virtual

    @property
    def data_shards(self) -> int:
        """``k = ceil(beta_n * T)``: reconstruction threshold."""
        return _ceil_frac(self.beta_n * self.vmap.total_virtual)

    @property
    def rate(self) -> Fraction:
        """Achieved code rate ``k / m`` (paper compares it to ``beta_n``)."""
        return Fraction(self.data_shards, self.total_shards)


def qualification_setup(
    weights: Sequence[Number],
    beta_w: Number,
    beta_n: Number,
    *,
    mode: str = "full",
) -> QualificationSetup:
    """Solve ``WQ(beta_w, beta_n)``: any subset heavier than ``beta_w W``
    holds more than ``beta_n T`` fragments, hence at least
    ``ceil(beta_n T)`` -- enough to reconstruct."""
    bw, bn = as_fraction(beta_w), as_fraction(beta_n)
    result = Swiper(mode=mode).solve(WeightQualification(bw, bn), weights)
    return QualificationSetup(
        result=result, vmap=VirtualUserMap(result.assignment), beta_n=bn
    )


@dataclass(frozen=True)
class ErrorCorrectionSetup:
    """Error-corrected dissemination layout (Section 5.2).

    The online-error-correction argument needs the *code rate* to satisfy
    ``beta_n >= rate + (1 - beta_n)``, i.e. ``rate <= 2 beta_n - 1`` --
    the honest fragment fraction (at least ``beta_n`` by WQ) must cover
    the data plus twice the adversarial fragment fraction (at most
    ``1 - beta_n``).  Use ``(data_shards, total_shards)`` Reed-Solomon
    coding with *error* decoding.
    """

    result: SwiperResult
    vmap: VirtualUserMap
    beta_n: Fraction
    rate: Fraction

    @property
    def total_shards(self) -> int:
        """``m = T``: total fragments."""
        return self.vmap.total_virtual

    @property
    def data_shards(self) -> int:
        """``k = floor(rate * T)`` (at least 1)."""
        k = (self.rate * self.vmap.total_virtual).numerator // (
            self.rate * self.vmap.total_virtual
        ).denominator
        return max(1, k)

    def error_budget(self, received: int) -> int:
        """Errors correctable from ``received`` fragments:
        ``(received - k) // 2``."""
        return max(0, (received - self.data_shards) // 2)


def error_correction_setup(
    weights: Sequence[Number],
    f_w: Number = Fraction(1, 3),
    rate: Number = Fraction(1, 4),
    *,
    mode: str = "full",
) -> ErrorCorrectionSetup:
    """Section 5.2's parameterization: ``beta_w = 1 - f_w`` (the honest
    weight fraction) and ``beta_n = rate/2 + 1/2`` so that honest
    fragments always out-number the data requirement plus twice the
    adversarial garbage.  Requires ``rate < 1 - 2 f_w``."""
    fw = as_fraction(f_w)
    r = as_fraction(rate)
    if not 0 < r < 1 - 2 * fw:
        raise ValueError(
            f"rate must lie in (0, {1 - 2 * fw}) for f_w={fw} (Section 5.2)"
        )
    beta_w = 1 - fw
    beta_n = r / 2 + Fraction(1, 2)
    result = Swiper(mode=mode).solve(WeightQualification(beta_w, beta_n), weights)
    return ErrorCorrectionSetup(
        result=result,
        vmap=VirtualUserMap(result.assignment),
        beta_n=beta_n,
        rate=r,
    )
