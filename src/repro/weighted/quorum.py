"""Quorum policies: nominal counting vs. weighted voting (Section 1.2).

Many protocols only need "wait until enough confirmations"; the weighted
translation replaces a count threshold with a weight-fraction threshold.
Protocols in :mod:`repro.protocols` are parameterized by a
:class:`QuorumPolicy` so the same code runs nominally or weighted -- the
paper's observation that weighted voting alone converts the quorum-based
parts of a protocol with no resilience loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..core.types import Number, as_fraction, normalize_weights

__all__ = ["QuorumPolicy", "NominalQuorums", "WeightedQuorums"]


class QuorumPolicy:
    """Threshold predicates a Bracha-style broadcast needs.

    ``echo_quorum``: enough ECHOs to become ready (intersects any other
    echo quorum in an honest party).  ``ready_amplify``: enough READYs to
    echo the readiness even without an echo quorum.  ``deliver_quorum``:
    enough READYs to deliver.  ``storage_quorum``: enough stored-fragment
    acks for dispersal completeness (AVID).
    """

    def echo_quorum(self, senders: Iterable[int]) -> bool:
        raise NotImplementedError

    def ready_amplify(self, senders: Iterable[int]) -> bool:
        raise NotImplementedError

    def deliver_quorum(self, senders: Iterable[int]) -> bool:
        raise NotImplementedError

    def storage_quorum(self, senders: Iterable[int]) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class NominalQuorums(QuorumPolicy):
    """Classic ``n = 3t + 1`` thresholds: echo/deliver at ``n - t``,
    ready amplification at ``t + 1``, storage at ``2t + 1``."""

    n: int
    t: int

    def __post_init__(self) -> None:
        if not (self.n >= 3 * self.t + 1 and self.t >= 0):
            raise ValueError("nominal quorums require n >= 3t + 1")

    def _count(self, senders: Iterable[int]) -> int:
        return len(set(senders))

    def echo_quorum(self, senders: Iterable[int]) -> bool:
        return self._count(senders) >= self.n - self.t

    def ready_amplify(self, senders: Iterable[int]) -> bool:
        return self._count(senders) >= self.t + 1

    def deliver_quorum(self, senders: Iterable[int]) -> bool:
        return self._count(senders) >= self.n - self.t

    def storage_quorum(self, senders: Iterable[int]) -> bool:
        return self._count(senders) >= 2 * self.t + 1


@dataclass(frozen=True)
class WeightedQuorums(QuorumPolicy):
    """Weighted-voting thresholds with resilience ``f_w`` (default 1/3):
    echo/deliver above ``(1 - f_w) W``, ready amplification above
    ``f_w W``, storage above ``2 f_w W``.

    The predicates run on every message delivery, so they are evaluated
    in pure integer arithmetic: weights are scaled to a common
    denominator once at construction and each ``weight > c * W`` check
    becomes one cross-multiplied integer comparison -- exactly equivalent
    to the Fraction math, with none of its per-call allocation.
    """

    weights: tuple[Fraction, ...]
    f_w: Fraction

    def __init__(self, weights: Sequence[Number], f_w: Number = Fraction(1, 3)) -> None:
        object.__setattr__(self, "weights", normalize_weights(weights))
        object.__setattr__(self, "f_w", as_fraction(f_w))
        if not 0 < self.f_w < Fraction(1, 2):
            raise ValueError("f_w must be in (0, 1/2)")
        # Integer fast path: w_i * D with D the common denominator; the
        # predicate `sum > (p/q) * W` becomes `sum_int * q > p * W_int`.
        scale = math.lcm(*(w.denominator for w in self.weights)) if self.weights else 1
        int_weights = tuple(int(w * scale) for w in self.weights)
        total_int = sum(int_weights)
        object.__setattr__(self, "_int_weights", int_weights)
        thresholds = {}
        for name, c in (
            ("echo", 1 - self.f_w),
            ("ready", self.f_w),
            ("storage", 2 * self.f_w),
        ):
            c = as_fraction(c)
            thresholds[name] = (c.denominator, c.numerator * total_int)
        object.__setattr__(self, "_thresholds", thresholds)

    def _over(self, senders: Iterable[int], name: str) -> bool:
        int_weights = self._int_weights
        q, bound = self._thresholds[name]
        return sum(int_weights[i] for i in set(senders)) * q > bound

    @classmethod
    def for_committee(
        cls, committee, f_w: Number = Fraction(1, 3)
    ) -> "WeightedQuorums":
        """Quorums over a :class:`repro.api.Committee` (duck-typed:
        anything exposing ``weights``) -- the facade's bridge point."""
        return cls(committee.weights, f_w)

    @property
    def total(self) -> Fraction:
        return sum(self.weights, start=Fraction(0))

    def weight(self, senders: Iterable[int]) -> Fraction:
        return sum((self.weights[i] for i in set(senders)), start=Fraction(0))

    def echo_quorum(self, senders: Iterable[int]) -> bool:
        return self._over(senders, "echo")

    def ready_amplify(self, senders: Iterable[int]) -> bool:
        return self._over(senders, "ready")

    def deliver_quorum(self, senders: Iterable[int]) -> bool:
        return self._over(senders, "echo")  # same (1 - f_w) W bound

    def storage_quorum(self, senders: Iterable[int]) -> bool:
        return self._over(senders, "storage")
