"""Bootstrap resampling harness (paper, Section 7).

The right-hand columns of Figures 1-5 study how ticket metrics scale with
the number of parties by *bootstrapping*: sampling parties with
replacement from a chain snapshot at varying sizes and averaging the
metric over repeated experiments.  This module reproduces that procedure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["resample", "bootstrap_average", "BootstrapResult"]


def resample(weights: Sequence[int], size: int, rng: random.Random) -> list[int]:
    """Sample ``size`` weights with replacement (one bootstrap draw)."""
    if size <= 0:
        raise ValueError("size must be positive")
    return [weights[rng.randrange(len(weights))] for _ in range(size)]


@dataclass(frozen=True)
class BootstrapResult:
    """Mean and spread of a metric over bootstrap trials."""

    mean: float
    minimum: float
    maximum: float
    trials: int


def bootstrap_average(
    weights: Sequence[int],
    size: int,
    metric: Callable[[list[int]], float],
    *,
    trials: int = 10,
    seed: int = 0,
) -> BootstrapResult:
    """Average ``metric`` over ``trials`` bootstrap resamples of ``size``.

    The paper uses 100 trials; benchmarks default lower for wall-clock
    sanity and accept ``trials`` explicitly.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = random.Random(seed)
    values = []
    for _ in range(trials):
        sample = resample(weights, size, rng)
        if not any(sample):
            # All-zero draws cannot be solved; redraw deterministically.
            sample[0] = max(weights)
        values.append(float(metric(sample)))
    return BootstrapResult(
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
        trials=trials,
    )
