"""Weight-distribution datasets: synthetic generators, calibrated chain
snapshots, and the bootstrap harness (paper, Section 7)."""

from .bootstrap import BootstrapResult, bootstrap_average, resample
from .chains import ALL_CHAINS, ChainSnapshot, algorand, aptos, filecoin, load_chain, tezos
from .synthetic import (
    constant_weights,
    exponential_weights,
    lognormal_weights,
    mixture_weights,
    normalize_to_total,
    pareto_weights,
    uniform_weights,
    zipf_weights,
)

__all__ = [
    "ChainSnapshot",
    "ALL_CHAINS",
    "load_chain",
    "aptos",
    "tezos",
    "filecoin",
    "algorand",
    "BootstrapResult",
    "bootstrap_average",
    "resample",
    "normalize_to_total",
    "pareto_weights",
    "lognormal_weights",
    "zipf_weights",
    "exponential_weights",
    "uniform_weights",
    "constant_weights",
    "mixture_weights",
]
