"""Synthetic weight-distribution generators.

The paper's empirical section works on stake snapshots whose defining
feature is heavy skew: a few giants and a long tail of small holders.
These generators produce integer weight vectors with controllable skew,
normalized so the weights sum *exactly* to a requested total -- matching
the published aggregate ``W`` of each chain while remaining deterministic
for a fixed seed.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

__all__ = [
    "normalize_to_total",
    "pareto_weights",
    "lognormal_weights",
    "zipf_weights",
    "exponential_weights",
    "uniform_weights",
    "constant_weights",
    "mixture_weights",
]


def normalize_to_total(raw: Sequence[float], total: int) -> list[int]:
    """Scale positive reals to non-negative integers summing to ``total``.

    Uses largest-remainder rounding, then guarantees every party at least
    one unit when possible (stake snapshots never list zero balances).
    """
    if total < len(raw):
        raise ValueError("total must be at least the number of parties")
    if any(x < 0 for x in raw) or not any(raw):
        raise ValueError("raw weights must be non-negative, not all zero")
    # Exact rational scaling: float arithmetic loses integer precision at
    # chain-scale totals (Filecoin's W is 2.5e19), breaking the invariant
    # sum(weights) == total.
    from fractions import Fraction

    exact = [Fraction(x) for x in raw]
    s = sum(exact, start=Fraction(0))
    scaled = [x * total / s for x in exact]
    floors = [int(x) for x in scaled]  # Fraction.__int__ truncates = floor (>=0)
    remainder = total - sum(floors)
    by_frac = sorted(
        range(len(raw)), key=lambda i: (scaled[i] - floors[i]), reverse=True
    )
    for i in by_frac[:remainder]:
        floors[i] += 1
    # Lift zeros to one unit, taking units from the largest entries.
    zeros = [i for i, v in enumerate(floors) if v == 0]
    if zeros:
        donors = sorted(range(len(floors)), key=lambda i: -floors[i])
        d = 0
        for z in zeros:
            while floors[donors[d]] <= 1:
                d += 1
            floors[donors[d]] -= 1
            floors[z] = 1
    assert sum(floors) == total
    return floors


def pareto_weights(n: int, total: int, *, alpha: float = 1.2, seed: int = 0) -> list[int]:
    """Pareto(alpha) tail -- very heavy skew for small ``alpha``."""
    rng = random.Random(seed)
    raw = [rng.paretovariate(alpha) for _ in range(n)]
    return normalize_to_total(raw, total)


def lognormal_weights(
    n: int, total: int, *, sigma: float = 1.5, seed: int = 0
) -> list[int]:
    """Lognormal(0, sigma) -- moderate, validator-set-like skew."""
    rng = random.Random(seed)
    raw = [rng.lognormvariate(0.0, sigma) for _ in range(n)]
    return normalize_to_total(raw, total)


def zipf_weights(n: int, total: int, *, s: float = 1.0, seed: int = 0) -> list[int]:
    """Deterministic Zipf ranks ``1/k^s`` shuffled by ``seed``."""
    rng = random.Random(seed)
    raw = [1.0 / (k ** s) for k in range(1, n + 1)]
    rng.shuffle(raw)
    return normalize_to_total(raw, total)


def exponential_weights(
    n: int, total: int, *, rate: float = 1.0, seed: int = 0
) -> list[int]:
    """Exponential(rate) -- light tail, near-egalitarian."""
    rng = random.Random(seed)
    raw = [rng.expovariate(rate) for _ in range(n)]
    return normalize_to_total(raw, total)


def uniform_weights(n: int, total: int, *, seed: int = 0) -> list[int]:
    """Uniform(0, 1) raw weights."""
    rng = random.Random(seed)
    raw = [rng.random() for _ in range(n)]
    return normalize_to_total(raw, total)


def constant_weights(n: int, total: int) -> list[int]:
    """Perfectly egalitarian distribution (the nominal model in disguise)."""
    return normalize_to_total([1.0] * n, total)


def mixture_weights(
    n: int,
    total: int,
    components: Sequence[tuple[float, Callable[[random.Random], float]]],
    *,
    seed: int = 0,
) -> list[int]:
    """Mixture model: ``components`` is ``[(probability, sampler), ...]``.

    Used to model chains with distinct whale / mid / dust populations.
    """
    rng = random.Random(seed)
    probs = [p for p, _ in components]
    if abs(sum(probs) - 1.0) > 1e-9:
        raise ValueError("component probabilities must sum to 1")
    raw = []
    for _ in range(n):
        u = rng.random()
        acc = 0.0
        for p, sampler in components:
            acc += p
            if u <= acc:
                raw.append(sampler(rng))
                break
        else:
            raw.append(components[-1][1](rng))
    return normalize_to_total(raw, total)
