"""Calibrated synthetic snapshots of the paper's four blockchain datasets.

The paper evaluates on live stake snapshots (Aptos, Tezos, Filecoin,
Algorand; March 2023).  The offline reproduction regenerates each as a
deterministic synthetic distribution matching the published aggregates --
party count ``n`` and total weight ``W`` from Table 2 -- with skew models
chosen per system:

* **Aptos** (n=104): a permissioned-size validator set with delegation;
  moderate lognormal skew.  Paper: max tickets saturate near single
  digits, total tickets well below n.
* **Tezos** (n=382): bakers with a few exchanges holding large stakes;
  lognormal with heavier sigma.
* **Filecoin** (n=3700): storage-power distribution, heavy Pareto tail.
* **Algorand** (n=42920): open accounts down to dust; extreme Pareto tail
  plus a dust floor, the regime where tickets fall far below n.

The substitution preserves what the experiments measure (DESIGN.md §4):
ticket totals track (n, W, skew), not the identity of individual holders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from .synthetic import lognormal_weights, mixture_weights, pareto_weights

__all__ = ["ChainSnapshot", "aptos", "tezos", "filecoin", "algorand", "ALL_CHAINS", "load_chain"]


@dataclass(frozen=True)
class ChainSnapshot:
    """A named weight distribution with its published aggregates."""

    name: str
    weights: tuple[int, ...]
    declared_n: int
    declared_total: int

    @property
    def n(self) -> int:
        return len(self.weights)

    @property
    def total(self) -> int:
        return sum(self.weights)

    def __post_init__(self) -> None:
        if self.n != self.declared_n or self.total != self.declared_total:
            raise ValueError(
                f"{self.name}: generated aggregates do not match declaration"
            )


def aptos(seed: int = 2023) -> ChainSnapshot:
    """Aptos validators: n=104, W=8.47e8 (paper, Table 2)."""
    n, total = 104, int(8.47e8)
    return ChainSnapshot(
        name="aptos",
        weights=tuple(lognormal_weights(n, total, sigma=1.0, seed=seed)),
        declared_n=n,
        declared_total=total,
    )


def tezos(seed: int = 2023) -> ChainSnapshot:
    """Tezos bakers: n=382, W=6.76e8 (paper, Table 2)."""
    n, total = 382, int(6.76e8)
    return ChainSnapshot(
        name="tezos",
        weights=tuple(lognormal_weights(n, total, sigma=1.6, seed=seed)),
        declared_n=n,
        declared_total=total,
    )


def filecoin(seed: int = 2023) -> ChainSnapshot:
    """Filecoin storage power: n=3700, W=2.52e19 (paper, Table 2)."""
    n, total = 3700, int(2.52e19)
    return ChainSnapshot(
        name="filecoin",
        weights=tuple(pareto_weights(n, total, alpha=1.05, seed=seed)),
        declared_n=n,
        declared_total=total,
    )


def algorand(seed: int = 2023) -> ChainSnapshot:
    """Algorand accounts: n=42920, W=9.72e9 (paper, Table 2).

    Mixture: a tiny whale class, a mid class, and a dominant dust class --
    the regime where the paper observes total tickets far below n.
    """
    n, total = 42920, int(9.72e9)

    def whale(rng: random.Random) -> float:
        return rng.paretovariate(0.9) * 10_000.0

    def mid(rng: random.Random) -> float:
        return rng.lognormvariate(4.0, 1.5)

    def dust(rng: random.Random) -> float:
        return rng.lognormvariate(0.0, 1.0)

    weights = mixture_weights(
        n,
        total,
        components=[(0.002, whale), (0.098, mid), (0.9, dust)],
        seed=seed,
    )
    return ChainSnapshot(
        name="algorand",
        weights=tuple(weights),
        declared_n=n,
        declared_total=total,
    )


#: Factory registry, ordered as in the paper's Table 2.
ALL_CHAINS: dict[str, Callable[..., ChainSnapshot]] = {
    "aptos": aptos,
    "tezos": tezos,
    "filecoin": filecoin,
    "algorand": algorand,
}


def load_chain(name: str, seed: int = 2023) -> ChainSnapshot:
    """Load a calibrated snapshot by chain name."""
    try:
        factory = ALL_CHAINS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown chain {name!r}; options: {sorted(ALL_CHAINS)}")
    return factory(seed=seed)
