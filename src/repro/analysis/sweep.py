"""Parameter sweeps reproducing the two experiment kinds of Section 7.

* :func:`alpha_grid_sweep` -- the left column of Figures 1-5: vary
  ``alpha_n`` over [0.1, 1) and ``alpha_w / alpha_n`` over [0.1, 0.9],
  solve WR at every grid cell, record total/max tickets and holders.
* :func:`nfrac_sweep` -- the right column: fix (alpha_w, alpha_n) pairs,
  bootstrap-resample the chain at a range of sizes, average the metrics.

Both sweeps fan out over the deterministic
:class:`~repro.parallel.executor.ParallelExecutor`: every work unit (one
grid cell, one nfrac point) is a pure function of its arguments, with
the bootstrap randomness keyed ``f"{seed}|nfrac|{index}"`` per point
rather than threaded through one sequential stream -- so the output list
is byte-identical at any ``jobs`` value, including the ``jobs=1``
in-process path tier-1 tests use.
"""

from __future__ import annotations

import functools
import random
from fractions import Fraction
from typing import Sequence, Union

from ..core.problems import WeightRestriction
from ..core.solver import Swiper
from ..datasets.bootstrap import resample
from .metrics import ScalingPoint, SweepPoint, TicketMetrics

__all__ = [
    "alpha_grid_sweep",
    "nfrac_sweep",
    "DEFAULT_ALPHA_NS",
    "DEFAULT_RATIOS",
    "TABLE2_WR_PAIRS",
]

#: Paper grid: alpha_n in [0.1, 1.0) (1.0 itself is outside WR's domain).
DEFAULT_ALPHA_NS: tuple[Fraction, ...] = tuple(
    Fraction(k, 10) for k in range(1, 10)
)
#: Paper grid: alpha_w = ratio * alpha_n for ratio in [0.1, 0.9].
DEFAULT_RATIOS: tuple[Fraction, ...] = tuple(Fraction(k, 10) for k in range(1, 10))

#: The four (alpha_w, alpha_n) pairs highlighted in Figures 1-5.
TABLE2_WR_PAIRS: tuple[tuple[Fraction, Fraction], ...] = (
    (Fraction(1, 4), Fraction(1, 3)),
    (Fraction(1, 3), Fraction(3, 8)),
    (Fraction(1, 3), Fraction(1, 2)),
    (Fraction(2, 3), Fraction(3, 4)),
)


def _weights_of(weights) -> Sequence[int]:
    """Accept a plain weight sequence or a ``repro.api`` Committee."""
    return getattr(weights, "weights", weights)


def _solve_grid_cell(
    weights: tuple[int, ...], mode: str, cell: tuple[Fraction, Fraction]
) -> SweepPoint:
    """One grid cell as a pure, picklable work unit."""
    alpha_n, ratio = cell
    alpha_w = ratio * alpha_n
    result = Swiper(mode=mode).solve(WeightRestriction(alpha_w, alpha_n), weights)
    return SweepPoint(
        alpha_n=alpha_n,
        ratio=ratio,
        alpha_w=alpha_w,
        metrics=TicketMetrics.from_assignment(result.assignment),
    )


def alpha_grid_sweep(
    weights: Sequence[int],
    *,
    alpha_ns: Sequence[Fraction] = DEFAULT_ALPHA_NS,
    ratios: Sequence[Fraction] = DEFAULT_RATIOS,
    mode: str = "full",
    jobs: Union[int, str] = 1,
) -> list[SweepPoint]:
    """Solve WR on every (alpha_n, ratio) grid cell (left-column heatmaps).

    ``weights`` is a plain sequence or a :class:`repro.api.Committee`;
    ``jobs`` fans cells out over worker processes (``"auto"`` = one per
    core) with byte-identical output at any value.
    """
    from ..parallel.executor import ParallelExecutor

    weights = tuple(_weights_of(weights))
    cells = [
        (alpha_n, ratio)
        for alpha_n in alpha_ns
        for ratio in ratios
        if 0 < ratio * alpha_n < alpha_n < 1
    ]
    fn = functools.partial(_solve_grid_cell, weights, mode)
    return ParallelExecutor(jobs).map(fn, cells)


def _solve_nfrac_point(
    weights: tuple[int, ...],
    alpha_w: Fraction,
    alpha_n: Fraction,
    trials: int,
    seed: int,
    mode: str,
    item: tuple[int, float],
) -> ScalingPoint:
    """One scaling point as a pure, picklable work unit.

    The bootstrap stream is keyed by the point's *index*, not advanced
    sequentially across points, so each point's draws are independent of
    which worker computes it (and of every other point).
    """
    index, nfrac = item
    solver = Swiper(mode=mode)
    problem = WeightRestriction(alpha_w, alpha_n)
    rng = random.Random(f"{seed}|nfrac|{index}")
    size = max(1, round(nfrac * len(weights)))
    totals, maxes, holders = [], [], []
    for _ in range(trials):
        sample = resample(weights, size, rng)
        if not any(sample):
            sample[0] = max(weights)
        result = solver.solve(problem, sample)
        totals.append(result.assignment.total)
        maxes.append(result.assignment.max_tickets)
        holders.append(result.assignment.holders)
    return ScalingPoint(
        nfrac=nfrac,
        size=size,
        total_tickets=sum(totals) / trials,
        max_tickets=sum(maxes) / trials,
        holders=sum(holders) / trials,
    )


def nfrac_sweep(
    weights: Sequence[int],
    alpha_w: Fraction,
    alpha_n: Fraction,
    *,
    nfracs: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    trials: int = 10,
    seed: int = 0,
    mode: str = "full",
    jobs: Union[int, str] = 1,
) -> list[ScalingPoint]:
    """Bootstrap scaling series for one parameter pair (right columns).

    The paper runs 100 trials per point; ``trials`` is configurable so the
    benchmark harness can trade precision for wall-clock.  ``weights`` is
    a plain sequence or a :class:`repro.api.Committee`; ``jobs`` fans the
    nfrac points out over worker processes with byte-identical output at
    any value.
    """
    from ..parallel.executor import ParallelExecutor

    weights = tuple(_weights_of(weights))
    fn = functools.partial(
        _solve_nfrac_point, weights, alpha_w, alpha_n, trials, seed, mode
    )
    return ParallelExecutor(jobs).map(fn, list(enumerate(nfracs)))
