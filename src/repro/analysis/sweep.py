"""Parameter sweeps reproducing the two experiment kinds of Section 7.

* :func:`alpha_grid_sweep` -- the left column of Figures 1-5: vary
  ``alpha_n`` over [0.1, 1) and ``alpha_w / alpha_n`` over [0.1, 0.9],
  solve WR at every grid cell, record total/max tickets and holders.
* :func:`nfrac_sweep` -- the right column: fix (alpha_w, alpha_n) pairs,
  bootstrap-resample the chain at a range of sizes, average the metrics.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Callable, Optional, Sequence

from ..core.problems import WeightRestriction
from ..core.solver import Swiper
from ..datasets.bootstrap import resample
from .metrics import ScalingPoint, SweepPoint, TicketMetrics

__all__ = [
    "alpha_grid_sweep",
    "nfrac_sweep",
    "DEFAULT_ALPHA_NS",
    "DEFAULT_RATIOS",
    "TABLE2_WR_PAIRS",
]

#: Paper grid: alpha_n in [0.1, 1.0) (1.0 itself is outside WR's domain).
DEFAULT_ALPHA_NS: tuple[Fraction, ...] = tuple(
    Fraction(k, 10) for k in range(1, 10)
)
#: Paper grid: alpha_w = ratio * alpha_n for ratio in [0.1, 0.9].
DEFAULT_RATIOS: tuple[Fraction, ...] = tuple(Fraction(k, 10) for k in range(1, 10))

#: The four (alpha_w, alpha_n) pairs highlighted in Figures 1-5.
TABLE2_WR_PAIRS: tuple[tuple[Fraction, Fraction], ...] = (
    (Fraction(1, 4), Fraction(1, 3)),
    (Fraction(1, 3), Fraction(3, 8)),
    (Fraction(1, 3), Fraction(1, 2)),
    (Fraction(2, 3), Fraction(3, 4)),
)


def _weights_of(weights) -> Sequence[int]:
    """Accept a plain weight sequence or a ``repro.api`` Committee."""
    return getattr(weights, "weights", weights)


def alpha_grid_sweep(
    weights: Sequence[int],
    *,
    alpha_ns: Sequence[Fraction] = DEFAULT_ALPHA_NS,
    ratios: Sequence[Fraction] = DEFAULT_RATIOS,
    mode: str = "full",
) -> list[SweepPoint]:
    """Solve WR on every (alpha_n, ratio) grid cell (left-column heatmaps).

    ``weights`` is a plain sequence or a :class:`repro.api.Committee`.
    """
    weights = _weights_of(weights)
    solver = Swiper(mode=mode)
    points = []
    for alpha_n in alpha_ns:
        for ratio in ratios:
            alpha_w = ratio * alpha_n
            if not 0 < alpha_w < alpha_n < 1:
                continue
            result = solver.solve(WeightRestriction(alpha_w, alpha_n), weights)
            points.append(
                SweepPoint(
                    alpha_n=alpha_n,
                    ratio=ratio,
                    alpha_w=alpha_w,
                    metrics=TicketMetrics.from_assignment(result.assignment),
                )
            )
    return points


def nfrac_sweep(
    weights: Sequence[int],
    alpha_w: Fraction,
    alpha_n: Fraction,
    *,
    nfracs: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    trials: int = 10,
    seed: int = 0,
    mode: str = "full",
) -> list[ScalingPoint]:
    """Bootstrap scaling series for one parameter pair (right columns).

    The paper runs 100 trials per point; ``trials`` is configurable so the
    benchmark harness can trade precision for wall-clock.  ``weights`` is
    a plain sequence or a :class:`repro.api.Committee`.
    """
    weights = _weights_of(weights)
    solver = Swiper(mode=mode)
    problem = WeightRestriction(alpha_w, alpha_n)
    rng = random.Random(seed)
    out = []
    for nfrac in nfracs:
        size = max(1, round(nfrac * len(weights)))
        totals, maxes, holders = [], [], []
        for _ in range(trials):
            sample = resample(weights, size, rng)
            if not any(sample):
                sample[0] = max(weights)
            result = solver.solve(problem, sample)
            totals.append(result.assignment.total)
            maxes.append(result.assignment.max_tickets)
            holders.append(result.assignment.holders)
        out.append(
            ScalingPoint(
                nfrac=nfrac,
                size=size,
                total_tickets=sum(totals) / trials,
                max_tickets=sum(maxes) / trials,
                holders=sum(holders) / trials,
            )
        )
    return out
