"""Artifact writers: results land in ``results/`` as CSV, JSON, and text."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

__all__ = ["results_dir", "write_text", "write_csv_rows", "write_json"]


def results_dir(base: str | os.PathLike | None = None) -> Path:
    """The ``results/`` directory (created on demand).

    Defaults to ``<repo>/results`` resolved from the current working
    directory, overridable with the ``REPRO_RESULTS_DIR`` environment
    variable for CI use.
    """
    if base is not None:
        path = Path(base)
    else:
        path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_text(name: str, content: str, *, base=None) -> Path:
    """Write a text artifact and return its path."""
    path = results_dir(base) / name
    path.write_text(content)
    return path


def write_json(name: str, payload, *, base=None) -> Path:
    """Write a canonical JSON artifact (sorted keys) and return the path.

    Scenario records and benchmark summaries use this; sorted keys keep
    artifacts diffable run-to-run.
    """
    return write_text(
        name, json.dumps(payload, sort_keys=True, indent=2) + "\n", base=base
    )


def write_csv_rows(
    name: str, header: Sequence[str], rows: Sequence[Sequence], *, base=None
) -> Path:
    """Write simple CSV (no quoting needs in our data) and return the path."""
    lines = [",".join(header)]
    for row in rows:
        lines.append(",".join(str(x) for x in row))
    return write_text(name, "\n".join(lines) + "\n", base=base)
