"""Experiment harness: sweeps, table and figure regeneration, ASCII plots,
and artifact writers (paper, Section 7 and Appendix C)."""

from .ascii_plot import heatmap, line_chart
from .figures import FigureData, build_figure, figure_csv, render_figure
from .metrics import ScalingPoint, SweepPoint, TicketMetrics
from .report import results_dir, write_csv_rows, write_json, write_text
from .sweep import (
    DEFAULT_ALPHA_NS,
    DEFAULT_RATIOS,
    TABLE2_WR_PAIRS,
    alpha_grid_sweep,
    nfrac_sweep,
)
from .table1 import OverheadRow, build_table1, format_table1
from .table2 import TABLE2_COLUMNS, Table2Cell, Table2Row, build_table2, format_table2

__all__ = [
    "TicketMetrics",
    "SweepPoint",
    "ScalingPoint",
    "alpha_grid_sweep",
    "nfrac_sweep",
    "DEFAULT_ALPHA_NS",
    "DEFAULT_RATIOS",
    "TABLE2_WR_PAIRS",
    "OverheadRow",
    "build_table1",
    "format_table1",
    "Table2Cell",
    "Table2Row",
    "TABLE2_COLUMNS",
    "build_table2",
    "format_table2",
    "FigureData",
    "build_figure",
    "render_figure",
    "figure_csv",
    "heatmap",
    "line_chart",
    "results_dir",
    "write_text",
    "write_csv_rows",
    "write_json",
]
