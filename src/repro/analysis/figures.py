"""Figure regeneration: the per-chain experiment of Section 7 / Appendix C.

One paper figure = six panels for one chain:

* left column -- heatmaps of total tickets, max tickets, and holder count
  over the (alpha_n, alpha_w/alpha_n) grid;
* right column -- scaling curves of the same metrics versus the fraction
  of parties (bootstrap), for the four highlighted parameter pairs.

:func:`build_figure` computes all panels; :func:`render_figure` produces
the ASCII + CSV artifacts the benchmarks write to ``results/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..datasets.chains import ChainSnapshot
from .ascii_plot import heatmap, line_chart
from .metrics import ScalingPoint, SweepPoint
from .sweep import (
    DEFAULT_ALPHA_NS,
    DEFAULT_RATIOS,
    TABLE2_WR_PAIRS,
    alpha_grid_sweep,
    nfrac_sweep,
)

__all__ = ["FigureData", "build_figure", "render_figure", "figure_csv"]


@dataclass(frozen=True)
class FigureData:
    """All panels of one paper figure."""

    system: str
    grid_points: tuple[SweepPoint, ...]
    scaling: dict[tuple[Fraction, Fraction], tuple[ScalingPoint, ...]]
    alpha_ns: tuple[Fraction, ...]
    ratios: tuple[Fraction, ...]


def build_figure(
    snapshot: ChainSnapshot,
    *,
    alpha_ns: Sequence[Fraction] = DEFAULT_ALPHA_NS,
    ratios: Sequence[Fraction] = DEFAULT_RATIOS,
    pairs: Sequence[tuple[Fraction, Fraction]] = TABLE2_WR_PAIRS,
    nfracs: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    trials: int = 5,
    mode: str = "full",
    seed: int = 0,
    jobs=1,
) -> FigureData:
    """Run both experiment kinds on one chain snapshot.

    ``jobs`` fans the sweeps' work units out over worker processes; the
    figure is byte-identical at any value.
    """
    grid = alpha_grid_sweep(
        snapshot.weights, alpha_ns=alpha_ns, ratios=ratios, mode=mode, jobs=jobs
    )
    scaling = {}
    for alpha_w, alpha_n in pairs:
        scaling[(alpha_w, alpha_n)] = tuple(
            nfrac_sweep(
                snapshot.weights,
                alpha_w,
                alpha_n,
                nfracs=nfracs,
                trials=trials,
                seed=seed,
                mode=mode,
                jobs=jobs,
            )
        )
    return FigureData(
        system=snapshot.name,
        grid_points=tuple(grid),
        scaling=scaling,
        alpha_ns=tuple(alpha_ns),
        ratios=tuple(ratios),
    )


def _grid_matrix(fig: FigureData, attr: str) -> list[list[Optional[float]]]:
    """Arrange sweep points as ratios (rows) x alpha_ns (cols)."""
    index = {(p.alpha_n, p.ratio): p for p in fig.grid_points}
    matrix: list[list[Optional[float]]] = []
    for ratio in fig.ratios:
        row: list[Optional[float]] = []
        for alpha_n in fig.alpha_ns:
            point = index.get((alpha_n, ratio))
            row.append(
                float(getattr(point.metrics, attr)) if point is not None else None
            )
        matrix.append(row)
    return matrix


def render_figure(fig: FigureData) -> str:
    """ASCII rendition of all six panels."""
    sections = [f"=== Figure: {fig.system} ==="]
    for attr, label in (
        ("total_tickets", "Total tickets"),
        ("max_tickets", "Max tickets"),
        ("holders", "# Holders"),
    ):
        sections.append(
            heatmap(
                _grid_matrix(fig, attr),
                title=f"[{fig.system}] {label} over (ratio rows x alpha_n cols)",
                row_labels=[str(r) for r in fig.ratios],
                col_labels=[str(a) for a in fig.alpha_ns],
            )
        )
        series = {}
        for (aw, an), points in fig.scaling.items():
            series[f"({aw},{an})"] = [
                (p.nfrac, getattr(p, attr)) for p in points
            ]
        sections.append(
            line_chart(series, title=f"[{fig.system}] {label} vs n-fraction")
        )
    return "\n\n".join(sections)


def figure_csv(fig: FigureData) -> tuple[str, str]:
    """CSV dumps: ``(grid_csv, scaling_csv)``."""
    grid_lines = ["alpha_n,ratio,alpha_w,total_tickets,max_tickets,holders"]
    for p in fig.grid_points:
        grid_lines.append(
            f"{float(p.alpha_n)},{float(p.ratio)},{float(p.alpha_w)},"
            f"{p.metrics.total_tickets},{p.metrics.max_tickets},{p.metrics.holders}"
        )
    scale_lines = [
        "alpha_w,alpha_n,nfrac,size,total_tickets,max_tickets,holders"
    ]
    for (aw, an), points in fig.scaling.items():
        for p in points:
            scale_lines.append(
                f"{float(aw)},{float(an)},{p.nfrac},{p.size},"
                f"{p.total_tickets},{p.max_tickets},{p.holders}"
            )
    return "\n".join(grid_lines), "\n".join(scale_lines)
