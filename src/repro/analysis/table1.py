"""Analytic reproduction of the paper's Table 1 overhead columns.

Each row of Table 1 bounds the communication and computation overhead of
a weighted protocol relative to its nominal counterpart with the same
number of parties.  The factors derive from two primitives:

* the *ticket factor* ``T/n`` -- the theorem bound divided by ``n``
  (virtual users, signature shares, coin shares all scale with it);
* the *rate factor* ``r_nominal / r_weighted`` -- for coded protocols,
  the loss from using a smaller code rate ``beta_n`` (Section 5.1).

Communication of coded protocols scales with the rate factor;
computation (Berlekamp-Massey decoding is ``O((m / r) * M)``) scales with
rate factor x ticket factor.  Share-based protocols scale with the ticket
factor in both columns.

Known deviation recorded in EXPERIMENTS.md: for the two black-box rows
the paper prints x2.67 where our Theorem 2.1 bound gives
``ceil(2.25 n)/n``; the paper's figure appears to use a looser
intermediate bound.  Our factor is *smaller*, so every qualitative claim
(constant overhead, who wins) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..core.bounds import wq_bound_value, wr_bound_value

__all__ = ["OverheadRow", "build_table1", "format_table1"]


@dataclass(frozen=True)
class OverheadRow:
    """One protocol row: derived worst-case overhead factors."""

    protocol: str
    mechanism: str  # "WR", "WQ", "WR (BB)"
    f_w: Fraction
    f_n: Fraction
    comm_overhead: Fraction
    comp_overhead: Fraction
    paper_comm: Optional[float] = None
    paper_comp: Optional[float] = None

    def as_floats(self) -> tuple[float, float]:
        return float(self.comm_overhead), float(self.comp_overhead)


def _ticket_factor_wr(alpha_w: Fraction, alpha_n: Fraction) -> Fraction:
    """``T/n`` upper bound for WR (Theorem 2.1, without the ceil)."""
    return wr_bound_value(alpha_w, alpha_n, 1)


def _ticket_factor_wq(beta_w: Fraction, beta_n: Fraction) -> Fraction:
    """``T/n`` upper bound for WQ (Corollary 2.3, without the ceil)."""
    return wq_bound_value(beta_w, beta_n, 1)


def build_table1() -> list[OverheadRow]:
    """Derive every Table 1 row from the theorem bounds."""
    f13, f14, f12 = Fraction(1, 3), Fraction(1, 4), Fraction(1, 2)
    rows: list[OverheadRow] = []

    # --- RNG via WR(1/3, 1/2): shares scale with T/n = 4/3. ------------------
    rng_factor = _ticket_factor_wr(f13, f12)  # 4/3
    rows.append(
        OverheadRow(
            protocol="Distributed RNG / Common Coin",
            mechanism="WR",
            f_w=f13,
            f_n=f12,
            comm_overhead=rng_factor,
            comp_overhead=rng_factor,
            paper_comm=1.33,
            paper_comp=1.33,
        )
    )

    # --- Erasure-coded storage & broadcast via WQ(1/3, 1/4). -----------------
    # Nominal rate f_n = 1/3; weighted rate beta_n = 1/4.
    rate_factor = f13 / f14  # 4/3
    wq_factor = _ticket_factor_wq(f13, f14)  # 8/3
    rows.append(
        OverheadRow(
            protocol="Erasure-Coded Storage/Broadcast",
            mechanism="WQ",
            f_w=f13,
            f_n=f13,
            comm_overhead=rate_factor,
            comp_overhead=rate_factor * wq_factor,  # 32/9 ~ 3.56
            paper_comm=1.33,
            paper_comp=3.56,
        )
    )

    # --- High-threshold storage (Section 5.1, second instantiation). ---------
    f23 = Fraction(2, 3)
    rate2 = f23 / f12  # 4/3
    wq2 = _ticket_factor_wq(f23, f12)  # 4/3
    rows.append(
        OverheadRow(
            protocol="High-Threshold Erasure Storage",
            mechanism="WQ",
            f_w=f13,
            f_n=f13,
            comm_overhead=rate2,
            comp_overhead=rate2 * wq2,  # 16/9 ~ 1.78
            paper_comm=1.33,
            paper_comp=1.78,
        )
    )

    # --- Error-corrected broadcast via WQ(2/3, 5/8), code rate 1/4. ----------
    f58 = Fraction(5, 8)
    rate_ec = f13 / f14  # nominal rate 1/3 vs weighted 1/4
    wq_ec = _ticket_factor_wq(f23, f58)  # 16/3
    rows.append(
        OverheadRow(
            protocol="Error-Corrected Broadcast",
            mechanism="WQ",
            f_w=f13,
            f_n=f13,
            comm_overhead=rate_ec,
            comp_overhead=rate_ec * wq_ec,  # 64/9 ~ 7.11
            paper_comm=1.33,
            paper_comp=7.11,
        )
    )

    # --- Verifiable secret sharing via WR(1/3, 1/2). -------------------------
    rows.append(
        OverheadRow(
            protocol="Verifiable Secret Sharing",
            mechanism="WR",
            f_w=f13,
            f_n=f13,
            comm_overhead=rng_factor,
            comp_overhead=rng_factor,
            paper_comm=1.33,
            paper_comp=1.33,
        )
    )

    # --- Blunt threshold primitives via WR(1/3, 1/2). ------------------------
    rows.append(
        OverheadRow(
            protocol="Blunt Threshold Sig/Enc/FHE",
            mechanism="WR",
            f_w=f13,
            f_n=f12,
            comm_overhead=rng_factor,
            comp_overhead=rng_factor,
            paper_comm=1.33,
            paper_comp=1.33,
        )
    )

    # --- Tight threshold primitives via WR(1/2- , 1/2) + vote round. ---------
    rows.append(
        OverheadRow(
            protocol="Tight Threshold Sig/Enc/FHE (+O(n^2) small msgs)",
            mechanism="WR",
            f_w=f12,
            f_n=f12,
            comm_overhead=rng_factor,
            comp_overhead=rng_factor,
            paper_comm=1.33,
            paper_comp=1.33,
        )
    )

    # --- Black-box transformation WR(1/4, 1/3): virtual-user count. ----------
    bb_factor = _ticket_factor_wr(f14, f13)  # 9/4 (paper prints 8/3)
    rows.append(
        OverheadRow(
            protocol="Black-Box Consensus / SSLE (Linear BFT)",
            mechanism="WR (BB)",
            f_w=f14,
            f_n=f13,
            comm_overhead=bb_factor,
            comp_overhead=bb_factor,
            paper_comm=2.67,
            paper_comp=2.67,
        )
    )

    # --- Black-box erasure-coded storage: ticket factor x rate factor. -------
    rows.append(
        OverheadRow(
            protocol="Black-Box Erasure-Coded Storage",
            mechanism="WR (BB)",
            f_w=f14,
            f_n=f13,
            comm_overhead=Fraction(0),  # paper prints "-" (not the bottleneck)
            comp_overhead=bb_factor * rate_factor,  # 3 with the paper's 9/4*4/3
            paper_comm=None,
            paper_comp=3.0,
        )
    )

    return rows


def format_table1(rows: Sequence[OverheadRow]) -> str:
    """Render the derived table next to the paper's printed factors."""
    header = (
        f"{'protocol':<50} {'mech':<8} {'fw':>5} {'fn':>5} "
        f"{'comm':>7} {'paper':>7} {'comp':>7} {'paper':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        comm = f"x{float(row.comm_overhead):.2f}" if row.comm_overhead else "-"
        pcomm = f"x{row.paper_comm:.2f}" if row.paper_comm else "-"
        comp = f"x{float(row.comp_overhead):.2f}"
        pcomp = f"x{row.paper_comp:.2f}" if row.paper_comp else "-"
        lines.append(
            f"{row.protocol:<50} {row.mechanism:<8} "
            f"{str(row.f_w):>5} {str(row.f_n):>5} "
            f"{comm:>7} {pcomm:>7} {comp:>7} {pcomp:>7}"
        )
    return "\n".join(lines)
