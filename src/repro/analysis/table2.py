"""Reproduction of the paper's Table 2: tickets allocated per system.

For each chain snapshot the paper reports the number of tickets Swiper
allocates under four WR/WQ parameter settings and three WS settings, in
both full and ``--linear`` modes (linear-mode surpluses shown in
parentheses).  :func:`build_table2` regenerates the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..core.problems import (
    WeightQualification,
    WeightReductionProblem,
    WeightRestriction,
    WeightSeparation,
)
from ..core.solver import Swiper
from ..datasets.chains import ChainSnapshot

__all__ = ["Table2Cell", "Table2Row", "build_table2", "TABLE2_COLUMNS", "format_table2"]

#: Column layout of the paper's Table 2: four WR settings (each with the
#: equivalent WQ phrasing) and three WS settings.
TABLE2_COLUMNS: tuple[tuple[str, WeightReductionProblem], ...] = (
    ("WR(1/4,1/3)", WeightRestriction(Fraction(1, 4), Fraction(1, 3))),
    ("WR(1/3,3/8)", WeightRestriction(Fraction(1, 3), Fraction(3, 8))),
    ("WR(1/3,1/2)", WeightRestriction(Fraction(1, 3), Fraction(1, 2))),
    ("WR(2/3,3/4)", WeightRestriction(Fraction(2, 3), Fraction(3, 4))),
    ("WS(1/4,1/3)", WeightSeparation(Fraction(1, 4), Fraction(1, 3))),
    ("WS(1/3,1/2)", WeightSeparation(Fraction(1, 3), Fraction(1, 2))),
    ("WS(2/3,3/4)", WeightSeparation(Fraction(2, 3), Fraction(3, 4))),
)


@dataclass(frozen=True)
class Table2Cell:
    """Ticket counts for one (system, parameter) cell."""

    label: str
    full_tickets: int
    linear_tickets: int

    @property
    def linear_surplus(self) -> int:
        """Extra tickets of linear mode (paper's parenthesised ``(+k)``)."""
        return self.linear_tickets - self.full_tickets

    def render(self) -> str:
        if self.linear_surplus > 0:
            return f"{self.full_tickets} (+{self.linear_surplus})"
        return str(self.full_tickets)


@dataclass(frozen=True)
class Table2Row:
    """One system's row of Table 2."""

    system: str
    n: int
    total_weight: int
    cells: tuple[Table2Cell, ...]


def build_table2(
    snapshots: Sequence[ChainSnapshot],
    *,
    columns: Sequence[tuple[str, WeightReductionProblem]] = TABLE2_COLUMNS,
    include_linear: bool = True,
) -> list[Table2Row]:
    """Solve every (system, parameter) cell in full and linear modes."""
    full_solver = Swiper(mode="full")
    linear_solver = Swiper(mode="linear")
    rows = []
    for snap in snapshots:
        cells = []
        for label, problem in columns:
            full = full_solver.solve(problem, snap.weights)
            if include_linear:
                linear = linear_solver.solve(problem, snap.weights)
                linear_total = linear.total_tickets
            else:
                linear_total = full.total_tickets
            cells.append(
                Table2Cell(
                    label=label,
                    full_tickets=full.total_tickets,
                    linear_tickets=linear_total,
                )
            )
        rows.append(
            Table2Row(
                system=snap.name,
                n=snap.n,
                total_weight=snap.total,
                cells=tuple(cells),
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render rows in the paper's layout (markdown-ish plain text)."""
    labels = [c.label for c in rows[0].cells] if rows else []
    header = ["system", "n", "W"] + labels
    lines = [" | ".join(header)]
    lines.append(" | ".join("---" for _ in header))
    for row in rows:
        cells = [row.system, str(row.n), f"{row.total_weight:.2e}"]
        cells += [c.render() for c in row.cells]
        lines.append(" | ".join(cells))
    return "\n".join(lines)
