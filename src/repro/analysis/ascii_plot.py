"""ASCII rendering of the paper's figures (no plotting library offline).

Heatmaps use a shade ramp; line charts plot one or more series on a
character grid.  Output is deterministic and embeds in benchmark logs and
EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["heatmap", "line_chart"]

_RAMP = " .:-=+*#%@"


def heatmap(
    grid: Sequence[Sequence[float]],
    *,
    title: str = "",
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render ``grid[row][col]`` as a shaded character map.

    ``None``/NaN cells render as spaces.  Intensity is normalized over
    the finite cells.
    """
    values = [
        v
        for row in grid
        for v in row
        if v is not None and v == v  # filter None and NaN
    ]
    if not values:
        return title + "\n(empty)"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    label_w = max((len(s) for s in row_labels), default=0) if row_labels else 0
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        cells = []
        for v in row:
            if v is None or v != v:
                cells.append(" ")
            else:
                idx = int((v - lo) / span * (len(_RAMP) - 1))
                cells.append(_RAMP[idx])
        prefix = f"{row_labels[r]:>{label_w}} |" if row_labels else "|"
        lines.append(prefix + "".join(cells) + "|")
    if col_labels:
        footer = " " * (label_w + 1) + "".join(
            lbl[0] if lbl else " " for lbl in col_labels
        )
        lines.append(footer)
    lines.append(f"scale: min={lo:.3g} max={hi:.3g}")
    return "\n".join(lines)


def line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 60,
    height: int = 16,
) -> str:
    """Plot named (x, y) series on a character grid.

    Each series gets a marker cycled from ``*+o#x``; axes show the data
    ranges.  Intended for the nfrac scaling curves of Figures 1-5.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title + "\n(empty)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    xspan = xhi - xlo or 1.0
    yspan = yhi - ylo or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*+o#x@"
    legend = []
    for k, (name, pts) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            col = int((x - xlo) / xspan * (width - 1))
            row = height - 1 - int((y - ylo) / yspan * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {ylo:.3g} .. {yhi:.3g}")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(f"x: {xlo:.3g} .. {xhi:.3g}")
    lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)
