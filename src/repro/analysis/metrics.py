"""Metric records shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

__all__ = ["TicketMetrics", "SweepPoint", "ScalingPoint"]


@dataclass(frozen=True)
class TicketMetrics:
    """The three quantities tracked in the paper's experiments
    (Section 7): total tickets, max tickets per party, holder count."""

    total_tickets: int
    max_tickets: int
    holders: int

    @staticmethod
    def from_assignment(assignment) -> "TicketMetrics":
        return TicketMetrics(
            total_tickets=assignment.total,
            max_tickets=assignment.max_tickets,
            holders=assignment.holders,
        )

    @staticmethod
    def from_result(result) -> "TicketMetrics":
        """From any solve outcome carrying an ``assignment`` -- a
        ``SwiperResult`` or the facade's ``TicketAssignmentResult``."""
        return TicketMetrics.from_assignment(result.assignment)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the (alpha_n, alpha_w/alpha_n) parameter grid."""

    alpha_n: Fraction
    ratio: Fraction  # alpha_w / alpha_n
    alpha_w: Fraction
    metrics: TicketMetrics


@dataclass(frozen=True)
class ScalingPoint:
    """One point of an nfrac scaling series (bootstrap average)."""

    nfrac: float
    size: int
    total_tickets: float
    max_tickets: float
    holders: float
