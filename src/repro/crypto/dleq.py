"""Chaum-Pedersen DLEQ proofs (non-interactive via Fiat-Shamir).

A DLEQ proof convinces a verifier that two group elements share the same
discrete logarithm: ``y1 = g1^x`` and ``y2 = g2^x``.  Threshold-signature
and threshold-decryption shares attach one so that anybody can check a
share against the signer's public key share *without pairings* -- this is
what makes our BLS-style unique threshold signatures publicly verifiable
in the offline environment (DESIGN.md, substitution 2).

Two verification paths ship:

* :func:`verify_dleq` -- the per-proof **correctness oracle**: recompute
  the Sigma-protocol commitments from ``(challenge, response)`` and
  re-derive the Fiat-Shamir challenge.  Hardened against malformed
  Byzantine inputs (exponent range checks, identity-base rejection).
* :func:`verify_dleq_batch` -- N proofs sharing the base pair
  ``(g1, g2)`` checked with one small-exponent random-linear-combination
  aggregate: two Straus multi-exponentiations for the whole batch
  instead of four full-width exponentiations per proof.  An aggregate
  failure bisects down to the oracle, pinpointing the bad proofs while
  the rest still verify in aggregate.

Batching needs the commitments ``(a1, a2) = (g1^w, g2^w)`` on the wire
(the challenge-only form forces the per-proof hash round-trip), so
:class:`DleqProof` carries them; proofs without commitments fall back to
the oracle inside the batch path.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Mapping, Sequence

from .group import SchnorrGroup, batch_bisect

__all__ = [
    "DleqProof",
    "prove_dleq",
    "verify_dleq",
    "verify_dleq_batch",
    "verify_indexed_dleq_batch",
]

#: bit width of the random batching exponents; a bad proof survives one
#: aggregate with probability ~2^-64 (and the bisection re-randomizes)
_BATCH_EXP_BITS = 64


@dataclass(frozen=True)
class DleqProof:
    """A non-interactive equality-of-discrete-log proof.

    ``(challenge, response)`` is the compressed Schnorr form the oracle
    verifies; ``commit1``/``commit2`` are the Sigma commitments
    ``(g1^w, g2^w)`` that make the proof batch-verifiable.  Proofs
    produced before the batch engine (or stripped in transit) carry
    ``None`` there and verify per-proof only.
    """

    challenge: int
    response: int
    commit1: int | None = None
    commit2: int | None = None


def _challenge(
    group: SchnorrGroup, g1: int, y1: int, g2: int, y2: int, a1: int, a2: int
) -> int:
    enc = group.encode_int
    return group.hash_to_exponent(
        enc(g1), enc(y1), enc(g2), enc(y2), enc(a1), enc(a2)
    )


def prove_dleq(
    group: SchnorrGroup, x: int, g1: int, g2: int, rng
) -> tuple[int, int, DleqProof]:
    """Prove knowledge of ``x`` with ``y1 = g1^x`` and ``y2 = g2^x``.

    Returns ``(y1, y2, proof)``.  Exponentiations route through the
    engine's fixed-base tables: the generator is always precomputed and
    ``g2`` (``H(m)`` when signing, ``c1`` when decrypting) gets promoted
    as soon as shares of the same message/ciphertext recur.
    """
    y1 = group.fast_power(g1, x)
    y2 = group.fast_power(g2, x)
    w = group.random_exponent(rng)
    a1 = group.fast_power(g1, w)
    a2 = group.fast_power(g2, w)
    c = _challenge(group, g1, y1, g2, y2, a1, a2)
    r = (w - c * x) % group.order
    return y1, y2, DleqProof(challenge=c, response=r, commit1=a1, commit2=a2)


def verify_dleq(
    group: SchnorrGroup, g1: int, y1: int, g2: int, y2: int, proof: DleqProof
) -> bool:
    """Verify a :class:`DleqProof` for the statement ``log_g1 y1 == log_g2 y2``.

    Malformed Byzantine proofs are rejected up front instead of passing
    through modular reduction: the response and challenge must already
    lie in the exponent range ``[0, q)`` (otherwise ``r + q`` would be a
    distinct valid encoding of the same proof), and the bases must not
    be the identity or the order-2 element ``p - 1``.
    """
    p, q = group.p, group.order
    if not (0 <= proof.response < q and 0 <= proof.challenge < q):
        return False
    if g1 % p in (0, 1, p - 1) or g2 % p in (0, 1, p - 1):
        return False
    if not (group.is_member(y1) and group.is_member(y2)):
        return False
    a1 = group.power(g1, proof.response) * group.power(y1, proof.challenge) % p
    a2 = group.power(g2, proof.response) * group.power(y2, proof.challenge) % p
    if proof.commit1 is not None and (proof.commit1 != a1 or proof.commit2 != a2):
        # Commitments, when present, must be the recomputed values --
        # otherwise the compressed and the batch form would disagree.
        return False
    return _challenge(group, g1, y1, g2, y2, a1, a2) == proof.challenge


def verify_dleq_batch(
    group: SchnorrGroup,
    g1: int,
    g2: int,
    statements: Sequence[tuple[int, int, DleqProof]],
    *,
    rng=None,
    assume_y1_member: bool = False,
) -> list[bool]:
    """Batch-verify DLEQ proofs sharing the base pair ``(g1, g2)``.

    ``statements`` is a sequence of ``(y1, y2, proof)``.  Returns one
    bool per statement, equal to what :func:`verify_dleq` would return
    (up to the ~2^-64 soundness error of the random linear combination).

    The happy path costs two Straus multi-exponentiations for the whole
    batch: with random ``z_i, z'_i`` of :data:`_BATCH_EXP_BITS` bits,

    ``prod_i a1_i^{z_i} a2_i^{z'_i}  ==
    g1^{sum z_i r_i} g2^{sum z'_i r_i} prod_i y1_i^{z_i c_i} y2_i^{z'_i c_i}``

    holds for honest proofs by substituting ``a = g^r y^c``; a cheat in
    any position breaks the equation except with negligible probability
    over the ``z``.  Per-statement work is limited to the Fiat-Shamir
    hash and Jacobi-symbol membership checks.  When the aggregate fails,
    the batch is bisected (re-randomizing each level) and the leaves are
    settled by the per-proof oracle -- one corrupted share in a batch of
    64 costs ~log2(64) extra aggregates, and the remaining 63 still
    verify in aggregate.

    ``assume_y1_member`` skips the membership check on the ``y1`` side
    for callers whose first elements are trusted (dealer-published
    public key shares); ``rng`` defaults to a system RNG -- verifier
    randomness never needs to be reproducible.
    """
    n = len(statements)
    if n == 0:
        return []
    p, q = group.p, group.order
    results: list[bool | None] = [None] * n
    if g1 % p in (0, 1, p - 1) or g2 % p in (0, 1, p - 1):
        return [False] * n
    if rng is None:
        rng = _random.SystemRandom()

    member = group.is_member_fast
    items: list[tuple[int, int, int, int, int, int, int]] = []
    for i, (y1, y2, proof) in enumerate(statements):
        if proof.commit1 is None or proof.commit2 is None:
            results[i] = verify_dleq(group, g1, y1, g2, y2, proof)
            continue
        c, r = proof.challenge, proof.response
        if not (0 <= r < q and 0 <= c < q):
            results[i] = False
            continue
        a1, a2 = proof.commit1, proof.commit2
        if _challenge(group, g1, y1, g2, y2, a1, a2) != c:
            results[i] = False
            continue
        if not (member(y2) and member(a1) and member(a2)):
            results[i] = False
            continue
        if not assume_y1_member and not member(y1):
            results[i] = False
            continue
        items.append((i, y1 % p, y2 % p, c, r, a1 % p, a2 % p))

    def aggregate_holds(chunk: list[tuple[int, int, int, int, int, int, int]]) -> bool:
        lhs_pairs: list[tuple[int, int]] = []
        rhs_pairs: list[tuple[int, int]] = []
        r1 = r2 = 0
        for _, y1, y2, c, r, a1, a2 in chunk:
            z = rng.getrandbits(_BATCH_EXP_BITS) | 1
            zp = rng.getrandbits(_BATCH_EXP_BITS) | 1
            lhs_pairs.append((a1, z))
            lhs_pairs.append((a2, zp))
            rhs_pairs.append((y1, z * c))
            rhs_pairs.append((y2, zp * c))
            r1 += z * r
            r2 += zp * r
        lhs = group.multi_exp(lhs_pairs)
        rhs = group.fast_power(g1, r1 % q) * group.fast_power(g2, r2 % q) % p
        rhs = rhs * group.multi_exp(rhs_pairs) % p
        return lhs == rhs

    def oracle(item: tuple[int, int, int, int, int, int, int]) -> bool:
        y1, y2, proof = statements[item[0]]
        return verify_dleq(group, g1, y1, g2, y2, proof)

    for item, ok in zip(items, batch_bisect(items, aggregate_holds, oracle)):
        results[item[0]] = ok
    return [bool(v) for v in results]


def verify_indexed_dleq_batch(
    group: SchnorrGroup,
    g2: int,
    public_shares: Mapping[int, int],
    shares: Sequence,
    *,
    rng=None,
) -> list[bool]:
    """Batch-verify index-carrying shares against dealer-published keys.

    The common shape of threshold-signature and threshold-decryption
    share verification: each ``share`` has ``.index``/``.value``/``.proof``,
    proves DLEQ against the bases ``(g, g2)``, and its ``y1`` is the
    public key share ``public_shares[share.index]``.  Unknown indices
    are invalid; public key shares come from the dealer transcript, so
    their membership check is skipped.
    """
    statements: list[tuple[int, int, DleqProof]] = []
    known: list[int] = []
    results = [False] * len(shares)
    for pos, share in enumerate(shares):
        pk_i = public_shares.get(share.index)
        if pk_i is None:
            continue
        known.append(pos)
        statements.append((pk_i, share.value, share.proof))
    verdicts = verify_dleq_batch(
        group,
        group.generator,
        g2,
        statements,
        rng=rng,
        assume_y1_member=True,
    )
    for pos, ok in zip(known, verdicts):
        results[pos] = ok
    return results
