"""Chaum-Pedersen DLEQ proofs (non-interactive via Fiat-Shamir).

A DLEQ proof convinces a verifier that two group elements share the same
discrete logarithm: ``y1 = g1^x`` and ``y2 = g2^x``.  Threshold-signature
and threshold-decryption shares attach one so that anybody can check a
share against the signer's public key share *without pairings* -- this is
what makes our BLS-style unique threshold signatures publicly verifiable
in the offline environment (DESIGN.md, substitution 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .group import SchnorrGroup

__all__ = ["DleqProof", "prove_dleq", "verify_dleq"]


@dataclass(frozen=True)
class DleqProof:
    """A non-interactive equality-of-discrete-log proof ``(challenge, response)``."""

    challenge: int
    response: int


def _challenge(
    group: SchnorrGroup, g1: int, y1: int, g2: int, y2: int, a1: int, a2: int
) -> int:
    enc = group.encode_int
    return group.hash_to_exponent(
        enc(g1), enc(y1), enc(g2), enc(y2), enc(a1), enc(a2)
    )


def prove_dleq(
    group: SchnorrGroup, x: int, g1: int, g2: int, rng
) -> tuple[int, int, DleqProof]:
    """Prove knowledge of ``x`` with ``y1 = g1^x`` and ``y2 = g2^x``.

    Returns ``(y1, y2, proof)``.
    """
    y1 = group.power(g1, x)
    y2 = group.power(g2, x)
    w = group.random_exponent(rng)
    a1 = group.power(g1, w)
    a2 = group.power(g2, w)
    c = _challenge(group, g1, y1, g2, y2, a1, a2)
    r = (w - c * x) % group.order
    return y1, y2, DleqProof(challenge=c, response=r)


def verify_dleq(
    group: SchnorrGroup, g1: int, y1: int, g2: int, y2: int, proof: DleqProof
) -> bool:
    """Verify a :class:`DleqProof` for the statement ``log_g1 y1 == log_g2 y2``."""
    if not (group.is_member(y1) and group.is_member(y2)):
        return False
    a1 = group.power(g1, proof.response) * group.power(y1, proof.challenge) % group.p
    a2 = group.power(g2, proof.response) * group.power(y2, proof.challenge) % group.p
    return _challenge(group, g1, y1, g2, y2, a1, a2) == proof.challenge
