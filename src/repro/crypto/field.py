"""Prime-field arithmetic ``GF(p)``.

The secret-sharing and threshold-cryptography substrates (paper, Sections
4.1-4.3) operate over a prime field: Shamir polynomials live in
``GF(q)`` for a group order ``q``, and Lagrange interpolation happens
there too.  This module provides a small, explicit field API -- values are
plain ``int`` residues; the :class:`PrimeField` object carries the modulus
and the operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["PrimeField", "DEFAULT_FIELD"]


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit, probabilistic above."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class PrimeField:
    """The field of integers modulo a prime ``modulus``.

    Elements are canonical residues in ``[0, modulus)``; every operation
    validates nothing for speed but :meth:`element` canonicalizes inputs.
    """

    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 2 or not _is_probable_prime(self.modulus):
            raise ValueError(f"{self.modulus} is not prime")

    # -- element handling ------------------------------------------------------
    def element(self, value: int) -> int:
        """Canonical residue of ``value``."""
        return value % self.modulus

    def contains(self, value: int) -> bool:
        """Is ``value`` a canonical residue of this field?"""
        return 0 <= value < self.modulus

    # -- arithmetic ------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` on zero."""
        if a % self.modulus == 0:
            raise ZeroDivisionError("zero has no inverse")
        return pow(a, self.modulus - 2, self.modulus)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.modulus)

    def sum(self, values: Iterable[int]) -> int:
        total = 0
        for v in values:
            total += v
        return total % self.modulus

    def prod(self, values: Iterable[int]) -> int:
        total = 1
        for v in values:
            total = total * v % self.modulus
        return total

    # -- sampling ----------------------------------------------------------------
    def random_element(self, rng) -> int:
        """Uniform element from a ``random.Random``-like generator."""
        return rng.randrange(self.modulus)

    def random_nonzero(self, rng) -> int:
        """Uniform non-zero element."""
        return rng.randrange(1, self.modulus)


#: A 256-bit prime field used as the default Shamir coefficient field when
#: no group is involved (the order of the secp256k1 curve group -- any
#: well-known large prime works; nothing curve-specific is used).
DEFAULT_FIELD = PrimeField(
    0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
)
