"""Threshold ElGamal encryption (paper rows: "Blunt/Tight Threshold
Encryption", Sections 4.2-4.3).

Fully real construction, no simulation shortcuts: the key is Shamir-shared;
a ciphertext is ``(g^r, m * pk^r)``; decryption shares ``c1^{x_i}`` carry
DLEQ proofs against the public key shares, and ``k`` verified shares
Lagrange-combine into ``c1^x``, unblinding the message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .dleq import DleqProof, prove_dleq, verify_dleq, verify_indexed_dleq_batch
from .group import SchnorrGroup
from .polynomial import Polynomial, lagrange_coefficients_at

__all__ = ["Ciphertext", "DecryptionShare", "ThresholdElGamal"]


@dataclass(frozen=True)
class Ciphertext:
    """ElGamal pair ``(c1, c2) = (g^r, m * pk^r)``."""

    c1: int
    c2: int


@dataclass(frozen=True)
class DecryptionShare:
    """Party ``index``'s share ``c1^{x_index}`` plus DLEQ proof."""

    index: int
    value: int
    proof: DleqProof


class ThresholdElGamal:
    """``(n, k)``-threshold ElGamal over a Schnorr group."""

    def __init__(self, group: SchnorrGroup, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.group = group
        self.field = group.exponent_field
        self.n = n
        self.k = k
        self._secret_shares: dict[int, int] = {}
        self.public_key: int | None = None
        self.public_shares: dict[int, int] = {}

    def keygen(self, rng) -> int:
        """Deal a fresh key pair; returns the public key ``g^x``."""
        poly = Polynomial.random(self.field, self.k - 1, rng)
        self._secret_shares = {i: poly.evaluate(i) for i in range(1, self.n + 1)}
        self.public_key = self.group.exp_g(poly.evaluate(0))
        self.public_shares = {
            i: self.group.exp_g(v) for i, v in self._secret_shares.items()
        }
        return self.public_key

    def encrypt(self, message: int, rng) -> Ciphertext:
        """Encrypt a group element ``message``."""
        if self.public_key is None:
            raise RuntimeError("keygen() has not been run")
        if not self.group.is_member(message):
            raise ValueError("message must be a group element")
        r = self.group.random_exponent(rng)
        return Ciphertext(
            c1=self.group.exp_g(r),
            c2=message * self.group.power(self.public_key, r) % self.group.p,
        )

    def decryption_share(self, index: int, ct: Ciphertext, rng) -> DecryptionShare:
        """Party ``index``'s decryption share with a correctness proof."""
        x_i = self._secret_shares[index]
        _, d_i, proof = prove_dleq(self.group, x_i, self.group.generator, ct.c1, rng)
        return DecryptionShare(index=index, value=d_i, proof=proof)

    def verify_share(self, share: DecryptionShare, ct: Ciphertext) -> bool:
        """Publicly verify a decryption share."""
        pk_i = self.public_shares.get(share.index)
        if pk_i is None:
            return False
        return verify_dleq(
            self.group, self.group.generator, pk_i, ct.c1, share.value, share.proof
        )

    def verify_shares_batch(
        self, shares: Sequence[DecryptionShare], ct: Ciphertext, *, rng=None
    ) -> list[bool]:
        """Batch-verify decryption shares of one ciphertext.

        All shares of a ciphertext prove DLEQ against ``(g, c1)``, so
        they aggregate into one random-linear-combination check; agrees
        with :meth:`verify_share` per share.
        """
        return verify_indexed_dleq_batch(
            self.group, ct.c1, self.public_shares, shares, rng=rng
        )

    def combine(
        self,
        shares: Sequence[DecryptionShare],
        ct: Ciphertext,
        *,
        verify: bool = True,
    ) -> int:
        """Recover the plaintext from ``k`` decryption shares.

        Verification is batched; the Lagrange-in-the-exponent unblinding
        runs as a single Straus multi-exponentiation.
        """
        unique = list({s.index: s for s in shares}.values())
        if len(unique) < self.k:
            raise ValueError(f"need {self.k} distinct shares, got {len(unique)}")
        chosen = unique[: self.k]
        if verify:
            for share, ok in zip(chosen, self.verify_shares_batch(chosen, ct)):
                if not ok:
                    raise ValueError(f"invalid decryption share from {share.index}")
        lambdas = lagrange_coefficients_at(self.field, [s.index for s in chosen], 0)
        blind = self.group.multi_exp(
            [(share.value, lam) for lam, share in zip(lambdas, chosen)]
        )
        return ct.c2 * self.group.inv(blind) % self.group.p
