"""Common coin / randomness beacon from unique threshold signatures.

The paper's motivating application (Section 4.1): a trusted dealer shares
a signing key; for each epoch the unique signature on the epoch number is
hashed into an unpredictable, common random value.  Weighted operation
assigns each party one *virtual signer* per ticket of a
``WR(f_w, alpha_n)`` solution with ``alpha_n <= 1/2``: honest parties
always hold enough shares to open the coin, corrupt parties never do.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.types import TicketAssignment
from .group import SchnorrGroup
from .threshold_sig import SignatureShare, ThresholdSignatureScheme

__all__ = ["CommonCoin", "WeightedCoin"]


class CommonCoin:
    """Nominal common coin over ``n`` signers with threshold ``k``."""

    def __init__(self, group: SchnorrGroup, n: int, k: int, rng) -> None:
        self.scheme = ThresholdSignatureScheme(group, n, k)
        self.scheme.keygen(rng)
        self.n = n
        self.k = k

    @staticmethod
    def _epoch_message(epoch: int) -> bytes:
        return b"coin-epoch|" + epoch.to_bytes(8, "big")

    def share(self, signer: int, epoch: int, rng) -> SignatureShare:
        """Signer's coin share for ``epoch`` (signers are 1-based)."""
        return self.scheme.sign_share(signer, self._epoch_message(epoch), rng)

    def verify_share(self, share: SignatureShare, epoch: int) -> bool:
        """Publicly verify a coin share (per-share oracle)."""
        return self.scheme.verify_share(share, self._epoch_message(epoch))

    def verify_shares(
        self, shares: Sequence[SignatureShare], epoch: int, *, rng=None
    ) -> list[bool]:
        """Batch-verify an epoch's coin shares (one aggregate check).

        A weighted coin receives one share per *ticket*, so this is the
        hot path: thousands of shares collapse into two
        multi-exponentiations instead of thousands of scalar ``pow``
        chains.  Agrees with :meth:`verify_share` per share.
        """
        return self.scheme.verify_shares_batch(
            shares, self._epoch_message(epoch), rng=rng
        )

    def open(
        self, shares: Sequence[SignatureShare], epoch: int, *, verify: bool = True
    ) -> int:
        """Combine ``k`` shares into the epoch's random value (a large int).

        Uniqueness of the threshold signature makes the value independent
        of which shares were combined -- every honest opener agrees.
        Callers that already batch-verified at the quorum point pass
        ``verify=False`` to skip the (batched) re-verification.
        """
        sigma = self.scheme.combine(shares, self._epoch_message(epoch), verify=verify)
        digest = hashlib.sha256(
            b"coin-value|" + sigma.to_bytes((sigma.bit_length() + 7) // 8 or 1, "big")
        ).digest()
        return int.from_bytes(digest, "big")

    def toss(self, shares: Sequence[SignatureShare], epoch: int) -> int:
        """A single common coin bit for ``epoch``."""
        return self.open(shares, epoch) & 1


class WeightedCoin:
    """Weighted coin: party ``i`` controls ``t_i`` virtual signers.

    Built from a Weight Restriction solution (paper, Theorem 4.2): with
    ``alpha_w = f_w`` and ``alpha_n <= 1/2`` the resulting blunt access
    structure gives honest liveness and adversary exclusion.
    """

    def __init__(
        self,
        group: SchnorrGroup,
        assignment: TicketAssignment | Sequence[int],
        alpha_n,
        rng,
    ) -> None:
        from fractions import Fraction
        import math

        tickets = list(assignment)
        total = sum(tickets)
        if total == 0:
            raise ValueError("assignment has no tickets")
        alpha = Fraction(alpha_n)
        self.threshold = math.ceil(alpha * total)
        self.total_shares = total
        self.coin = CommonCoin(group, n=total, k=self.threshold, rng=rng)
        # Virtual signer indices (1-based) owned by each party.
        self.virtual_of_party: list[tuple[int, ...]] = []
        cursor = 1
        for t in tickets:
            self.virtual_of_party.append(tuple(range(cursor, cursor + t)))
            cursor += t

    def shares_of_party(self, party: int, epoch: int, rng) -> list[SignatureShare]:
        """All coin shares party ``party`` contributes (one per ticket)."""
        return [
            self.coin.share(v, epoch, rng) for v in self.virtual_of_party[party]
        ]

    def verify_shares(
        self, shares: Sequence[SignatureShare], epoch: int, *, rng=None
    ) -> list[bool]:
        """Batch-verify coin shares (see :meth:`CommonCoin.verify_shares`)."""
        return self.coin.verify_shares(shares, epoch, rng=rng)

    def open_with_parties(
        self, parties: Sequence[int], epoch: int, rng
    ) -> int:
        """Open the epoch coin using all shares of a coalition."""
        shares: list[SignatureShare] = []
        for p in parties:
            shares.extend(self.shares_of_party(p, epoch, rng))
        return self.coin.open(shares, epoch)

    def coalition_can_open(self, parties: Sequence[int]) -> bool:
        """Does the coalition control at least ``threshold`` virtual signers?"""
        held = sum(len(self.virtual_of_party[p]) for p in parties)
        return held >= self.threshold
