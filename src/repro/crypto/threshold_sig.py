"""Unique threshold signatures (BLS-style, pairing-free verification).

Structure (paper, Sections 4.1-4.2 and 6.2-6.3): a dealer Shamir-shares a
key ``x``; signer ``i`` publishes ``sigma_i = H(m)^{x_i}`` and any ``k``
shares combine via Lagrange interpolation *in the exponent* into the
unique signature ``sigma = H(m)^x``.  Uniqueness (the combined value is
independent of which shares were used) is precisely the property
randomness beacons need (Section 4.1).

Pairing substitution: instead of the BLS pairing check each share carries
a Chaum-Pedersen DLEQ proof against the signer's public key share
``g^{x_i}``, and the combined signature verifies against the *expected*
value interpolated from verified shares (or, equivalently, against
``H(m)^x`` recomputed from the public commitment by anyone holding ``k``
verified shares).  All quantities the paper measures -- shares generated,
shares verified, combination work proportional to ticket counts -- are
faithfully exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Sequence

from .dleq import DleqProof, prove_dleq, verify_dleq, verify_indexed_dleq_batch
from .group import SchnorrGroup
from .polynomial import Polynomial, lagrange_coefficients_at

__all__ = ["SignatureShare", "ThresholdSignatureScheme", "ThresholdKeys"]


@dataclass(frozen=True)
class SignatureShare:
    """Signer ``index``'s share ``H(m)^{x_index}`` plus its DLEQ proof."""

    index: int
    value: int
    proof: DleqProof


@dataclass(frozen=True)
class ThresholdKeys:
    """Public output of key generation.

    ``public_key = g^x``; ``public_shares[i] = g^{x_i}`` for share index
    ``i`` (1-based, exposed as a dict).
    """

    public_key: int
    public_shares: Mapping[int, int]


class ThresholdSignatureScheme:
    """``(n, k)`` unique threshold signatures over a Schnorr group.

    The dealer-based keygen models the trusted setup the paper assumes for
    its randomness beacons; a DKG could replace it without changing any
    interface.
    """

    def __init__(self, group: SchnorrGroup, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.group = group
        self.field = group.exponent_field
        self.n = n
        self.k = k
        self._secret_shares: dict[int, int] = {}
        self._keys: ThresholdKeys | None = None
        # Per-message LRU over H(b"thsig|" + message): signing, verifying,
        # and combining the T shares of one epoch hash the message once,
        # not once per share (the paper's work scales with ticket count).
        # Closes over the (immutable) group rather than self, so the
        # cache keeps no reference cycle through the scheme.
        self._message_point = lru_cache(maxsize=256)(
            lambda message, _group=group: _group.hash_to_group(b"thsig|" + message)
        )

    # -- setup -------------------------------------------------------------------
    def keygen(self, rng) -> ThresholdKeys:
        """Deal a fresh key; returns the public material."""
        poly = Polynomial.random(self.field, self.k - 1, rng)
        self._secret_shares = {i: poly.evaluate(i) for i in range(1, self.n + 1)}
        self._keys = ThresholdKeys(
            public_key=self.group.exp_g(poly.evaluate(0)),
            public_shares={
                i: self.group.exp_g(v) for i, v in self._secret_shares.items()
            },
        )
        return self._keys

    @property
    def keys(self) -> ThresholdKeys:
        if self._keys is None:
            raise RuntimeError("keygen() has not been run")
        return self._keys

    def secret_share(self, index: int) -> int:
        """The secret share of signer ``index`` (simulation accessor)."""
        return self._secret_shares[index]

    # -- signing ------------------------------------------------------------------
    def hash_message(self, message: bytes) -> int:
        """``H(m)``: the group element being raised to the secret key
        (LRU-cached per message via ``_message_point``)."""
        return self._message_point(message)

    def sign_share(self, index: int, message: bytes, rng) -> SignatureShare:
        """Produce signer ``index``'s signature share with a DLEQ proof."""
        x_i = self._secret_shares[index]
        h = self.hash_message(message)
        _, sigma_i, proof = prove_dleq(self.group, x_i, self.group.generator, h, rng)
        return SignatureShare(index=index, value=sigma_i, proof=proof)

    def verify_share(self, share: SignatureShare, message: bytes) -> bool:
        """Check a share against the signer's public key share."""
        h = self.hash_message(message)
        pk_i = self.keys.public_shares.get(share.index)
        if pk_i is None:
            return False
        return verify_dleq(
            self.group, self.group.generator, pk_i, h, share.value, share.proof
        )

    def verify_shares_batch(
        self, shares: Sequence[SignatureShare], message: bytes, *, rng=None
    ) -> list[bool]:
        """Batch-verify shares of one message; one bool per share.

        All shares of a message prove DLEQ against the same base pair
        ``(g, H(m))``, so the whole batch collapses into one
        random-linear-combination aggregate (two multi-exponentiations);
        see :func:`~repro.crypto.dleq.verify_dleq_batch`.  Agrees with
        :meth:`verify_share` on every input.
        """
        return verify_indexed_dleq_batch(
            self.group,
            self.hash_message(message),
            self.keys.public_shares,
            shares,
            rng=rng,
        )

    def combine(
        self, shares: Sequence[SignatureShare], message: bytes, *, verify: bool = True
    ) -> int:
        """Lagrange-combine ``k`` shares into the unique signature
        ``H(m)^x``.  With ``verify=True`` (default) invalid shares raise
        (located by the batch verifier).  The combine itself is
        Lagrange-in-the-exponent as a single Straus product over the
        LRU-cached coefficients."""
        unique = list({s.index: s for s in shares}.values())
        if len(unique) < self.k:
            raise ValueError(f"need {self.k} distinct shares, got {len(unique)}")
        chosen = unique[: self.k]
        if verify:
            for share, ok in zip(chosen, self.verify_shares_batch(chosen, message)):
                if not ok:
                    raise ValueError(f"invalid signature share from {share.index}")
        lambdas = lagrange_coefficients_at(
            self.field, [s.index for s in chosen], 0
        )
        return self.group.multi_exp(
            [(share.value, lam) for lam, share in zip(lambdas, chosen)]
        )

    def verify(self, signature: int, message: bytes) -> bool:
        """Verify a combined signature.

        Pairing substitute: recompute ``H(m)^x`` from the dealer transcript
        (the scheme object holds the shares in simulation).  Uniqueness
        makes this well-defined; see the module docstring.
        """
        xs = sorted(self._secret_shares)[: self.k]
        lambdas = lagrange_coefficients_at(self.field, xs, 0)
        x = self.field.sum(
            self.field.mul(lam, self._secret_shares[i]) for lam, i in zip(lambdas, xs)
        )
        expected = self.group.power(self.hash_message(message), x)
        return signature == expected
