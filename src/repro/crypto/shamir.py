"""Shamir secret sharing with first-class *weighted* (virtual-user) support.

Plain ``(n, k)``-threshold sharing follows [Shamir 1979]: the dealer draws
a random degree-``k-1`` polynomial with the secret as constant term and
hands out evaluations.  The paper's weighted construction (Section 4.1)
gives party ``i`` a number ``t_i`` of shares -- one per ticket from a
Weight Restriction solution -- so that any coalition holding
``ceil(alpha_n * T)`` shares can reconstruct and no coalition below the
weight threshold can.  :func:`deal_weighted` implements exactly that
"virtual users" layout with a deterministic ticket-to-share-index map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.types import TicketAssignment
from .field import DEFAULT_FIELD, PrimeField
from .polynomial import Polynomial, interpolate_at

__all__ = ["Share", "SecretSharing", "WeightedSharing", "deal_weighted"]


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation ``value = f(index)``, ``index >= 1``."""

    index: int
    value: int


class SecretSharing:
    """``(n, k)``-threshold Shamir scheme over ``field``.

    Any ``k`` distinct shares reconstruct the secret; fewer reveal nothing
    (information-theoretically).
    """

    def __init__(self, n: int, k: int, field: PrimeField = DEFAULT_FIELD) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        if n >= field.modulus:
            raise ValueError("field too small for the share count")
        self.n = n
        self.k = k
        self.field = field

    def deal(self, secret: int, rng) -> list[Share]:
        """Split ``secret`` into ``n`` shares (indices ``1..n``)."""
        poly = Polynomial.random(self.field, self.k - 1, rng, constant=secret)
        return [Share(index=i, value=poly.evaluate(i)) for i in range(1, self.n + 1)]

    def reconstruct(self, shares: Sequence[Share]) -> int:
        """Recover the secret from at least ``k`` distinct shares."""
        if len({s.index for s in shares}) < self.k:
            raise ValueError(f"need {self.k} distinct shares, got {len(shares)}")
        chosen = list({s.index: s for s in shares}.values())[: self.k]
        return interpolate_at(self.field, [(s.index, s.value) for s in chosen])


@dataclass(frozen=True)
class WeightedSharing:
    """Output of :func:`deal_weighted`.

    Attributes
    ----------
    shares_by_party:
        ``party -> list of shares`` (party ``i`` receives ``t_i`` shares;
        parties with zero tickets receive none).
    threshold:
        ``ceil(alpha_n * T)``: the number of shares needed to reconstruct.
    total_shares:
        ``T``: total shares dealt.
    field:
        The coefficient field used.
    """

    shares_by_party: tuple[tuple[Share, ...], ...]
    threshold: int
    total_shares: int
    field: PrimeField

    def shares_of(self, parties: Sequence[int]) -> list[Share]:
        """All shares held by a coalition of parties."""
        out: list[Share] = []
        for p in parties:
            out.extend(self.shares_by_party[p])
        return out

    def can_reconstruct(self, parties: Sequence[int]) -> bool:
        """Does the coalition hold at least ``threshold`` shares?"""
        return len(self.shares_of(parties)) >= self.threshold

    def reconstruct(self, parties: Sequence[int]) -> int:
        """Reconstruct the secret from a coalition's shares."""
        shares = self.shares_of(parties)
        if len(shares) < self.threshold:
            raise ValueError(
                f"coalition holds {len(shares)} shares, needs {self.threshold}"
            )
        return interpolate_at(
            self.field, [(s.index, s.value) for s in shares[: self.threshold]]
        )


def deal_weighted(
    secret: int,
    assignment: TicketAssignment | Sequence[int],
    alpha_n,
    rng,
    field: PrimeField = DEFAULT_FIELD,
) -> WeightedSharing:
    """Weighted Shamir sharing via virtual users (paper, Section 4.1).

    Party ``i`` receives ``t_i`` consecutive share indices; reconstruction
    needs ``ceil(alpha_n * T)`` shares.  With tickets from
    ``WR(alpha_w=f_w, alpha_n)`` and ``alpha_n <= 1/2``, honest parties
    (holding more than ``(1 - alpha_n) T >= ceil(alpha_n T)`` tickets) can
    always reconstruct while corrupt coalitions never can.
    """
    tickets = list(assignment)
    total = sum(tickets)
    if total == 0:
        raise ValueError("assignment has no tickets")
    from fractions import Fraction

    alpha = Fraction(alpha_n)
    if not 0 < alpha < 1:
        raise ValueError("alpha_n must be in (0, 1)")
    threshold = math.ceil(alpha * total)
    scheme = SecretSharing(n=total, k=threshold, field=field)
    flat = scheme.deal(secret, rng)
    shares_by_party: list[tuple[Share, ...]] = []
    cursor = 0
    for t in tickets:
        shares_by_party.append(tuple(flat[cursor : cursor + t]))
        cursor += t
    return WeightedSharing(
        shares_by_party=tuple(shares_by_party),
        threshold=threshold,
        total_shares=total,
        field=field,
    )
