"""A Schnorr group: the prime-order subgroup of ``Z_p^*`` for a safe prime.

Threshold signatures and threshold ElGamal (paper, Sections 4.1-4.3 and 6)
need a cyclic group of prime order ``q`` with hard discrete log.  For a
safe prime ``p = 2q + 1`` the quadratic residues form such a subgroup; any
square generates it.  Hash-to-group squares a hash output, landing in the
subgroup at an unknown discrete log -- exactly what BLS-style unique
signatures require.

Two groups ship by default: the RFC 3526 2048-bit MODP group (realistic
parameter sizes) and a small 256-bit group for fast tests and simulations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .field import PrimeField

__all__ = ["SchnorrGroup", "RFC3526_GROUP_2048", "TEST_GROUP_256"]


@dataclass(frozen=True)
class SchnorrGroup:
    """Prime-order subgroup of ``Z_p^*`` with ``p = 2q + 1``.

    Attributes
    ----------
    p:
        The safe prime modulus.
    generator:
        A generator of the order-``q`` subgroup of quadratic residues.
    """

    p: int
    generator: int

    def __post_init__(self) -> None:
        if self.p % 2 == 0 or self.p < 7:
            raise ValueError("modulus must be an odd prime >= 7")
        q = (self.p - 1) // 2
        if pow(self.generator, q, self.p) != 1 or self.generator in (0, 1):
            raise ValueError("generator must generate the order-q subgroup")

    @property
    def order(self) -> int:
        """``q``: the prime order of the subgroup."""
        return (self.p - 1) // 2

    @property
    def exponent_field(self) -> PrimeField:
        """``GF(q)``: the field Shamir polynomials over this group use."""
        return PrimeField(self.order)

    # -- group operations --------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def power(self, base: int, exponent: int) -> int:
        return pow(base, exponent % self.order, self.p)

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def exp_g(self, exponent: int) -> int:
        """``g^exponent`` for the fixed generator."""
        return self.power(self.generator, exponent)

    def is_member(self, a: int) -> bool:
        """Subgroup membership: ``a^q == 1`` and ``0 < a < p``."""
        return 0 < a < self.p and pow(a, self.order, self.p) == 1

    # -- hashing -----------------------------------------------------------------
    def hash_to_group(self, message: bytes) -> int:
        """Map ``message`` to a subgroup element of unknown discrete log.

        Squares ``sha256``-derived material mod ``p``; squares are exactly
        the order-``q`` subgroup for a safe prime.
        """
        counter = 0
        while True:
            digest = hashlib.sha256(message + counter.to_bytes(4, "big")).digest()
            candidate = int.from_bytes(
                hashlib.sha512(digest).digest() * ((self.p.bit_length() // 512) + 1),
                "big",
            ) % self.p
            if candidate not in (0, 1, self.p - 1):
                return candidate * candidate % self.p
            counter += 1

    def hash_to_exponent(self, *parts: bytes) -> int:
        """Fiat-Shamir challenge: hash transcript parts into ``GF(q)``."""
        h = hashlib.sha256()
        for part in parts:
            h.update(len(part).to_bytes(8, "big"))
            h.update(part)
        return int.from_bytes(h.digest(), "big") % self.order

    def random_exponent(self, rng) -> int:
        """Uniform exponent in ``[0, q)``."""
        return rng.randrange(self.order)

    def encode_int(self, a: int) -> bytes:
        """Fixed-width big-endian encoding for transcripts."""
        width = (self.p.bit_length() + 7) // 8
        return a.to_bytes(width, "big")


#: RFC 3526, group 14 (2048-bit MODP).  p is a safe prime; 2 generates the
#: subgroup of quadratic residues... in fact 2 has order 2q in this group,
#: so we use 4 = 2^2, a square and hence an order-q generator.
_RFC3526_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)

RFC3526_GROUP_2048 = SchnorrGroup(p=_RFC3526_P, generator=4)

#: A 256-bit safe prime group for tests and simulation speed:
#: p = 2q + 1 with both p and q prime (verified at import via PrimeField
#: in exponent_field and the SchnorrGroup invariant).
_TEST_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF72EF
TEST_GROUP_256 = SchnorrGroup(p=_TEST_P, generator=4)
