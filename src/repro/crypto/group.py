"""A Schnorr group: the prime-order subgroup of ``Z_p^*`` for a safe prime.

Threshold signatures and threshold ElGamal (paper, Sections 4.1-4.3 and 6)
need a cyclic group of prime order ``q`` with hard discrete log.  For a
safe prime ``p = 2q + 1`` the quadratic residues form such a subgroup; any
square generates it.  Hash-to-group squares a hash output, landing in the
subgroup at an unknown discrete log -- exactly what BLS-style unique
signatures require.

Two groups ship by default: the RFC 3526 2048-bit MODP group (realistic
parameter sizes) and a small 256-bit group for fast tests and simulations.

Each group carries a lazily-built :class:`GroupEngine` -- the batched
exponentiation substrate the verification-heavy call sites run on:

* **fixed-base windowed precomputation** for the generator and for bases
  that keep recurring (public-key shares, ``H(m)``, ciphertext ``c1``);
  a table of ``base^(d << w*j)`` entries turns a full-width
  exponentiation into ~``bits/w`` multiplications with no squarings;
* **simultaneous multi-exponentiation** (Straus interleaving) for
  products ``prod_i b_i^{e_i}`` -- one shared squaring chain for the
  whole product, which is what batch DLEQ verification and
  Lagrange-in-the-exponent share combines reduce to;
* a **per-message LRU** for :meth:`SchnorrGroup.hash_to_group`, so
  signing/verifying/combining the shares of one epoch hashes once;
* **Jacobi-symbol membership** (:meth:`SchnorrGroup.is_member_fast`):
  for a safe prime the order-``q`` subgroup is exactly the quadratic
  residues, so Euler's criterion collapses from one full
  exponentiation to a GCD-shaped symbol computation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from .field import PrimeField

__all__ = [
    "SchnorrGroup",
    "GroupEngine",
    "batch_bisect",
    "RFC3526_GROUP_2048",
    "TEST_GROUP_256",
]


def _jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0`` (binary algorithm)."""
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def _straus_window(max_bits: int) -> int:
    """Window width minimizing per-base work ``2^w - 2 + ceil(bits/w)``."""
    best_w, best_cost = 1, None
    for w in range(1, 9):
        cost = (1 << w) - 2 + -(-max_bits // w)
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


class _FixedBaseTable:
    """Windowed precomputation ``table[j][d] = base^(d << (w*j)) mod p``.

    One exponentiation then costs only the non-zero digits of the
    exponent -- ``~bits/w`` multiplications, zero squarings.
    """

    __slots__ = ("p", "window", "rows")

    def __init__(self, base: int, p: int, exponent_bits: int, window: int) -> None:
        self.p = p
        self.window = window
        size = 1 << window
        rows = []
        b = base % p
        for _ in range(-(-exponent_bits // window)):
            row = [1] * size
            row[1] = b
            for d in range(2, size):
                row[d] = row[d - 1] * b % p
            rows.append(row)
            b = row[size - 1] * b % p  # base^(2^window): next digit position
        self.rows = rows

    def power(self, exponent: int) -> int:
        p = self.p
        mask = (1 << self.window) - 1
        acc = 1
        j = 0
        rows = self.rows
        while exponent:
            d = exponent & mask
            if d:
                acc = acc * rows[j][d] % p
            exponent >>= self.window
            j += 1
        return acc


#: bases are promoted to a fixed-base table after this many scalar uses
_PROMOTE_AFTER = 4
#: at most this many promoted tables are kept per engine (LRU eviction)
_MAX_TABLES = 6


class GroupEngine:
    """Batched exponentiation engine for one Schnorr group.

    Holds the generator's fixed-base table, a small LRU of tables for
    recurring bases (promoted after :data:`_PROMOTE_AFTER` uses -- a
    table only pays for itself when the base comes back), and the Straus
    simultaneous multi-exponentiation loop.  Obtained via
    :meth:`SchnorrGroup.engine`; one engine is shared by all equal group
    instances.
    """

    __slots__ = ("p", "order", "generator", "_gen_table", "_tables", "_hits")

    def __init__(self, p: int, order: int, generator: int) -> None:
        self.p = p
        self.order = order
        self.generator = generator % p
        self._gen_table: _FixedBaseTable | None = None
        self._tables: dict[int, _FixedBaseTable] = {}
        self._hits: dict[int, int] = {}

    # -- fixed-base paths --------------------------------------------------------
    def generator_power(self, exponent: int) -> int:
        """``g^exponent`` through the generator's precomputed table."""
        if self._gen_table is None:
            # Wider window than promoted bases: the generator is hot in
            # every keygen, proof, and Feldman check, so the larger
            # build cost amortizes immediately.
            self._gen_table = _FixedBaseTable(
                self.generator, self.p, self.order.bit_length(), window=6
            )
        return self._gen_table.power(exponent % self.order)

    def power(self, base: int, exponent: int) -> int:
        """``base^exponent``, promoting recurring bases to tables.

        First few uses of an unknown base go through native ``pow``;
        once a base has recurred :data:`_PROMOTE_AFTER` times a windowed
        table is built and reused (public-key shares, ``H(m)`` for the
        epoch being signed, a ciphertext's ``c1`` during decryption).
        """
        b = base % self.p
        e = exponent % self.order
        if b == self.generator:
            return self.generator_power(e)
        table = self._tables.get(b)
        if table is None:
            hits = self._hits.get(b, 0) + 1
            if hits < _PROMOTE_AFTER:
                if len(self._hits) > 4096:  # bound the bookkeeping
                    self._hits.clear()
                self._hits[b] = hits
                return pow(b, e, self.p)
            self._hits.pop(b, None)
            if len(self._tables) >= _MAX_TABLES:
                self._tables.pop(next(iter(self._tables)))
            table = _FixedBaseTable(b, self.p, self.order.bit_length(), window=5)
            self._tables[b] = table
        else:
            # Refresh LRU position (dicts preserve insertion order).
            self._tables[b] = self._tables.pop(b)
        return table.power(e)

    # -- simultaneous multi-exponentiation ---------------------------------------
    def multi_exp(self, pairs: Iterable[tuple[int, int]]) -> int:
        """``prod_i base_i^{exp_i} mod p`` via Straus interleaving.

        All bases share one squaring chain: the cost is ``max_bits``
        squarings plus ``~max_bits/w`` multiplications *per base*,
        instead of ``max_bits`` squarings per base for independent
        ``pow`` calls.  Exponents are reduced mod ``q`` (bases must lie
        in the order-``q`` subgroup, as everywhere in this module).
        """
        p, q = self.p, self.order
        items: list[tuple[int, int]] = []
        for base, exp in pairs:
            e = exp % q
            b = base % p
            if e == 0 or b == 1:
                continue
            if b == 0:
                return 0
            items.append((b, e))
        if not items:
            return 1 % p
        max_bits = max(e.bit_length() for _, e in items)
        w = _straus_window(max_bits)
        size = 1 << w
        mask = size - 1
        tables: list[list[int]] = []
        for b, _ in items:
            row = [1] * size
            row[1] = b
            for d in range(2, size):
                row[d] = row[d - 1] * b % p
            tables.append(row)
        acc = 1
        for j in range(-(-max_bits // w) - 1, -1, -1):
            if acc != 1:
                for _ in range(w):
                    acc = acc * acc % p
            shift = j * w
            for (b, e), row in zip(items, tables):
                d = (e >> shift) & mask
                if d:
                    acc = acc * row[d] % p
        return acc


#: engines shared by value-equal group instances, keyed by (p, generator)
_ENGINES: dict[tuple[int, int], GroupEngine] = {}


def batch_bisect(items, aggregate_holds, oracle, *, leaf_size: int = 2) -> list[bool]:
    """Per-item verdicts via aggregate-accept / bisect-on-failure.

    The shared skeleton of every random-linear-combination batch
    verifier: a chunk whose ``aggregate_holds`` check passes is accepted
    wholesale; a failing chunk is split in half (the caller's aggregate
    draws fresh randomness each call, re-randomizing every level); chunks
    of at most ``leaf_size`` are settled by the per-item ``oracle``.
    Returns one bool per item, positionally.
    """
    results: dict[int, bool] = {}

    def resolve(chunk: list) -> None:
        if len(chunk) <= leaf_size:
            for pos, item in chunk:
                results[pos] = oracle(item)
            return
        if aggregate_holds([item for _, item in chunk]):
            for pos, _ in chunk:
                results[pos] = True
            return
        mid = len(chunk) // 2
        resolve(chunk[:mid])
        resolve(chunk[mid:])

    if items:
        resolve(list(enumerate(items)))
    return [results[i] for i in range(len(items))]


@lru_cache(maxsize=4096)
def _hash_to_group_cached(p: int, message: bytes) -> int:
    counter = 0
    while True:
        digest = hashlib.sha256(message + counter.to_bytes(4, "big")).digest()
        candidate = int.from_bytes(
            hashlib.sha512(digest).digest() * ((p.bit_length() // 512) + 1),
            "big",
        ) % p
        if candidate not in (0, 1, p - 1):
            return candidate * candidate % p
        counter += 1


@dataclass(frozen=True)
class SchnorrGroup:
    """Prime-order subgroup of ``Z_p^*`` with ``p = 2q + 1``.

    Attributes
    ----------
    p:
        The safe prime modulus.
    generator:
        A generator of the order-``q`` subgroup of quadratic residues.
    """

    p: int
    generator: int

    def __post_init__(self) -> None:
        if self.p % 2 == 0 or self.p < 7:
            raise ValueError("modulus must be an odd prime >= 7")
        q = (self.p - 1) // 2
        if pow(self.generator, q, self.p) != 1 or self.generator in (0, 1):
            raise ValueError("generator must generate the order-q subgroup")

    @property
    def order(self) -> int:
        """``q``: the prime order of the subgroup."""
        return (self.p - 1) // 2

    @property
    def exponent_field(self) -> PrimeField:
        """``GF(q)``: the field Shamir polynomials over this group use."""
        return PrimeField(self.order)

    # -- engine ------------------------------------------------------------------
    @property
    def engine(self) -> GroupEngine:
        """The batched exponentiation engine (shared across equal groups)."""
        key = (self.p, self.generator)
        engine = _ENGINES.get(key)
        if engine is None:
            engine = _ENGINES[key] = GroupEngine(self.p, self.order, self.generator)
        return engine

    # -- group operations --------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def power(self, base: int, exponent: int) -> int:
        return pow(base, exponent % self.order, self.p)

    def fast_power(self, base: int, exponent: int) -> int:
        """``base^exponent`` through the engine's fixed-base tables.

        Identical values to :meth:`power` (property-tested); recurring
        bases get promoted to windowed precomputation.
        """
        return self.engine.power(base, exponent)

    def multi_exp(self, pairs: Sequence[tuple[int, int]]) -> int:
        """``prod_i base_i^{exp_i}`` as one Straus interleaved product."""
        return self.engine.multi_exp(pairs)

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def exp_g(self, exponent: int) -> int:
        """``g^exponent`` for the fixed generator (fixed-base table)."""
        return self.engine.generator_power(exponent)

    def is_member(self, a: int) -> bool:
        """Subgroup membership: ``a^q == 1`` and ``0 < a < p``."""
        return 0 < a < self.p and pow(a, self.order, self.p) == 1

    def is_member_fast(self, a: int) -> bool:
        """Subgroup membership via the Jacobi symbol.

        For a safe prime the order-``q`` subgroup is exactly the
        quadratic residues, and Euler's criterion says ``a^q == 1`` iff
        ``(a/p) == 1`` -- so the Jacobi symbol decides membership
        without a full-width exponentiation (~25x cheaper at 2048 bits).
        Agrees with :meth:`is_member` on every input (property-tested).
        """
        return 0 < a < self.p and _jacobi(a, self.p) == 1

    # -- hashing -----------------------------------------------------------------
    def hash_to_group(self, message: bytes) -> int:
        """Map ``message`` to a subgroup element of unknown discrete log.

        Squares ``sha256``-derived material mod ``p``; squares are exactly
        the order-``q`` subgroup for a safe prime.  Results are LRU-cached
        per ``(group, message)``: verifying or combining the shares of one
        epoch hashes the message once, not once per share.
        """
        return _hash_to_group_cached(self.p, bytes(message))

    def hash_to_exponent(self, *parts: bytes) -> int:
        """Fiat-Shamir challenge: hash transcript parts into ``GF(q)``."""
        h = hashlib.sha256()
        for part in parts:
            h.update(len(part).to_bytes(8, "big"))
            h.update(part)
        return int.from_bytes(h.digest(), "big") % self.order

    def random_exponent(self, rng) -> int:
        """Uniform exponent in ``[0, q)``."""
        return rng.randrange(self.order)

    def encode_int(self, a: int) -> bytes:
        """Fixed-width big-endian encoding for transcripts."""
        width = (self.p.bit_length() + 7) // 8
        return a.to_bytes(width, "big")


#: RFC 3526, group 14 (2048-bit MODP).  p is a safe prime; 2 generates the
#: subgroup of quadratic residues... in fact 2 has order 2q in this group,
#: so we use 4 = 2^2, a square and hence an order-q generator.
_RFC3526_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)

RFC3526_GROUP_2048 = SchnorrGroup(p=_RFC3526_P, generator=4)

#: A 256-bit safe prime group for tests and simulation speed:
#: p = 2q + 1 with both p and q prime (verified at import via PrimeField
#: in exponent_field and the SchnorrGroup invariant).
_TEST_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF72EF
TEST_GROUP_256 = SchnorrGroup(p=_TEST_P, generator=4)
