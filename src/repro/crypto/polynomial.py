"""Polynomials over a prime field and Lagrange interpolation.

Shamir secret sharing evaluates a random degree-``k-1`` polynomial;
reconstruction interpolates it back at zero.  Threshold signatures combine
signature shares "in the exponent" using the same Lagrange coefficients,
so the coefficient computation is exposed separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from .field import PrimeField

__all__ = ["Polynomial", "lagrange_coefficients_at", "interpolate_at"]


@dataclass(frozen=True)
class Polynomial:
    """A polynomial ``c_0 + c_1 x + ... + c_d x^d`` over ``field``.

    Coefficients are canonical residues; the zero polynomial has an empty
    coefficient tuple.
    """

    field: PrimeField
    coefficients: tuple[int, ...]

    def __post_init__(self) -> None:
        canon = tuple(self.field.element(c) for c in self.coefficients)
        # Strip leading (high-degree) zeros for a canonical representation.
        last = len(canon)
        while last > 0 and canon[last - 1] == 0:
            last -= 1
        object.__setattr__(self, "coefficients", canon[:last])

    @property
    def degree(self) -> int:
        """Degree; ``-1`` for the zero polynomial."""
        return len(self.coefficients) - 1

    def evaluate(self, x: int) -> int:
        """Horner evaluation at ``x``."""
        acc = 0
        for c in reversed(self.coefficients):
            acc = (acc * x + c) % self.field.modulus
        return acc

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if self.field != other.field:
            raise ValueError("polynomials over different fields")
        a, b = self.coefficients, other.coefficients
        if len(a) < len(b):
            a, b = b, a
        coeffs = list(a)
        for i, c in enumerate(b):
            coeffs[i] = self.field.add(coeffs[i], c)
        return Polynomial(self.field, tuple(coeffs))

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if self.field != other.field:
            raise ValueError("polynomials over different fields")
        if not self.coefficients or not other.coefficients:
            return Polynomial(self.field, ())
        out = [0] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            if a == 0:
                continue
            for j, b in enumerate(other.coefficients):
                out[i + j] = (out[i + j] + a * b) % self.field.modulus
        return Polynomial(self.field, tuple(out))

    @staticmethod
    def random(field: PrimeField, degree: int, rng, *, constant: int | None = None) -> "Polynomial":
        """Uniformly random polynomial of exactly the given ``degree``
        (leading coefficient non-zero), optionally pinning the constant
        term (the Shamir secret)."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        coeffs = [field.random_element(rng) for _ in range(degree + 1)]
        if constant is not None:
            coeffs[0] = field.element(constant)
        if degree > 0:
            coeffs[degree] = field.random_nonzero(rng)
        return Polynomial(field, tuple(coeffs))


def lagrange_coefficients_at(
    field: PrimeField, xs: Sequence[int], point: int = 0
) -> list[int]:
    """Lagrange basis coefficients ``lambda_i`` such that
    ``f(point) = sum_i lambda_i * f(xs[i])`` for every polynomial ``f`` of
    degree below ``len(xs)``.  The ``xs`` must be distinct field elements.

    Results are LRU-cached by ``(field, xs, point)``: threshold-signature
    consumers combine share after share with the *same* quorum index set
    (checkpointing certifies every epoch against one stabilized quorum),
    so the ``O(k^2)`` coefficient computation runs once per quorum shape
    instead of once per combine.
    """
    return list(_lagrange_coefficients_cached(field, tuple(xs), point))


@lru_cache(maxsize=256)
def _lagrange_coefficients_cached(
    field: PrimeField, xs: tuple[int, ...], point: int
) -> tuple[int, ...]:
    mod = field.modulus
    if len(set(x % mod for x in xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    k = len(xs)
    # Numerators prod_{j != i} (point - x_j) via prefix/suffix products:
    # O(k) multiplications instead of the O(k^2) inner loop (a weighted
    # quorum interpolates over hundreds of virtual-signer indices).
    diffs = [(point - x) % mod for x in xs]
    prefix = [1] * (k + 1)
    for i, d in enumerate(diffs):
        prefix[i + 1] = prefix[i] * d % mod
    suffix = [1] * (k + 1)
    for i in range(k - 1, -1, -1):
        suffix[i] = suffix[i + 1] * diffs[i] % mod
    nums = [prefix[i] * suffix[i + 1] % mod for i in range(k)]
    # Denominators prod_{j != i} (x_i - x_j): inherently pairwise.
    dens = []
    for i, xi in enumerate(xs):
        den = 1
        for j, xj in enumerate(xs):
            if i != j:
                den = den * (xi - xj) % mod
        dens.append(den % mod)
    # Montgomery batch inversion: one pow + 3k multiplications instead
    # of k modular inversions.
    running = []
    acc = 1
    for d in dens:
        running.append(acc)
        acc = acc * d % mod
    inv_acc = field.inv(acc)
    invs = [0] * k
    for i in range(k - 1, -1, -1):
        invs[i] = running[i] * inv_acc % mod
        inv_acc = inv_acc * dens[i] % mod
    return tuple(n * inv % mod for n, inv in zip(nums, invs))


def interpolate_at(
    field: PrimeField, points: Sequence[tuple[int, int]], point: int = 0
) -> int:
    """Evaluate at ``point`` the unique polynomial through ``points``."""
    xs = [x for x, _ in points]
    lambdas = lagrange_coefficients_at(field, xs, point)
    return field.sum(field.mul(lam, y) for lam, (_, y) in zip(lambdas, points))
