"""Cryptographic substrate: fields, groups, secret sharing, VSS, DLEQ
proofs, unique threshold signatures, threshold ElGamal, and common coins
(paper, Sections 4 and 6)."""

from .common_coin import CommonCoin, WeightedCoin
from .dleq import DleqProof, prove_dleq, verify_dleq, verify_dleq_batch
from .feldman import FeldmanCommitment, FeldmanDealing, FeldmanVSS
from .field import DEFAULT_FIELD, PrimeField
from .group import RFC3526_GROUP_2048, TEST_GROUP_256, GroupEngine, SchnorrGroup
from .polynomial import Polynomial, interpolate_at, lagrange_coefficients_at
from .shamir import SecretSharing, Share, WeightedSharing, deal_weighted
from .threshold_enc import Ciphertext, DecryptionShare, ThresholdElGamal
from .threshold_sig import SignatureShare, ThresholdKeys, ThresholdSignatureScheme

__all__ = [
    "PrimeField",
    "DEFAULT_FIELD",
    "SchnorrGroup",
    "GroupEngine",
    "TEST_GROUP_256",
    "RFC3526_GROUP_2048",
    "Polynomial",
    "lagrange_coefficients_at",
    "interpolate_at",
    "Share",
    "SecretSharing",
    "WeightedSharing",
    "deal_weighted",
    "FeldmanVSS",
    "FeldmanCommitment",
    "FeldmanDealing",
    "DleqProof",
    "prove_dleq",
    "verify_dleq",
    "verify_dleq_batch",
    "ThresholdSignatureScheme",
    "ThresholdKeys",
    "SignatureShare",
    "ThresholdElGamal",
    "Ciphertext",
    "DecryptionShare",
    "CommonCoin",
    "WeightedCoin",
]
