"""Feldman verifiable secret sharing (paper application, Section 4.2).

Extends Shamir with public commitments ``C_j = g^{a_j}`` to the polynomial
coefficients so every shareholder can verify its share against
``g^{f(i)} = prod_j C_j^{i^j}`` without interaction.  The weighted version
is obtained exactly as for plain Shamir: hand each party one share per
ticket of a Weight Restriction solution.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Sequence

from .group import SchnorrGroup, batch_bisect
from .polynomial import Polynomial, interpolate_at
from .shamir import Share

__all__ = ["FeldmanCommitment", "FeldmanVSS", "FeldmanDealing"]


@dataclass(frozen=True)
class FeldmanCommitment:
    """Public commitments ``(g^{a_0}, ..., g^{a_{k-1}})``."""

    group: SchnorrGroup
    values: tuple[int, ...]

    @property
    def public_key(self) -> int:
        """``g^{secret}``: the commitment to the constant term."""
        return self.values[0]

    def expected_share_commitment(self, index: int) -> int:
        """``g^{f(index)}`` as one Straus product ``prod_j C_j^{index^j}``."""
        q = self.group.order
        pairs = []
        power = 1
        for c in self.values:
            pairs.append((c, power))
            power = power * index % q
        return self.group.multi_exp(pairs)

    def verify_share(self, share: Share) -> bool:
        """Check ``g^{share.value} == g^{f(share.index)}``."""
        return self.group.exp_g(share.value) == self.expected_share_commitment(
            share.index
        )

    def verify_shares_batch(self, shares: Sequence[Share], *, rng=None) -> list[bool]:
        """Batch-verify many shares against the commitment.

        With random small ``z_i`` the per-share checks aggregate into

        ``g^{sum_i z_i v_i}  ==  prod_j C_j^{sum_i z_i i^j}``

        -- one fixed-base exponentiation plus one ``k``-base Straus
        product for the *whole* batch.  On aggregate failure (or a
        non-subgroup commitment, which only a Byzantine dealer
        produces), falls back to bisection ending in the per-share
        oracle, so results always agree with :meth:`verify_share`.
        """
        if not shares:
            return []
        if rng is None:
            rng = _random.SystemRandom()
        group, q = self.group, self.group.order
        if not all(group.is_member_fast(c) for c in self.values):
            return [self.verify_share(s) for s in shares]

        def aggregate_holds(chunk: Sequence[Share]) -> bool:
            lhs_exp = 0
            col_exps = [0] * len(self.values)
            for share in chunk:
                z = rng.getrandbits(64) | 1
                lhs_exp += z * share.value
                power = 1
                for j in range(len(self.values)):
                    col_exps[j] = (col_exps[j] + z * power) % q
                    power = power * share.index % q
            lhs = group.exp_g(lhs_exp % q)
            rhs = group.multi_exp(list(zip(self.values, col_exps)))
            return lhs == rhs

        return batch_bisect(list(shares), aggregate_holds, self.verify_share)


@dataclass(frozen=True)
class FeldmanDealing:
    """A dealer's output: the shares and the public commitment."""

    shares: tuple[Share, ...]
    commitment: FeldmanCommitment


class FeldmanVSS:
    """``(n, k)``-threshold Feldman VSS over a Schnorr group."""

    def __init__(self, group: SchnorrGroup, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.group = group
        self.field = group.exponent_field
        self.n = n
        self.k = k

    def deal(self, secret: int, rng) -> FeldmanDealing:
        """Share ``secret`` (an exponent) with public verifiability."""
        poly = Polynomial.random(self.field, self.k - 1, rng, constant=secret)
        coeffs = poly.coefficients + (0,) * (self.k - len(poly.coefficients))
        commitment = FeldmanCommitment(
            group=self.group,
            values=tuple(self.group.exp_g(c) for c in coeffs),
        )
        shares = tuple(
            Share(index=i, value=poly.evaluate(i)) for i in range(1, self.n + 1)
        )
        return FeldmanDealing(shares=shares, commitment=commitment)

    def reconstruct(self, shares: Sequence[Share]) -> int:
        """Recover the secret from ``k`` verified shares."""
        if len({s.index for s in shares}) < self.k:
            raise ValueError(f"need {self.k} distinct shares")
        chosen = list({s.index: s for s in shares}.values())[: self.k]
        return interpolate_at(self.field, [(s.index, s.value) for s in chosen])
