"""Crash-recoverable SMR replica: WAL-backed commits and state sync.

The paper's checkpointing protocol exists so a recovering party can
resume from a threshold-signed digest instead of replaying history from
genesis.  This module supplies the party half of that story for the
composed SMR protocol:

* every commit is appended to a :class:`~repro.recovery.wal.WriteAheadLog`
  *before* it is applied (write-ahead), so a SIGKILL between fsync and
  apply loses at most the in-memory suffix, never corrupts the log;
* on :meth:`restart` the replica wipes its volatile Bracha state,
  replays the WAL's intact prefix, then broadcasts a
  :class:`StateSyncRequest`; live peers answer with their committed
  entries (and any stored checkpoint certificates) and keep *pushing*
  each later commit to the requester, so instances whose ECHO/READY
  traffic predates the crash still reach the recovered replica;
* a synced entry is applied only once a **deliver quorum by weight** of
  distinct responders vouches for it -- the same amplification rule
  Bracha uses for READY, so up to ``f_w`` Byzantine responders cannot
  forge an entry into the recovered log -- or immediately when it is
  covered by a verified threshold-signed checkpoint certificate.

Duplicate redelivery after recovery is harmless by construction: every
Bracha handler in :class:`~repro.protocols.smr.SmrParty` keys its state
by sets, so replays are absorbed idempotently.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..protocols.smr import SmrParty, batch_position
from ..weighted.quorum import QuorumPolicy
from .wal import InMemoryWal, WriteAheadLog

__all__ = ["StateSyncRequest", "StateSyncResponse", "RecoverableSmrParty", "entries_digest"]


@dataclass(frozen=True)
class StateSyncRequest:
    """Broadcast by a restarted replica: send me your committed state."""

    requester: int

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True)
class StateSyncResponse:
    """One peer's committed entries (and checkpoint certificates).

    ``entries`` is ``((epoch, proposer, payload), ...)``; ``certificates``
    is ``((epoch, digest, certificate), ...)``.  Sent once as a snapshot
    when the request arrives and then incrementally (one entry at a
    time) for every later commit, so a recovering replica converges even
    on instances that were still in flight when it crashed.
    """

    responder: int
    entries: tuple = ()
    certificates: tuple = ()

    def wire_size(self) -> int:
        return 64 + sum(24 + len(p) for _, _, p in self.entries) + sum(
            24 + len(d) + len(c) for _, d, c in self.certificates
        )


def entries_digest(entries: list[tuple[int, int, bytes]]) -> bytes:
    """Order-independent digest of one epoch's committed entries; what a
    checkpoint certificate is checked against during state sync."""
    h = hashlib.sha256()
    for proposer, payload in sorted((p, pl) for _, p, pl in entries):
        h.update(proposer.to_bytes(8, "big"))
        h.update(hashlib.sha256(payload).digest())
    return h.digest()


class RecoverableSmrParty(SmrParty):
    """:class:`SmrParty` with durable commits and restart/rejoin."""

    def __init__(
        self,
        pid: int,
        n: int,
        quorums: QuorumPolicy,
        coin_source: Callable[[int], int],
        *,
        wal=None,
        on_commit: Optional[Callable[[int, int, int, bytes], None]] = None,
        verify_cert: Optional[Callable[[int, bytes, bytes], bool]] = None,
    ) -> None:
        super().__init__(pid, n, quorums, coin_source, on_commit=on_commit)
        self.wal = wal if wal is not None else InMemoryWal()
        self.verify_cert = verify_cert
        #: epoch -> (digest, certificate) from checkpointing / state sync
        self.certificates: dict[int, tuple[bytes, bytes]] = {}
        #: per-source receive watermarks persisted for the transport layer
        self.watermarks: dict[int, int] = {}
        self.restarts = 0
        self.recovered_from_wal = 0
        self.recovered_from_peers = 0
        #: peers currently rejoining; every commit is pushed to them
        self._sync_subscribers: set[int] = set()
        #: (epoch, proposer, payload) -> responders vouching for it
        self._sync_confirmers: dict[tuple[int, int, bytes], set[int]] = {}
        self.on(StateSyncRequest, self._handle_sync_request)
        self.on(StateSyncResponse, self._handle_sync_response)

    # -- durable commit path ------------------------------------------------------
    def _commit(self, epoch: int, proposer: int, payload: bytes) -> None:
        position = batch_position(proposer, self.coin_source(epoch), self.n)
        if position in self.committed.get(epoch, {}):
            return
        # write-ahead: the record is durable (or at least framed) before
        # the in-memory state and the on_commit callback observe it
        self.wal.append(
            {
                "kind": "commit",
                "epoch": epoch,
                "proposer": proposer,
                "payload": payload.hex(),
            }
        )
        self._apply_commit(epoch, proposer, payload)

    def _apply_commit(self, epoch: int, proposer: int, payload: bytes) -> None:
        epoch_map = self.committed.setdefault(epoch, {})
        position = batch_position(proposer, self.coin_source(epoch), self.n)
        if position in epoch_map:
            return
        epoch_map[position] = (proposer, payload)
        self.bump("batches_committed")
        if self.on_commit is not None:
            self.on_commit(self.pid, epoch, position, payload)
        if self._sync_subscribers:
            push = StateSyncResponse(
                responder=self.pid, entries=((epoch, proposer, payload),)
            )
            for peer in sorted(self._sync_subscribers):
                self.send(peer, push)

    def store_certificate(self, epoch: int, digest: bytes, certificate: bytes) -> None:
        """Persist a threshold-signed checkpoint certificate."""
        if self.certificates.get(epoch) == (digest, certificate):
            return
        self.wal.append(
            {
                "kind": "cert",
                "epoch": epoch,
                "digest": digest.hex(),
                "cert": certificate.hex(),
            }
        )
        self.certificates[epoch] = (digest, certificate)

    def note_watermark(self, src: int, seq: int) -> None:
        """Persist the transport's per-source receive watermark."""
        if self.watermarks.get(src, -1) >= seq:
            return
        self.watermarks[src] = seq
        self.wal.append({"kind": "watermark", "src": src, "seq": seq})

    # -- restart / rejoin ---------------------------------------------------------
    def restart(self) -> None:
        """Rejoin after a crash: replay the WAL, then sync from peers."""
        super().restart()
        self.restarts += 1
        self.committed.clear()
        self._echoed.clear()
        self._readied.clear()
        self._echo_senders.clear()
        self._ready_senders.clear()
        self._sync_confirmers.clear()
        self.certificates.clear()
        self.watermarks.clear()
        self.recovered_from_wal = self.replay_wal()
        self.broadcast(StateSyncRequest(requester=self.pid))

    def replay_wal(self) -> int:
        """Apply the WAL's intact prefix; returns commits recovered."""
        recovered = 0
        for record in self.wal.replay():
            kind = record.get("kind")
            if kind == "commit":
                before = len(self.committed.get(record["epoch"], {}))
                self._apply_commit(
                    record["epoch"],
                    record["proposer"],
                    bytes.fromhex(record["payload"]),
                )
                recovered += int(
                    len(self.committed.get(record["epoch"], {})) > before
                )
            elif kind == "cert":
                self.certificates[record["epoch"]] = (
                    bytes.fromhex(record["digest"]),
                    bytes.fromhex(record["cert"]),
                )
            elif kind == "watermark":
                src, seq = record["src"], record["seq"]
                if self.watermarks.get(src, -1) < seq:
                    self.watermarks[src] = seq
        return recovered

    # -- sync protocol ------------------------------------------------------------
    def _snapshot_entries(self) -> tuple:
        entries = []
        for epoch in sorted(self.committed):
            for position in sorted(self.committed[epoch]):
                proposer, payload = self.committed[epoch][position]
                entries.append((epoch, proposer, payload))
        return tuple(entries)

    def _handle_sync_request(self, message: StateSyncRequest, sender: int) -> None:
        if sender == self.pid or sender != message.requester:
            return
        self._sync_subscribers.add(sender)
        certificates = tuple(
            (epoch, digest, cert)
            for epoch, (digest, cert) in sorted(self.certificates.items())
        )
        self.send(
            sender,
            StateSyncResponse(
                responder=self.pid,
                entries=self._snapshot_entries(),
                certificates=certificates,
            ),
        )

    def _handle_sync_response(self, message: StateSyncResponse, sender: int) -> None:
        if sender != message.responder:
            return
        # certificate fast path: a verified threshold signature over an
        # epoch digest lets the whole epoch apply without per-entry quorums
        verified_epochs: set[int] = set()
        if self.verify_cert is not None:
            for epoch, digest, cert in message.certificates:
                digest, cert = bytes(digest), bytes(cert)
                if self.verify_cert(epoch, digest, cert):
                    self.certificates.setdefault(epoch, (digest, cert))
                    by_epoch = [e for e in message.entries if e[0] == epoch]
                    if by_epoch and entries_digest(
                        [(e, p, bytes(pl)) for e, p, pl in by_epoch]
                    ) == digest:
                        verified_epochs.add(epoch)
        for epoch, proposer, payload in message.entries:
            payload = bytes(payload)
            if epoch in verified_epochs:
                self._committed_via_sync(epoch, proposer, payload)
                continue
            key = (epoch, proposer, payload)
            position = batch_position(proposer, self.coin_source(epoch), self.n)
            if position in self.committed.get(epoch, {}):
                continue
            confirmers = self._sync_confirmers.setdefault(key, set())
            confirmers.add(sender)
            if self.quorums.deliver_quorum(confirmers):
                del self._sync_confirmers[key]
                self._committed_via_sync(epoch, proposer, payload)

    def _committed_via_sync(self, epoch: int, proposer: int, payload: bytes) -> None:
        position = batch_position(proposer, self.coin_source(epoch), self.n)
        if position in self.committed.get(epoch, {}):
            return
        self.recovered_from_peers += 1
        # durable like any other commit: a second crash must not redo the sync
        self._commit(epoch, proposer, payload)
