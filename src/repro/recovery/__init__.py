"""Crash-recovery layer: durable party state, restart/rejoin, backoff.

The missing half of fault tolerance.  :mod:`repro.runtime.faults` can
crash, partition, and delay; this package brings parties *back*: a
CRC-framed write-ahead log for protocol-critical state, a seeded-jitter
backoff schedule for self-healing transports, heartbeat failure
detection, and a recoverable SMR replica that rejoins via a
``STATE_SYNC`` exchange with live peers.
"""

from .backoff import BackoffSchedule
from .heartbeat import HeartbeatMonitor
from .smr import RecoverableSmrParty, StateSyncRequest, StateSyncResponse, entries_digest
from .wal import InMemoryWal, WalError, WriteAheadLog, open_wal

__all__ = [
    "BackoffSchedule",
    "HeartbeatMonitor",
    "InMemoryWal",
    "RecoverableSmrParty",
    "StateSyncRequest",
    "StateSyncResponse",
    "WalError",
    "WriteAheadLog",
    "entries_digest",
    "open_wal",
]
