"""Durable write-ahead log for per-party protocol state.

One record per line, framed as ``crc32(payload):payload`` where the
payload is compact JSON.  The CRC is computed over the exact payload
bytes, so any torn tail -- a partial line from a crash mid-``write``,
a flipped bit from a bad disk -- fails the frame check and replay stops
there.  Everything *before* the first bad frame is intact by
construction (records are appended, never rewritten), which is exactly
the recovery contract a restarted party needs: replay the durable
prefix, refetch the rest from live peers.

``fsync_every`` batches the expensive ``os.fsync`` across appends;
records between the last fsync and a crash may be lost but never
corrupted into acceptance -- the CRC frame turns them into a clean
truncation instead.

:class:`InMemoryWal` is the zero-disk stand-in used by the sim/inproc
backends when no ``--state-dir`` is given: same interface, same replay
semantics, state survives a simulated restart but not the process.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = ["WalError", "WriteAheadLog", "InMemoryWal", "open_wal"]


class WalError(RuntimeError):
    """Raised for misuse (appending to a closed log), never for torn
    tails -- those are expected crash artifacts and handled by replay."""


def _frame(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    return b"%08x:%s\n" % (zlib.crc32(payload), payload)


def _unframe(line: bytes) -> Optional[dict[str, Any]]:
    """Decode one framed line; ``None`` means torn/corrupt."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b":":
        return None
    payload = line[9:-1]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class WriteAheadLog:
    """Append-only JSONL log with CRC framing and batched fsync."""

    def __init__(self, path: Union[str, Path], *, fsync_every: int = 8) -> None:
        self.path = Path(path)
        self.fsync_every = max(int(fsync_every), 1)
        self.records_written = 0
        self.records_replayed = 0
        #: frames discarded by the last :meth:`replay` (torn tail)
        self.torn_records = 0
        self._unsynced = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")

    # -- write path ---------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise WalError(f"write-ahead log {self.path} is closed")
        self._fh.write(_frame(record))
        self.records_written += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        if self._fh is None or self._unsynced == 0:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    # -- read path ----------------------------------------------------------------
    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every intact record in append order.

        Stops at the first torn or corrupt frame (counted in
        ``torn_records``) -- a crash can only damage the tail, so
        everything after a bad frame is untrusted.
        """
        if self._fh is not None:
            self._fh.flush()
        self.records_replayed = 0
        self.torn_records = 0
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            for line in fh:
                record = _unframe(line)
                if record is None:
                    self.torn_records += 1
                    break
                self.records_replayed += 1
                yield record

    def truncate_torn_tail(self) -> int:
        """Rewrite the file to its intact prefix; returns bytes dropped."""
        good = 0
        with open(self.path, "rb") as fh:
            for line in fh:
                if _unframe(line) is None:
                    break
                good += len(line)
        size = self.path.stat().st_size
        if good < size:
            if self._fh is not None:
                self._fh.flush()
            with open(self.path, "rb+") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())
        return size - good

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class InMemoryWal:
    """List-backed WAL with the same surface; used when no state dir is
    configured.  Survives a *simulated* restart (the object outlives the
    party), not a process crash."""

    def __init__(self) -> None:
        self.path = None
        self.records_written = 0
        self.records_replayed = 0
        self.torn_records = 0
        self._records: list[dict[str, Any]] = []

    def append(self, record: dict[str, Any]) -> None:
        # round-trip through the frame so both WALs accept exactly the
        # same record shapes (JSON-serializable, dict-rooted)
        decoded = _unframe(_frame(record))
        assert decoded is not None
        self._records.append(decoded)
        self.records_written += 1

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def replay(self) -> Iterator[dict[str, Any]]:
        self.records_replayed = len(self._records)
        yield from list(self._records)

    def truncate_torn_tail(self) -> int:
        return 0

    def __enter__(self) -> "InMemoryWal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_wal(
    state_dir: Optional[Union[str, Path]], name: str, *, fsync_every: int = 8
) -> Union[WriteAheadLog, InMemoryWal]:
    """Durable WAL under ``state_dir`` when given, in-memory otherwise."""
    if state_dir is None:
        return InMemoryWal()
    return WriteAheadLog(Path(state_dir) / f"{name}.wal", fsync_every=fsync_every)
