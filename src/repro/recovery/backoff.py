"""Bounded exponential backoff with seeded jitter.

Reconnect storms are the classic self-inflicted outage: every link that
lost the same peer retries on the same schedule and the peer drowns the
moment it returns.  The standard fix is exponential growth (spread load
over time) plus jitter (spread load across links).  Jitter is drawn from
a per-schedule ``random.Random`` so a seeded run produces the same delay
sequence every time -- determinism is a repo-wide invariant and retry
timing must not be the one place wall-clock entropy sneaks in.
"""

from __future__ import annotations

import random

__all__ = ["BackoffSchedule"]


class BackoffSchedule:
    """``base * 2^attempt`` capped at ``max_delay``, +/- ``jitter`` fraction.

    ``next_delay()`` advances the attempt counter; ``reset()`` (call on
    success) restarts from the base delay.  With ``jitter=0.5`` the
    k-th delay is uniform in ``[0.5, 1.5] * min(base * 2^k, max_delay)``.
    """

    def __init__(
        self,
        *,
        base: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: object = 0,
    ) -> None:
        if base <= 0:
            raise ValueError("backoff base must be positive")
        if max_delay < base:
            raise ValueError("max_delay must be >= base")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base = base
        self.max_delay = max_delay
        self.jitter = jitter
        self.attempt = 0
        self._rng = random.Random(f"backoff|{seed}")

    def next_delay(self) -> float:
        """The delay to sleep before the next attempt."""
        raw = min(self.base * (2.0**self.attempt), self.max_delay)
        self.attempt += 1
        if self.jitter == 0.0:
            return raw
        return raw * self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def reset(self) -> None:
        """Call after a successful attempt: the next failure starts over
        from the base delay (the jitter stream keeps advancing, so the
        sequence stays a pure function of the seed and call order)."""
        self.attempt = 0
