"""Heartbeat-driven failure detection.

A peer is *suspected* after ``suspect_after`` intervals with no traffic
and flips back to *alive* on the next receipt.  The monitor is pure
bookkeeping over ``observe``/``check`` calls -- it never reads a clock
itself, so the same code runs on simulated and wall-clock time and a
seeded sim run stays byte-deterministic.  Transition counts feed
``RuntimeMetrics`` so a run record shows how flappy its links were.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Track last-seen times per peer and raise suspect/alive transitions."""

    def __init__(
        self,
        peers: Iterable[int] = (),
        *,
        interval: float = 0.5,
        suspect_after: int = 3,
        on_suspect: Optional[Callable[[int], None]] = None,
        on_alive: Optional[Callable[[int], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        self.interval = interval
        self.suspect_after = suspect_after
        self.on_suspect = on_suspect
        self.on_alive = on_alive
        self.suspect_transitions = 0
        self.alive_transitions = 0
        self._last_seen: dict[int, float] = {}
        self._suspected: set[int] = set()
        for peer in peers:
            self._last_seen[peer] = 0.0

    # -- inputs -------------------------------------------------------------------
    def observe(self, peer: int, now: float) -> None:
        """Any traffic from ``peer`` counts as a heartbeat."""
        self._last_seen[peer] = now
        if peer in self._suspected:
            self._suspected.discard(peer)
            self.alive_transitions += 1
            if self.on_alive is not None:
                self.on_alive(peer)

    def check(self, now: float) -> list[int]:
        """Sweep for newly suspected peers; returns them (sorted)."""
        newly = []
        threshold = self.interval * self.suspect_after
        for peer, seen in sorted(self._last_seen.items()):
            if peer not in self._suspected and now - seen >= threshold:
                self._suspected.add(peer)
                self.suspect_transitions += 1
                newly.append(peer)
                if self.on_suspect is not None:
                    self.on_suspect(peer)
        return newly

    def forget(self, peer: int) -> None:
        """Stop tracking a retired peer (no transition fired)."""
        self._last_seen.pop(peer, None)
        self._suspected.discard(peer)

    # -- views --------------------------------------------------------------------
    def is_suspected(self, peer: int) -> bool:
        return peer in self._suspected

    @property
    def suspected(self) -> list[int]:
        return sorted(self._suspected)

    def last_seen_age(self, peer: int, now: float) -> Optional[float]:
        seen = self._last_seen.get(peer)
        return None if seen is None else now - seen
