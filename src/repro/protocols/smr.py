"""Asynchronous state-machine replication by composition (Section 6.1).

HoneyBadger-style round structure: in every epoch each party reliably
broadcasts its transaction batch (Bracha RBC, converted to the weighted
model by weighted voting); the epoch's common coin (weighted via
WR(1/3, 1/2), Section 4.1) fixes the ordering.  The paper's point is
compositional: the broadcast layer keeps resilience ``f_w = 1/3`` through
weighted voting/WQ, the randomness layer uses a nominal ``alpha_n = 1/2``
threshold scheme behind WR, and the composed protocol keeps resilience
1/3 -- "levelling the resilience of different parts without affecting
the resilience of the composition".

Ordering rule: a committed batch's position within its epoch is a pure
function of ``(proposer, coin, n)`` -- independent of which other batches
a replica happens to have delivered so far.  RBC agreement + totality
then give every honest replica the *same* eventual log without an extra
agreement-on-a-set (ACS) phase; replicas differ only in how much of the
log they have seen yet.  (Production HoneyBadger-style systems add ACS to
close epochs at a common cut; our epoch-closed flag is advisory.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.process import Party
from ..weighted.quorum import QuorumPolicy

__all__ = ["BatchSend", "BatchEcho", "BatchReady", "SmrParty", "batch_position"]


@dataclass(frozen=True)
class BatchSend:
    """Epoch-scoped RBC SEND carrying a proposer's batch."""

    epoch: int
    proposer: int
    payload: bytes

    def wire_size(self) -> int:
        return 64 + len(self.payload)


@dataclass(frozen=True)
class BatchEcho:
    """RBC ECHO for one (epoch, proposer) instance."""

    epoch: int
    proposer: int
    payload: bytes

    def wire_size(self) -> int:
        return 64 + len(self.payload)


@dataclass(frozen=True)
class BatchReady:
    """RBC READY for one (epoch, proposer) instance."""

    epoch: int
    proposer: int
    payload: bytes

    def wire_size(self) -> int:
        return 64 + len(self.payload)


def batch_position(proposer: int, coin_value: int, n: int) -> int:
    """Deterministic position of ``proposer``'s batch within its epoch:
    a coin-keyed rotation.  Depends only on common-knowledge inputs, so
    every replica places every batch identically."""
    return (proposer + coin_value) % n


class SmrParty(Party):
    """One replica of the composed asynchronous SMR.

    Runs one Bracha instance per (epoch, proposer) pair -- multiplexed by
    tagging the message types with both ids.  ``ordered_log(epoch)``
    returns the epoch's committed batches in coin order.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        quorums: QuorumPolicy,
        coin_source: Callable[[int], int],
        *,
        on_commit: Optional[Callable[[int, int, int, bytes], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.quorums = quorums
        self.coin_source = coin_source
        self.on_commit = on_commit
        #: epoch -> {position -> (proposer, payload)}
        self.committed: dict[int, dict[int, tuple[int, bytes]]] = {}
        self._echoed: set[tuple[int, int]] = set()
        self._readied: set[tuple[int, int]] = set()
        self._echo_senders: dict[tuple[int, int, bytes], set[int]] = {}
        self._ready_senders: dict[tuple[int, int, bytes], set[int]] = {}
        self.on(BatchSend, self._handle_send)
        self.on(BatchEcho, self._handle_echo)
        self.on(BatchReady, self._handle_ready)

    # -- proposing ---------------------------------------------------------------
    def propose_batch(self, epoch: int, payload: bytes) -> None:
        """Reliably broadcast this replica's batch for ``epoch``."""
        self.broadcast(BatchSend(epoch=epoch, proposer=self.pid, payload=payload))

    # -- per-instance Bracha --------------------------------------------------------
    def _handle_send(self, message: BatchSend, sender: int) -> None:
        if sender != message.proposer:
            return  # only the proposer may originate its instance
        key = (message.epoch, message.proposer)
        if key not in self._echoed:
            self._echoed.add(key)
            self.broadcast(
                BatchEcho(message.epoch, message.proposer, message.payload)
            )

    def _handle_echo(self, message: BatchEcho, sender: int) -> None:
        key = (message.epoch, message.proposer, message.payload)
        senders = self._echo_senders.setdefault(key, set())
        senders.add(sender)
        if key[:2] not in self._readied and self.quorums.echo_quorum(senders):
            self._readied.add(key[:2])
            self.broadcast(
                BatchReady(message.epoch, message.proposer, message.payload)
            )

    def _handle_ready(self, message: BatchReady, sender: int) -> None:
        key = (message.epoch, message.proposer, message.payload)
        senders = self._ready_senders.setdefault(key, set())
        senders.add(sender)
        if key[:2] not in self._readied and self.quorums.ready_amplify(senders):
            self._readied.add(key[:2])
            self.broadcast(
                BatchReady(message.epoch, message.proposer, message.payload)
            )
        if self.quorums.deliver_quorum(senders):
            self._commit(message.epoch, message.proposer, message.payload)

    # -- commitment --------------------------------------------------------------
    def _commit(self, epoch: int, proposer: int, payload: bytes) -> None:
        epoch_map = self.committed.setdefault(epoch, {})
        coin = self.coin_source(epoch)
        position = batch_position(proposer, coin, self.n)
        if position in epoch_map:
            return
        epoch_map[position] = (proposer, payload)
        self.bump("batches_committed")
        if self.on_commit is not None:
            self.on_commit(self.pid, epoch, position, payload)

    def ordered_log(self, epoch: int) -> list[tuple[int, bytes]]:
        """The epoch's committed batches in deterministic coin order."""
        epoch_map = self.committed.get(epoch, {})
        return [epoch_map[pos] for pos in sorted(epoch_map)]

    def epoch_closed(self, epoch: int) -> bool:
        """Advisory: batches from a deliver-quorum of proposers committed."""
        proposers = {p for p, _ in self.committed.get(epoch, {}).values()}
        return self.quorums.deliver_quorum(proposers)
