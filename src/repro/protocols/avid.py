"""Asynchronous Verifiable Information Dispersal (paper, Section 5.1).

A simplified Cachin-Tessaro AVID: the dealer Reed-Solomon-encodes the
data, commits to the fragment vector with a hash list, and sends each
party its fragment(s) plus the commitment.  Parties that find their
fragments consistent echo the commitment; a storage quorum of echoes
makes the data *stored* (retrievable despite ``f`` faults).  Retrieval
collects hash-verified fragments and erasure-decodes.

Payloads are arbitrary byte strings carried as *block fragments*: the
payload is striped column-wise by the vectorized coding engine
(:meth:`~repro.codes.reed_solomon.ReedSolomon.encode_blocks`) so each
party holds one contiguous byte block per ticket, end to end -- on the
discrete-event simulator and on the live runtime, whose codec ships the
blocks through its bytes fast path without per-symbol marshalling.
Retrieval decodes with the LRU-cached Lagrange basis, so repeated
retrievals against the same storage quorum skip interpolation setup.

Nominal layout: ``(t+1, n)`` coding, one fragment per party, storage
quorum ``2t + 1``.  Weighted layout (``qualification_setup``): ``(ceil(
beta_n T), T)`` coding, ``t_i`` fragments for party ``i``, storage quorum
weight above ``2 f_w W`` -- the fragments held by the honest part (weight
above ``f_w W``) of any storage quorum suffice to reconstruct because the
WQ constraint qualifies every such subset (Section 5.1's argument).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..codes.reed_solomon import BlockFragment, ReedSolomon
from ..sim.process import Party
from ..weighted.quorum import QuorumPolicy
from ..weighted.virtual import VirtualUserMap

__all__ = [
    "AvidDisperse",
    "AvidEcho",
    "AvidRetrieveRequest",
    "AvidFragments",
    "AvidParty",
    "fragment_digest",
    "commitment_from_hashes",
]


def fragment_digest(fragments: Sequence[BlockFragment]) -> bytes:
    """Commitment: hash of the per-fragment hash list (all ``m`` fragments)."""
    return commitment_from_hashes(_hash_block(f.block) for f in fragments)


def commitment_from_hashes(hashes) -> bytes:
    """The commitment as a pure function of the hash list -- storers use
    this to check that a dealer's commitment actually binds the hash list
    it shipped (otherwise an equivocating dealer could get one commitment
    stored against two different lists, breaking retrievability)."""
    h = hashlib.sha256()
    for index, fragment_hash in enumerate(hashes):
        h.update(index.to_bytes(4, "big"))
        h.update(fragment_hash)
    return h.digest()


@dataclass(frozen=True)
class AvidDisperse:
    """Dealer -> party: the party's fragments, the full hash list, metadata."""

    fragments: tuple[BlockFragment, ...]
    hash_list: tuple[bytes, ...]
    commitment: bytes
    data_shards: int
    total_shards: int
    original_length: int

    def wire_size(self) -> int:
        payload = sum(4 + len(f.block) for f in self.fragments)
        return 64 + payload + 32 * len(self.hash_list)


@dataclass(frozen=True)
class AvidEcho:
    """Party -> all: my fragments are consistent with this commitment."""

    commitment: bytes

    def wire_size(self) -> int:
        return 64 + 32


@dataclass(frozen=True)
class AvidRetrieveRequest:
    """Retriever -> all: please send your fragments for this commitment."""

    commitment: bytes

    def wire_size(self) -> int:
        return 64 + 32


@dataclass(frozen=True)
class AvidFragments:
    """Party -> retriever: stored fragments."""

    commitment: bytes
    fragments: tuple[BlockFragment, ...]

    def wire_size(self) -> int:
        return 64 + 32 + sum(4 + len(f.block) for f in self.fragments)


def _hash_block(block: bytes) -> bytes:
    return hashlib.sha256(block).digest()


def _hash_fragment(f: BlockFragment) -> bytes:
    return _hash_block(f.block)


class AvidParty(Party):
    """One AVID participant (dealer, storer, and potential retriever)."""

    def __init__(
        self,
        pid: int,
        quorums: QuorumPolicy,
        *,
        on_stored: Optional[Callable[[int, bytes], None]] = None,
        on_retrieved: Optional[Callable[[int, bytes], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.quorums = quorums
        self.on_stored = on_stored
        self.on_retrieved = on_retrieved
        self.stored_commitment: Optional[bytes] = None
        self.my_fragments: tuple[BlockFragment, ...] = ()
        self.hash_list: tuple[bytes, ...] = ()
        self.data_shards = 0
        self.total_shards = 0
        self.original_length = 0
        self.retrieved: Optional[bytes] = None
        self._echo_senders: dict[bytes, set[int]] = {}
        self._collected: dict[int, bytes] = {}
        self.on(AvidDisperse, self._handle_disperse)
        self.on(AvidEcho, self._handle_echo)
        self.on(AvidRetrieveRequest, self._handle_retrieve_request)
        self.on(AvidFragments, self._handle_fragments)

    # -- dealer side --------------------------------------------------------------
    def disperse(
        self,
        data: bytes,
        code: ReedSolomon,
        vmap: VirtualUserMap,
    ) -> bytes:
        """Encode the ``data`` payload and send each party its fragments.

        ``vmap`` maps fragment indices to parties (one fragment per
        virtual user); the nominal case uses the identity assignment.
        Returns the commitment.
        """
        data = bytes(data)
        blocks = code.encode_blocks(data)
        fragments = [BlockFragment(j, b) for j, b in enumerate(blocks)]
        stripes = code.stripe_count(len(data))
        self.bump("encode_symbols", code.m * code.k * max(stripes, 1))
        hash_list = tuple(_hash_fragment(f) for f in fragments)
        commitment = fragment_digest(fragments)
        assert self.network is not None
        for party in self.network.party_ids:
            mine = tuple(fragments[v] for v in vmap.virtual_ids(party))
            self.send(
                party,
                AvidDisperse(
                    fragments=mine,
                    hash_list=hash_list,
                    commitment=commitment,
                    data_shards=code.k,
                    total_shards=code.m,
                    original_length=len(data),
                ),
            )
        return commitment

    # -- storer side -----------------------------------------------------------------
    def _handle_disperse(self, message: AvidDisperse, sender: int) -> None:
        # Geometry sanity before any indexing or arithmetic: a Byzantine
        # dealer controls every field of this message.
        if len(message.hash_list) != message.total_shards:
            return
        if commitment_from_hashes(message.hash_list) != message.commitment:
            return  # commitment does not bind this hash list
        expected = self._expected_block_length(
            message.data_shards, message.total_shards, message.original_length
        )
        if expected is None:
            return  # invalid (k, m, length) geometry; refuse to echo
        for f in message.fragments:
            if not 0 <= f.index < len(message.hash_list):
                return  # inconsistent dealer; refuse to echo
            if len(f.block) != expected:
                return  # inconsistent dealer; refuse to echo
            if _hash_fragment(f) != message.hash_list[f.index]:
                return  # inconsistent dealer; refuse to echo
        self.my_fragments = message.fragments
        self.hash_list = message.hash_list
        self.data_shards = message.data_shards
        self.total_shards = message.total_shards
        self.original_length = message.original_length
        self.broadcast(AvidEcho(message.commitment))

    def _handle_echo(self, message: AvidEcho, sender: int) -> None:
        senders = self._echo_senders.setdefault(message.commitment, set())
        senders.add(sender)
        if self.stored_commitment is None and self.quorums.storage_quorum(senders):
            self.stored_commitment = message.commitment
            self.bump("stored")
            if self.on_stored is not None:
                self.on_stored(self.pid, message.commitment)

    # -- retriever side ----------------------------------------------------------------
    def retrieve(self, commitment: bytes) -> None:
        """Ask every party for its fragments of ``commitment``."""
        self._collected.clear()
        self.retrieved = None
        self.broadcast(AvidRetrieveRequest(commitment))

    def _handle_retrieve_request(self, message: AvidRetrieveRequest, sender: int) -> None:
        if self.my_fragments and self.stored_commitment == message.commitment:
            self.send(
                sender,
                AvidFragments(commitment=message.commitment, fragments=self.my_fragments),
            )

    def _handle_fragments(self, message: AvidFragments, sender: int) -> None:
        if self.retrieved is not None or not self.hash_list:
            return
        # A Byzantine dealer could have handed different parties blocks
        # of different lengths, each consistent with its own hash-list
        # entry; collecting only the expected length keeps the decode
        # below from ever seeing an inconsistent fragment set.
        expected = self._expected_block_length(
            self.data_shards, self.total_shards, self.original_length
        )
        for f in message.fragments:
            if (
                0 <= f.index < len(self.hash_list)
                and len(f.block) == expected
                and _hash_fragment(f) == self.hash_list[f.index]
            ):
                self._collected[f.index] = f.block
        if len(self._collected) >= self.data_shards:
            code = ReedSolomon(k=self.data_shards, m=self.total_shards)
            data = code.decode_erasures_blocks(
                self._collected, self.original_length
            )
            self.bump("decode_symbols", code.work_counter)
            self.retrieved = data
            if self.on_retrieved is not None:
                self.on_retrieved(self.pid, data)

    @staticmethod
    def _expected_block_length(k: int, m: int, original_length: int) -> Optional[int]:
        """Fragment block length the (k, m) geometry dictates for the
        advertised payload length; ``None`` when the geometry itself is
        invalid (delegates validation and field selection to
        :class:`ReedSolomon` rather than duplicating its rules)."""
        if original_length < 0:
            return None
        try:
            code = ReedSolomon(k=k, m=m)
        except ValueError:
            return None
        return code.block_length(original_length)
