"""Asynchronous Verifiable Information Dispersal (paper, Section 5.1).

A simplified Cachin-Tessaro AVID: the dealer Reed-Solomon-encodes the
data, commits to the fragment vector with a hash list, and sends each
party its fragment(s) plus the commitment.  Parties that find their
fragments consistent echo the commitment; a storage quorum of echoes
makes the data *stored* (retrievable despite ``f`` faults).  Retrieval
collects hash-verified fragments and erasure-decodes.

Nominal layout: ``(t+1, n)`` coding, one fragment per party, storage
quorum ``2t + 1``.  Weighted layout (``qualification_setup``): ``(ceil(
beta_n T), T)`` coding, ``t_i`` fragments for party ``i``, storage quorum
weight above ``2 f_w W`` -- the fragments held by the honest part (weight
above ``f_w W``) of any storage quorum suffice to reconstruct because the
WQ constraint qualifies every such subset (Section 5.1's argument).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..codes.reed_solomon import Fragment, ReedSolomon
from ..sim.process import Party
from ..weighted.quorum import QuorumPolicy
from ..weighted.virtual import VirtualUserMap

__all__ = ["AvidDisperse", "AvidEcho", "AvidRetrieveRequest", "AvidFragments", "AvidParty", "fragment_digest"]


def fragment_digest(fragments: Sequence[Fragment]) -> bytes:
    """Commitment: hash of the per-fragment hash list (all ``m`` fragments)."""
    h = hashlib.sha256()
    for f in fragments:
        h.update(f.index.to_bytes(4, "big"))
        h.update(hashlib.sha256(f.value.to_bytes(4, "big")).digest())
    return h.digest()


@dataclass(frozen=True)
class AvidDisperse:
    """Dealer -> party: the party's fragments, the full hash list, metadata."""

    fragments: tuple[Fragment, ...]
    hash_list: tuple[bytes, ...]
    commitment: bytes
    data_shards: int
    total_shards: int

    def wire_size(self) -> int:
        return 64 + 4 * len(self.fragments) + 32 * len(self.hash_list)


@dataclass(frozen=True)
class AvidEcho:
    """Party -> all: my fragments are consistent with this commitment."""

    commitment: bytes

    def wire_size(self) -> int:
        return 64 + 32


@dataclass(frozen=True)
class AvidRetrieveRequest:
    """Retriever -> all: please send your fragments for this commitment."""

    commitment: bytes

    def wire_size(self) -> int:
        return 64 + 32


@dataclass(frozen=True)
class AvidFragments:
    """Party -> retriever: stored fragments."""

    commitment: bytes
    fragments: tuple[Fragment, ...]

    def wire_size(self) -> int:
        return 64 + 32 + 4 * len(self.fragments)


def _hash_fragment(f: Fragment) -> bytes:
    return hashlib.sha256(f.value.to_bytes(4, "big")).digest()


class AvidParty(Party):
    """One AVID participant (dealer, storer, and potential retriever)."""

    def __init__(
        self,
        pid: int,
        quorums: QuorumPolicy,
        *,
        on_stored: Optional[Callable[[int, bytes], None]] = None,
        on_retrieved: Optional[Callable[[int, bytes], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.quorums = quorums
        self.on_stored = on_stored
        self.on_retrieved = on_retrieved
        self.stored_commitment: Optional[bytes] = None
        self.my_fragments: tuple[Fragment, ...] = ()
        self.hash_list: tuple[bytes, ...] = ()
        self.data_shards = 0
        self.total_shards = 0
        self.retrieved: Optional[list[int]] = None
        self._echo_senders: dict[bytes, set[int]] = {}
        self._collected: dict[int, Fragment] = {}
        self.on(AvidDisperse, self._handle_disperse)
        self.on(AvidEcho, self._handle_echo)
        self.on(AvidRetrieveRequest, self._handle_retrieve_request)
        self.on(AvidFragments, self._handle_fragments)

    # -- dealer side --------------------------------------------------------------
    def disperse(
        self,
        data: Sequence[int],
        code: ReedSolomon,
        vmap: VirtualUserMap,
    ) -> bytes:
        """Encode ``data`` and send each party its fragments.

        ``vmap`` maps fragment indices to parties (one fragment per
        virtual user); the nominal case uses the identity assignment.
        Returns the commitment.
        """
        fragments = code.encode(list(data))
        self.bump("encode_symbols", code.m * code.k)
        hash_list = tuple(_hash_fragment(f) for f in fragments)
        commitment = fragment_digest(fragments)
        assert self.network is not None
        for party in self.network.party_ids:
            mine = tuple(fragments[v] for v in vmap.virtual_ids(party))
            self.send(
                party,
                AvidDisperse(
                    fragments=mine,
                    hash_list=hash_list,
                    commitment=commitment,
                    data_shards=code.k,
                    total_shards=code.m,
                ),
            )
        return commitment

    # -- storer side -----------------------------------------------------------------
    def _handle_disperse(self, message: AvidDisperse, sender: int) -> None:
        for f in message.fragments:
            if _hash_fragment(f) != message.hash_list[f.index]:
                return  # inconsistent dealer; refuse to echo
        self.my_fragments = message.fragments
        self.hash_list = message.hash_list
        self.data_shards = message.data_shards
        self.total_shards = message.total_shards
        self.broadcast(AvidEcho(message.commitment))

    def _handle_echo(self, message: AvidEcho, sender: int) -> None:
        senders = self._echo_senders.setdefault(message.commitment, set())
        senders.add(sender)
        if self.stored_commitment is None and self.quorums.storage_quorum(senders):
            self.stored_commitment = message.commitment
            self.bump("stored")
            if self.on_stored is not None:
                self.on_stored(self.pid, message.commitment)

    # -- retriever side ----------------------------------------------------------------
    def retrieve(self, commitment: bytes) -> None:
        """Ask every party for its fragments of ``commitment``."""
        self._collected.clear()
        self.retrieved = None
        self.broadcast(AvidRetrieveRequest(commitment))

    def _handle_retrieve_request(self, message: AvidRetrieveRequest, sender: int) -> None:
        if self.my_fragments and self.stored_commitment == message.commitment:
            self.send(
                sender,
                AvidFragments(commitment=message.commitment, fragments=self.my_fragments),
            )

    def _handle_fragments(self, message: AvidFragments, sender: int) -> None:
        if self.retrieved is not None or not self.hash_list:
            return
        for f in message.fragments:
            if f.index < len(self.hash_list) and _hash_fragment(f) == self.hash_list[f.index]:
                self._collected[f.index] = f
        if len(self._collected) >= self.data_shards:
            code = ReedSolomon(k=self.data_shards, m=self.total_shards)
            data = code.decode_erasures(list(self._collected.values()))
            self.bump("decode_symbols", code.work_counter)
            self.retrieved = data
            if self.on_retrieved is not None:
                self.on_retrieved(self.pid, bytes(0))
