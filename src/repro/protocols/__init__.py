"""Distributed protocols: Bracha broadcast, AVID, online-error-correction
dissemination, randomness beacon, VABA (+ black-box weighted version),
SSLE, and PoS checkpointing (paper, Sections 4-6)."""

from .avid import AvidParty, fragment_digest
from .checkpointing import CheckpointParty, CheckpointShare, CheckpointVote
from .common_coin import BeaconParty, CoinShareMsg, ThresholdCoin
from .ec_broadcast import EcParty, GarbageEcParty, OnlineDecoder
from .reliable_broadcast import (
    BroadcastParty,
    EquivocatingSender,
    RbcEcho,
    RbcReady,
    RbcSend,
    SilentParty,
)
from .smr import BatchSend, SmrParty, batch_position
from .ssle import ElectionResult, SsleElection, chain_quality
from .vaba import VabaParty, WeightedVabaRunner

__all__ = [
    "BroadcastParty",
    "EquivocatingSender",
    "SilentParty",
    "RbcSend",
    "RbcEcho",
    "RbcReady",
    "AvidParty",
    "fragment_digest",
    "EcParty",
    "GarbageEcParty",
    "OnlineDecoder",
    "BeaconParty",
    "ThresholdCoin",
    "CoinShareMsg",
    "VabaParty",
    "WeightedVabaRunner",
    "SmrParty",
    "BatchSend",
    "batch_position",
    "SsleElection",
    "ElectionResult",
    "chain_quality",
    "CheckpointParty",
    "CheckpointShare",
    "CheckpointVote",
]
