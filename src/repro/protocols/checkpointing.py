"""Proof-of-stake checkpointing with blunt and tight threshold signatures
(paper, Sections 4.3 and 6.3).

Every ``interval`` blocks the validator set co-signs a checkpoint hash.
Two flavors:

* **blunt** -- parties holding tickets sign immediately with their
  virtual signers; a checkpoint certificate forms when ``ceil(alpha_n T)``
  shares combine.  Safety/liveness follow from the blunt access
  structure (Theorem 4.2).
* **tight** -- one extra vote round (:class:`~repro.weighted.tight.TightGate`):
  shares are only revealed after votes of weight above ``beta W``
  arrived, upgrading the access structure to the weighted threshold
  ``A_w(beta)`` at the cost of exactly one message delay per checkpoint
  (the paper's claim, measured by the benchmark).

Certificate assembly is a hot path when checkpoints are frequent: the
share combine interpolates at zero over the quorum's share indices,
which stabilize after the first certificate -- the Lagrange coefficients
are LRU-cached by index set
(:func:`~repro.crypto.polynomial.lagrange_coefficients_at`), so every
subsequent checkpoint pays only the exponentiations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto.threshold_sig import SignatureShare, ThresholdSignatureScheme
from ..sim.process import Party
from ..weighted.tight import TightGate
from ..weighted.virtual import VirtualUserMap

__all__ = ["CheckpointVote", "CheckpointShare", "CheckpointParty"]


@dataclass(frozen=True)
class CheckpointVote:
    """Tight mode's weightless pre-vote for signing a checkpoint."""

    checkpoint: bytes

    def wire_size(self) -> int:
        return 64 + 32


@dataclass(frozen=True)
class CheckpointShare:
    """One virtual signer's share over the checkpoint hash."""

    checkpoint: bytes
    share: SignatureShare

    def wire_size(self) -> int:
        return 64 + 32 + 96


class CheckpointParty(Party):
    """A validator in the checkpointing protocol.

    ``mode`` is ``"blunt"`` or ``"tight"``; tight mode wires a
    :class:`TightGate` per checkpoint before revealing shares.
    """

    def __init__(
        self,
        pid: int,
        scheme: ThresholdSignatureScheme,
        vmap: VirtualUserMap,
        rng: random.Random,
        *,
        mode: str = "blunt",
        weights=None,
        beta=None,
        on_certified: Optional[Callable[[int, bytes, int], None]] = None,
    ) -> None:
        super().__init__(pid)
        if mode not in ("blunt", "tight"):
            raise ValueError("mode must be 'blunt' or 'tight'")
        if mode == "tight" and (weights is None or beta is None):
            raise ValueError("tight mode needs weights and beta")
        self.scheme = scheme
        self.vmap = vmap
        self.rng = rng
        self.mode = mode
        self.weights = weights
        self.beta = beta
        self.on_certified = on_certified
        self.certificates: dict[bytes, int] = {}
        self._shares: dict[bytes, dict[int, SignatureShare]] = {}
        self._gates: dict[bytes, TightGate] = {}
        self._shared: set[bytes] = set()
        self.on(CheckpointVote, self._handle_vote)
        self.on(CheckpointShare, self._handle_share)

    # -- initiation -----------------------------------------------------------
    def sign_checkpoint(self, checkpoint: bytes) -> None:
        """Participate in certifying ``checkpoint``."""
        if self.mode == "blunt":
            self._reveal_shares(checkpoint)
        else:
            self.broadcast(CheckpointVote(checkpoint))

    def _reveal_shares(self, checkpoint: bytes) -> None:
        if checkpoint in self._shared:
            return
        self._shared.add(checkpoint)
        for vid in self.vmap.virtual_ids(self.pid):
            share = self.scheme.sign_share(vid + 1, checkpoint, self.rng)
            self.bump("shares_signed")
            self.broadcast(CheckpointShare(checkpoint=checkpoint, share=share))

    # -- tight-mode vote round ---------------------------------------------------
    def _handle_vote(self, message: CheckpointVote, sender: int) -> None:
        gate = self._gates.get(message.checkpoint)
        if gate is None:
            gate = TightGate(self.weights, self.beta)
            self._gates[message.checkpoint] = gate
        if gate.add_vote(sender):
            self._reveal_shares(message.checkpoint)

    # -- share collection ----------------------------------------------------------
    def _handle_share(self, message: CheckpointShare, sender: int) -> None:
        if message.checkpoint in self.certificates:
            return
        if not self.scheme.verify_share(message.share, message.checkpoint):
            self.bump("invalid_shares")
            return
        self.bump("shares_verified")
        bucket = self._shares.setdefault(message.checkpoint, {})
        bucket[message.share.index] = message.share
        if len(bucket) >= self.scheme.k:
            signature = self.scheme.combine(
                list(bucket.values()), message.checkpoint, verify=False
            )
            self.certificates[message.checkpoint] = signature
            self.bump("certificates")
            if self.on_certified is not None:
                self.on_certified(self.pid, message.checkpoint, signature)
