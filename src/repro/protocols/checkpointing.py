"""Proof-of-stake checkpointing with blunt and tight threshold signatures
(paper, Sections 4.3 and 6.3).

Every ``interval`` blocks the validator set co-signs a checkpoint hash.
Two flavors:

* **blunt** -- parties holding tickets sign immediately with their
  virtual signers; a checkpoint certificate forms when ``ceil(alpha_n T)``
  shares combine.  Safety/liveness follow from the blunt access
  structure (Theorem 4.2).
* **tight** -- one extra vote round (:class:`~repro.weighted.tight.TightGate`):
  shares are only revealed after votes of weight above ``beta W``
  arrived, upgrading the access structure to the weighted threshold
  ``A_w(beta)`` at the cost of exactly one message delay per checkpoint
  (the paper's claim, measured by the benchmark).

Certificate assembly is a hot path when checkpoints are frequent: the
share combine interpolates at zero over the quorum's share indices,
which stabilize after the first certificate -- the Lagrange coefficients
are LRU-cached by index set
(:func:`~repro.crypto.polynomial.lagrange_coefficients_at`), so every
subsequent checkpoint pays only the exponentiations -- and those run as
one Straus multi-exponentiation.  Share verification is batched at the
quorum decision point: shares buffer unverified until ``k`` are pending,
then one random-linear-combination aggregate
(:meth:`~repro.crypto.threshold_sig.ThresholdSignatureScheme.verify_shares_batch`)
checks them all, with bisection isolating Byzantine shares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto.threshold_sig import SignatureShare, ThresholdSignatureScheme
from ..sim.process import Party
from ..weighted.tight import TightGate
from ..weighted.virtual import VirtualUserMap
from .batching import BatchedQuorumCollector

__all__ = ["CheckpointVote", "CheckpointShare", "CheckpointParty"]


@dataclass(frozen=True)
class CheckpointVote:
    """Tight mode's weightless pre-vote for signing a checkpoint."""

    checkpoint: bytes

    def wire_size(self) -> int:
        return 64 + 32


@dataclass(frozen=True)
class CheckpointShare:
    """One virtual signer's share over the checkpoint hash."""

    checkpoint: bytes
    share: SignatureShare

    def wire_size(self) -> int:
        # checkpoint hash + share value + DLEQ proof (challenge,
        # response, and the two batch-enabling Sigma commitments)
        return 64 + 32 + 96 + 128


class CheckpointParty(Party):
    """A validator in the checkpointing protocol.

    ``mode`` is ``"blunt"`` or ``"tight"``; tight mode wires a
    :class:`TightGate` per checkpoint before revealing shares.
    """

    def __init__(
        self,
        pid: int,
        scheme: ThresholdSignatureScheme,
        vmap: VirtualUserMap,
        rng: random.Random,
        *,
        mode: str = "blunt",
        weights=None,
        beta=None,
        on_certified: Optional[Callable[[int, bytes, int], None]] = None,
    ) -> None:
        super().__init__(pid)
        if mode not in ("blunt", "tight"):
            raise ValueError("mode must be 'blunt' or 'tight'")
        if mode == "tight" and (weights is None or beta is None):
            raise ValueError("tight mode needs weights and beta")
        self.scheme = scheme
        self.vmap = vmap
        self.rng = rng
        self.mode = mode
        self.weights = weights
        self.beta = beta
        self.on_certified = on_certified
        self.certificates: dict[bytes, int] = {}
        #: per-checkpoint verify-in-batches quorum state
        self._collectors: dict[bytes, BatchedQuorumCollector] = {}
        self._gates: dict[bytes, TightGate] = {}
        self._shared: set[bytes] = set()
        self.on(CheckpointVote, self._handle_vote)
        self.on(CheckpointShare, self._handle_share)

    # -- initiation -----------------------------------------------------------
    def sign_checkpoint(self, checkpoint: bytes) -> None:
        """Participate in certifying ``checkpoint``."""
        if self.mode == "blunt":
            self._reveal_shares(checkpoint)
        else:
            self.broadcast(CheckpointVote(checkpoint))

    def _reveal_shares(self, checkpoint: bytes) -> None:
        if checkpoint in self._shared:
            return
        self._shared.add(checkpoint)
        for vid in self.vmap.virtual_ids(self.pid):
            share = self.scheme.sign_share(vid + 1, checkpoint, self.rng)
            self.bump("shares_signed")
            self.broadcast(CheckpointShare(checkpoint=checkpoint, share=share))

    # -- tight-mode vote round ---------------------------------------------------
    def _handle_vote(self, message: CheckpointVote, sender: int) -> None:
        gate = self._gates.get(message.checkpoint)
        if gate is None:
            gate = TightGate(self.weights, self.beta)
            self._gates[message.checkpoint] = gate
        if gate.add_vote(sender):
            self._reveal_shares(message.checkpoint)

    # -- share collection ----------------------------------------------------------
    def _handle_share(self, message: CheckpointShare, sender: int) -> None:
        """Buffer the share; verify in batches at the quorum point."""
        checkpoint = message.checkpoint
        if checkpoint in self.certificates:
            return
        collector = self._collectors.get(checkpoint)
        if collector is None:
            collector = self._collectors[checkpoint] = BatchedQuorumCollector(
                self.scheme.k,
                lambda batch, cp=checkpoint: self.scheme.verify_shares_batch(batch, cp),
            )
        outcome = collector.add(message.share)
        if outcome is None:
            return
        accepted, rejected = outcome
        if accepted:
            self.bump("shares_verified", accepted)
        if rejected:
            self.bump("invalid_shares", rejected)
        if collector.has_quorum:
            signature = self.scheme.combine(
                collector.quorum_shares(), checkpoint, verify=False
            )
            self.certificates[checkpoint] = signature
            del self._collectors[checkpoint]
            self.bump("certificates")
            if self.on_certified is not None:
                self.on_certified(self.pid, checkpoint, signature)
