"""Verify-in-batches quorum collection, shared by share-combining
protocols (beacon and checkpointing).

The seed protocols verified every share on arrival -- one DLEQ oracle
call (four full-width exponentiations) per share, per receiving party.
The batched engine moves verification to the **quorum decision point**:
shares buffer unverified until a quorum's worth is pending, then one
random-linear-combination aggregate checks them all, with the batch
verifier's bisection isolating any Byzantine shares.

Byzantine-robustness invariants (a regression test covers the first):

* An index is never trusted or *blocked* by index alone.  Share
  messages carry no sender authentication, so a Byzantine party can
  broadcast garbage under an honest signer's index; buffering multiple
  candidate shares per index and remembering rejections by share
  *content* (the share dataclasses are frozen, hence hashable) keeps
  the honest share verifiable whenever it arrives -- before, after, or
  between forgeries.
* Every distinct share is batch-verified at most once (while it stays
  in the bounded dedup window), so an adversary replaying rejected
  shares cannot cheaply re-trigger aggregate work.
* State is **bounded**: when the buffered candidates alone reach a
  batch's worth they are verified immediately even without a quorum in
  sight (flooding buys the attacker amortized batch-verification work,
  the same cost profile as the verify-on-arrival seed path, instead of
  unbounded memory), and the dedup set is windowed -- overflowing it
  merely lets a replayed share be re-verified once more.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

__all__ = ["BatchedQuorumCollector"]

#: dedup-window size as a multiple of the threshold (plus a floor):
#: overflow only costs re-verification of replays, never correctness
_SEEN_WINDOW_FACTOR = 8
_SEEN_WINDOW_FLOOR = 64


class BatchedQuorumCollector:
    """Collects one message's shares and batch-verifies at the quorum point.

    ``verify_batch`` maps a list of shares to per-share verdicts (e.g.
    :meth:`ThresholdSignatureScheme.verify_shares_batch` bound to the
    message).  ``verified`` maps signer index to the first share of that
    index that survived a batch.
    """

    __slots__ = (
        "threshold",
        "_verify_batch",
        "_pending",
        "_pending_count",
        "_seen",
        "verified",
    )

    def __init__(
        self, threshold: int, verify_batch: Callable[[Sequence], List[bool]]
    ) -> None:
        self.threshold = threshold
        self._verify_batch = verify_batch
        #: signer index -> unverified candidate shares (possibly several
        #: per index: forgeries must not shadow the honest share)
        self._pending: Dict[int, list] = {}
        self._pending_count = 0
        #: recently buffered shares, by content: dedup + no re-verify
        self._seen: set = set()
        self.verified: Dict[int, object] = {}

    def add(self, share) -> "tuple[int, int] | None":
        """Buffer ``share``; batch-verify once a quorum's worth is pending.

        Returns ``(accepted, rejected)`` share counts when a batch ran,
        ``None`` when the share was merely buffered (or was a duplicate).
        """
        index = share.index
        if index in self.verified or share in self._seen:
            return None
        if len(self._seen) >= _SEEN_WINDOW_FACTOR * self.threshold + _SEEN_WINDOW_FLOOR:
            self._seen.clear()
        self._seen.add(share)
        self._pending.setdefault(index, []).append(share)
        self._pending_count += 1
        quorum_possible = len(self.verified) + len(self._pending) >= self.threshold
        # Memory-pressure flush: a flood of forged candidates is drained
        # through batch verification instead of accumulating.
        overfull = self._pending_count >= self.threshold + _SEEN_WINDOW_FLOOR
        if not (quorum_possible or overfull):
            return None
        batch = [s for candidates in self._pending.values() for s in candidates]
        self._pending.clear()
        self._pending_count = 0
        accepted = rejected = 0
        for candidate, ok in zip(batch, self._verify_batch(batch)):
            if ok:
                if candidate.index not in self.verified:
                    self.verified[candidate.index] = candidate
                    accepted += 1
            else:
                rejected += 1
        return accepted, rejected

    @property
    def has_quorum(self) -> bool:
        """Do the verified shares reach the threshold?"""
        return len(self.verified) >= self.threshold

    def quorum_shares(self) -> list:
        """The verified shares (call when :attr:`has_quorum`)."""
        return list(self.verified.values())
