"""Single Secret Leader Election with chain quality (paper, Section 4.4).

The weighted SSLE of the paper elects a uniformly random *virtual user*
per epoch; the owner of the elected ticket is the leader.  Fairness over
weights is *not* preserved (tickets deviate from weights), but the
relaxed *chain-quality* property is: the adversary's fraction of won
epochs cannot exceed its ticket fraction, which WR caps below ``f_n``
even when its weight reaches ``f_w = f_n - eps``.

Secrecy is modeled structurally: the election value is derived from an
unpredictable beacon output, and only the owner can claim (and everyone
can verify) the win -- matching the interface of the ThFHE/shuffle
constructions the paper cites without reimplementing their heavy
cryptography (the weight-reduction layer under test is identical).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

from ..weighted.virtual import VirtualUserMap

__all__ = ["ElectionResult", "SsleElection", "chain_quality"]


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of one epoch's election."""

    epoch: int
    winning_ticket: int
    leader: int


class SsleElection:
    """Per-epoch secret leader election over a virtual-user map."""

    def __init__(self, vmap: VirtualUserMap, *, beacon_seed: int = 0) -> None:
        if vmap.total_virtual == 0:
            raise ValueError("no tickets to elect from")
        self.vmap = vmap
        self.beacon_seed = beacon_seed

    def _beacon(self, epoch: int) -> int:
        """Unpredictable epoch randomness (stand-in for the threshold coin;
        :mod:`repro.protocols.common_coin` provides the real construction)."""
        digest = hashlib.sha256(
            f"ssle|{self.beacon_seed}|{epoch}".encode()
        ).digest()
        return int.from_bytes(digest, "big")

    def elect(self, epoch: int) -> ElectionResult:
        """Run the election for ``epoch``; uniform over tickets."""
        ticket = self._beacon(epoch) % self.vmap.total_virtual
        return ElectionResult(
            epoch=epoch, winning_ticket=ticket, leader=self.vmap.owner(ticket)
        )

    def claim(self, party: int, epoch: int) -> bool:
        """Can ``party`` produce a valid leadership claim for ``epoch``?

        Only the owner of the winning ticket can -- in the real protocol
        because only it can open the commitment; here by direct check.
        """
        return self.elect(epoch).leader == party

    def verify_claim(self, party: int, epoch: int) -> bool:
        """Anyone can verify a revealed claim (paper's requirement)."""
        return self.claim(party, epoch)


def chain_quality(
    election: SsleElection,
    corrupt: set[int],
    epochs: int,
    *,
    start_epoch: int = 0,
) -> float:
    """Fraction of epochs won by corrupt parties over ``epochs`` rounds.

    The paper's chain-quality claim: this stays below ``alpha := f_n``
    (up to sampling noise) whenever the corrupt ticket fraction does --
    which WR guarantees for corrupt weight below ``f_w``.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    wins = 0
    for e in range(start_epoch, start_epoch + epochs):
        if election.elect(e).leader in corrupt:
            wins += 1
    return wins / epochs
