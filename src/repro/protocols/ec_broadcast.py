"""Error-corrected data dissemination with *online error correction*
(paper, Section 5.2; protocol of Das-Xiang-Ren, "Asynchronous Data
Dissemination").

Model: every honest party already holds (a) the hash of the data and (b)
its own fragment(s) -- the state ADD establishes in its first phase.  To
reconstruct, a party solicits fragments from everyone and repeatedly runs
Reed-Solomon *error* decoding as fragments arrive, accepting the first
decode whose hash matches.  Byzantine parties inject garbage fragments;
the decoder's error-correction budget (``e`` errors need ``k + 2e``
fragments) absorbs them.

Payloads are byte strings carried as *block fragments* from the
vectorized coding engine: one contiguous byte block per virtual user,
end to end on both execution backends, decoded by
:meth:`~repro.codes.reed_solomon.ReedSolomon.decode_errors_blocks`
(fold-locate-verify fast path with a per-stripe reference fallback).

Weighted layout (Section 5.2): solve ``WQ(beta_w = 1 - f_w, beta_n)``
with ``beta_n >= r + (1 - beta_n)`` i.e. ``beta_n = r/2 + 1/2``; honest
parties then always hold enough fragments to out-vote the corrupted ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..codes.reed_solomon import BlockFragment, DecodingFailure, ReedSolomon
from ..sim.process import Party
from ..weighted.virtual import VirtualUserMap

__all__ = ["EcRequest", "EcFragment", "OnlineDecoder", "EcParty", "GarbageEcParty"]

#: translate table XORing every byte with 0x2A -- the canonical garbling
_GARBLE = bytes(b ^ 0x2A for b in range(256))


@dataclass(frozen=True)
class EcRequest:
    """Reconstructor -> all: send me your fragments."""

    def wire_size(self) -> int:
        return 64


@dataclass(frozen=True)
class EcFragment:
    """Party -> reconstructor: one fragment (possibly garbage if Byzantine)."""

    fragment: BlockFragment

    def wire_size(self) -> int:
        return 64 + 4 + len(self.fragment.block)


class OnlineDecoder:
    """The online-error-correction loop: try decoding on every arrival.

    Tracks the decode attempts (the paper's computation-overhead driver:
    each attempt costs RS error-decoding work proportional to the number
    of fragments).
    """

    def __init__(
        self, code: ReedSolomon, data_hash: bytes, original_length: int
    ) -> None:
        self.code = code
        self.data_hash = data_hash
        self.original_length = original_length
        self.fragments: dict[int, bytes] = {}
        self.attempts = 0
        self.result: Optional[bytes] = None
        #: decoding work (field ops) of the most recent attempt alone --
        #: the per-decode cost the paper's Table 1 computation column
        #: models (total work across attempts is ``code.work_counter``).
        self.last_attempt_work = 0

    @staticmethod
    def hash_data(data: bytes) -> bytes:
        return hashlib.sha256(bytes(data)).digest()

    def add(self, fragment: BlockFragment) -> Optional[bytes]:
        """Record a fragment; attempt decoding when it could succeed.

        Returns the decoded payload on success, else ``None``.  A
        fragment index seen twice keeps the first value (a Byzantine
        sender gains nothing by flooding).
        """
        if self.result is not None:
            return self.result
        if not 0 <= fragment.index < self.code.m:
            return None
        # A malformed (wrong-length) block would poison every later
        # decode attempt; drop it like any other Byzantine garbage.
        if len(fragment.block) != self.code.block_length(self.original_length):
            return None
        self.fragments.setdefault(fragment.index, fragment.block)
        if len(self.fragments) < self.code.k:
            return None
        self.attempts += 1
        work_before = self.code.work_counter
        try:
            data = self.code.decode_errors_blocks(
                self.fragments, self.original_length
            )
        except DecodingFailure:
            return None
        finally:
            self.last_attempt_work = self.code.work_counter - work_before
        if self.hash_data(data) == self.data_hash:
            self.result = data
            return data
        return None


class EcParty(Party):
    """Honest ADD participant: serves its fragments, reconstructs on demand."""

    def __init__(
        self,
        pid: int,
        code: ReedSolomon,
        vmap: VirtualUserMap,
        *,
        on_reconstructed: Optional[Callable[[int, bytes], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.code = code
        self.vmap = vmap
        self.on_reconstructed = on_reconstructed
        self.my_fragments: tuple[BlockFragment, ...] = ()
        self.data_hash: Optional[bytes] = None
        self.original_length = 0
        self.decoder: Optional[OnlineDecoder] = None
        self.reconstructed: Optional[bytes] = None
        self.on(EcRequest, self._handle_request)
        self.on(EcFragment, self._handle_fragment)

    def install(
        self,
        fragments: Sequence[BlockFragment],
        data_hash: bytes,
        original_length: int,
    ) -> None:
        """Phase-1 state: this party's fragments plus the data hash."""
        self.my_fragments = tuple(fragments)
        self.data_hash = data_hash
        self.original_length = original_length

    def reconstruct(self) -> None:
        """Solicit fragments and start online error correction."""
        if self.data_hash is None:
            raise RuntimeError("install() must run before reconstruct()")
        self.decoder = OnlineDecoder(
            ReedSolomon(k=self.code.k, m=self.code.m, field=self.code.field),
            self.data_hash,
            self.original_length,
        )
        for f in self.my_fragments:
            self.decoder.add(f)
        self.broadcast(EcRequest(), include_self=False)

    def _handle_request(self, message: EcRequest, sender: int) -> None:
        for f in self.my_fragments:
            self.send(sender, EcFragment(f))

    def _handle_fragment(self, message: EcFragment, sender: int) -> None:
        if self.decoder is None or self.reconstructed is not None:
            return
        # Only accept fragment indices the sender actually owns -- the ADD
        # protocol authenticates fragment positions by channel identity.
        if message.fragment.index not in self.vmap.virtual_ids(sender):
            return
        result = self.decoder.add(message.fragment)
        self.bump("decode_attempts", 0)
        if result is not None:
            self.reconstructed = result
            self.bump("decode_work", self.decoder.code.work_counter)
            self.bump("decode_final_work", self.decoder.last_attempt_work)
            self.bump("decode_attempts", self.decoder.attempts)
            if self.on_reconstructed is not None:
                self.on_reconstructed(self.pid, result)


class GarbageEcParty(EcParty):
    """Byzantine: answers fragment requests with garbage values."""

    def _handle_request(self, message: EcRequest, sender: int) -> None:
        for f in self.my_fragments:
            garbled = f.block.translate(_GARBLE)
            if garbled == f.block:  # empty block: nothing to garble
                garbled = b"\x01" * len(f.block)
            self.send(sender, EcFragment(BlockFragment(f.index, garbled)))
