"""Distributed randomness beacon protocol (paper, Sections 4.1 and 6.1).

Wraps :class:`repro.crypto.common_coin.WeightedCoin` in network messages:
each party broadcasts the signature shares of all its virtual signers for
an epoch; every party combines the first ``ceil(alpha_n T)`` verified
shares it receives and obtains the *same* value (threshold uniqueness).
Corrupt parties cannot predict the value before some honest party starts
the epoch, because they hold fewer than ``alpha_n T`` shares (WR).

Share verification is **batched at the quorum decision point**
(:class:`~repro.protocols.batching.BatchedQuorumCollector`): arriving
shares are buffered unverified, and only once a quorum's worth is
pending does one random-linear-combination aggregate
(:meth:`~repro.crypto.common_coin.CommonCoin.verify_shares`) check them
all -- a weighted coin with thousands of tickets opens in a handful of
multi-exponentiations instead of thousands of scalar ``pow`` chains.
Invalid shares are pinpointed by the batch verifier's bisection and only
the survivors count toward the threshold.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto.common_coin import CommonCoin, WeightedCoin
from ..crypto.group import SchnorrGroup
from ..crypto.threshold_sig import SignatureShare
from ..sim.process import Party
from .batching import BatchedQuorumCollector

__all__ = ["CoinShareMsg", "BeaconParty", "ThresholdCoin", "deterministic_coin"]


def deterministic_coin(tag: str) -> Callable[[int], int]:
    """A stand-in epoch coin: a pure function of ``(tag, epoch)``.

    Drivers that need a common coin but not unpredictability (CLI runs,
    benchmarks, examples) share this instead of the full threshold-
    signature beacon; ``tag`` domain-separates independent experiments.
    """

    def coin(epoch: int) -> int:
        digest = hashlib.sha256(f"{tag}|{epoch}".encode()).digest()
        return int.from_bytes(digest[:4], "big")

    return coin


@dataclass(frozen=True)
class CoinShareMsg:
    """One virtual signer's coin share for an epoch."""

    epoch: int
    share: SignatureShare

    def wire_size(self) -> int:
        # share value + DLEQ proof (challenge, response, and the two
        # Sigma commitments that make the proof batch-verifiable)
        return 64 + 96 + 128


class ThresholdCoin:
    """A threshold-signature round coin pluggable into VABA.

    Callable as ``coin(round) -> int``: the dealer-trusted simulation
    setup signs one share per virtual signer, batch-verifies them in a
    single aggregate at the moment the round's value is demanded (the
    quorum decision point in :class:`~repro.protocols.vaba.VabaParty`),
    and opens the unique signature.  Values are cached per round, so
    every party sharing one instance -- the same trust model as the
    ``coin_seed`` hash stand-in it replaces -- sees the same leader at a
    fraction of the per-share verification cost.
    """

    def __init__(self, group: SchnorrGroup, n: int, k: int, rng) -> None:
        self.coin = CommonCoin(group, n=n, k=k, rng=rng)
        self.n = n
        self.k = k
        self.rng = rng
        self._values: dict[int, int] = {}
        #: total shares batch-verified (exposed for benchmarks/tests)
        self.shares_verified = 0

    def __call__(self, rnd: int) -> int:
        value = self._values.get(rnd)
        if value is None:
            shares = [self.coin.share(i, rnd, self.rng) for i in range(1, self.k + 1)]
            valid = [
                s
                for s, ok in zip(shares, self.coin.verify_shares(shares, rnd))
                if ok
            ]
            self.shares_verified += len(shares)
            value = self._values[rnd] = self.coin.open(valid, rnd, verify=False)
        return value


class BeaconParty(Party):
    """One beacon participant controlling ``t_i`` virtual signers."""

    def __init__(
        self,
        pid: int,
        coin: WeightedCoin,
        rng: random.Random,
        *,
        on_value: Optional[Callable[[int, int, int], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.coin = coin
        self.rng = rng
        self.on_value = on_value
        self.values: dict[int, int] = {}
        #: per-epoch verify-in-batches quorum state
        self._collectors: dict[int, BatchedQuorumCollector] = {}
        self.on(CoinShareMsg, self._handle_share)

    def start_epoch(self, epoch: int) -> None:
        """Contribute this party's shares for ``epoch`` (one per ticket)."""
        for share in self.coin.shares_of_party(self.pid, epoch, self.rng):
            self.bump("shares_signed")
            self.broadcast(CoinShareMsg(epoch=epoch, share=share))

    def _collector(self, epoch: int) -> BatchedQuorumCollector:
        collector = self._collectors.get(epoch)
        if collector is None:
            collector = self._collectors[epoch] = BatchedQuorumCollector(
                self.coin.threshold,
                lambda batch, epoch=epoch: self.coin.verify_shares(batch, epoch),
            )
        return collector

    def _handle_share(self, message: CoinShareMsg, sender: int) -> None:
        """Buffer the share; verify in batches at the quorum point."""
        epoch = message.epoch
        if epoch in self.values:
            return
        collector = self._collector(epoch)
        outcome = collector.add(message.share)
        if outcome is None:
            return
        accepted, rejected = outcome
        if accepted:
            self.bump("shares_verified", accepted)
        if rejected:
            self.bump("invalid_shares", rejected)
        if collector.has_quorum:
            value = self.coin.coin.open(collector.quorum_shares(), epoch, verify=False)
            self.values[epoch] = value
            del self._collectors[epoch]
            self.bump("epochs_opened")
            if self.on_value is not None:
                self.on_value(self.pid, epoch, value)
