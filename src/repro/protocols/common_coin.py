"""Distributed randomness beacon protocol (paper, Sections 4.1 and 6.1).

Wraps :class:`repro.crypto.common_coin.WeightedCoin` in network messages:
each party broadcasts the signature shares of all its virtual signers for
an epoch; every party combines the first ``ceil(alpha_n T)`` verified
shares it receives and obtains the *same* value (threshold uniqueness).
Corrupt parties cannot predict the value before some honest party starts
the epoch, because they hold fewer than ``alpha_n T`` shares (WR).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto.common_coin import WeightedCoin
from ..crypto.threshold_sig import SignatureShare
from ..sim.process import Party

__all__ = ["CoinShareMsg", "BeaconParty", "deterministic_coin"]


def deterministic_coin(tag: str) -> Callable[[int], int]:
    """A stand-in epoch coin: a pure function of ``(tag, epoch)``.

    Drivers that need a common coin but not unpredictability (CLI runs,
    benchmarks, examples) share this instead of the full threshold-
    signature beacon; ``tag`` domain-separates independent experiments.
    """

    def coin(epoch: int) -> int:
        digest = hashlib.sha256(f"{tag}|{epoch}".encode()).digest()
        return int.from_bytes(digest[:4], "big")

    return coin


@dataclass(frozen=True)
class CoinShareMsg:
    """One virtual signer's coin share for an epoch."""

    epoch: int
    share: SignatureShare

    def wire_size(self) -> int:
        return 64 + 96  # share value + DLEQ proof


class BeaconParty(Party):
    """One beacon participant controlling ``t_i`` virtual signers."""

    def __init__(
        self,
        pid: int,
        coin: WeightedCoin,
        rng: random.Random,
        *,
        on_value: Optional[Callable[[int, int, int], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.coin = coin
        self.rng = rng
        self.on_value = on_value
        self.values: dict[int, int] = {}
        self._pending: dict[int, dict[int, SignatureShare]] = {}
        self.on(CoinShareMsg, self._handle_share)

    def start_epoch(self, epoch: int) -> None:
        """Contribute this party's shares for ``epoch`` (one per ticket)."""
        for share in self.coin.shares_of_party(self.pid, epoch, self.rng):
            self.bump("shares_signed")
            self.broadcast(CoinShareMsg(epoch=epoch, share=share))

    def _handle_share(self, message: CoinShareMsg, sender: int) -> None:
        if message.epoch in self.values:
            return
        if not self.coin.coin.verify_share(message.share, message.epoch):
            self.bump("invalid_shares")
            return
        self.bump("shares_verified")
        bucket = self._pending.setdefault(message.epoch, {})
        bucket[message.share.index] = message.share
        if len(bucket) >= self.coin.threshold:
            value = self.coin.coin.open(list(bucket.values()), message.epoch)
            self.values[message.epoch] = value
            self.bump("epochs_opened")
            if self.on_value is not None:
                self.on_value(self.pid, message.epoch, value)
