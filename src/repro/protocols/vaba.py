"""Validated (asynchronous) Byzantine agreement and its black-box
weighted transformation (paper, Definition 4.3 and Section 4.4).

The nominal protocol here is a deliberately compact round-based VABA in
the style of [Cachin et al. 2001]: parties broadcast signed proposals,
a common coin retro-actively elects a round leader, parties vote for the
leader's (externally valid) proposal, and a vote quorum decides.  The
asynchronous adversary controls message timing through the simulator's
delay model; the coin's unpredictability makes the leader un-biasable, so
the protocol terminates in expected O(1) rounds.

The black-box weighted version (:class:`WeightedVabaParty`) runs the
*same* nominal logic among ``T`` virtual users mapped onto real parties
by a ``WR(f_n - eps, f_n)`` solution; real parties with zero tickets
receive the output from vouching messages of weight more than ``f_w W``
(the Section 4.4 output rule).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..sim.process import Party
from ..weighted.virtual import VirtualUserMap

__all__ = ["Proposal", "Vote", "Decide", "Vouch", "VabaParty", "WeightedVabaRunner"]


@dataclass(frozen=True)
class Proposal:
    """A party's proposal for a round."""

    round: int
    value: bytes

    def wire_size(self) -> int:
        return 64 + len(self.value)


@dataclass(frozen=True)
class Vote:
    """A vote for the elected leader's value in a round."""

    round: int
    value: bytes

    def wire_size(self) -> int:
        return 64 + len(self.value)


@dataclass(frozen=True)
class Commit:
    """Once-per-party commitment to a value.

    The commit layer is what makes agreement round-independent: an honest
    party commits at most one value in its lifetime, so two commit
    quorums of size ``n - t`` for different values would have to share
    ``n - 2t >= t + 1`` honest double-committers -- impossible.
    """

    value: bytes

    def wire_size(self) -> int:
        return 64 + len(self.value)


@dataclass(frozen=True)
class Decide:
    """Decision announcement (forwarded for totality)."""

    value: bytes

    def wire_size(self) -> int:
        return 64 + len(self.value)


@dataclass(frozen=True)
class Vouch:
    """Weighted output rule: real parties vouch for the decided value so
    zero-ticket parties can output (Section 4.4, output mapping)."""

    value: bytes

    def wire_size(self) -> int:
        return 64 + len(self.value)


def _coin_value(seed: int, rnd: int, n: int) -> int:
    """Deterministic unpredictable-enough round coin for the simulation.

    Stands in for a threshold-signature coin (implemented for real in
    :mod:`repro.protocols.common_coin`); hashing the (seed, round) pair
    keeps every party in agreement while being uncorrelated with
    proposals made before the round closes.
    """
    digest = hashlib.sha256(f"vaba-coin|{seed}|{rnd}".encode()).digest()
    return int.from_bytes(digest, "big") % n


class VabaParty(Party):
    """Nominal VABA participant (n parties, < n/3 Byzantine).

    ``validity_predicate`` implements external validity; invalid values
    are never proposed, voted for, or decided by honest parties.

    ``coin`` optionally replaces the hash stand-in with a real round
    coin, e.g. :class:`~repro.protocols.common_coin.ThresholdCoin`: the
    coin is only demanded at the quorum decision point (``n - t``
    proposals in), which is where the threshold coin batch-verifies its
    shares -- verify-in-batches rather than verify-on-arrival.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        *,
        coin_seed: int = 0,
        coin: Optional[Callable[[int], int]] = None,
        validity_predicate: Optional[Callable[[bytes], bool]] = None,
        on_decide: Optional[Callable[[int, bytes], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.t = t
        self.coin_seed = coin_seed
        self.coin = coin
        self.validity = validity_predicate or (lambda value: True)
        self.on_decide = on_decide
        self.decided: Optional[bytes] = None
        self.input_value: Optional[bytes] = None
        self.round = 0
        self.max_rounds = 64  # safety valve for simulation runs
        self._proposals: dict[int, dict[int, bytes]] = {}
        self._voted_rounds: set[int] = set()
        self._advanced_rounds: set[int] = set()
        self._votes: dict[tuple[int, bytes], set[int]] = {}
        self.committed: Optional[bytes] = None
        self._commit_senders: dict[bytes, set[int]] = {}
        self._decide_senders: dict[bytes, set[int]] = {}
        self.on(Proposal, self._handle_proposal)
        self.on(Vote, self._handle_vote)
        self.on(Commit, self._handle_commit)
        self.on(Decide, self._handle_decide)

    # -- protocol ----------------------------------------------------------------
    def propose(self, value: bytes) -> None:
        """Start the protocol with an externally valid input."""
        if not self.validity(value):
            raise ValueError("input does not satisfy the validity predicate")
        self.input_value = value
        self._start_round(0)

    def _start_round(self, rnd: int) -> None:
        if self.decided is not None or rnd > self.max_rounds:
            return
        self.round = max(self.round, rnd)
        assert self.input_value is not None
        self.broadcast(Proposal(round=rnd, value=self.input_value))

    def _handle_proposal(self, message: Proposal, sender: int) -> None:
        if self.decided is not None or not self.validity(message.value):
            return
        bucket = self._proposals.setdefault(message.round, {})
        bucket.setdefault(sender, message.value)
        self._try_progress(message.round)

    def _try_progress(self, rnd: int) -> None:
        """Re-evaluated on every proposal arrival for round ``rnd``.

        Once ``n - t`` proposals are in, the round's coin elects a leader
        retroactively.  A party votes as soon as it holds the leader's
        proposal, and (independently) advances to the next round so that
        rounds keep progressing even when the leader stays silent.
        Agreement argument: within a round all honest votes carry the
        leader's value as each honest party saw it, and two values can
        only both reach ``n - t`` votes if ``n <= 3t`` -- excluded.
        Across rounds, a decision quorum retires at least ``t + 1``
        honest parties, leaving fewer than ``n - t`` possible voters.
        """
        bucket = self._proposals.get(rnd, {})
        if len(bucket) < self.n - self.t:
            return
        if self.coin is not None:
            leader = self.coin(rnd) % self.n
        else:
            leader = _coin_value(self.coin_seed, rnd, self.n)
        if rnd not in self._voted_rounds and leader in bucket:
            self._voted_rounds.add(rnd)
            self.bump("coin_flips")
            self.broadcast(Vote(round=rnd, value=bucket[leader]))
        if rnd not in self._advanced_rounds:
            self._advanced_rounds.add(rnd)
            # Adopt the leader's value when known to converge inputs.
            self.input_value = bucket.get(leader, next(iter(bucket.values())))
            self._start_round(rnd + 1)

    def _handle_vote(self, message: Vote, sender: int) -> None:
        if self.decided is not None or not self.validity(message.value):
            return
        key = (message.round, message.value)
        senders = self._votes.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.n - self.t:
            self._commit(message.value)

    def _commit(self, value: bytes) -> None:
        """Commit once, forever: the safety anchor (see :class:`Commit`)."""
        if self.committed is not None:
            return
        self.committed = value
        self.input_value = value  # future proposals carry the commitment
        self.broadcast(Commit(value=value))

    def _handle_commit(self, message: Commit, sender: int) -> None:
        if not self.validity(message.value):
            return
        senders = self._commit_senders.setdefault(message.value, set())
        senders.add(sender)
        # Amplify: t+1 commits contain an honest one, safe to join.
        if len(senders) >= self.t + 1:
            self._commit(message.value)
        if len(senders) >= self.n - self.t:
            self._decide(message.value)

    def _decide(self, value: bytes) -> None:
        if self.decided is not None:
            return
        self.decided = value
        self.bump("decisions")
        self.broadcast(Decide(value=value))
        if self.on_decide is not None:
            self.on_decide(self.pid, value)

    def _handle_decide(self, message: Decide, sender: int) -> None:
        if not self.validity(message.value):
            return
        senders = self._decide_senders.setdefault(message.value, set())
        senders.add(sender)
        if len(senders) >= self.t + 1:
            self._decide(message.value)


class WeightedVabaRunner:
    """Black-box weighted VABA: virtual users inside one real network.

    Builds one :class:`VabaParty` per *virtual* user; real party ``i``
    drives the virtual parties ``vmap.virtual_ids(i)`` with its input and
    takes the output of its first virtual identity (Section 4.4's
    input/output mapping).  Zero-ticket parties receive ``Vouch``
    messages and output once vouches of weight above ``f_w W`` agree.
    """

    def __init__(
        self,
        vmap: VirtualUserMap,
        weights: Sequence,
        f_w,
        *,
        coin_seed: int = 0,
        coin: Optional[Callable[[int], int]] = None,
        validity_predicate: Optional[Callable[[bytes], bool]] = None,
    ) -> None:
        from fractions import Fraction

        from ..core.types import as_fraction, normalize_weights

        self.vmap = vmap
        self.weights = normalize_weights(weights)
        self.f_w = as_fraction(f_w)
        self.total_weight = sum(self.weights, start=Fraction(0))
        self.coin_seed = coin_seed
        self.coin = coin
        self.validity = validity_predicate
        total = vmap.total_virtual
        # Nominal fault budget: strictly below f_n * T corrupted virtual
        # users is guaranteed by WR; the nominal protocol gets t = that max.
        self.n_virtual = total
        self.outputs: dict[int, bytes] = {}

    def virtual_fault_budget(self, f_n) -> int:
        from ..core.types import as_fraction

        value = as_fraction(f_n) * self.n_virtual
        if value.denominator == 1:
            return value.numerator - 1
        return value.numerator // value.denominator

    def build_parties(self, f_n, on_decide: Callable[[int, bytes], None]):
        """One VabaParty per virtual user (pids are virtual ids)."""
        t = self.virtual_fault_budget(f_n)
        return [
            VabaParty(
                vid,
                self.n_virtual,
                t,
                coin_seed=self.coin_seed,
                coin=self.coin,
                validity_predicate=self.validity,
                on_decide=on_decide,
            )
            for vid in range(self.n_virtual)
        ]

    def real_output(self, virtual_outputs: dict[int, bytes]) -> dict[int, bytes]:
        """Map virtual decisions back to real parties.

        Parties with tickets output their first virtual identity's value;
        zero-ticket parties take the value vouched for by real parties of
        weight above ``f_w * W``.
        """
        from fractions import Fraction

        real: dict[int, bytes] = {}
        vouch_weight: dict[bytes, Fraction] = {}
        for party in range(self.vmap.n_parties):
            ids = self.vmap.virtual_ids(party)
            if len(ids) > 0 and ids[0] in virtual_outputs:
                value = virtual_outputs[ids[0]]
                real[party] = value
                vouch_weight[value] = vouch_weight.get(value, Fraction(0)) + self.weights[party]
        threshold = self.f_w * self.total_weight
        vouched = [v for v, w in vouch_weight.items() if w > threshold]
        if vouched:
            fallback = vouched[0]
            for party in range(self.vmap.n_parties):
                real.setdefault(party, fallback)
        return real
