"""Bracha reliable broadcast, parameterized by a quorum policy.

The canonical SEND / ECHO / READY protocol [Bracha-Toueg 1985]: totality
and agreement come from quorum intersection, so the *same* code runs in
the nominal model (count thresholds) and the weighted model (weighted
voting) -- the paper's Section 1.2 observation.  Byzantine behaviors used
by the tests live here too (equivocating sender, silent parties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.process import Party
from ..weighted.quorum import QuorumPolicy

__all__ = [
    "RbcSend",
    "RbcEcho",
    "RbcReady",
    "BroadcastParty",
    "EquivocatingSender",
    "SilentParty",
]


@dataclass(frozen=True)
class RbcSend:
    """Sender's initial message carrying the broadcast payload."""

    payload: bytes


@dataclass(frozen=True)
class RbcEcho:
    """Second-phase echo of the payload."""

    payload: bytes


@dataclass(frozen=True)
class RbcReady:
    """Third-phase readiness declaration."""

    payload: bytes


class BroadcastParty(Party):
    """An honest Bracha participant.

    ``delivered`` holds the delivered payload once totality triggers; the
    ``on_deliver`` callback (if any) fires exactly once.
    """

    def __init__(
        self,
        pid: int,
        quorums: QuorumPolicy,
        *,
        on_deliver: Optional[Callable[[int, bytes], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.quorums = quorums
        self.on_deliver = on_deliver
        self.delivered: Optional[bytes] = None
        self._echoed = False
        self._readied = False
        self._echo_senders: dict[bytes, set[int]] = {}
        self._ready_senders: dict[bytes, set[int]] = {}
        self.on(RbcSend, self._handle_send)
        self.on(RbcEcho, self._handle_echo)
        self.on(RbcReady, self._handle_ready)

    # -- protocol steps ----------------------------------------------------------
    def broadcast_value(self, payload: bytes) -> None:
        """Initiate a broadcast as the designated sender."""
        self.broadcast(RbcSend(payload))

    def _handle_send(self, message: RbcSend, sender: int) -> None:
        if not self._echoed:
            self._echoed = True
            self.broadcast(RbcEcho(message.payload))

    def _handle_echo(self, message: RbcEcho, sender: int) -> None:
        senders = self._echo_senders.setdefault(message.payload, set())
        senders.add(sender)
        if not self._readied and self.quorums.echo_quorum(senders):
            self._readied = True
            self.broadcast(RbcReady(message.payload))

    def _handle_ready(self, message: RbcReady, sender: int) -> None:
        senders = self._ready_senders.setdefault(message.payload, set())
        senders.add(sender)
        if not self._readied and self.quorums.ready_amplify(senders):
            self._readied = True
            self.broadcast(RbcReady(message.payload))
        if self.delivered is None and self.quorums.deliver_quorum(senders):
            self.delivered = message.payload
            self.bump("deliveries")
            if self.on_deliver is not None:
                self.on_deliver(self.pid, message.payload)


class EquivocatingSender(BroadcastParty):
    """Byzantine sender: sends one payload to half the parties and a
    different one to the rest.  Agreement must still hold among honest
    receivers (at most one of the two can gather quorums)."""

    def broadcast_two(self, payload_a: bytes, payload_b: bytes) -> None:
        assert self.network is not None
        ids = self.network.party_ids
        half = len(ids) // 2
        for dst in ids[:half]:
            self.send(dst, RbcSend(payload_a))
        for dst in ids[half:]:
            self.send(dst, RbcSend(payload_b))


class SilentParty(Party):
    """Byzantine omission: receives everything, says nothing."""

    def receive(self, message, sender: int) -> None:  # noqa: D401
        return
