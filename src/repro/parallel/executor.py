"""A deterministic ``multiprocessing`` map over pure work units.

The executor adds *no* randomness and *no* ordering freedom of its own:

* work items must be pure functions of their arguments (every seeded
  work unit in this repo is keyed ``f"{seed}|kind|{index}"``, so the
  seed travels inside the item, never through process state);
* results are merged in submission (index) order via ``Pool.imap``, so
  ``map(fn, items)`` returns the exact list the sequential loop would --
  byte-identical output records regardless of ``jobs``.

``jobs=1`` never touches ``multiprocessing`` at all (tier-1 tests stay
single-process); ``jobs="auto"`` means one worker per available core.
Worker exceptions propagate to the caller like sequential ones would.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Optional, Union

__all__ = ["ParallelExecutor", "available_parallelism", "parse_jobs"]


def available_parallelism() -> int:
    """Worker count for ``jobs='auto'``: the visible CPU count."""
    return os.cpu_count() or 1


def parse_jobs(value: Union[int, str, None]) -> int:
    """Validate a ``--jobs`` value: a positive integer or ``'auto'``.

    Accepts the raw CLI string so argparse never gets a chance to print
    its own (non-JSON) error for a malformed value; raises ``ValueError``
    with a message fit for the CLI's uniform ``{"error": ...}`` shape.
    """
    if value is None:
        return 1
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"--jobs wants a positive integer or 'auto', got {value!r}")
    if isinstance(value, int):
        jobs = value
    else:
        text = str(value).strip().lower()
        if text == "auto":
            return available_parallelism()
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"--jobs wants a positive integer or 'auto', got {value!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"--jobs wants a positive integer or 'auto', got {value!r}")
    return jobs


def _start_method() -> str:
    """Prefer ``fork`` (cheap, inherits imported modules); fall back to
    the platform default where fork is unavailable (macOS/Windows)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ParallelExecutor:
    """Seeded, deterministic fan-out of pure work units.

    ``map(fn, items)`` == ``[fn(item) for item in items]``, always -- the
    only degree of freedom ``jobs`` buys is wall-clock.  ``fn`` must be a
    picklable top-level callable (or ``functools.partial`` of one) and
    each item must be picklable; both hold for every work unit this repo
    fans out (frozen dataclasses and plain tuples).
    """

    def __init__(self, jobs: Union[int, str] = 1, *, start_method: Optional[str] = None) -> None:
        self.jobs = parse_jobs(jobs)
        self._start_method = start_method or _start_method()

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        progress: Optional[Callable[[int, Any], None]] = None,
        chunksize: Optional[int] = None,
    ) -> list:
        """Apply ``fn`` to every item; results in submission order.

        ``progress(index, result)`` fires in index order as results are
        merged.  ``chunksize`` defaults to 1 -- work units here are
        coarse (an episode, a DLEQ chunk, an RS stripe), so per-item
        dispatch costs nothing and keeps uneven items load-balanced.
        """
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1:
            out = []
            for index, item in enumerate(items):
                result = fn(item)
                out.append(result)
                if progress is not None:
                    progress(index, result)
            return out
        ctx = multiprocessing.get_context(self._start_method)
        with ctx.Pool(processes=workers) as pool:
            out = []
            for index, result in enumerate(
                pool.imap(fn, items, chunksize or 1)
            ):
                out.append(result)
                if progress is not None:
                    progress(index, result)
        return out
