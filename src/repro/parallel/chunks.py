"""Chunked fan-outs for the batch crypto and block coding engines.

Both helpers split an embarrassingly-parallel workload into coarse
chunks, ship each chunk through :class:`~repro.parallel.executor.
ParallelExecutor`, and merge in index order -- the verdict list / stripe
list is identical to the sequential call for every ``jobs`` value.

Process-boundary discipline:

* a :class:`~repro.crypto.group.SchnorrGroup` carries ``lru_cache``-d
  exponentiation tables and must not cross a pickle; workers rebuild it
  from ``(p, generator)`` through a per-process cache (reusing the
  module singletons' warm tables when the parameters match);
* batch-verification randomizers are drawn from
  ``random.Random(f"{seed}|dleq-chunk|{index}")`` -- a pure function of
  the chunk's position, so verdicts cannot depend on worker scheduling.
"""

from __future__ import annotations

import functools
import random
from typing import Iterable, Optional, Sequence, Union

from .executor import ParallelExecutor

__all__ = ["verify_dleq_batch_chunked", "encode_blocks_striped"]

#: per-process group cache: (p, generator) -> SchnorrGroup
_GROUPS: dict = {}

#: per-process codec cache: (k, m) -> ReedSolomon
_CODECS: dict = {}


def _group_for(params: tuple[int, int]):
    group = _GROUPS.get(params)
    if group is None:
        from ..crypto.group import RFC3526_GROUP_2048, TEST_GROUP_256, SchnorrGroup

        for known in (TEST_GROUP_256, RFC3526_GROUP_2048):
            if (known.p, known.generator) == params:
                group = known
                break
        else:
            group = SchnorrGroup(p=params[0], generator=params[1])
        _GROUPS[params] = group
    return group


def _verify_chunk(
    group_params: tuple[int, int],
    g1: int,
    g2: int,
    seed: Union[int, str],
    assume_y1_member: bool,
    chunk: tuple[int, list],
) -> list[bool]:
    index, statements = chunk
    from ..crypto.dleq import verify_dleq_batch

    return verify_dleq_batch(
        _group_for(group_params),
        g1,
        g2,
        statements,
        rng=random.Random(f"{seed}|dleq-chunk|{index}"),
        assume_y1_member=assume_y1_member,
    )


def verify_dleq_batch_chunked(
    group,
    g1: int,
    g2: int,
    statements: Sequence,
    *,
    jobs: Union[int, str] = 1,
    chunk_size: int = 64,
    seed: Union[int, str] = 0,
    assume_y1_member: bool = False,
) -> list[bool]:
    """Chunked (optionally multi-process) batch DLEQ verification.

    Semantics match :func:`~repro.crypto.dleq.verify_dleq_batch`: one
    verdict per statement, in order.  Soundness is per-chunk -- each
    chunk is one random-linear-combination check plus the per-proof
    bisection on failure -- so a smaller ``chunk_size`` trades a little
    throughput for finer failure isolation, and the verdicts are the
    same either way.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    statements = list(statements)
    chunks = [
        (i, statements[i * chunk_size : (i + 1) * chunk_size])
        for i in range((len(statements) + chunk_size - 1) // chunk_size)
    ]
    fn = functools.partial(
        _verify_chunk, (group.p, group.generator), g1, g2, seed, assume_y1_member
    )
    parts = ParallelExecutor(jobs).map(fn, chunks)
    return [verdict for part in parts for verdict in part]


def _encode_stripe(
    params: tuple[int, int], systematic: bool, payload: bytes
) -> list[bytes]:
    codec = _CODECS.get(params)
    if codec is None:
        from ..codes.reed_solomon import ReedSolomon

        codec = ReedSolomon(*params)
        _CODECS[params] = codec
    return codec.encode_blocks(payload, systematic=systematic)


def encode_blocks_striped(
    k: int,
    m: int,
    stripes: Iterable[bytes],
    *,
    jobs: Union[int, str] = 1,
    systematic: bool = False,
    rs: Optional[object] = None,
) -> list[list[bytes]]:
    """Encode independent payload stripes with an RS(k, m) code.

    Returns one fragment list per stripe, in stripe order -- exactly
    ``[rs.encode_blocks(s) for s in stripes]``.  ``rs`` optionally
    supplies a pre-built codec for the sequential path; workers always
    rebuild from ``(k, m)`` (the codec's tables are deterministic).
    """
    stripes = [bytes(s) for s in stripes]
    executor = ParallelExecutor(jobs)
    if executor.jobs == 1 and rs is not None:
        return [rs.encode_blocks(s, systematic=systematic) for s in stripes]
    return executor.map(functools.partial(_encode_stripe, (k, m), systematic), stripes)
