"""Parallel execution engine: a deterministic multiprocessing map and
the process-per-party ``proc`` runtime backend.

Two complementary halves, one principle -- *parallelism must never change
an output record*:

* :class:`ParallelExecutor` fans out **pure work units** (fuzz campaign
  episodes, scenario-registry sweeps, batch-DLEQ verification chunks, RS
  block stripes) across worker processes and merges results in index
  order, so the output is byte-identical to the sequential path
  regardless of ``jobs``.  Work units carry their own seeds -- an episode
  is a pure function of ``(campaign_seed, episode_index)`` -- so no
  randomness crosses a process boundary.
* :class:`ProcCluster` hosts every :class:`~repro.runtime.node.RuntimeNode`
  in its own OS process over a TCP mesh (the ``proc`` backend of
  :func:`~repro.scenarios.harness.run_scenario`), which is what finally
  lets an n-party cluster use n cores.

The heavy halves (the proc orchestrator, the chunked crypto/coding
fan-outs, the registry sweep) resolve lazily so importing the executor
stays cheap.
"""

from .executor import ParallelExecutor, available_parallelism, parse_jobs

#: names resolved lazily (PEP 562) from their defining modules
_LAZY = {
    "ProcCluster": "proc",
    "ProcError": "proc",
    "run_proc_scenario": "proc",
    "verify_dleq_batch_chunked": "chunks",
    "encode_blocks_striped": "chunks",
    "run_specs": "sweep",
}

__all__ = [
    "ParallelExecutor",
    "available_parallelism",
    "parse_jobs",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)
