"""Scenario-registry sweeps over the deterministic executor.

A sweep item is one :class:`~repro.scenarios.spec.ScenarioSpec`; workers
receive the spec's dict form (specs round-trip ``to_dict``/``from_dict``
losslessly) and return the unified record.  On the sim backend each
record is a pure function of its spec, so a sweep's output list is
byte-identical at any ``jobs`` value -- the same guarantee the fuzz
campaign gets.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Optional, Union

from .executor import ParallelExecutor

__all__ = ["run_specs"]


def _run_one(backend: str, timeout: float, spec_dict: dict) -> dict:
    from ..scenarios.harness import run_scenario
    from ..scenarios.spec import ScenarioSpec

    spec = ScenarioSpec.from_dict(spec_dict)
    return run_scenario(spec, backend=backend, timeout=timeout).record()


def run_specs(
    specs: Iterable,
    *,
    backend: str = "sim",
    timeout: float = 60.0,
    jobs: Union[int, str] = 1,
    progress: Optional[Callable[[int, dict], None]] = None,
) -> list[dict]:
    """Run every spec on ``backend``; records in input order.

    ``specs`` holds :class:`ScenarioSpec` instances or their dict forms.
    A failing spec raises (sweeps are all-or-nothing, like the CLI).
    """
    payloads = [
        spec if isinstance(spec, dict) else spec.to_dict() for spec in specs
    ]
    fn = functools.partial(_run_one, backend, timeout)
    return ParallelExecutor(jobs).map(fn, payloads, progress=progress)
