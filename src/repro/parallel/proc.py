"""The ``proc`` backend: one OS process per party, a parent orchestrator.

Topology::

    parent (ProcCluster) ── mp.Pipe ──> worker 0 (RuntimeNode over ProcMeshTransport)
                         ── mp.Pipe ──> worker 1
                         ...                       workers ── TCP mesh ── workers

Lifecycle, over each control pipe (tuples, strictly request/reply after
the handshake):

1. the parent pickles ``spec.to_dict()`` to every worker; each worker
   deterministically rebuilds the *same* driver -- committee, adversary,
   threshold keys -- via :func:`~repro.scenarios.harness.build_driver`
   (every piece is a pure function of the spec, which is what makes
   "distribute key material via a spec pickle" sound);
2. each worker binds ``(host, 0)`` and replies ``("ready", nid, addr)``
   with the kernel-assigned port; the parent broadcasts the collected
   peer map -- no hardcoded ports, so concurrent clusters never collide;
3. the parent polls ``("status",)``; a worker reports its local done
   flag, cumulative frame counters, idleness, and any failure.  Global
   completion is distributed termination detection by frame-count
   conservation: every worker idle and ``sum(sent) == sum(received)``
   over consecutive polls (a Mattern-style counting argument -- matching
   totals on a stale snapshot would require a frame observed received
   but never sent);
4. ``("finish",)`` collects each node's output, metrics, fault counters,
   and OS pid; the parent merges them into the unified
   :class:`~repro.scenarios.harness.ScenarioResult` (message/byte totals
   sum to exactly the single-process backends' counts).

Failure containment: a worker that dies (or reports a pump failure)
surfaces as :class:`ProcError`; the parent reaps every child on any
exit path, including timeout.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
import traceback
from typing import Any, Optional

from ..scenarios.spec import ScenarioSpec

__all__ = ["ProcCluster", "ProcError", "run_proc_scenario", "CRASH_ENV"]

#: test hook: a worker whose node id matches this env var's value exits
#: hard at startup, exercising the parent's crash surface
CRASH_ENV = "REPRO_PROC_TEST_CRASH"

#: consecutive conserved-and-idle polls required before trusting the
#: snapshot (one poll can race a frame between counters)
_STABLE_POLLS = 2


class ProcError(RuntimeError):
    """A worker process died, wedged, or reported a failure."""


# -- worker side -----------------------------------------------------------------------


def _worker_entry(spec_dict: dict, nid: int, conn, host: str) -> None:
    if os.environ.get(CRASH_ENV) == str(nid):
        os._exit(3)
    try:
        asyncio.run(_worker_main(spec_dict, nid, conn, host))
    except BaseException:  # noqa: BLE001 -- last-resort report, then die
        try:
            conn.send(("crashed", nid, traceback.format_exc(limit=8)))
        except (OSError, ValueError):
            pass
        os._exit(1)
    os._exit(0)


def _command_queue(conn, loop: asyncio.AbstractEventLoop) -> asyncio.Queue:
    """Bridge the control pipe into the worker's event loop."""
    queue: asyncio.Queue = asyncio.Queue()

    def _drain() -> None:
        try:
            while conn.poll():
                queue.put_nowait(conn.recv())
        except (EOFError, OSError):
            loop.remove_reader(conn.fileno())
            queue.put_nowait(None)  # parent went away: shut down

    loop.add_reader(conn.fileno(), _drain)
    return queue


async def _worker_main(spec_dict: dict, nid: int, conn, host: str) -> None:
    from ..runtime.cluster import RuntimeMetrics
    from ..runtime.codec import default_registry
    from ..runtime.node import RuntimeNode
    from ..runtime.transport import ProcMeshTransport
    from ..scenarios.harness import RunContext, _apply_static_faults, _fault_plan, build_driver

    spec = ScenarioSpec.from_dict(spec_dict)
    driver = build_driver(spec, validate=False)  # parent already vetted
    faults, crashed, groups, links = _fault_plan(spec, driver)
    live_nodes = tuple(
        n for n in range(driver.n_nodes) if n not in set(crashed)
    )
    metrics = RuntimeMetrics()
    transport = ProcMeshTransport(
        default_registry(), faults=faults, record=metrics.record, host=host
    )
    port = await transport.listen()
    loop = asyncio.get_running_loop()
    commands = _command_queue(conn, loop)
    conn.send(("ready", nid, (host, port)))

    command = await commands.get()
    if command is None or command[0] != "peers":
        await transport.stop()
        return
    transport.configure(nid, command[1])

    node = RuntimeNode(driver.factory(nid), transport, list(range(driver.n_nodes)))
    ctx = RunContext(
        parties={nid: node.party},
        live_nodes=live_nodes,
        schedule=lambda when, fn: loop.call_later(when, fn),
    )
    # The full fault plan goes into every worker's controller; only the
    # (src, dst == this node) decisions ever fire, so per-worker drop and
    # delay counts sum to the single-process totals.
    for crashed_nid in crashed:
        faults.crash(crashed_nid)
    _apply_static_faults(faults, groups, links)
    if driver.adversary is not None:
        driver.adversary.install_network_faults(faults, driver.map_pid)
    if spec.faults.heal_at is not None:
        ctx.at(spec.faults.heal_at, faults.heal)
    if nid in set(crashed):
        node.party.crash()
    node.start()
    observer = nid in set(driver.observers(ctx))
    if nid in live_nodes:
        driver.start_node(ctx, nid)

    while True:
        command = await commands.get()
        if command is None or command[0] == "stop":
            break
        kind = command[0]
        if kind == "status":
            failure = node.failure or transport.failure
            conn.send(
                (
                    "status",
                    nid,
                    {
                        "done": driver.node_done(ctx, nid) if observer else True,
                        "sent": transport.frames_sent,
                        "received": transport.frames_received,
                        "idle": node.idle and transport.quiescent,
                        "failure": repr(failure) if failure is not None else None,
                    },
                )
            )
        elif kind == "finish":
            conn.send(
                (
                    "result",
                    nid,
                    {
                        "done": driver.node_done(ctx, nid) if observer else None,
                        "output": driver.node_output(ctx, nid) if observer else None,
                        "observer": observer,
                        "metrics": metrics.as_dict(),
                        "dropped": faults.dropped_messages,
                        "delayed": faults.delayed_messages,
                        "os_pid": os.getpid(),
                    },
                )
            )
    await node.stop()
    await transport.stop()


# -- parent side -----------------------------------------------------------------------


class ProcCluster:
    """Spawn, wire, poll, and reap one process per party.

    Synchronous by design (the parent never runs an event loop): spawn is
    blocking, polling is request/reply over pipes, and every exit path
    funnels through :meth:`_teardown`.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        timeout: float = 60.0,
        committee=None,
        host: str = "127.0.0.1",
        poll_interval: float = 0.01,
    ) -> None:
        from ..scenarios.harness import (
            _DRIVERS,
            RunContext,
            _fault_plan,
            build_driver,
        )

        if spec.workload.kind == "service":
            raise ValueError(
                "service workloads run on the sim or inproc backends, not proc"
            )
        if not _DRIVERS[spec.protocol].proc_capable:
            raise ValueError(
                f"protocol {spec.protocol!r} is not supported on the proc "
                "backend (its outputs need cross-node aggregation)"
            )
        self.spec = spec
        self.timeout = timeout
        self.host = host
        self.poll_interval = poll_interval
        self.driver = build_driver(spec, committee)
        _, crashed, _, _ = _fault_plan(spec, self.driver)
        self.crashed = crashed
        self.live_nodes = tuple(
            n for n in range(self.driver.n_nodes) if n not in set(crashed)
        )
        if not self.live_nodes:
            raise ValueError("fault plan crashes every node; nothing left to run")
        parent_ctx = RunContext(
            parties={}, live_nodes=self.live_nodes, schedule=lambda when, fn: None
        )
        self.observers = tuple(self.driver.observers(parent_ctx))
        self.expect_liveness = (
            self.driver.adversary.expect_liveness
            if self.driver.adversary is not None
            else True
        )
        self._procs: list = []
        self._conns: list = []

    # -- plumbing -----------------------------------------------------------------
    def _alive_check(self, nid: int) -> None:
        proc = self._procs[nid]
        if not proc.is_alive():
            raise ProcError(
                f"proc worker {nid} died (exit code {proc.exitcode})"
            )

    def _recv(self, nid: int, deadline: float) -> tuple:
        """One message from worker ``nid``, with crash/timeout surfacing."""
        conn = self._conns[nid]
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TimeoutError(
                    f"proc cluster timed out after {self.timeout}s waiting on "
                    f"worker {nid}"
                )
            if conn.poll(min(remaining, 0.05)):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._alive_check(nid)
                    raise ProcError(f"proc worker {nid} closed its control pipe")
                if message[0] == "crashed":
                    raise ProcError(
                        f"proc worker {message[1]} crashed:\n{message[2]}"
                    )
                return message
            self._alive_check(nid)

    def _request_all(self, command: tuple, reply: str, deadline: float) -> dict[int, Any]:
        for conn in self._conns:
            conn.send(command)
        out = {}
        for nid in range(len(self._conns)):
            message = self._recv(nid, deadline)
            if message[0] != reply:
                raise ProcError(
                    f"proc worker {nid} sent {message[0]!r}, expected {reply!r}"
                )
            out[message[1]] = message[2]
        return out

    # -- lifecycle ----------------------------------------------------------------
    def run(self):
        from ..scenarios.harness import ScenarioResult

        deadline = time.perf_counter() + self.timeout
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        spec_dict = self.spec.to_dict()
        try:
            for nid in range(self.driver.n_nodes):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(spec_dict, nid, child_conn, self.host),
                    name=f"repro-proc-{self.spec.name}-{nid}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            addresses = self._collect_ready(deadline)
            started_at = time.perf_counter()
            for conn in self._conns:
                conn.send(("peers", addresses))
            self._await_completion(deadline)
            quiesced_at = time.perf_counter()
            results = self._request_all(("finish",), "result", deadline)
        finally:
            self._teardown()

        committee = self.driver.committee
        messages = bytes_total = 0
        by_type: dict[str, int] = {}
        bytes_by_type: dict[str, int] = {}
        dropped = delayed = 0
        decided: dict[str, str] = {}
        workers: dict[str, int] = {}
        completed = True
        for nid in sorted(results):
            r = results[nid]
            m = r["metrics"]
            messages += m["messages"]
            bytes_total += m["bytes"]
            for key, value in m["by_type"].items():
                by_type[key] = by_type.get(key, 0) + value
            for key, value in m["bytes_by_type"].items():
                bytes_by_type[key] = bytes_by_type.get(key, 0) + value
            dropped += r["dropped"]
            delayed += r["delayed"]
            workers[str(nid)] = r["os_pid"]
            if r["observer"]:
                decided[str(nid)] = r["output"]
                completed = completed and bool(r["done"])
        return ScenarioResult(
            spec=self.spec,
            backend="proc",
            n_real=committee.n,
            n_nodes=self.driver.n_nodes,
            weights_digest=committee.weights_digest,
            completed=completed,
            decided=decided,
            count_comparable=self.driver.count_comparable,
            messages=messages,
            bytes=bytes_total,
            by_type=by_type,
            bytes_by_type=bytes_by_type,
            dropped_messages=dropped,
            delayed_messages=delayed,
            wall_seconds=quiesced_at - started_at,
            adversary=(
                self.driver.adversary.describe()
                if self.driver.adversary is not None
                else None
            ),
            workers=workers,
        )

    def _collect_ready(self, deadline: float) -> dict[int, tuple[str, int]]:
        addresses: dict[int, tuple[str, int]] = {}
        for nid in range(len(self._conns)):
            message = self._recv(nid, deadline)
            if message[0] != "ready":
                raise ProcError(
                    f"proc worker {nid} sent {message[0]!r} before 'ready'"
                )
            addresses[message[1]] = message[2]
        return addresses

    def _await_completion(self, deadline: float) -> None:
        """Distributed termination detection (see module docstring)."""
        stable = 0
        while True:
            statuses = self._request_all(("status",), "status", deadline)
            failures = {
                nid: s["failure"] for nid, s in statuses.items() if s["failure"]
            }
            if failures:
                details = "; ".join(
                    f"node {nid}: {text}" for nid, text in sorted(failures.items())
                )
                raise ProcError(f"proc worker failure at the pump: {details}")
            sent = sum(s["sent"] for s in statuses.values())
            received = sum(s["received"] for s in statuses.values())
            quiescent = (
                all(s["idle"] for s in statuses.values()) and sent == received
            )
            done = all(statuses[nid]["done"] for nid in self.observers)
            if quiescent and (done or not self.expect_liveness):
                stable += 1
                if stable >= _STABLE_POLLS:
                    return
            else:
                stable = 0
            if time.perf_counter() > deadline:
                raise TimeoutError(
                    f"proc scenario did not complete within {self.timeout}s "
                    f"(done={done}, in-flight frames={sent - received})"
                )
            time.sleep(self.poll_interval)

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()


def run_proc_scenario(
    spec: ScenarioSpec, *, timeout: float = 60.0, committee=None
):
    """Execute ``spec`` process-per-party; the ``proc`` branch of
    :func:`~repro.scenarios.harness.run_scenario`."""
    return ProcCluster(spec, timeout=timeout, committee=committee).run()
