"""The ``proc`` backend: one OS process per party, a parent orchestrator.

Topology::

    parent (ProcCluster) ── mp.Pipe ──> worker 0 (RuntimeNode over ProcMeshTransport)
                         ── mp.Pipe ──> worker 1
                         ...                       workers ── TCP mesh ── workers

Lifecycle, over each control pipe (tuples, strictly request/reply after
the handshake):

1. the parent pickles ``spec.to_dict()`` to every worker; each worker
   deterministically rebuilds the *same* driver -- committee, adversary,
   threshold keys -- via :func:`~repro.scenarios.harness.build_driver`
   (every piece is a pure function of the spec, which is what makes
   "distribute key material via a spec pickle" sound);
2. each worker binds ``(host, 0)`` and replies ``("ready", nid, addr)``
   with the kernel-assigned port; the parent broadcasts the collected
   peer map -- no hardcoded ports, so concurrent clusters never collide;
3. the parent polls ``("status",)``; a worker reports its local done
   flag, cumulative frame counters, idleness, and any failure.  Global
   completion is distributed termination detection by frame-count
   conservation: every worker idle and ``sum(sent) == sum(received)``
   over consecutive polls (a Mattern-style counting argument -- matching
   totals on a stale snapshot would require a frame observed received
   but never sent);
4. ``("finish",)`` collects each node's output, metrics, fault counters,
   and OS pid; the parent merges them into the unified
   :class:`~repro.scenarios.harness.ScenarioResult` (message/byte totals
   sum to exactly the single-process backends' counts).

Crash-restart plans (``spec.faults.restarts``) exercise real process
death: at ``crash_at`` the parent SIGKILLs the worker; at ``restart_at``
it respawns one with a bumped *incarnation* and the run's ``state_dir``.
The reborn worker replays its party's write-ahead log, broadcasts a
state-sync request, re-proposes its batches, and replies ``("rejoined",
nid, info)`` -- only then does the parent re-broadcast the refreshed
peer map (the respawn gets a new kernel-assigned port), so no peer
learns the new address before the node can absorb traffic.  Peers'
send failures during the outage park frames on per-link retry queues
(see :class:`~repro.runtime.transport.ProcMeshTransport`), which drain
once the link heals.  A SIGKILL destroys the victim's frame counters,
so restart runs relax termination detection to done-and-idle over
stable polls; the retry queues keep senders non-idle while any frame
awaits redelivery, which is what makes the relaxation safe.

Failure containment: a worker that dies (or reports a pump failure)
surfaces as :class:`ProcError` with a per-worker postmortem -- OS pid,
age of the last status heard, and frame counters; the parent reaps
every child on any exit path, including timeout.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import tempfile
import time
import traceback
from typing import Any, Optional

from ..scenarios.spec import ScenarioSpec

__all__ = ["ProcCluster", "ProcError", "run_proc_scenario", "CRASH_ENV"]

#: test hook: a worker whose node id matches this env var's value exits
#: hard at startup, exercising the parent's crash surface
CRASH_ENV = "REPRO_PROC_TEST_CRASH"

#: consecutive conserved-and-idle polls required before trusting the
#: snapshot (one poll can race a frame between counters)
_STABLE_POLLS = 2


class ProcError(RuntimeError):
    """A worker process died, wedged, or reported a failure."""


# -- worker side -----------------------------------------------------------------------


def _worker_entry(
    spec_dict: dict,
    nid: int,
    conn,
    host: str,
    state_dir: Optional[str] = None,
    incarnation: int = 0,
) -> None:
    if os.environ.get(CRASH_ENV) == str(nid):
        os._exit(3)
    try:
        asyncio.run(_worker_main(spec_dict, nid, conn, host, state_dir, incarnation))
    except BaseException:  # noqa: BLE001 -- last-resort report, then die
        try:
            conn.send(("crashed", nid, traceback.format_exc(limit=8)))
        except (OSError, ValueError):
            pass
        os._exit(1)
    os._exit(0)


def _command_queue(conn, loop: asyncio.AbstractEventLoop) -> asyncio.Queue:
    """Bridge the control pipe into the worker's event loop."""
    queue: asyncio.Queue = asyncio.Queue()

    def _drain() -> None:
        try:
            while conn.poll():
                queue.put_nowait(conn.recv())
        except (EOFError, OSError):
            loop.remove_reader(conn.fileno())
            queue.put_nowait(None)  # parent went away: shut down

    loop.add_reader(conn.fileno(), _drain)
    return queue


async def _worker_main(
    spec_dict: dict,
    nid: int,
    conn,
    host: str,
    state_dir: Optional[str],
    incarnation: int,
) -> None:
    from ..runtime.cluster import RuntimeMetrics
    from ..runtime.codec import default_registry
    from ..runtime.node import RuntimeNode
    from ..runtime.transport import ProcMeshTransport
    from ..scenarios.harness import RunContext, _apply_static_faults, _fault_plan, build_driver

    spec = ScenarioSpec.from_dict(spec_dict)
    driver = build_driver(spec, validate=False, state_dir=state_dir)  # parent vetted
    faults, crashed, groups, links = _fault_plan(spec, driver)
    live_nodes = tuple(
        n for n in range(driver.n_nodes) if n not in set(crashed)
    )
    metrics = RuntimeMetrics()
    transport = ProcMeshTransport(
        default_registry(),
        faults=faults,
        record=metrics.record,
        host=host,
        incarnation=incarnation,
    )
    port = await transport.listen()
    loop = asyncio.get_running_loop()
    commands = _command_queue(conn, loop)
    conn.send(("ready", nid, (host, port)))

    command = await commands.get()
    if command is None or command[0] != "peers":
        await transport.stop()
        return
    transport.configure(nid, command[1])

    recovering = incarnation > 0
    party = driver.factory(nid)
    node = RuntimeNode(party, transport, list(range(driver.n_nodes)))
    ctx = RunContext(
        parties={nid: node.party},
        live_nodes=live_nodes,
        schedule=lambda when, fn: loop.call_later(when, fn),
    )
    if spec.faults.restarts:
        # self-healing plumbing: persist receive watermarks through the
        # party's WAL and run the heartbeat failure detector, feeding
        # suspect/alive transitions into the run's metrics
        if hasattr(party, "note_watermark"):
            transport.watermark_sink = party.note_watermark

        def _suspect(_peer: int) -> None:
            metrics.suspect_transitions += 1

        def _alive(_peer: int) -> None:
            metrics.alive_transitions += 1

        transport.enable_heartbeat(on_suspect=_suspect, on_alive=_alive)
    # The full fault plan goes into every worker's controller; only the
    # (src, dst == this node) decisions ever fire, so per-worker drop and
    # delay counts sum to the single-process totals.
    for crashed_nid in crashed:
        faults.crash(crashed_nid)
    _apply_static_faults(faults, groups, links)
    if driver.adversary is not None:
        driver.adversary.install_network_faults(faults, driver.map_pid)
    if spec.faults.heal_at is not None:
        ctx.at(spec.faults.heal_at, faults.heal)
    orchestrator = None
    if spec.chaos is not None:
        from ..chaos.orchestrator import ChaosOrchestrator

        # Every worker arms the full plan; fault-controller mutations
        # fire everywhere (the controllers must agree), party-level
        # effects only on the one hosted node (scope).
        orchestrator = ChaosOrchestrator(spec, driver)
        orchestrator.install(
            ctx,
            faults,
            scope=(nid,),
            metrics=metrics,
            restart_fn=lambda n: (party.restart(), driver.restart_node(ctx, n)),
        )
    if nid in set(crashed):
        node.party.crash()
    observer = nid in set(driver.observers(ctx))
    if recovering:
        # Rejoin: replay the WAL into the fresh party (queueing the
        # state-sync broadcast on the outbox), seed the transport's dedup
        # watermarks from the replayed floor, then start pumping and
        # re-propose this node's batches.  The parent withholds our new
        # address from peers until "rejoined", so nothing arrives before
        # the inbox exists.
        party.restart()
        transport.restore_watermarks(getattr(party, "watermarks", {}))
        node.start()
        driver.restart_node(ctx, nid)
        conn.send(
            (
                "rejoined",
                nid,
                {
                    "os_pid": os.getpid(),
                    "recovered_from_wal": getattr(party, "recovered_from_wal", 0),
                },
            )
        )
    else:
        node.start()
        if nid in live_nodes:
            driver.start_node(ctx, nid)

    while True:
        command = await commands.get()
        if command is None or command[0] == "stop":
            break
        kind = command[0]
        if kind == "peers":
            # refreshed address map (a peer respawned on a new port)
            transport.reconfigure(command[1])
        elif kind == "status":
            failure = node.failure or transport.failure
            conn.send(
                (
                    "status",
                    nid,
                    {
                        "done": driver.node_done(ctx, nid) if observer else True,
                        "sent": transport.frames_sent,
                        "received": transport.frames_received,
                        "idle": node.idle and transport.quiescent,
                        "failure": repr(failure) if failure is not None else None,
                    },
                )
            )
        elif kind == "finish":
            conn.send(
                (
                    "result",
                    nid,
                    {
                        "done": driver.node_done(ctx, nid) if observer else None,
                        "output": driver.node_output(ctx, nid) if observer else None,
                        "observer": observer,
                        "metrics": metrics.as_dict(),
                        "dropped": faults.dropped_messages,
                        "delayed": faults.delayed_messages,
                        "os_pid": os.getpid(),
                        "recovery": (
                            {
                                "restarts": party.counters.get("restarts", 0),
                                "recovered_from_wal": getattr(
                                    party, "recovered_from_wal", 0
                                ),
                                "recovered_from_peers": getattr(
                                    party, "recovered_from_peers", 0
                                ),
                                "duplicates_dropped": transport.duplicates_dropped,
                                "reconnects": transport.reconnects,
                                "retries_dropped": transport.retries_dropped,
                            }
                            if spec.faults.restarts
                            else None
                        ),
                        "chaos": (
                            {
                                "stages": orchestrator.describe_stages(),
                                "weather": (
                                    faults.weather.counters()
                                    if faults.weather is not None
                                    else None
                                ),
                                "duplicate_commits": (
                                    orchestrator.summary()["duplicate_commits"]
                                ),
                                "trace": [list(e) for e in faults.trace],
                            }
                            if orchestrator is not None
                            else None
                        ),
                    },
                )
            )
    await node.stop()
    await transport.stop()


# -- parent side -----------------------------------------------------------------------


class ProcCluster:
    """Spawn, wire, poll, and reap one process per party.

    Synchronous by design (the parent never runs an event loop): spawn is
    blocking, polling is request/reply over pipes, and every exit path
    funnels through :meth:`_teardown`.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        timeout: float = 60.0,
        committee=None,
        host: str = "127.0.0.1",
        poll_interval: float = 0.01,
        state_dir: Optional[str] = None,
    ) -> None:
        from ..scenarios.harness import (
            _DRIVERS,
            RunContext,
            _chaos_horizon,
            _fault_plan,
            build_driver,
        )

        if spec.workload.kind == "service":
            raise ValueError(
                "service workloads run on the sim or inproc backends, not proc"
            )
        if not _DRIVERS[spec.protocol].proc_capable:
            raise ValueError(
                f"protocol {spec.protocol!r} is not supported on the proc "
                "backend (its outputs need cross-node aggregation)"
            )
        self.spec = spec
        self.timeout = timeout
        self.host = host
        self.poll_interval = poll_interval
        self.driver = build_driver(spec, committee)
        _, crashed, _, _ = _fault_plan(spec, self.driver)
        self.crashed = crashed
        self.live_nodes = tuple(
            n for n in range(self.driver.n_nodes) if n not in set(crashed)
        )
        if not self.live_nodes:
            raise ValueError("fault plan crashes every node; nothing left to run")
        parent_ctx = RunContext(
            parties={}, live_nodes=self.live_nodes, schedule=lambda when, fn: None
        )
        self.observers = tuple(self.driver.observers(parent_ctx))
        self.expect_liveness = (
            self.driver.adversary.expect_liveness
            if self.driver.adversary is not None
            else True
        )
        #: settle floor: with a chaos plan, quiescence before the last
        #: scheduled stage/heal/epoch is *early* quiescence -- late
        #: stages (a load surge, a byzantine activation) have not fired
        #: yet, so completion cannot be declared before this elapsed time
        self.chaos_horizon = _chaos_horizon(spec) if spec.chaos is not None else 0.0
        #: the crash-restart plan in node-id terms, ordered by fire time
        self.restarts = sorted(
            (crash_at, restart_at, node_id)
            for pid, crash_at, restart_at in spec.faults.restarts
            for node_id in self.driver.map_pid(pid)
        )
        #: durable WAL directory; auto-provisioned (and reaped) for
        #: restart runs when the caller does not supply one
        self.state_dir = state_dir
        self._own_state_dir: Optional[str] = None
        if self.restarts and self.state_dir is None:
            self._own_state_dir = tempfile.mkdtemp(prefix="repro-proc-state-")
            self.state_dir = self._own_state_dir
        #: per-restarted-node wall-clock recovery record
        self.recovery_events: dict[int, dict[str, float]] = {}
        self._procs: list = []
        self._conns: list = []
        self._down: set[int] = set()
        self._incarnations: dict[int, int] = {}
        #: nid -> (monotonic time, frames sent, frames received) of the
        #: last status heard -- the postmortem in ProcError messages
        self._last_status: dict[int, tuple[float, int, int]] = {}
        self._addresses: dict[int, tuple[str, int]] = {}
        self._mp_ctx = None
        self._spec_dict: Optional[dict] = None

    # -- plumbing -----------------------------------------------------------------
    def _postmortem(self, nid: int) -> str:
        """Per-worker forensics appended to crash/timeout errors."""
        proc = self._procs[nid] if nid < len(self._procs) else None
        pid = proc.pid if proc is not None else "?"
        last = self._last_status.get(nid)
        if last is None:
            return f" [pid={pid}; no status heard yet]"
        age = time.perf_counter() - last[0]
        return (
            f" [pid={pid}; last status {age:.2f}s ago; "
            f"frames sent={last[1]} received={last[2]}]"
        )

    def _alive_check(self, nid: int) -> None:
        proc = self._procs[nid]
        if not proc.is_alive():
            raise ProcError(
                f"proc worker {nid} died (exit code {proc.exitcode})"
                f"{self._postmortem(nid)}"
            )

    def _recv(self, nid: int, deadline: float) -> tuple:
        """One message from worker ``nid``, with crash/timeout surfacing."""
        conn = self._conns[nid]
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TimeoutError(
                    f"proc cluster timed out after {self.timeout}s waiting on "
                    f"worker {nid}{self._postmortem(nid)}"
                )
            if conn.poll(min(remaining, 0.05)):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._alive_check(nid)
                    raise ProcError(
                        f"proc worker {nid} closed its control pipe"
                        f"{self._postmortem(nid)}"
                    )
                if message[0] == "crashed":
                    raise ProcError(
                        f"proc worker {message[1]} crashed:\n{message[2]}"
                    )
                return message
            self._alive_check(nid)

    def _live_workers(self) -> list[int]:
        return [nid for nid in range(len(self._conns)) if nid not in self._down]

    def _request_all(self, command: tuple, reply: str, deadline: float) -> dict[int, Any]:
        live = self._live_workers()
        for nid in live:
            self._conns[nid].send(command)
        out = {}
        for nid in live:
            message = self._recv(nid, deadline)
            if message[0] != reply:
                raise ProcError(
                    f"proc worker {nid} sent {message[0]!r}, expected {reply!r}"
                )
            out[message[1]] = message[2]
        return out

    # -- lifecycle ----------------------------------------------------------------
    def _spawn(self, nid: int, incarnation: int):
        parent_conn, child_conn = self._mp_ctx.Pipe()
        suffix = f"-r{incarnation}" if incarnation else ""
        proc = self._mp_ctx.Process(
            target=_worker_entry,
            args=(
                self._spec_dict,
                nid,
                child_conn,
                self.host,
                self.state_dir,
                incarnation,
            ),
            name=f"repro-proc-{self.spec.name}-{nid}{suffix}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def run(self):
        from ..scenarios.harness import ScenarioResult

        deadline = time.perf_counter() + self.timeout
        self._mp_ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self._spec_dict = self.spec.to_dict()
        try:
            for nid in range(self.driver.n_nodes):
                proc, conn = self._spawn(nid, 0)
                self._procs.append(proc)
                self._conns.append(conn)
            self._addresses = self._collect_ready(deadline)
            started_at = time.perf_counter()
            for conn in self._conns:
                conn.send(("peers", self._addresses))
            self._await_completion(deadline, started_at)
            quiesced_at = time.perf_counter()
            results = self._request_all(("finish",), "result", deadline)
        finally:
            self._teardown()
            if self._own_state_dir is not None:
                shutil.rmtree(self._own_state_dir, ignore_errors=True)

        committee = self.driver.committee
        messages = bytes_total = 0
        by_type: dict[str, int] = {}
        bytes_by_type: dict[str, int] = {}
        dropped = delayed = 0
        decided: dict[str, str] = {}
        workers: dict[str, int] = {}
        completed = True
        recovery: Optional[dict] = None
        if self.restarts:
            recovery = {
                "nodes": {},
                "restarts": 0,
                "recovered_from_wal": 0,
                "recovered_from_peers": 0,
                "duplicates_dropped": 0,
                "reconnects": 0,
                "retries_dropped": 0,
                "suspect_transitions": 0,
                "alive_transitions": 0,
            }
            for nid, events in sorted(self.recovery_events.items()):
                node_rec = dict(events)
                if "killed_at" in events and "respawned_at" in events:
                    node_rec["downtime_seconds"] = (
                        events["respawned_at"] - events["killed_at"]
                    )
                    node_rec["rejoin_seconds"] = (
                        quiesced_at - started_at - events["respawned_at"]
                    )
                recovery["nodes"][str(nid)] = node_rec
        for nid in sorted(results):
            r = results[nid]
            m = r["metrics"]
            messages += m["messages"]
            bytes_total += m["bytes"]
            for key, value in m["by_type"].items():
                by_type[key] = by_type.get(key, 0) + value
            for key, value in m["bytes_by_type"].items():
                bytes_by_type[key] = bytes_by_type.get(key, 0) + value
            dropped += r["dropped"]
            delayed += r["delayed"]
            workers[str(nid)] = r["os_pid"]
            if recovery is not None and r.get("recovery"):
                for key in (
                    "restarts",
                    "recovered_from_wal",
                    "recovered_from_peers",
                    "duplicates_dropped",
                    "reconnects",
                    "retries_dropped",
                ):
                    recovery[key] += r["recovery"][key]
                recovery["suspect_transitions"] += m.get("suspect_transitions", 0)
                recovery["alive_transitions"] += m.get("alive_transitions", 0)
            if r["observer"]:
                decided[str(nid)] = r["output"]
                completed = completed and bool(r["done"])
        chaos_section = (
            self._merge_chaos(results, completed) if self.spec.chaos is not None else None
        )
        return ScenarioResult(
            spec=self.spec,
            backend="proc",
            n_real=committee.n,
            n_nodes=self.driver.n_nodes,
            weights_digest=committee.weights_digest,
            completed=completed,
            decided=decided,
            count_comparable=self.driver.count_comparable,
            messages=messages,
            bytes=bytes_total,
            by_type=by_type,
            bytes_by_type=bytes_by_type,
            dropped_messages=dropped,
            delayed_messages=delayed,
            wall_seconds=quiesced_at - started_at,
            adversary=(
                self.driver.adversary.describe()
                if self.driver.adversary is not None
                else None
            ),
            workers=workers,
            recovery=recovery,
            chaos=chaos_section,
        )

    def _merge_chaos(self, results: dict, completed: bool) -> dict:
        """Fold per-worker chaos sections into one record section.

        Stage ``fired`` flags are OR-ed (fault-controller stages fire in
        every worker, party-level stages only on the hosting one), weather
        counters and duplicate commits are summed, and the parent-side
        watchdog classifies the outcome -- on a stall the postmortem
        carries each worker's message trace.
        """
        from ..chaos.watchdog import LivenessWatchdog

        worker_sections = {
            nid: r["chaos"] for nid, r in results.items() if r.get("chaos")
        }
        stages: list = []
        weather: Optional[dict] = None
        duplicate_commits = 0
        for nid in sorted(worker_sections):
            section = worker_sections[nid]
            duplicate_commits += section["duplicate_commits"]
            if not stages:
                stages = [dict(s) for s in section["stages"]]
            else:
                for merged, local in zip(stages, section["stages"]):
                    merged["fired"] = merged["fired"] or local["fired"]
                    if local.get("gave_up") and not merged["fired"]:
                        merged["gave_up"] = True
            if section.get("weather"):
                if weather is None:
                    weather = dict.fromkeys(section["weather"], 0)
                for key, value in section["weather"].items():
                    weather[key] += value
        chaos_section: dict = {"stages": stages}
        if weather is not None:
            chaos_section["weather"] = {
                "spec": self.spec.chaos.weather.to_dict()
                if self.spec.chaos.weather is not None
                else None,
                "seed": self.spec.seed,
                "counters": weather,
            }
        chaos_section["duplicate_commits"] = duplicate_commits
        if self.spec.chaos.watchdog:
            watchdog = LivenessWatchdog(
                self.spec.chaos,
                expect_liveness=self.expect_liveness,
                horizon=self.chaos_horizon,
            )
            watchdog.observe_quiescence(completed)
            section = watchdog.report()
            if "postmortem" in section:
                section["postmortem"].update(
                    {
                        "stages": stages,
                        "dropped_messages": sum(
                            r["dropped"] for r in results.values()
                        ),
                        "delayed_messages": sum(
                            r["delayed"] for r in results.values()
                        ),
                        "trace": {
                            str(nid): worker_sections[nid]["trace"]
                            for nid in sorted(worker_sections)
                        },
                    }
                )
            chaos_section["watchdog"] = section
        return chaos_section

    def _collect_ready(self, deadline: float) -> dict[int, tuple[str, int]]:
        addresses: dict[int, tuple[str, int]] = {}
        for nid in range(len(self._conns)):
            message = self._recv(nid, deadline)
            if message[0] != "ready":
                raise ProcError(
                    f"proc worker {nid} sent {message[0]!r} before 'ready'"
                )
            addresses[message[1]] = message[2]
        return addresses

    # -- crash-restart orchestration ----------------------------------------------
    def _kill_worker(self, nid: int, elapsed: float) -> None:
        """SIGKILL the worker mid-run -- a real crash, not a simulation."""
        proc = self._procs[nid]
        proc.kill()
        proc.join(timeout=5.0)
        self._down.add(nid)
        try:
            self._conns[nid].close()
        except OSError:
            pass
        self.recovery_events.setdefault(nid, {})["killed_at"] = elapsed

    def _respawn_worker(self, nid: int, elapsed: float, deadline: float) -> None:
        """Respawn a SIGKILLed worker and re-wire its new port.

        The reborn worker gets the run's ``state_dir`` and a bumped
        incarnation; the refreshed peer map reaches the other workers
        only after the worker reports ``rejoined``, so its WAL replay
        and watermark restore finish before any peer can dial the new
        port.
        """
        incarnation = self._incarnations.get(nid, 0) + 1
        self._incarnations[nid] = incarnation
        proc, conn = self._spawn(nid, incarnation)
        self._procs[nid] = proc
        self._conns[nid] = conn
        self._down.discard(nid)
        message = self._recv(nid, deadline)
        if message[0] != "ready":
            raise ProcError(
                f"respawned proc worker {nid} sent {message[0]!r} before 'ready'"
            )
        self._addresses[nid] = message[2]
        conn.send(("peers", self._addresses))
        message = self._recv(nid, deadline)
        if message[0] != "rejoined":
            raise ProcError(
                f"respawned proc worker {nid} sent {message[0]!r} before 'rejoined'"
            )
        events = self.recovery_events.setdefault(nid, {})
        events["respawned_at"] = elapsed
        events["recovered_from_wal"] = message[2].get("recovered_from_wal", 0)
        for other in self._live_workers():
            if other != nid:
                self._conns[other].send(("peers", self._addresses))

    def _await_completion(self, deadline: float, started_at: float) -> None:
        """Distributed termination detection (see module docstring)."""
        # (fire time, 0=kill | 1=respawn, nid): kills sort before the
        # respawns they precede, and a kill at t ties before an unrelated
        # respawn at t only by nid -- the spec forbids equal-time pairs
        # for one pid (restart_at > crash_at).
        events = sorted(
            [(crash_at, 0, nid) for crash_at, _, nid in self.restarts]
            + [(restart_at, 1, nid) for _, restart_at, nid in self.restarts]
        )
        stable = 0
        while True:
            elapsed = time.perf_counter() - started_at
            while events and events[0][0] <= elapsed:
                _, action, nid = events.pop(0)
                if action == 0:
                    self._kill_worker(nid, elapsed)
                else:
                    self._respawn_worker(nid, elapsed, deadline)
            statuses = self._request_all(("status",), "status", deadline)
            now = time.perf_counter()
            for nid, s in statuses.items():
                self._last_status[nid] = (now, s["sent"], s["received"])
            failures = {
                nid: s["failure"] for nid, s in statuses.items() if s["failure"]
            }
            if failures:
                details = "; ".join(
                    f"node {nid}: {text}" for nid, text in sorted(failures.items())
                )
                raise ProcError(f"proc worker failure at the pump: {details}")
            sent = sum(s["sent"] for s in statuses.values())
            received = sum(s["received"] for s in statuses.values())
            # A SIGKILLed worker takes its counters with it, so restart
            # runs cannot balance the books; they rely on done + idle
            # instead (retry queues keep senders non-idle while any
            # frame awaits redelivery).
            conserved = (sent == received) if not self.restarts else True
            quiescent = (
                all(s["idle"] for s in statuses.values())
                and conserved
                and not events
                and not self._down
            )
            done = all(
                statuses[nid]["done"]
                for nid in self.observers
                if nid in statuses
            )
            if (
                quiescent
                and (done or not self.expect_liveness)
                and elapsed >= self.chaos_horizon
            ):
                stable += 1
                if stable >= _STABLE_POLLS:
                    return
            else:
                stable = 0
            if time.perf_counter() > deadline:
                postmortems = "".join(
                    f"\n  worker {nid}:{self._postmortem(nid)}"
                    for nid in range(len(self._procs))
                )
                raise TimeoutError(
                    f"proc scenario did not complete within {self.timeout}s "
                    f"(done={done}, in-flight frames={sent - received})"
                    f"{postmortems}"
                )
            time.sleep(self.poll_interval)

    def _teardown(self) -> None:
        for nid in self._live_workers():
            try:
                self._conns[nid].send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()
        self._down.clear()


def run_proc_scenario(
    spec: ScenarioSpec,
    *,
    timeout: float = 60.0,
    committee=None,
    state_dir: Optional[str] = None,
):
    """Execute ``spec`` process-per-party; the ``proc`` branch of
    :func:`~repro.scenarios.harness.run_scenario`."""
    return ProcCluster(
        spec, timeout=timeout, committee=committee, state_dir=state_dir
    ).run()
