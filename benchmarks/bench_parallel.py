"""Benchmark P -- the parallel execution engine: fan-out speedup and
byte-identity across ``jobs``.

Two gated rows plus one recorded-only row:

* **campaign**: a 200-episode fuzz campaign (80 in quick mode) run
  sequentially and with ``jobs=8``, asserting the parallel run's
  summary and per-episode records are byte-identical to the sequential
  run before any timing is trusted;
* **dleq**: chunked batch DLEQ verification over the RFC 3526 2048-bit
  group, sequential vs ``jobs=8``, verdicts asserted identical;
* **rs** (recorded, never gated): Reed-Solomon stripe encoding across
  jobs -- the per-stripe work is too small on CI boxes for a stable
  speedup, so the row documents rather than gates.

Speedup gating is **core-aware**: the useful parallelism of a run is
``effective_jobs = min(jobs, cpus)``, and the absolute floor scales
with it -- 4.0x when 8 cores are really there, 2.0x at 4 cores, and a
no-worse-than-sequential 0.70x floor on a 1-core box where fan-out can
only add overhead.  ``--check`` additionally enforces a 30%% regression
floor against the committed ``BENCH_8.json`` baseline, but only when
the baseline was measured at the same effective parallelism (a 1-core
CI runner must not be graded against an 8-core baseline).

Run:    PYTHONPATH=src python benchmarks/bench_parallel.py [--full]
                [--out BENCH_8.json] [--check BASELINE.json]
or:     PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q -s
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.adversary import FuzzConfig, run_campaign
from repro.analysis.report import write_csv_rows, write_json
from repro.codes.reed_solomon import ReedSolomon
from repro.crypto.dleq import prove_dleq
from repro.crypto.group import RFC3526_GROUP_2048
from repro.parallel import (
    available_parallelism,
    encode_blocks_striped,
    verify_dleq_batch_chunked,
)

#: fan-out width for the gated rows (the acceptance bar's "8 cores")
JOBS = 8

#: fuzz episodes in quick mode; --full runs the acceptance-bar 200
QUICK_EPISODES = 80
FULL_EPISODES = 200

#: DLEQ statements in quick mode; --full doubles it
QUICK_STATEMENTS = 48
DLEQ_CHUNK = 8

#: RS stripe geometry (recorded only)
RS_K, RS_M = 5, 16
RS_STRIPES = 12
RS_STRIPE_BYTES = 4096

#: CI gate: fail when a speedup drops below this fraction of the
#: committed baseline's (only when effective_jobs match -- see module doc)
REGRESSION_FLOOR = 0.70


def absolute_floor(effective_jobs: int) -> float:
    """The machine-aware speedup bar for ``effective_jobs`` usable cores.

    8+ cores -> 4.0x (the acceptance bar), 4 cores -> 2.0x, 2-3 cores
    -> 1.2x, and on a single core -- where workers can only add fork
    and IPC overhead -- 0.70x, i.e. "not pathologically slower than
    sequential".
    """
    if effective_jobs <= 1:
        return 0.70
    return min(4.0, max(1.2, 0.5 * effective_jobs))


def _time(fn, repeats: int = 1):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _campaign_fingerprint(result) -> str:
    return json.dumps(
        {
            "summary": result.summary(),
            "outcomes": [
                {
                    "episode": o.episode,
                    "violations": o.violations,
                    "skipped": o.skipped,
                    "record": o.record,
                }
                for o in result.outcomes
            ],
        },
        sort_keys=True,
        default=str,
    )


def bench_campaign(*, full: bool) -> dict:
    """Fuzz-campaign fan-out: sequential vs jobs=8, byte-identity checked."""
    episodes = FULL_EPISODES if full else QUICK_EPISODES
    config = FuzzConfig(episodes=episodes, seed=8)
    repeats = 2 if full else 1
    t_seq, seq = _time(lambda: run_campaign(config), repeats)
    t_par, par = _time(lambda: run_campaign(config, jobs=JOBS), repeats)
    identical = _campaign_fingerprint(seq) == _campaign_fingerprint(par)
    effective = min(JOBS, available_parallelism())
    return {
        "workload": "fuzz-campaign",
        "episodes": episodes,
        "jobs": JOBS,
        "cpus": available_parallelism(),
        "effective_jobs": effective,
        "sequential_s": round(t_seq, 6),
        "parallel_s": round(t_par, 6),
        "speedup": round(t_seq / max(t_par, 1e-12), 2),
        "efficiency": round(t_seq / max(t_par, 1e-12) / effective, 3),
        "byte_identical": identical,
        "floor": absolute_floor(effective),
    }


def bench_dleq(*, full: bool) -> dict:
    """Chunked batch-DLEQ fan-out over the 2048-bit production group."""
    n = QUICK_STATEMENTS * (2 if full else 1)
    group = RFC3526_GROUP_2048
    rng = random.Random(0)
    g1 = group.generator
    g2 = group.power(group.generator, 0xC0FFEE)
    statements = []
    for _ in range(n):
        x = rng.randrange(1, group.order)
        y1, y2, proof = prove_dleq(group, x, g1, g2, rng)
        statements.append((y1, y2, proof))

    def run(jobs):
        return verify_dleq_batch_chunked(
            group, g1, g2, statements, jobs=jobs, chunk_size=DLEQ_CHUNK, seed=8
        )

    repeats = 2 if full else 1
    t_seq, seq = _time(lambda: run(1), repeats)
    t_par, par = _time(lambda: run(JOBS), repeats)
    effective = min(JOBS, available_parallelism())
    return {
        "workload": "dleq-batch-verify",
        "statements": n,
        "chunk_size": DLEQ_CHUNK,
        "group_bits": 2048,
        "jobs": JOBS,
        "cpus": available_parallelism(),
        "effective_jobs": effective,
        "sequential_s": round(t_seq, 6),
        "parallel_s": round(t_par, 6),
        "speedup": round(t_seq / max(t_par, 1e-12), 2),
        "efficiency": round(t_seq / max(t_par, 1e-12) / effective, 3),
        "verdicts_identical": seq == par,
        "all_valid": all(seq),
        "floor": absolute_floor(effective),
    }


def bench_rs(*, full: bool) -> dict:
    """RS stripe encoding across jobs (recorded only, never gated)."""
    stripes = [
        random.Random(i).randbytes(RS_STRIPE_BYTES)
        for i in range(RS_STRIPES * (2 if full else 1))
    ]
    rs = ReedSolomon(RS_K, RS_M)

    def run(jobs):
        return encode_blocks_striped(RS_K, RS_M, stripes, jobs=jobs, rs=rs)

    t_seq, seq = _time(lambda: run(1))
    t_par, par = _time(lambda: run(JOBS))
    return {
        "workload": "rs-stripe-encode",
        "k": RS_K,
        "m": RS_M,
        "stripes": len(stripes),
        "stripe_bytes": RS_STRIPE_BYTES,
        "jobs": JOBS,
        "cpus": available_parallelism(),
        "sequential_s": round(t_seq, 6),
        "parallel_s": round(t_par, 6),
        "speedup": round(t_seq / max(t_par, 1e-12), 2),
        "fragments_identical": seq == par,
        "gated": False,
    }


def run_bench(*, full: bool) -> dict:
    return {
        "bench": "parallel",
        "pr": 8,
        "mode": "full" if full else "quick",
        "cpus": available_parallelism(),
        "campaign": bench_campaign(full=full),
        "dleq": bench_dleq(full=full),
        "rs": bench_rs(full=full),
    }


def gate_failures(record: dict) -> list[str]:
    """Absolute-floor and identity failures for the two gated rows."""
    failures = []
    for key in ("campaign", "dleq"):
        row = record[key]
        identity = row.get("byte_identical", row.get("verdicts_identical"))
        if not identity:
            failures.append(f"{key}: parallel output differs from sequential")
        if row["speedup"] < row["floor"]:
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x < {row['floor']:.2f}x "
                f"floor at effective_jobs={row['effective_jobs']}"
            )
    if not record["rs"]["fragments_identical"]:
        failures.append("rs: parallel fragments differ from sequential")
    return failures


def check_against_baseline(record: dict, baseline_path: Path) -> list[str]:
    """Baseline-relative regressions, only at matching effective_jobs.

    A speedup ratio only cancels the machine when both runs had the
    same usable parallelism; when the CI runner's core count differs
    from the baseline box's, the absolute core-aware floor (always
    enforced by :func:`gate_failures`) is the only meaningful gate.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = gate_failures(record)
    for key in ("campaign", "dleq"):
        base_row = baseline.get(key)
        if not base_row:
            continue
        row = record[key]
        if row["effective_jobs"] != base_row.get("effective_jobs"):
            continue
        floor = base_row["speedup"] * REGRESSION_FLOOR
        if row["speedup"] < floor:
            failures.append(
                f"{key}.speedup: {row['speedup']:.2f}x < {floor:.2f}x "
                f"(baseline {base_row['speedup']:.2f}x * {REGRESSION_FLOOR})"
            )
    return failures


def write_artifacts(record: dict, out_path: Path) -> None:
    out_path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
    write_json("bench_parallel.json", record)
    write_csv_rows(
        "bench_parallel.csv",
        [
            "workload", "jobs", "cpus", "effective_jobs",
            "sequential_s", "parallel_s", "speedup",
        ],
        [
            [
                row["workload"], row["jobs"], row["cpus"],
                row.get("effective_jobs", min(row["jobs"], row["cpus"])),
                row["sequential_s"], row["parallel_s"], row["speedup"],
            ]
            for row in (record["campaign"], record["dleq"], record["rs"])
        ],
    )


def _print_table(record: dict) -> None:
    print(
        f"\nparallel-engine benchmark ({record['mode']} mode, "
        f"{record['cpus']} cpu(s))"
    )
    header = (
        f"{'workload':>20} {'jobs':>5} {'eff':>4} {'seq':>9} {'par':>9} "
        f"{'speedup':>8} {'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for key in ("campaign", "dleq", "rs"):
        row = record[key]
        identity = row.get(
            "byte_identical",
            row.get("verdicts_identical", row.get("fragments_identical")),
        )
        eff = row.get("effective_jobs", min(row["jobs"], row["cpus"]))
        print(
            f"{row['workload']:>20} {row['jobs']:>5} {eff:>4} "
            f"{row['sequential_s']:>8.3f}s {row['parallel_s']:>8.3f}s "
            f"{row['speedup']:>7.2f}x {str(identity):>10}"
        )


# -- pytest entry ----------------------------------------------------------------------

import pytest


@pytest.mark.proc
def test_parallel_bench(tmp_path):
    """Quick-mode run: identity always, speedup vs the core-aware floor.

    Writes only under tmp_path: the committed ``BENCH_8.json`` baseline
    is authored only by the explicit CLI ``--out`` path.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    (tmp_path / "bench_parallel.json").write_text(
        json.dumps(record, sort_keys=True, indent=2) + "\n"
    )
    failures = gate_failures(record)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="acceptance-bar sizes")
    parser.add_argument("--out", type=Path, default=Path("BENCH_8.json"))
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="fail when a gated speedup regresses >30%% vs this baseline",
    )
    args = parser.parse_args(argv)
    record = run_bench(full=args.full or os.environ.get("REPRO_BENCH_FULL", "") == "1")
    _print_table(record)
    write_artifacts(record, args.out)
    print(f"\nwrote {args.out}")
    failures = (
        check_against_baseline(record, args.check)
        if args.check is not None
        else gate_failures(record)
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate ok{f' vs {args.check}' if args.check else ''}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
