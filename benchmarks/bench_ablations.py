"""Ablation benchmarks A1-A3 (design choices called out in DESIGN.md).

* A1 -- the rounding constant ``c``: the paper's acknowledgments credit
  the constant (``c = alpha_w`` for WR) with significantly reducing
  ticket counts vs the naive ``c = 0`` family.
* A2 -- the quasilinear quick test: the paper reports a >3x speedup of
  the full mode from filtering knapsack invocations; we measure both the
  wall-clock and how many DP calls the filter removes, and assert the
  result is unchanged.
* A3 -- linear vs full mode: allocation gap and runtime across chains
  (paper: gaps are zero or tiny -- the parenthesised Table 2 entries).
"""

import time
from fractions import Fraction

import pytest

from repro.analysis.report import write_csv_rows
from repro.core.problems import WeightRestriction
from repro.core.solver import Swiper, solve_with_constant

PROBLEM = WeightRestriction("1/3", "1/2")


def test_a1_rounding_constant(benchmark, tezos_snapshot):
    """c = alpha_w (paper) vs c = 0 (naive floor family)."""
    weights = tezos_snapshot.weights

    def run():
        paper = solve_with_constant(PROBLEM, weights, PROBLEM.alpha_w)
        naive = solve_with_constant(PROBLEM, weights, 0)
        return paper, naive

    paper, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ntezos WR(1/3,1/2): c=alpha_w -> T={paper.total_tickets}, "
        f"c=0 -> T={naive.total_tickets} "
        f"(+{naive.total_tickets - paper.total_tickets} tickets without the constant)"
    )
    rows = [["tezos", paper.total_tickets, naive.total_tickets]]
    for c_num in (1, 2):
        other = solve_with_constant(PROBLEM, weights, Fraction(c_num, 6))
        rows.append([f"tezos c={c_num}/6", other.total_tickets, ""])
        print(f"  c={c_num}/6 -> T={other.total_tickets}")
    write_csv_rows("ablation_constant.csv", ["case", "paper_c", "c0"], rows)
    assert paper.total_tickets <= naive.total_tickets


def test_a2_quick_test_filter(benchmark, tezos_snapshot, filecoin_snapshot):
    """Quick test on vs off: identical output, fewer DP calls, faster."""
    rows = []
    for snap in (tezos_snapshot, filecoin_snapshot):
        t0 = time.perf_counter()
        with_quick = Swiper(mode="full", use_quick_test=True).solve(
            PROBLEM, snap.weights
        )
        t_with = time.perf_counter() - t0
        t0 = time.perf_counter()
        without = Swiper(mode="full", use_quick_test=False).solve(
            PROBLEM, snap.weights
        )
        t_without = time.perf_counter() - t0
        assert with_quick.assignment == without.assignment
        speedup = t_without / max(t_with, 1e-9)
        print(
            f"\n{snap.name}: quick-test on {t_with:.3f}s "
            f"(dp={with_quick.stats.dp_calls}) vs off {t_without:.3f}s "
            f"(dp={without.stats.dp_calls}) -- speedup x{speedup:.1f}"
        )
        rows.append(
            [snap.name, f"{t_with:.4f}", f"{t_without:.4f}",
             with_quick.stats.dp_calls, without.stats.dp_calls]
        )
        assert with_quick.stats.dp_calls <= without.stats.dp_calls
    write_csv_rows(
        "ablation_quicktest.csv",
        ["system", "secs_with", "secs_without", "dp_with", "dp_without"],
        rows,
    )
    benchmark.pedantic(
        lambda: Swiper(mode="full").solve(PROBLEM, tezos_snapshot.weights),
        rounds=3,
        iterations=1,
    )


def test_a3_linear_vs_full(benchmark, aptos_snapshot, tezos_snapshot, filecoin_snapshot):
    """Mode gap and runtime (paper: gaps tiny, linear mode ~Õ(n))."""
    rows = []
    for snap in (aptos_snapshot, tezos_snapshot, filecoin_snapshot):
        t0 = time.perf_counter()
        full = Swiper(mode="full").solve(PROBLEM, snap.weights)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        linear = Swiper(mode="linear").solve(PROBLEM, snap.weights)
        t_linear = time.perf_counter() - t0
        gap = linear.total_tickets - full.total_tickets
        print(
            f"\n{snap.name}: full T={full.total_tickets} ({t_full:.3f}s), "
            f"linear T={linear.total_tickets} ({t_linear:.3f}s), gap +{gap}"
        )
        rows.append([snap.name, full.total_tickets, linear.total_tickets, gap])
        assert gap >= 0
        # Paper: linear-mode surpluses are tiny (single digits in Table 2).
        assert gap <= max(10, full.total_tickets // 10)
    write_csv_rows(
        "ablation_modes.csv", ["system", "full", "linear", "gap"], rows
    )
    benchmark.pedantic(
        lambda: Swiper(mode="linear").solve(PROBLEM, tezos_snapshot.weights),
        rounds=3,
        iterations=1,
    )


def test_a4_solver_scaling(benchmark):
    """Runtime vs n on synthetic lognormal weights: the practical
    near-linear behaviour behind the Õ(n)/Õ(n²) modes."""
    from repro.datasets.synthetic import lognormal_weights

    rows = []
    for n in (100, 400, 1600):
        ws = lognormal_weights(n, 10**9, sigma=1.5, seed=3)
        t0 = time.perf_counter()
        result = Swiper(mode="full").solve(PROBLEM, ws)
        dt = time.perf_counter() - t0
        rows.append([n, f"{dt:.4f}", result.total_tickets])
        print(f"\nn={n}: {dt:.3f}s, T={result.total_tickets}")
    write_csv_rows("solver_scaling.csv", ["n", "seconds", "tickets"], rows)
    ws = lognormal_weights(400, 10**9, sigma=1.5, seed=3)
    benchmark.pedantic(
        lambda: Swiper(mode="full").solve(PROBLEM, ws), rounds=3, iterations=1
    )
