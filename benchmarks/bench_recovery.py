"""Benchmark R -- the crash-recovery layer: rejoin correctness and
recovery time.

Three rows:

* **sim-restart** (gated on correctness, never on timing): the
  ``crash-restart-smr`` registry scenario run twice on the simulator
  plus once fault-free -- the restart record must be byte-deterministic
  and the recovered log identical to the fault-free run's;
* **proc-sigkill** (the recovery-time row): the same scenario on the
  proc backend, where the orchestrator really SIGKILLs the worker OS
  process and respawns it.  Records downtime, rejoin time (respawn to
  cluster quiescence), and the WAL-vs-peer recovery split.  Gated on
  correctness and on an *absolute* rejoin-time ceiling -- generous,
  machine-independent, and meant to catch a rejoin that stalls into
  the retry/timeout regime rather than to grade the scheduler;
* **wal-replay** (recorded only): append+fsync and replay throughput of
  the durable write-ahead log.

``--check`` additionally fails when rejoin time blows past the
committed ``BENCH_9.json`` baseline by more than the slack factor
(floored at 2 s so a fast baseline box cannot make a normal CI runner
fail).

Run:    PYTHONPATH=src python benchmarks/bench_recovery.py [--full]
                [--out BENCH_9.json] [--check BASELINE.json]
or:     PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -q -s -m proc
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.report import write_csv_rows, write_json
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.spec import FaultSpec

#: absolute ceiling on proc rejoin seconds (respawn -> quiescence); the
#: healthy path measures well under 1 s, the broken one times out in 60
REJOIN_CEILING_S = 10.0

#: --check slack: fail at baseline * SLACK (but never below 2 s)
BASELINE_SLACK = 5.0

#: WAL microbench size in quick mode; --full quadruples it
QUICK_WAL_RECORDS = 2000


def bench_sim_restart() -> dict:
    """Sim crash-restart: deterministic, and identical to fault-free."""
    spec = get_scenario("crash-restart-smr")
    start = time.perf_counter()
    first = run_scenario(spec, backend="sim")
    elapsed = time.perf_counter() - start
    again = run_scenario(spec, backend="sim")
    clean = run_scenario(
        dataclasses.replace(spec, faults=FaultSpec()), backend="sim"
    )
    return {
        "workload": "sim-restart",
        "scenario": spec.name,
        "completed": first.completed,
        "deterministic": first.record_json() == again.record_json(),
        "matches_fault_free": set(first.decided.values())
        == set(clean.decided.values()),
        "sim_time": first.sim_time,
        "sim_time_fault_free": clean.sim_time,
        "wall_s": round(elapsed, 6),
    }


def bench_proc_sigkill() -> dict:
    """Proc SIGKILL + respawn: recovery telemetry and rejoin time."""
    from repro.parallel import run_proc_scenario

    spec = get_scenario("crash-restart-smr")
    start = time.perf_counter()
    result = run_proc_scenario(spec, timeout=60.0)
    elapsed = time.perf_counter() - start
    clean = run_proc_scenario(
        dataclasses.replace(spec, faults=FaultSpec()), timeout=60.0
    )
    recovery = result.recovery or {}
    (restarted_pid, _, _), = spec.faults.restarts
    node = recovery.get("nodes", {}).get(str(restarted_pid), {})
    return {
        "workload": "proc-sigkill",
        "scenario": spec.name,
        "completed": result.completed,
        "matches_fault_free": set(result.decided.values())
        == set(clean.decided.values()),
        "restarts": recovery.get("restarts", 0),
        "downtime_s": round(node.get("downtime_seconds", 0.0), 6),
        "rejoin_s": round(node.get("rejoin_seconds", 0.0), 6),
        "recovered_from_wal": recovery.get("recovered_from_wal", 0),
        "recovered_from_peers": recovery.get("recovered_from_peers", 0),
        "reconnects": recovery.get("reconnects", 0),
        "duplicates_dropped": recovery.get("duplicates_dropped", 0),
        "wall_s": round(elapsed, 6),
        "ceiling_s": REJOIN_CEILING_S,
    }


def bench_wal_replay(*, full: bool) -> dict:
    """Durable WAL append+fsync and replay throughput (recorded only)."""
    import tempfile

    from repro.recovery import WriteAheadLog

    records = QUICK_WAL_RECORDS * (4 if full else 1)
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
        wal = WriteAheadLog(Path(tmp) / "bench.wal", fsync_every=8)
        start = time.perf_counter()
        for i in range(records):
            wal.append(
                {"kind": "commit", "epoch": i % 4, "proposer": i % 8,
                 "payload": "ab" * 32}
            )
        wal.flush()
        append_s = time.perf_counter() - start
        start = time.perf_counter()
        replayed = sum(1 for _ in wal.replay())
        replay_s = time.perf_counter() - start
        wal.close()
    return {
        "workload": "wal-replay",
        "records": records,
        "append_s": round(append_s, 6),
        "replay_s": round(replay_s, 6),
        "appends_per_sec": round(records / max(append_s, 1e-12)),
        "replays_per_sec": round(replayed / max(replay_s, 1e-12)),
        "replayed_all": replayed == records,
        "gated": False,
    }


def run_bench(*, full: bool) -> dict:
    return {
        "bench": "recovery",
        "pr": 9,
        "mode": "full" if full else "quick",
        "sim": bench_sim_restart(),
        "proc": bench_proc_sigkill(),
        "wal": bench_wal_replay(full=full),
    }


def gate_failures(record: dict) -> list[str]:
    """Correctness gates plus the absolute rejoin ceiling."""
    failures = []
    sim = record["sim"]
    if not sim["completed"]:
        failures.append("sim: crash-restart scenario did not complete")
    if not sim["deterministic"]:
        failures.append("sim: crash-restart record is not byte-deterministic")
    if not sim["matches_fault_free"]:
        failures.append("sim: recovered log differs from the fault-free run")
    proc = record["proc"]
    if not proc["completed"]:
        failures.append("proc: SIGKILL-restart scenario did not complete")
    if not proc["matches_fault_free"]:
        failures.append("proc: recovered log differs from the fault-free run")
    if proc["restarts"] < 1:
        failures.append("proc: no restart was recorded")
    if proc["rejoin_s"] > REJOIN_CEILING_S:
        failures.append(
            f"proc: rejoin took {proc['rejoin_s']:.2f}s "
            f"> {REJOIN_CEILING_S:.0f}s ceiling"
        )
    if not record["wal"]["replayed_all"]:
        failures.append("wal: replay lost records")
    return failures


def check_against_baseline(record: dict, baseline_path: Path) -> list[str]:
    """Baseline-relative rejoin-time regression, with generous slack."""
    baseline = json.loads(baseline_path.read_text())
    failures = gate_failures(record)
    base_rejoin = baseline.get("proc", {}).get("rejoin_s")
    if base_rejoin:
        ceiling = max(2.0, base_rejoin * BASELINE_SLACK)
        if record["proc"]["rejoin_s"] > ceiling:
            failures.append(
                f"proc.rejoin_s: {record['proc']['rejoin_s']:.2f}s > "
                f"{ceiling:.2f}s (baseline {base_rejoin:.2f}s "
                f"* {BASELINE_SLACK})"
            )
    return failures


def write_artifacts(record: dict, out_path: Path) -> None:
    out_path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
    write_json("bench_recovery.json", record)
    write_csv_rows(
        "bench_recovery.csv",
        ["workload", "completed", "downtime_s", "rejoin_s", "wall_s"],
        [
            [
                record["sim"]["workload"], record["sim"]["completed"],
                "", "", record["sim"]["wall_s"],
            ],
            [
                record["proc"]["workload"], record["proc"]["completed"],
                record["proc"]["downtime_s"], record["proc"]["rejoin_s"],
                record["proc"]["wall_s"],
            ],
        ],
    )


def _print_table(record: dict) -> None:
    sim, proc, wal = record["sim"], record["proc"], record["wal"]
    print(f"\nrecovery benchmark ({record['mode']} mode)")
    print(
        f"{'sim-restart':>14}: completed={sim['completed']} "
        f"deterministic={sim['deterministic']} "
        f"matches-fault-free={sim['matches_fault_free']}"
    )
    print(
        f"{'proc-sigkill':>14}: downtime={proc['downtime_s']:.3f}s "
        f"rejoin={proc['rejoin_s']:.3f}s wal-recovered="
        f"{proc['recovered_from_wal']} peer-recovered="
        f"{proc['recovered_from_peers']} reconnects={proc['reconnects']}"
    )
    print(
        f"{'wal-replay':>14}: {wal['appends_per_sec']}/s append "
        f"{wal['replays_per_sec']}/s replay over {wal['records']} records"
    )


# -- pytest entry ----------------------------------------------------------------------

import pytest


@pytest.mark.proc
def test_recovery_bench(tmp_path):
    """Quick-mode run: correctness gates plus the absolute rejoin ceiling.

    Writes only under tmp_path: the committed ``BENCH_9.json`` baseline
    is authored only by the explicit CLI ``--out`` path.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    (tmp_path / "bench_recovery.json").write_text(
        json.dumps(record, sort_keys=True, indent=2) + "\n"
    )
    failures = gate_failures(record)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="acceptance-bar sizes")
    parser.add_argument("--out", type=Path, default=Path("BENCH_9.json"))
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="fail when rejoin time regresses vs this baseline",
    )
    args = parser.parse_args(argv)
    record = run_bench(
        full=args.full or os.environ.get("REPRO_BENCH_FULL", "") == "1"
    )
    _print_table(record)
    write_artifacts(record, args.out)
    print(f"\nwrote {args.out}")
    failures = (
        check_against_baseline(record, args.check)
        if args.check is not None
        else gate_failures(record)
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate ok{f' vs {args.check}' if args.check else ''}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
