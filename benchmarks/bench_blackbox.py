"""Benchmark P4 -- the black-box transformation (paper, Section 4.4).

Measures the virtual-user overhead of black-box weighted VABA against
the nominal protocol at the same party count, and the SSLE chain-quality
relaxation: the adversary's won-epoch fraction stays below ``f_n`` while
its weight may reach ``f_w = f_n - epsilon``.
"""

import pytest

from repro.analysis.report import write_csv_rows
from repro.protocols.ssle import SsleElection, chain_quality
from repro.protocols.vaba import VabaParty, WeightedVabaRunner
from repro.sim import build_world
from repro.sim.adversary import most_tickets_under
from repro.weighted import black_box_setup

WEIGHTS = [14, 13, 12, 11, 11, 10, 10, 9, 5, 5]
N = len(WEIGHTS)


def _run_nominal_vaba(n, seed=0):
    t = (n - 1) // 3
    world = build_world(lambda pid: VabaParty(pid, n, t, coin_seed=seed), n, seed=seed)
    for pid in range(n):
        world.party(pid).propose(b"value")
    world.run()
    assert all(p.decided == b"value" for p in world.parties)
    return world.metrics


def _run_blackbox_vaba(setup, seed=0):
    runner = WeightedVabaRunner(setup.vmap, WEIGHTS, setup.f_w, coin_seed=seed)
    outputs = {}
    parties = runner.build_parties(
        setup.f_n, on_decide=lambda vid, v: outputs.setdefault(vid, v)
    )
    world = build_world(lambda vid: parties[vid], runner.n_virtual, seed=seed)
    for real in range(N):
        for vid in setup.vmap.virtual_ids(real):
            world.party(vid).propose(b"value")
    world.run()
    assert len(set(outputs.values())) == 1
    real_out = runner.real_output(outputs)
    assert len(real_out) == N
    return world.metrics, runner.n_virtual


def test_blackbox_vaba_overhead(benchmark):
    setup = black_box_setup(WEIGHTS, "1/3", "1/12")
    nominal_metrics = _run_nominal_vaba(N, seed=1)
    (weighted_metrics, n_virtual) = benchmark.pedantic(
        lambda: _run_blackbox_vaba(setup, seed=1), rounds=1, iterations=1
    )
    user_factor = n_virtual / N
    msg_factor = weighted_metrics.messages / max(nominal_metrics.messages, 1)
    print(
        f"\nblack-box VABA: T={n_virtual} virtual users over n={N} "
        f"(x{user_factor:.2f}, bound x2.25); messages x{msg_factor:.2f} "
        f"(quadratic protocol -> expect ~x{user_factor**2:.2f})"
    )
    write_csv_rows(
        "blackbox_vaba.csv",
        ["layout", "users", "messages", "bytes"],
        [
            ["nominal", N, nominal_metrics.messages, nominal_metrics.bytes],
            ["weighted", n_virtual, weighted_metrics.messages, weighted_metrics.bytes],
        ],
    )
    assert user_factor <= 2.25 + 1e-9


def test_ssle_chain_quality(benchmark):
    setup = black_box_setup(WEIGHTS, "1/3", "1/12")
    tickets = setup.result.assignment.to_list()
    corrupt = most_tickets_under(WEIGHTS, tickets, setup.f_w)
    election = SsleElection(setup.vmap, beacon_seed=4)

    quality = benchmark.pedantic(
        lambda: chain_quality(election, corrupt, epochs=20000),
        rounds=1,
        iterations=1,
    )
    ticket_frac = setup.vmap.corrupted_fraction(corrupt)
    corrupt_weight = sum(WEIGHTS[i] for i in corrupt) / sum(WEIGHTS)
    print(
        f"\nSSLE: adversary weight {corrupt_weight:.1%} (< f_w={float(setup.f_w):.1%}), "
        f"tickets {ticket_frac:.1%}, won {quality:.1%} of 20000 epochs "
        f"[chain-quality bound f_n = {float(setup.f_n):.1%}]"
    )
    write_csv_rows(
        "ssle_chain_quality.csv",
        ["corrupt_weight", "ticket_fraction", "win_fraction", "f_n"],
        [[f"{corrupt_weight:.4f}", f"{ticket_frac:.4f}", f"{quality:.4f}", f"{float(setup.f_n):.4f}"]],
    )
    assert quality < float(setup.f_n)
    assert ticket_frac < float(setup.f_n)
