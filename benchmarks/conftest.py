"""Shared fixtures for the benchmark harness.

Chain snapshots are generated once per session; results are written to
``results/`` (override with ``REPRO_RESULTS_DIR``).  Set
``REPRO_BENCH_FULL=1`` to run every cell in full mode including the
slowest Algorand Weight Separation columns.
"""

import os

import pytest

from repro.datasets import algorand, aptos, filecoin, tezos


@pytest.fixture(scope="session")
def aptos_snapshot():
    return aptos()


@pytest.fixture(scope="session")
def tezos_snapshot():
    return tezos()


@pytest.fixture(scope="session")
def filecoin_snapshot():
    return filecoin()


@pytest.fixture(scope="session")
def algorand_snapshot():
    return algorand()


@pytest.fixture(scope="session")
def full_mode_everywhere():
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"
