"""Benchmark -- the scenario registry swept across execution backends.

Every built-in scenario runs on the discrete-event simulator; the
cross-backend subset (``INPROC_SCENARIOS``) additionally runs on the
live in-process runtime.  The table compares message/byte totals and
latency (virtual seconds for the sim, wall-clock for the runtime), and
asserts the cross-backend contract: decided values agree, and message
counts agree for the protocols whose drivers mark them comparable.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q -s
"""

from repro.analysis.report import write_csv_rows
from repro.scenarios import INPROC_SCENARIOS, SCENARIOS, get_scenario, run_scenario

HEADER = [
    "scenario", "protocol", "backend", "nodes", "completed",
    "messages", "bytes", "dropped", "delayed", "latency_seconds",
]


def _row(result):
    latency = result.sim_time if result.backend == "sim" else result.wall_seconds
    return [
        result.spec.name,
        result.spec.protocol,
        result.backend,
        result.n_nodes,
        result.completed,
        result.messages,
        result.bytes,
        result.dropped_messages,
        result.delayed_messages,
        f"{latency:.6f}",
    ]


def test_registry_sweep_sim(benchmark):
    """Whole registry on the simulator; wall time of the full sweep."""

    def sweep():
        return [run_scenario(spec, backend="sim") for spec in SCENARIOS.values()]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [_row(r) for r in results]
    print(f"\n{'scenario':<20} {'proto':<10} {'msgs':>6} {'bytes':>9} {'virtual s':>10}")
    for r in results:
        print(
            f"{r.spec.name:<20} {r.spec.protocol:<10} {r.messages:>6} "
            f"{r.bytes:>9} {r.sim_time:>10.3f}"
        )
    assert all(r.completed for r in results)
    write_csv_rows("scenario_sweep_sim.csv", HEADER, rows)


def test_cross_backend_agreement(benchmark):
    """Sim vs live inproc on the cross-backend subset."""
    pairs = []

    def sweep():
        out = []
        for name in INPROC_SCENARIOS:
            spec = get_scenario(name)
            out.append((run_scenario(spec, backend="sim"),
                        run_scenario(spec, backend="inproc")))
        return out

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    print(f"\n{'scenario':<20} {'sim msgs':>8} {'live msgs':>9} {'sim s':>8} {'live s':>8}")
    for sim, live in pairs:
        rows.extend([_row(sim), _row(live)])
        print(
            f"{sim.spec.name:<20} {sim.messages:>8} {live.messages:>9} "
            f"{sim.sim_time:>8.3f} {live.wall_seconds:>8.3f}"
        )
        assert sim.decided == live.decided, sim.spec.name
        if sim.count_comparable:
            assert dict(sim.by_type) == dict(live.by_type), sim.spec.name
    write_csv_rows("scenario_sweep_backends.csv", HEADER, rows)
