"""Benchmark C -- the vectorized coding engine vs the per-symbol seed path.

Measures Reed-Solomon encode / erasure-decode / error-decode throughput
at several ``(k, m, payload)`` points -- including the acceptance point
``(k=85, m=256, 64 KiB)`` over GF(2^16) -- for both engines:

* **seed**: the per-symbol reference path (``encode_bytes`` /
  ``decode_bytes``), one Python field op per symbol.  In quick mode it is
  timed on a payload *slice* and scaled linearly (the per-symbol path is
  exactly linear in the stripe count); ``--full`` / ``REPRO_BENCH_FULL=1``
  times the full payload.
* **block**: the block-striped engine (``encode_blocks`` /
  ``decode_erasures_blocks`` / ``decode_errors_blocks``).  Decode is
  timed warm (steady state: the Lagrange basis and scalar rows are
  LRU-cached, which is how the protocols hit it).

Also times the ``large-batch-smr`` and ``uniform-rbc`` scenarios on the
sim backend (wall-clock), then records everything to ``BENCH_4.json`` --
the repo's perf-trajectory baseline -- plus CSV artifacts in
``results/``.

Run:    PYTHONPATH=src python benchmarks/bench_codes.py [--full]
                [--out BENCH_4.json] [--check BASELINE.json]
or:     PYTHONPATH=src python -m pytest benchmarks/bench_codes.py -q -s

``--check`` compares the freshly measured block-vs-seed speedup ratios
(machine-independent: both paths run on the same box in the same
process) against a committed baseline and exits non-zero when any point
regresses by more than 30% -- the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.analysis.report import write_csv_rows, write_json
from repro.codes import ReedSolomon

#: (label, k, m, payload bytes); the last row is the acceptance point
POINTS = [
    ("gf256-small", 4, 8, 4096),
    ("gf256-mid", 16, 48, 16384),
    ("gf65536-target", 85, 256, 65536),
]

#: seed-path slice length in quick mode (scaled up linearly)
QUICK_SLICE = 2048

#: CI gate: fail when a block throughput drops below this fraction of
#: the committed baseline
REGRESSION_FLOOR = 0.70


def _mbps(nbytes: int, seconds: float) -> float:
    return nbytes / max(seconds, 1e-12) / 1e6


def _time(fn, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time; the block-path closures finish in
    microseconds, so a single shot would be at the mercy of one scheduler
    preemption -- min-of-N is what the CI gate can rely on."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_point(label: str, k: int, m: int, payload_len: int, *, full: bool) -> dict:
    rng = random.Random(42)
    payload = rng.randbytes(payload_len)
    rs = ReedSolomon(k=k, m=m)
    indices = rng.sample(range(m), k)

    # -- block engine (warm: one untimed pass populates the caches) -----------
    blocks = rs.encode_blocks(payload)
    t_block_enc = _time(lambda: rs.encode_blocks(payload), repeats=5)
    subset = {j: blocks[j] for j in indices}
    assert rs.decode_erasures_blocks(subset, payload_len) == payload
    t_block_dec = _time(
        lambda: rs.decode_erasures_blocks(subset, payload_len), repeats=5
    )

    # error decoding: a third of the budget garbled, r = k + budget extra
    r = min(m, k + 2 * max((m - k) // 3, 0) + 1)
    received = rng.sample(range(m), r)
    corrupted = {j: blocks[j] for j in received}
    garble = bytes(b ^ 0x2A for b in range(256))
    for j in rng.sample(received, (r - k) // 2):
        corrupted[j] = corrupted[j].translate(garble)
    assert rs.decode_errors_blocks(corrupted, payload_len) == payload
    t_block_err = _time(
        lambda: rs.decode_errors_blocks(corrupted, payload_len), repeats=3
    )

    # -- seed engine (slice-scaled in quick mode) ------------------------------
    slice_len = payload_len if full else min(payload_len, QUICK_SLICE)
    scale = payload_len / slice_len
    piece = payload[:slice_len]
    chunks, length = rs.encode_bytes(piece)
    t_seed_enc = _time(lambda: rs.encode_bytes(piece)) * scale
    surviving = [[c[j] for j in indices] for c in chunks]
    assert rs.decode_bytes(surviving, length) == piece
    t_seed_dec = _time(lambda: rs.decode_bytes(surviving, length)) * scale

    combined_speedup = (t_seed_enc + t_seed_dec) / max(
        t_block_enc + t_block_dec, 1e-12
    )
    return {
        "label": label,
        "k": k,
        "m": m,
        "payload_bytes": payload_len,
        "seed_encode_mbps": round(_mbps(payload_len, t_seed_enc), 4),
        "seed_decode_mbps": round(_mbps(payload_len, t_seed_dec), 4),
        "block_encode_mbps": round(_mbps(payload_len, t_block_enc), 4),
        "block_decode_mbps": round(_mbps(payload_len, t_block_dec), 4),
        "block_error_decode_mbps": round(_mbps(payload_len, t_block_err), 4),
        "combined_speedup": round(combined_speedup, 2),
        "seed_scaled_from_bytes": slice_len,
    }


def bench_scenarios() -> dict:
    """Sim-backend wall-clocks for the byte-heavy registry scenarios."""
    from repro.scenarios import get_scenario, run_scenario

    out = {}
    for name in ("large-batch-smr", "uniform-rbc"):
        spec = get_scenario(name)
        run_scenario(spec, backend="sim")  # warm (weight solving, caches)
        elapsed = []
        for _ in range(3):
            start = time.perf_counter()
            result = run_scenario(spec, backend="sim")
            elapsed.append(time.perf_counter() - start)
        assert result.completed, f"scenario {name} did not complete"
        out[name] = {
            "wall_seconds": round(min(elapsed), 4),
            "messages": result.messages,
            "bytes": result.bytes,
            "sim_events": result.sim_events,
        }
    return out


def run_bench(*, full: bool) -> dict:
    rows = [bench_point(*point, full=full) for point in POINTS]
    record = {
        "bench": "codes",
        "pr": 4,
        "mode": "full" if full else "quick",
        "rs": rows,
        "scenarios": bench_scenarios(),
    }
    return record


def check_against_baseline(record: dict, baseline_path: Path) -> list[str]:
    """Block-throughput regressions beyond the floor, as messages.

    The gate compares ``combined_speedup`` -- block throughput measured
    *relative to the seed path in the same run* -- against the committed
    baseline's ratio.  The ratio cancels the machine, so a slower CI
    runner does not trip the gate but a real coding-engine regression
    (block path losing ground against the unchanging seed path) does.
    Absolute MB/s figures are recorded alongside for the trajectory.
    """
    baseline = json.loads(baseline_path.read_text())
    base_rows = {row["label"]: row for row in baseline.get("rs", [])}
    failures = []
    for row in record["rs"]:
        base = base_rows.get(row["label"])
        if base is None:
            continue
        floor = base["combined_speedup"] * REGRESSION_FLOOR
        if row["combined_speedup"] < floor:
            failures.append(
                f"{row['label']}.combined_speedup: {row['combined_speedup']:.1f}x < "
                f"{floor:.1f}x (baseline {base['combined_speedup']:.1f}x * {REGRESSION_FLOOR})"
            )
    return failures


def write_artifacts(record: dict, out_path: Path) -> None:
    out_path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
    write_json("bench_codes.json", record)
    write_csv_rows(
        "bench_codes.csv",
        [
            "label", "k", "m", "payload_bytes",
            "seed_encode_mbps", "seed_decode_mbps",
            "block_encode_mbps", "block_decode_mbps",
            "block_error_decode_mbps", "combined_speedup",
        ],
        [
            [
                row["label"], row["k"], row["m"], row["payload_bytes"],
                row["seed_encode_mbps"], row["seed_decode_mbps"],
                row["block_encode_mbps"], row["block_decode_mbps"],
                row["block_error_decode_mbps"], row["combined_speedup"],
            ]
            for row in record["rs"]
        ],
    )
    write_csv_rows(
        "bench_codes_scenarios.csv",
        ["scenario", "wall_seconds", "messages", "bytes", "sim_events"],
        [
            [name, s["wall_seconds"], s["messages"], s["bytes"], s["sim_events"]]
            for name, s in record["scenarios"].items()
        ],
    )


def _print_table(record: dict) -> None:
    print(f"\ncoding-engine benchmark ({record['mode']} mode)")
    header = (
        f"{'point':<16} {'seed enc':>9} {'seed dec':>9} "
        f"{'block enc':>10} {'block dec':>10} {'blk err':>9} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in record["rs"]:
        print(
            f"{row['label']:<16} {row['seed_encode_mbps']:>7.2f}MB {row['seed_decode_mbps']:>7.2f}MB "
            f"{row['block_encode_mbps']:>8.2f}MB {row['block_decode_mbps']:>8.2f}MB "
            f"{row['block_error_decode_mbps']:>7.2f}MB {row['combined_speedup']:>7.1f}x"
        )
    for name, s in record["scenarios"].items():
        print(f"scenario {name}: {s['wall_seconds']:.3f}s sim wall-clock")


# -- pytest entry ----------------------------------------------------------------------


def test_block_engine_speedup(tmp_path):
    """Quick-mode run: the acceptance point must clear 10x combined.

    Deliberately writes nowhere near the repo: the committed
    ``BENCH_4.json`` baseline is authored only by the explicit CLI
    ``--out`` path, never as a pytest side effect.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    (tmp_path / "bench_codes.json").write_text(
        json.dumps(record, sort_keys=True, indent=2) + "\n"
    )
    target = next(r for r in record["rs"] if r["label"] == "gf65536-target")
    assert target["combined_speedup"] >= 10.0


# -- CLI entry -------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="time the seed path on full payloads")
    parser.add_argument("--out", default="BENCH_4.json", help="baseline JSON to write")
    parser.add_argument("--check", metavar="BASELINE", help="compare against a committed baseline; exit 2 on >30%% regression")
    args = parser.parse_args(argv)
    full = args.full or os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    write_artifacts(record, Path(args.out))
    print(f"\nbaseline written to {args.out}")
    if args.check:
        failures = check_against_baseline(record, Path(args.check))
        if failures:
            print("\nPERF REGRESSION against", args.check)
            for f in failures:
                print(" -", f)
            return 2
        print(f"no regression against {args.check} (floor {REGRESSION_FLOOR:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
