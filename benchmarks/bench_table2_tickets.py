"""Benchmark T2 -- paper Table 2: tickets allocated by Swiper on the four
chain snapshots under the paper's seven parameter settings, full vs
linear mode.

Prints the regenerated table (same layout as the paper: linear-mode
surplus in parentheses) and writes ``results/table2.txt`` + CSV.

Shape claims checked here:
* tickets stay far below the theorem bounds on organic distributions;
* for the skewed chains, tickets often drop below the party count;
* linear mode rarely allocates more than a handful of extra tickets.
"""

from fractions import Fraction

import pytest

from repro.analysis.report import write_csv_rows, write_text
from repro.analysis.table2 import TABLE2_COLUMNS, build_table2, format_table2
from repro.core.problems import WeightRestriction, WeightSeparation
from repro.core.solver import Swiper


def test_table2_small_chains(benchmark, aptos_snapshot, tezos_snapshot):
    """Aptos + Tezos rows, all seven columns, both modes."""
    rows = benchmark.pedantic(
        lambda: build_table2([aptos_snapshot, tezos_snapshot]),
        rounds=1,
        iterations=1,
    )
    table = format_table2(rows)
    print("\n" + table)
    write_text("table2_small.txt", table)
    for row in rows:
        for cell in row.cells:
            assert cell.full_tickets >= 1
            assert cell.linear_tickets >= cell.full_tickets
        # Organic-skew claim: WR(1/3,1/2) tickets below n.
        wr12 = next(c for c in row.cells if c.label == "WR(1/3,1/2)")
        assert wr12.full_tickets < row.n


def test_table2_filecoin(benchmark, filecoin_snapshot):
    """Filecoin row (n=3700), all columns, both modes."""
    rows = benchmark.pedantic(
        lambda: build_table2([filecoin_snapshot]), rounds=1, iterations=1
    )
    table = format_table2(rows)
    print("\n" + table)
    write_text("table2_filecoin.txt", table)
    row = rows[0]
    csv_rows = [
        [row.system, c.label, c.full_tickets, c.linear_tickets] for c in row.cells
    ]
    write_csv_rows(
        "table2_filecoin.csv",
        ["system", "setting", "full", "linear"],
        csv_rows,
    )


def test_table2_algorand(benchmark, algorand_snapshot, full_mode_everywhere):
    """Algorand row (n=42920).

    WR columns run in full mode; the WS columns default to linear mode
    (their ticket bound is ~5.7n = 240k+, making full-mode verification
    minutes-long) unless REPRO_BENCH_FULL=1.  The paper's own Table 2
    found the two modes almost always identical.
    """
    snap = algorand_snapshot
    wr_columns = TABLE2_COLUMNS[:4]
    ws_columns = TABLE2_COLUMNS[4:]

    def run():
        full, linear = Swiper(mode="full"), Swiper(mode="linear")
        cells = []
        for label, problem in wr_columns:
            f = full.solve(problem, snap.weights)
            l = linear.solve(problem, snap.weights)
            cells.append((label, f.total_tickets, l.total_tickets))
        for label, problem in ws_columns:
            if full_mode_everywhere:
                f_total = full.solve(problem, snap.weights).total_tickets
            else:
                f_total = None
            l_total = linear.solve(problem, snap.weights).total_tickets
            cells.append((label, f_total, l_total))
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nalgorand  n={snap.n}  W={snap.total:.2e}")
    for label, f_total, l_total in cells:
        shown = f_total if f_total is not None else f"linear-only:{l_total}"
        print(f"  {label:<14} {shown}")
    write_csv_rows(
        "table2_algorand.csv",
        ["setting", "full", "linear"],
        [[label, f if f is not None else "", l] for label, f, l in cells],
    )
    # Headline paper claim: tickets far below n for the dusty chain.
    wr12 = next(c for c in cells if c[0] == "WR(1/3,1/2)")
    assert wr12[1] < snap.n / 10


def test_table2_bounds_respected(aptos_snapshot, tezos_snapshot):
    """Every cell respects its theorem bound (robustness claim)."""
    for snap in (aptos_snapshot, tezos_snapshot):
        for label, problem in TABLE2_COLUMNS:
            for mode in ("full", "linear"):
                result = Swiper(mode=mode).solve(problem, snap.weights)
                assert result.total_tickets <= problem.ticket_bound(snap.n), (
                    snap.name,
                    label,
                    mode,
                )
