"""Benchmark D -- the batched crypto engine vs the per-share seed path.

Measures threshold-signature share verification and weighted-coin
opening for both engines:

* **seed**: the per-share reference path -- one
  :func:`~repro.crypto.dleq.verify_dleq` oracle call per share (four
  full-width modular exponentiations plus two Euler membership checks)
  and a scalar ``pow`` chain for the Lagrange-in-the-exponent combine.
  In quick mode it is timed on a share *slice* and scaled linearly (the
  per-share path is exactly linear in the share count);
  ``--full`` / ``REPRO_BENCH_FULL=1`` times every share.
* **batch**: :meth:`ThresholdSignatureScheme.verify_shares_batch` (one
  small-exponent random-linear-combination aggregate, two Straus
  multi-exponentiations for the whole batch) and the multi-exp combine.
  Timed warm (steady state: the generator/`H(m)` fixed-base tables and
  the message-point LRU are populated, which is how the protocols hit
  it).

The acceptance point is 64 shares of one message on the RFC 3526
2048-bit group (>= 10x batch-vs-seed).  A weighted-coin row opens a
T = 1024-ticket coin through the batch path on the 256-bit test group
and checks bit-identical values against the per-share oracle.

Run:    PYTHONPATH=src python benchmarks/bench_crypto.py [--full]
                [--out BENCH_5.json] [--check BASELINE.json]
or:     PYTHONPATH=src python -m pytest benchmarks/bench_crypto.py -q -s

``--check`` compares the freshly measured batch-vs-seed speedup ratios
(machine-independent: both paths run on the same box in the same
process) against a committed baseline and exits non-zero when any point
regresses by more than 30% -- the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.analysis.report import write_csv_rows, write_json
from repro.crypto.group import RFC3526_GROUP_2048, TEST_GROUP_256
from repro.crypto.common_coin import WeightedCoin
from repro.crypto.polynomial import lagrange_coefficients_at
from repro.crypto.threshold_sig import ThresholdSignatureScheme

#: (label, group, shares); the last row is the acceptance point
POINTS = [
    ("dleq-256-64", TEST_GROUP_256, 64),
    ("dleq-2048-64", RFC3526_GROUP_2048, 64),
]

#: seed-path slice length in quick mode (scaled up linearly)
QUICK_SLICE = 8

#: CI gate: fail when a batch speedup drops below this fraction of the
#: committed baseline's ratio
REGRESSION_FLOOR = 0.70


def _time(fn, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time (min-of-N: robust to preemption)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_point(label: str, group, n_shares: int, *, full: bool) -> dict:
    rng = random.Random(42)
    k = n_shares // 2 + 1
    scheme = ThresholdSignatureScheme(group, n_shares, k)
    scheme.keygen(rng)
    message = b"bench-epoch|" + label.encode()
    shares = [scheme.sign_share(i, message, rng) for i in range(1, n_shares + 1)]

    # -- batch engine (warm: one untimed pass populates the tables) -----------
    assert all(scheme.verify_shares_batch(shares, message))
    t_batch_verify = _time(
        lambda: scheme.verify_shares_batch(shares, message), repeats=3
    )
    chosen = shares[:k]
    t_batch_combine = _time(lambda: scheme.combine(chosen, message, verify=False), repeats=3)

    # -- seed engine (slice-scaled in quick mode) ------------------------------
    slice_len = n_shares if full else min(n_shares, QUICK_SLICE)
    scale = n_shares / slice_len
    piece = shares[:slice_len]
    assert all(scheme.verify_share(s, message) for s in piece)
    t_seed_verify = _time(
        lambda: [scheme.verify_share(s, message) for s in piece], repeats=3
    ) * scale

    lambdas = lagrange_coefficients_at(scheme.field, [s.index for s in chosen], 0)

    def seed_combine() -> int:
        sigma = 1
        for lam, share in zip(lambdas, chosen):
            sigma = sigma * group.power(share.value, lam) % group.p
        return sigma

    assert seed_combine() == scheme.combine(chosen, message, verify=False)
    t_seed_combine = _time(seed_combine, repeats=3)

    return {
        "label": label,
        "group_bits": group.p.bit_length(),
        "shares": n_shares,
        "threshold": k,
        "seed_verify_s": round(t_seed_verify, 6),
        "batch_verify_s": round(t_batch_verify, 6),
        "seed_combine_s": round(t_seed_combine, 6),
        "batch_combine_s": round(t_batch_combine, 6),
        "verify_speedup": round(t_seed_verify / max(t_batch_verify, 1e-12), 2),
        "combine_speedup": round(t_seed_combine / max(t_batch_combine, 1e-12), 2),
        "seed_scaled_from_shares": slice_len,
    }


def bench_weighted_coin(*, full: bool) -> dict:
    """T = 1024-ticket weighted coin: batch open vs per-share oracle."""
    rng = random.Random(7)
    tickets = [8] * 128
    coin = WeightedCoin(TEST_GROUP_256, tickets, "1/2", rng)
    epoch = 1
    shares = []
    for party in range(len(tickets)):
        shares.extend(coin.shares_of_party(party, epoch, rng))
    quorum = shares[: coin.threshold]

    def batch_open() -> int:
        verdicts = coin.verify_shares(quorum, epoch)
        good = [s for s, ok in zip(quorum, verdicts) if ok]
        return coin.coin.open(good, epoch, verify=False)

    value = batch_open()  # warm
    t_batch = _time(batch_open, repeats=3)

    message = coin.coin._epoch_message(epoch)
    slice_len = len(quorum) if full else min(len(quorum), 4 * QUICK_SLICE)
    scale = len(quorum) / slice_len
    t_seed_verify = _time(
        lambda: [coin.coin.scheme.verify_share(s, message) for s in quorum[:slice_len]],
        repeats=3,
    ) * scale
    lambdas = lagrange_coefficients_at(
        coin.coin.scheme.field, [s.index for s in quorum], 0
    )
    group = TEST_GROUP_256

    def seed_combine() -> int:
        sigma = 1
        for lam, share in zip(lambdas, quorum):
            sigma = sigma * group.power(share.value, lam) % group.p
        return sigma

    t_seed = t_seed_verify + _time(seed_combine, repeats=3)

    # Bit-identical value through a different share subset (uniqueness).
    oracle_value = coin.coin.open(shares[512 : 512 + coin.threshold], epoch)
    assert value == oracle_value, "batch coin value diverged from the oracle"

    return {
        "tickets": coin.total_shares,
        "threshold": coin.threshold,
        "group_bits": TEST_GROUP_256.p.bit_length(),
        "seed_open_s": round(t_seed, 6),
        "batch_open_s": round(t_batch, 6),
        "open_speedup": round(t_seed / max(t_batch, 1e-12), 2),
        "seed_scaled_from_shares": slice_len,
        "bit_identical_to_oracle": True,
    }


def run_bench(*, full: bool) -> dict:
    rows = [bench_point(*point, full=full) for point in POINTS]
    return {
        "bench": "crypto",
        "pr": 5,
        "mode": "full" if full else "quick",
        "dleq": rows,
        "weighted_coin": bench_weighted_coin(full=full),
    }


def check_against_baseline(record: dict, baseline_path: Path) -> list[str]:
    """Batch-speedup regressions beyond the floor, as messages.

    The gate compares ``verify_speedup`` -- the batch path measured
    *relative to the seed path in the same run* -- against the committed
    baseline's ratio.  The ratio cancels the machine, so a slower CI
    runner does not trip the gate but a real crypto-engine regression
    (batch path losing ground against the unchanging seed path) does.
    """
    baseline = json.loads(baseline_path.read_text())
    base_rows = {row["label"]: row for row in baseline.get("dleq", [])}
    failures = []
    for row in record["dleq"]:
        base = base_rows.get(row["label"])
        if base is None:
            continue
        floor = base["verify_speedup"] * REGRESSION_FLOOR
        if row["verify_speedup"] < floor:
            failures.append(
                f"{row['label']}.verify_speedup: {row['verify_speedup']:.1f}x < "
                f"{floor:.1f}x (baseline {base['verify_speedup']:.1f}x * {REGRESSION_FLOOR})"
            )
    base_coin = baseline.get("weighted_coin")
    if base_coin:
        floor = base_coin["open_speedup"] * REGRESSION_FLOOR
        coin = record["weighted_coin"]
        if coin["open_speedup"] < floor:
            failures.append(
                f"weighted_coin.open_speedup: {coin['open_speedup']:.1f}x < "
                f"{floor:.1f}x (baseline {base_coin['open_speedup']:.1f}x * {REGRESSION_FLOOR})"
            )
    return failures


def write_artifacts(record: dict, out_path: Path) -> None:
    out_path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
    write_json("bench_crypto.json", record)
    write_csv_rows(
        "bench_crypto.csv",
        [
            "label", "group_bits", "shares", "threshold",
            "seed_verify_s", "batch_verify_s", "verify_speedup",
            "seed_combine_s", "batch_combine_s", "combine_speedup",
        ],
        [
            [
                row["label"], row["group_bits"], row["shares"], row["threshold"],
                row["seed_verify_s"], row["batch_verify_s"], row["verify_speedup"],
                row["seed_combine_s"], row["batch_combine_s"], row["combine_speedup"],
            ]
            for row in record["dleq"]
        ],
    )
    coin = record["weighted_coin"]
    write_csv_rows(
        "bench_crypto_coin.csv",
        [
            "tickets", "threshold", "group_bits",
            "seed_open_s", "batch_open_s", "open_speedup",
        ],
        [[
            coin["tickets"], coin["threshold"], coin["group_bits"],
            coin["seed_open_s"], coin["batch_open_s"], coin["open_speedup"],
        ]],
    )
    before_after = []
    for row in record["dleq"]:
        tag = f"{row['shares']}sh_{row['group_bits']}bit"
        before_after.append([
            f"verify_{tag}_s", row["seed_verify_s"], row["batch_verify_s"],
            f"{row['verify_speedup']}x",
        ])
        before_after.append([
            f"combine_{tag}_s", row["seed_combine_s"], row["batch_combine_s"],
            f"{row['combine_speedup']}x",
        ])
    before_after.append([
        f"weighted_coin_open_{coin['tickets']}tickets_s",
        coin["seed_open_s"], coin["batch_open_s"], f"{coin['open_speedup']}x",
    ])
    write_csv_rows(
        "bench_crypto_before_after.csv",
        ["metric", "seed", "this_pr", "factor"],
        before_after,
    )


def _print_table(record: dict) -> None:
    print(f"\ncrypto-engine benchmark ({record['mode']} mode)")
    header = (
        f"{'point':<14} {'seed verify':>12} {'batch verify':>13} "
        f"{'speedup':>8} {'seed comb':>10} {'batch comb':>11} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in record["dleq"]:
        print(
            f"{row['label']:<14} {row['seed_verify_s']:>11.4f}s {row['batch_verify_s']:>12.4f}s "
            f"{row['verify_speedup']:>7.1f}x {row['seed_combine_s']:>9.4f}s "
            f"{row['batch_combine_s']:>10.4f}s {row['combine_speedup']:>7.1f}x"
        )
    coin = record["weighted_coin"]
    print(
        f"weighted coin @ {coin['tickets']} tickets: "
        f"seed {coin['seed_open_s']:.4f}s vs batch {coin['batch_open_s']:.4f}s "
        f"({coin['open_speedup']:.1f}x, bit-identical)"
    )


# -- pytest entry ----------------------------------------------------------------------


def test_batch_engine_speedup(tmp_path):
    """Quick-mode run: the acceptance point must clear 10x batch-vs-seed.

    Deliberately writes nowhere near the repo: the committed
    ``BENCH_5.json`` baseline is authored only by the explicit CLI
    ``--out`` path, never as a pytest side effect.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    (tmp_path / "bench_crypto.json").write_text(
        json.dumps(record, sort_keys=True, indent=2) + "\n"
    )
    target = next(r for r in record["dleq"] if r["label"] == "dleq-2048-64")
    assert target["verify_speedup"] >= 10.0
    assert record["weighted_coin"]["bit_identical_to_oracle"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="time the full seed path")
    parser.add_argument("--out", type=Path, default=Path("BENCH_5.json"))
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="fail when speedups regress >30%% vs this baseline record",
    )
    args = parser.parse_args(argv)
    record = run_bench(full=args.full or os.environ.get("REPRO_BENCH_FULL", "") == "1")
    _print_table(record)
    write_artifacts(record, args.out)
    print(f"\nwrote {args.out}")
    if args.check is not None:
        failures = check_against_baseline(record, args.check)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate ok vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
