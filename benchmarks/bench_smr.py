"""Benchmark -- Table 1's first row: asynchronous SMR by composition
(Section 6.1).

Runs the composed SMR (weighted RBC + coin ordering) against its nominal
counterpart at the same party count and reports the message/byte
overhead.  The paper bounds the broadcast layer at x1.33 comm; the
quorum-voting layer itself adds no overhead, which the measurement
shows -- weighted and nominal runs exchange identical message counts
(the protocol is symmetric; only the *quorum arithmetic* differs).
"""

import hashlib

import pytest

from repro.analysis.report import write_csv_rows
from repro.protocols.smr import SmrParty
from repro.sim import build_world
from repro.weighted.quorum import NominalQuorums, WeightedQuorums

WEIGHTS = [34, 21, 13, 8, 8, 5, 3, 2, 2, 1, 1, 1, 1, 1, 1, 1]
N = len(WEIGHTS)
EPOCHS = 3


def _coin(epoch: int) -> int:
    return int.from_bytes(hashlib.sha256(f"b|{epoch}".encode()).digest()[:4], "big")


def _run(quorums, seed=0):
    world = build_world(
        lambda pid: SmrParty(pid, N, quorums, _coin), N, seed=seed
    )
    for epoch in range(EPOCHS):
        for pid in range(N):
            world.party(pid).propose_batch(epoch, f"e{epoch}p{pid}".encode())
    world.run()
    logs = {tuple(world.party(p).ordered_log(0)) for p in range(N)}
    assert len(logs) == 1
    return world.metrics


def test_smr_weighted_vs_nominal(benchmark):
    nominal = _run(NominalQuorums(n=N, t=(N - 1) // 3), seed=1)
    weighted = benchmark.pedantic(
        lambda: _run(WeightedQuorums(WEIGHTS, "1/3"), seed=1),
        rounds=1,
        iterations=1,
    )
    msg_factor = weighted.messages / max(nominal.messages, 1)
    byte_factor = weighted.bytes / max(nominal.bytes, 1)
    print(
        f"\nSMR ({EPOCHS} epochs, n={N}): nominal {nominal.messages} msgs / "
        f"{nominal.bytes:,} B; weighted {weighted.messages} msgs / "
        f"{weighted.bytes:,} B -- factors x{msg_factor:.2f} / x{byte_factor:.2f} "
        f"[paper: weighted voting adds no overhead to the quorum layer]"
    )
    write_csv_rows(
        "smr_measured.csv",
        ["layout", "messages", "bytes"],
        [
            ["nominal", nominal.messages, nominal.bytes],
            ["weighted", weighted.messages, weighted.bytes],
        ],
    )
    assert msg_factor <= 1.05
