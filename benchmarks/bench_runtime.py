"""Benchmark -- execution backends compared: sim vs in-proc vs TCP.

Runs weighted Bracha RBC and one composed SMR epoch through all three
execution modes (discrete-event simulator, live asyncio queues, live TCP
sockets) at the same party count and weights, and reports throughput
(messages per wall-clock second) and completion latency.  The sim's byte
column is its *estimate* (``wire_size()``/flat header); the runtime
columns measure real serialized payloads -- the cross-check that the
Table 1 byte accounting is honest.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py -q -s
"""

import time

from repro.analysis.report import write_csv_rows
from repro.protocols.common_coin import deterministic_coin
from repro.protocols.reliable_broadcast import BroadcastParty
from repro.protocols.smr import SmrParty
from repro.runtime import run_cluster
from repro.sim import build_world
from repro.weighted.quorum import WeightedQuorums

WEIGHTS = [34, 21, 13, 8, 8, 5, 3, 2]
N = len(WEIGHTS)
QUORUMS = WeightedQuorums(WEIGHTS, "1/3")
PAYLOAD = b"x" * 256
_coin = deterministic_coin("rt")


# -- the three backends, one protocol run each -----------------------------------------


def _rbc_sim():
    start = time.perf_counter()
    world = build_world(lambda pid: BroadcastParty(pid, QUORUMS), N, seed=1)
    world.party(0).broadcast_value(PAYLOAD)
    world.run()
    elapsed = time.perf_counter() - start
    assert all(world.party(pid).delivered == PAYLOAD for pid in range(N))
    return world.metrics.messages, world.metrics.bytes, elapsed


def _rbc_runtime(transport):
    cluster = run_cluster(
        lambda pid: BroadcastParty(pid, QUORUMS),
        N,
        transport=transport,
        setup=lambda c: c.party(0).broadcast_value(PAYLOAD),
        stop_when=lambda c: all(p.delivered == PAYLOAD for p in c.parties),
    )
    m = cluster.metrics
    return m.messages, m.bytes, m.elapsed_seconds


def _smr_sim():
    start = time.perf_counter()
    world = build_world(lambda pid: SmrParty(pid, N, QUORUMS, _coin), N, seed=2)
    for pid in range(N):
        world.party(pid).propose_batch(0, PAYLOAD)
    world.run()
    elapsed = time.perf_counter() - start
    logs = {tuple(world.party(pid).ordered_log(0)) for pid in range(N)}
    assert len(logs) == 1
    return world.metrics.messages, world.metrics.bytes, elapsed


def _smr_runtime(transport):
    cluster = run_cluster(
        lambda pid: SmrParty(pid, N, QUORUMS, _coin),
        N,
        transport=transport,
        setup=lambda c: [
            c.party(pid).propose_batch(0, PAYLOAD) for pid in range(N)
        ],
        stop_when=lambda c: all(len(p.ordered_log(0)) == N for p in c.parties),
    )
    m = cluster.metrics
    return m.messages, m.bytes, m.elapsed_seconds


def _report(protocol, rows, benchmark_rows):
    print(f"\n{protocol} backends (n={N}, payload {len(PAYLOAD)} B):")
    print(f"  {'backend':<8} {'msgs':>6} {'bytes':>8} {'wall ms':>9} {'msg/s':>10}")
    for backend, messages, nbytes, elapsed in rows:
        throughput = messages / elapsed if elapsed > 0 else float("inf")
        print(
            f"  {backend:<8} {messages:>6} {nbytes:>8} "
            f"{elapsed * 1000:>9.2f} {throughput:>10.0f}"
        )
        benchmark_rows.append(
            [protocol, backend, messages, nbytes, f"{elapsed:.6f}"]
        )


def test_rbc_backends(benchmark):
    sim = _rbc_sim()
    inproc = benchmark.pedantic(
        lambda: _rbc_runtime("inproc"), rounds=3, iterations=1
    )
    tcp = _rbc_runtime("tcp")
    csv_rows = []
    _report(
        "RBC",
        [("sim", *sim), ("inproc", *inproc), ("tcp", *tcp)],
        csv_rows,
    )
    # Same protocol, same inputs: message counts must agree across backends
    # (the sim's byte column is an estimate, so only counts are comparable).
    assert sim[0] == inproc[0] == tcp[0]
    assert inproc[1] == tcp[1]  # real serialized bytes agree between transports
    write_csv_rows(
        "runtime_backends_rbc.csv",
        ["protocol", "backend", "messages", "bytes", "wall_seconds"],
        csv_rows,
    )


def test_smr_epoch_backends(benchmark):
    sim = _smr_sim()
    inproc = benchmark.pedantic(
        lambda: _smr_runtime("inproc"), rounds=3, iterations=1
    )
    tcp = _smr_runtime("tcp")
    csv_rows = []
    _report(
        "SMR epoch",
        [("sim", *sim), ("inproc", *inproc), ("tcp", *tcp)],
        csv_rows,
    )
    assert sim[0] == inproc[0] == tcp[0]
    assert inproc[1] == tcp[1]
    write_csv_rows(
        "runtime_backends_smr.csv",
        ["protocol", "backend", "messages", "bytes", "wall_seconds"],
        csv_rows,
    )
