"""Benchmark C -- the chaos engine: weather overhead, staged timelines,
and the watchdog's stall-to-postmortem path.

Three rows:

* **weather-overhead** (the gated row): the ``weather-storm-smr``
  registry scenario against the identical spec with chaos stripped,
  both on the simulator.  The ratio of stormy to fault-free virtual
  completion time is deterministic and machine-independent; it is
  gated on an absolute ceiling so ambient duplication + reordering can
  never silently regress SMR into the retransmission regime.  Also
  gated on correctness: both runs complete, decide identically, and
  the stormy log commits no duplicates;
* **chaos-timeline** (gated on correctness, never on timing): the
  ``partition-heal-corrupt-smr`` staged timeline run twice -- the
  record must be byte-deterministic, complete, and fire every stage;
* **watchdog-postmortem** (recorded + correctness): an unhealed
  sub-quorum partition must end in a classified watchdog postmortem
  rather than a timeout, and the wall time of that verdict is recorded.

``--check`` additionally fails when the weather overhead ratio blows
past the committed ``BENCH_10.json`` baseline by more than the slack
factor (floored at 1.5x so a lucky baseline cannot fail a normal run).

Run:    PYTHONPATH=src python benchmarks/bench_chaos.py [--full]
                [--out BENCH_10.json] [--check BASELINE.json]
or:     PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -q -s
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.report import write_csv_rows, write_json
from repro.chaos.schedule import ChaosSpec, ChaosStage, TriggerSpec
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.spec import ScenarioSpec, WeightSpec, WorkloadSpec

#: absolute ceiling on stormy/fault-free sim-time ratio: ambient
#: duplication and reordering cost delivery work, but anything past this
#: means the storm pushed SMR into a retransmission/timeout regime
WEATHER_OVERHEAD_CEILING = 3.0

#: --check slack: fail at baseline * SLACK (but never below 1.5x)
BASELINE_SLACK = 1.5


def bench_weather_overhead() -> dict:
    """Stormy vs fault-free SMR on the sim: the gated overhead ratio."""
    spec = get_scenario("weather-storm-smr")
    clean_spec = dataclasses.replace(spec, chaos=None)
    start = time.perf_counter()
    stormy = run_scenario(spec, backend="sim")
    elapsed = time.perf_counter() - start
    clean = run_scenario(clean_spec, backend="sim")
    record = stormy.record()
    counters = (record.get("chaos") or {}).get("weather", {}).get("counters", {})
    ratio = stormy.sim_time / max(clean.sim_time, 1e-12)
    return {
        "workload": "weather-overhead",
        "scenario": spec.name,
        "completed": stormy.completed and clean.completed,
        "decides_identically": stormy.decided == clean.decided,
        "duplicate_commits": (record.get("chaos") or {}).get(
            "duplicate_commits", 0
        ),
        "duplicated": counters.get("duplicated", 0),
        "reordered": counters.get("reordered", 0),
        "sim_time_stormy": stormy.sim_time,
        "sim_time_fault_free": clean.sim_time,
        "overhead_ratio": round(ratio, 4),
        "ceiling": WEATHER_OVERHEAD_CEILING,
        "wall_s": round(elapsed, 6),
    }


def bench_chaos_timeline() -> dict:
    """The staged partition-heal-corrupt timeline: deterministic, complete."""
    spec = get_scenario("partition-heal-corrupt-smr")
    start = time.perf_counter()
    first = run_scenario(spec, backend="sim")
    elapsed = time.perf_counter() - start
    again = run_scenario(spec, backend="sim")
    record = first.record()
    stages = (record.get("chaos") or {}).get("stages", [])
    return {
        "workload": "chaos-timeline",
        "scenario": spec.name,
        "completed": first.completed,
        "deterministic": first.record_json() == again.record_json(),
        "stages_fired": sum(1 for s in stages if s["fired"]),
        "stages_total": len(stages),
        "dropped_messages": record["dropped_messages"],
        "sim_time": first.sim_time,
        "wall_s": round(elapsed, 6),
    }


def bench_watchdog_postmortem() -> dict:
    """An unhealed stall must yield a classified postmortem, not a timeout."""
    spec = ScenarioSpec(
        name="bench-stall-probe",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=(30, 25, 20, 10, 5, 5, 3, 2)),
        workload=WorkloadSpec(payload_size=32, epochs=1),
        chaos=ChaosSpec(
            stages=(
                ChaosStage(
                    action="partition",
                    trigger=TriggerSpec(kind="time", value=0.0),
                    params=(("groups", ((0, 1, 2, 3), (4, 5, 6, 7))),),
                ),
            ),
        ),
    )
    start = time.perf_counter()
    record = run_scenario(spec, backend="sim", timeout=30).record()
    elapsed = time.perf_counter() - start
    watchdog = (record.get("chaos") or {}).get("watchdog", {})
    return {
        "workload": "watchdog-postmortem",
        "stalled": watchdog.get("stalled", False),
        "classification": watchdog.get("classification"),
        "postmortem_present": "postmortem" in watchdog,
        "verdict_s": round(elapsed, 6),
        "gated": True,
    }


def run_bench(*, full: bool) -> dict:
    return {
        "bench": "chaos",
        "pr": 10,
        "mode": "full" if full else "quick",
        "weather": bench_weather_overhead(),
        "timeline": bench_chaos_timeline(),
        "watchdog": bench_watchdog_postmortem(),
    }


def gate_failures(record: dict) -> list[str]:
    """Correctness gates plus the absolute weather-overhead ceiling."""
    failures = []
    weather = record["weather"]
    if not weather["completed"]:
        failures.append("weather: stormy or fault-free run did not complete")
    if not weather["decides_identically"]:
        failures.append("weather: stormy run decided differently")
    if weather["duplicate_commits"] != 0:
        failures.append(
            f"weather: {weather['duplicate_commits']} duplicate commit(s)"
        )
    if weather["duplicated"] < 1:
        failures.append("weather: the storm never duplicated a message")
    if weather["overhead_ratio"] > WEATHER_OVERHEAD_CEILING:
        failures.append(
            f"weather: overhead {weather['overhead_ratio']:.2f}x "
            f"> {WEATHER_OVERHEAD_CEILING:.1f}x ceiling"
        )
    timeline = record["timeline"]
    if not timeline["completed"]:
        failures.append("timeline: partition-heal-corrupt did not complete")
    if not timeline["deterministic"]:
        failures.append("timeline: chaos record is not byte-deterministic")
    if timeline["stages_fired"] != timeline["stages_total"]:
        failures.append(
            f"timeline: only {timeline['stages_fired']}/"
            f"{timeline['stages_total']} stages fired"
        )
    watchdog = record["watchdog"]
    if not watchdog["stalled"] or not watchdog["postmortem_present"]:
        failures.append("watchdog: stall did not yield a postmortem")
    if watchdog["classification"] != "expected-no-liveness":
        failures.append(
            f"watchdog: misclassified stall as {watchdog['classification']!r}"
        )
    return failures


def check_against_baseline(record: dict, baseline_path: Path) -> list[str]:
    """Baseline-relative overhead regression, with generous slack."""
    baseline = json.loads(baseline_path.read_text())
    failures = gate_failures(record)
    base_ratio = baseline.get("weather", {}).get("overhead_ratio")
    if base_ratio:
        ceiling = max(1.5, base_ratio * BASELINE_SLACK)
        if record["weather"]["overhead_ratio"] > ceiling:
            failures.append(
                f"weather.overhead_ratio: {record['weather']['overhead_ratio']:.2f}x"
                f" > {ceiling:.2f}x (baseline {base_ratio:.2f}x"
                f" * {BASELINE_SLACK})"
            )
    return failures


def write_artifacts(record: dict, out_path: Path) -> None:
    out_path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
    write_json("bench_chaos.json", record)
    write_csv_rows(
        "bench_chaos.csv",
        ["workload", "completed", "overhead_ratio", "wall_s"],
        [
            [
                record["weather"]["workload"], record["weather"]["completed"],
                record["weather"]["overhead_ratio"],
                record["weather"]["wall_s"],
            ],
            [
                record["timeline"]["workload"],
                record["timeline"]["completed"], "",
                record["timeline"]["wall_s"],
            ],
            [
                record["watchdog"]["workload"],
                record["watchdog"]["stalled"], "",
                record["watchdog"]["verdict_s"],
            ],
        ],
    )


def _print_table(record: dict) -> None:
    weather, timeline, dog = (
        record["weather"], record["timeline"], record["watchdog"],
    )
    print(f"\nchaos benchmark ({record['mode']} mode)")
    print(
        f"{'weather-overhead':>18}: {weather['overhead_ratio']:.2f}x "
        f"(ceiling {weather['ceiling']:.1f}x) dup={weather['duplicated']} "
        f"reorder={weather['reordered']} "
        f"identical-decisions={weather['decides_identically']}"
    )
    print(
        f"{'chaos-timeline':>18}: completed={timeline['completed']} "
        f"deterministic={timeline['deterministic']} stages="
        f"{timeline['stages_fired']}/{timeline['stages_total']} "
        f"dropped={timeline['dropped_messages']}"
    )
    print(
        f"{'watchdog':>18}: stalled={dog['stalled']} "
        f"classified={dog['classification']} verdict in {dog['verdict_s']:.3f}s"
    )


# -- pytest entry ----------------------------------------------------------------------

import pytest


def test_chaos_bench(tmp_path):
    """Quick-mode run: correctness gates plus the overhead ceiling.

    Writes only under tmp_path: the committed ``BENCH_10.json`` baseline
    is authored only by the explicit CLI ``--out`` path.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    (tmp_path / "bench_chaos.json").write_text(
        json.dumps(record, sort_keys=True, indent=2) + "\n"
    )
    failures = gate_failures(record)
    assert not failures, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="acceptance-bar sizes")
    parser.add_argument("--out", type=Path, default=Path("BENCH_10.json"))
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="fail when weather overhead regresses vs this baseline",
    )
    args = parser.parse_args(argv)
    record = run_bench(
        full=args.full or os.environ.get("REPRO_BENCH_FULL", "") == "1"
    )
    _print_table(record)
    write_artifacts(record, args.out)
    print(f"\nwrote {args.out}")
    failures = (
        check_against_baseline(record, args.check)
        if args.check is not None
        else gate_failures(record)
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate ok{f' vs {args.check}' if args.check else ''}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
