"""Benchmark T1 -- paper Table 1: nominal-vs-weighted protocol overheads.

Two layers:

1. the *analytic* worst-case factors derived from the theorem bounds
   (``repro.analysis.table1``), printed beside the paper's numbers;
2. *measured* overheads on the simulator -- the paper notes measured
   overheads should be below the worst case on organic weights:

   * P1: AVID dispersal/retrieval fragments + decode work,
     nominal (t+1, n) vs weighted WQ(1/3, 1/4) layout (x1.33 comm /
     x3.56 comp worst case);
   * P2: error-corrected dissemination decode work under garbage
     injection, WQ(2/3, 5/8) (x7.11 comp worst case);
   * P3: beacon signature shares per epoch, WR(1/3, 1/2)
     (x1.33 worst case).
"""

import random

import pytest

from repro.analysis.report import write_csv_rows, write_text
from repro.analysis.table1 import build_table1, format_table1
from repro.codes import BlockFragment, ReedSolomon
from repro.protocols.avid import AvidParty
from repro.protocols.ec_broadcast import EcParty, GarbageEcParty, OnlineDecoder
from repro.sim import build_world
from repro.sim.adversary import heaviest_under
from repro.weighted import (
    NominalQuorums,
    WeightedQuorums,
    VirtualUserMap,
    blunt_setup,
    error_correction_setup,
    qualification_setup,
)

#: A moderately skewed 16-party validator set used for the measurements.
WEIGHTS = [34, 21, 13, 8, 8, 5, 3, 2, 2, 1, 1, 1, 1, 1, 1, 1]
N = len(WEIGHTS)


def test_table1_analytic(benchmark):
    """Derived worst-case factors match the paper's worked examples."""
    rows = benchmark(build_table1)
    table = format_table1(rows)
    print("\n" + table)
    write_text("table1_analytic.txt", table)
    by_name = {r.protocol: r for r in rows}
    assert float(by_name["Erasure-Coded Storage/Broadcast"].comp_overhead) == pytest.approx(3.5555, abs=0.01)
    assert float(by_name["Error-Corrected Broadcast"].comp_overhead) == pytest.approx(7.1111, abs=0.01)


def _run_avid(weighted: bool, seed=0):
    if weighted:
        setup = qualification_setup(WEIGHTS, "1/3", "1/4")
        code = ReedSolomon(k=setup.data_shards, m=setup.total_shards)
        vmap = setup.vmap
        quorums = WeightedQuorums(WEIGHTS, "1/3")
    else:
        t = (N - 1) // 3
        code = ReedSolomon(k=t + 1, m=N)
        vmap = VirtualUserMap([1] * N)
        quorums = NominalQuorums(n=N, t=t)
    world = build_world(lambda pid: AvidParty(pid, quorums), N, seed=seed)
    rng = random.Random(seed)
    # One stripe's worth of payload keeps the work counters directly
    # comparable with the paper's per-codeword accounting.
    data = rng.randbytes(code.k * code.field.sym_bytes)
    commitment = world.party(0).disperse(data, code, vmap)
    world.run()
    world.party(N - 1).retrieve(commitment)
    world.run()
    assert world.party(N - 1).retrieved == data
    decode_work = world.party(N - 1).counters["decode_symbols"]
    return {
        "fragments": code.m,
        "rate": code.rate,
        "decode_work": decode_work,
        "messages": world.metrics.messages,
        "bytes": world.metrics.bytes,
    }


def test_p1_avid_overhead(benchmark):
    """Measured AVID overheads stay under the paper's worst-case bounds."""
    nominal = _run_avid(weighted=False)
    weighted = benchmark.pedantic(
        lambda: _run_avid(weighted=True), rounds=1, iterations=1
    )
    comm_factor = (1 / 3) / weighted["rate"] if weighted["rate"] else 0
    comp_factor = weighted["decode_work"] / max(nominal["decode_work"], 1)
    print(
        f"\nAVID nominal: m={nominal['fragments']} decode_work={nominal['decode_work']}"
        f"\nAVID weighted: m={weighted['fragments']} rate={weighted['rate']:.3f} "
        f"decode_work={weighted['decode_work']}"
        f"\n  comm overhead (rate ratio) x{comm_factor:.2f}  [paper worst case x1.33]"
        f"\n  comp overhead (decode)     x{comp_factor:.2f}  [paper worst case x3.56]"
    )
    write_csv_rows(
        "table1_avid_measured.csv",
        ["layout", "fragments", "decode_work", "messages", "bytes"],
        [
            ["nominal", nominal["fragments"], nominal["decode_work"], nominal["messages"], nominal["bytes"]],
            ["weighted", weighted["fragments"], weighted["decode_work"], weighted["messages"], weighted["bytes"]],
        ],
    )
    assert comp_factor <= 3.56 + 0.01


def _run_ec(weighted: bool, seed=1):
    if weighted:
        # Section 5.2: f_w = 1/3, code rate 1/4 => WQ(2/3, 5/8).
        setup = error_correction_setup(WEIGHTS, "1/3", "1/4")
        code = ReedSolomon(k=setup.data_shards, m=setup.total_shards)
        vmap = setup.vmap
    else:
        t = (N - 1) // 3
        code = ReedSolomon(k=t + 1, m=N)
        vmap = VirtualUserMap([1] * N)
    corrupt = heaviest_under(WEIGHTS, "1/3")
    rng = random.Random(seed)
    data = rng.randbytes(code.k * code.field.sym_bytes)
    fragments = [
        BlockFragment(j, b) for j, b in enumerate(code.encode_blocks(data))
    ]
    data_hash = OnlineDecoder.hash_data(data)

    def factory(pid):
        cls = GarbageEcParty if pid in corrupt else EcParty
        return cls(pid, code, vmap)

    world = build_world(factory, N, seed=seed)
    for pid in range(N):
        mine = [fragments[v] for v in vmap.virtual_ids(pid)]
        world.party(pid).install(mine, data_hash, len(data))
    reconstructor = next(p for p in range(N) if p not in corrupt)
    world.party(reconstructor).reconstruct()
    world.run()
    assert world.party(reconstructor).reconstructed == data
    counters = world.party(reconstructor).counters
    # Deterministic per-decode cost: one error decode over the FULL
    # fragment set with every adversary-owned fragment garbled.  The
    # online run above depends on arrival luck; this is the structural
    # cost the paper's computation column models.
    probe = ReedSolomon(k=code.k, m=code.m, field=code.field)
    garble = bytes(b ^ 0x2A for b in range(256))
    garbled = {
        f.index: f.block.translate(garble)
        if vmap.owner(f.index) in corrupt
        else f.block
        for f in fragments
    }
    assert probe.decode_errors_blocks(garbled, len(data)) == data
    return {
        "fragments": code.m,
        "data_shards": code.k,
        "decode_work": counters["decode_work"],
        "final_work": probe.work_counter,
        "attempts": counters["decode_attempts"],
    }


def test_p2_error_corrected_overhead(benchmark):
    """Online error correction under garbage injection.

    The paper's computation column models a *single* decode normalized by
    message size (``O(m/r * M)``); the measured analog is the successful
    attempt's field operations divided by the data symbol count.  Total
    online work across attempts is reported as well -- it is much larger
    because asynchrony makes every arrival retrigger the decoder.
    """
    nominal = _run_ec(weighted=False)
    weighted = benchmark.pedantic(
        lambda: _run_ec(weighted=True), rounds=1, iterations=1
    )
    per_symbol_n = nominal["final_work"] / max(nominal["data_shards"], 1)
    per_symbol_w = weighted["final_work"] / max(weighted["data_shards"], 1)
    comp_factor = per_symbol_w / max(per_symbol_n, 1e-9)
    online_factor = weighted["decode_work"] / max(nominal["decode_work"], 1)
    print(
        f"\nEC nominal: m={nominal['fragments']} k={nominal['data_shards']} "
        f"final={nominal['final_work']} attempts={nominal['attempts']}"
        f"\nEC weighted: m={weighted['fragments']} k={weighted['data_shards']} "
        f"final={weighted['final_work']} attempts={weighted['attempts']}"
        f"\n  per-decode comp overhead x{comp_factor:.2f}  [paper worst case x7.11]"
        f"\n  total online work factor x{online_factor:.2f}  (all retries summed)"
    )
    write_csv_rows(
        "table1_ec_measured.csv",
        ["layout", "fragments", "data_shards", "final_work", "total_work", "attempts"],
        [
            ["nominal", nominal["fragments"], nominal["data_shards"],
             nominal["final_work"], nominal["decode_work"], nominal["attempts"]],
            ["weighted", weighted["fragments"], weighted["data_shards"],
             weighted["final_work"], weighted["decode_work"], weighted["attempts"]],
        ],
    )
    # Shape claim: a modest constant-factor penalty, not asymptotic blowup.
    assert 1.0 <= comp_factor <= 7.12


def test_p3_beacon_share_overhead(benchmark):
    """Beacon share work: T shares per epoch vs n nominal (x1.33 bound)."""
    setup = benchmark.pedantic(
        lambda: blunt_setup(WEIGHTS, "1/3", "1/2"), rounds=1, iterations=1
    )
    factor = setup.total_virtual / N
    print(
        f"\nbeacon: T={setup.total_virtual} shares/epoch over n={N} parties "
        f"-- overhead x{factor:.2f}  [paper worst case x1.33]"
    )
    assert factor <= 4 / 3 + 1e-9
