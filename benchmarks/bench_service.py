"""Benchmark E -- the epoch service: sustained throughput and rotation cost.

Two parts:

* **throughput**: the sim-backend :class:`~repro.service.EpochService`
  driven open-loop at several Poisson arrival rates over a rotating
  3-epoch committee.  The sim runs in virtual time, so ops/sec and the
  p50/p99 commit latencies are *deterministic* -- they are recorded for
  the paper tables but not perf-gated (a drift there is a logic change
  that the determinism tests catch first).
* **rotation**: committee re-formation cost on a 10k-party Zipf(1.3)
  committee.  A **cold** rotation rebuilds the whole cheapest-ticket
  price stream from scratch; an **incremental** rotation (the epoch
  manager's path, :class:`repro.api.IncrementalSolver`) replays the
  binary search on a patched stream when one party's stake moved.  The
  acceptance point is a single-party delta (>= 5x incremental-vs-cold),
  with the incremental assignment checked equal to a cold oracle solve.

Run:    PYTHONPATH=src python benchmarks/bench_service.py [--full]
                [--out BENCH_6.json] [--check BASELINE.json]
or:     PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s

``--check`` compares the freshly measured incremental-vs-cold speedup
ratio (machine-independent: both paths run on the same box in the same
process) against a committed baseline and exits non-zero when it
regresses by more than 30% -- the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.report import write_csv_rows, write_json
from repro.api import Committee, IncrementalSolver
from repro.core import WeightRestriction
from repro.service import (
    DriftSchedule,
    EpochManager,
    EpochService,
    LoadGenerator,
    ServiceConfig,
    SimServiceBackend,
)
from repro.service.scenario import drift_schedule_for

#: open-loop Poisson arrival rates (requests per virtual second)
ARRIVAL_RATES = (40.0, 80.0, 160.0)

#: requests per throughput row (quick); --full quadruples it
QUICK_REQUESTS = 48

#: rotation committee: n parties, Zipf skew (the paper's heavy-tail regime)
ROTATION_N = 10_000
ROTATION_SKEW = 1.3
ROTATION_TOTAL = 1_000_000

#: CI gate: fail when the incremental-vs-cold rotation speedup drops
#: below this fraction of the committed baseline's ratio
REGRESSION_FLOOR = 0.70

#: absolute acceptance bar for the 1-delta rotation speedup
ACCEPTANCE_SPEEDUP = 5.0


def _time(fn, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time (min-of-N: robust to preemption)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_throughput(rate: float, *, full: bool) -> dict:
    """One sim-backend service run at ``rate`` req/s (virtual time)."""
    requests = QUICK_REQUESTS * (4 if full else 1)
    committee = Committee.synthetic("zipf", n=6, total=600, skew=1.2, seed=0)
    committee.validate(f_w="1/3")
    schedule = drift_schedule_for(committee.weights, epochs=3)
    manager = EpochManager(schedule, f_w="1/3")
    config = ServiceConfig(
        f_w="1/3", slot_interval=0.05, slots_per_epoch=3, max_time=120.0
    )
    backend = SimServiceBackend(seed=0)
    load = LoadGenerator(rate=rate, requests=requests, payload_size=32, seed=0)
    service = EpochService(backend, manager, config, seed=0, load=load)
    wall = _time(service.run)  # one shot: the run is deterministic
    result = service.result()
    assert result.completed, result.error
    section = result.record()["service"]
    return {
        "arrival_rate": rate,
        "requests": requests,
        "committed": section["requests_committed"],
        "epochs": len(section["epochs"]),
        "rotations": section["rotations"],
        "ops_per_sec": section["ops_per_sec"],
        "latency_p50_s": section["latency_p50_s"],
        "latency_p99_s": section["latency_p99_s"],
        "sim_time_s": round(backend.sim_time, 6),
        "wall_s": round(wall, 6),
    }


def bench_rotation(*, full: bool) -> dict:
    """10k-party 1-delta rotation: incremental re-solve vs cold solve."""
    problem = WeightRestriction("1/3", "1/2")
    committee = Committee.synthetic(
        "zipf", n=ROTATION_N, total=ROTATION_TOTAL, skew=ROTATION_SKEW, seed=42
    )
    base = list(committee.weights)
    repeats = 3 if full else 2

    # A chain of 1-party stake bumps: each step is one epoch's drift.
    steps = []
    current = list(base)
    for e in range(1, repeats + 1):
        i = (e - 1) % len(current)
        current[i] += max(1, current[i] // 8)
        steps.append(tuple(current))

    # -- cold path: a fresh solver per rotation (no stream to reuse) -------
    def cold_solve(ws):
        solver = IncrementalSolver(problem)
        result = solver.solve(ws)
        assert solver.last_mode == "cold"
        return result

    t_cold = min(_time(lambda ws=ws: cold_solve(ws)) for ws in steps)
    oracle = cold_solve(steps[0])

    # -- incremental path: prime with the previous epoch, time the delta ---
    times = []
    results = []
    for prev, ws in zip([tuple(base), *steps], steps):
        solver = IncrementalSolver(problem)
        solver.solve(prev)  # prime (untimed): the retiring epoch's solve
        start = time.perf_counter()
        results.append(solver.solve(ws))
        times.append(time.perf_counter() - start)
        assert solver.last_mode == "incremental", solver.last_mode
        assert solver.last_changed == 1
        assert solver.incremental_hits == 1
    t_inc = min(times)

    # The incremental assignment must equal the cold oracle's, ticket for
    # ticket -- the fast path is an optimization, never an approximation.
    inc = results[0]
    assert inc.assignment.tickets == oracle.assignment.tickets
    assert inc.achieved == oracle.achieved
    assert inc.probes == oracle.probes

    return {
        "parties": ROTATION_N,
        "skew": ROTATION_SKEW,
        "total_weight": ROTATION_TOTAL,
        "delta_parties": 1,
        "rotations_timed": repeats,
        "cold_solve_s": round(t_cold, 6),
        "incremental_solve_s": round(t_inc, 6),
        "rotation_speedup": round(t_cold / max(t_inc, 1e-12), 2),
        "tickets": oracle.achieved,
        "equal_to_cold_oracle": True,
    }


def run_bench(*, full: bool) -> dict:
    return {
        "bench": "service",
        "pr": 6,
        "mode": "full" if full else "quick",
        "throughput": [bench_throughput(rate, full=full) for rate in ARRIVAL_RATES],
        "rotation": bench_rotation(full=full),
    }


def check_against_baseline(record: dict, baseline_path: Path) -> list[str]:
    """Rotation-speedup regressions beyond the floor, as messages.

    Only the incremental-vs-cold ratio is gated: both solvers run in the
    same process on the same box, so the ratio cancels the machine.  The
    throughput rows are virtual-time measurements -- deterministic, but
    logic-sensitive, so they belong to the determinism tests, not a perf
    gate.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    base_rot = baseline.get("rotation")
    if base_rot:
        floor = base_rot["rotation_speedup"] * REGRESSION_FLOOR
        rot = record["rotation"]
        if rot["rotation_speedup"] < floor:
            failures.append(
                f"rotation.rotation_speedup: {rot['rotation_speedup']:.1f}x < "
                f"{floor:.1f}x (baseline {base_rot['rotation_speedup']:.1f}x "
                f"* {REGRESSION_FLOOR})"
            )
    return failures


def write_artifacts(record: dict, out_path: Path) -> None:
    out_path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
    write_json("bench_service.json", record)
    write_csv_rows(
        "bench_service_throughput.csv",
        [
            "arrival_rate", "requests", "committed", "epochs", "rotations",
            "ops_per_sec", "latency_p50_s", "latency_p99_s", "sim_time_s",
        ],
        [
            [
                row["arrival_rate"], row["requests"], row["committed"],
                row["epochs"], row["rotations"], row["ops_per_sec"],
                row["latency_p50_s"], row["latency_p99_s"], row["sim_time_s"],
            ]
            for row in record["throughput"]
        ],
    )
    rot = record["rotation"]
    write_csv_rows(
        "bench_service_rotation.csv",
        [
            "parties", "skew", "delta_parties",
            "cold_solve_s", "incremental_solve_s", "rotation_speedup",
        ],
        [[
            rot["parties"], rot["skew"], rot["delta_parties"],
            rot["cold_solve_s"], rot["incremental_solve_s"],
            rot["rotation_speedup"],
        ]],
    )


def _print_table(record: dict) -> None:
    print(f"\nepoch-service benchmark ({record['mode']} mode)")
    header = (
        f"{'rate':>6} {'requests':>9} {'committed':>10} {'epochs':>7} "
        f"{'ops/sec':>9} {'p50':>8} {'p99':>8} {'sim time':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in record["throughput"]:
        print(
            f"{row['arrival_rate']:>6.0f} {row['requests']:>9} "
            f"{row['committed']:>10} {row['epochs']:>7} "
            f"{row['ops_per_sec']:>9.1f} {row['latency_p50_s']:>7.3f}s "
            f"{row['latency_p99_s']:>7.3f}s {row['sim_time_s']:>8.3f}s"
        )
    rot = record["rotation"]
    print(
        f"rotation @ {rot['parties']} parties (1-party delta): "
        f"cold {rot['cold_solve_s']:.4f}s vs incremental "
        f"{rot['incremental_solve_s']:.4f}s ({rot['rotation_speedup']:.1f}x, "
        f"equal to the cold oracle)"
    )


# -- pytest entry ----------------------------------------------------------------------


def test_epoch_service_bench(tmp_path):
    """Quick-mode run: the 1-delta rotation must clear 5x incremental-vs-cold.

    Deliberately writes nowhere near the repo: the committed
    ``BENCH_6.json`` baseline is authored only by the explicit CLI
    ``--out`` path, never as a pytest side effect.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    record = run_bench(full=full)
    _print_table(record)
    (tmp_path / "bench_service.json").write_text(
        json.dumps(record, sort_keys=True, indent=2) + "\n"
    )
    assert record["rotation"]["rotation_speedup"] >= ACCEPTANCE_SPEEDUP
    assert record["rotation"]["equal_to_cold_oracle"]
    for row in record["throughput"]:
        assert row["committed"] == row["requests"]
        # Every rate must live through at least one committee rotation
        # (the highest rate drains its arrivals in ~2 epochs).
        assert row["epochs"] >= 2 and row["rotations"] >= 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="more requests/repeats")
    parser.add_argument("--out", type=Path, default=Path("BENCH_6.json"))
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="fail when the rotation speedup regresses >30%% vs this baseline",
    )
    args = parser.parse_args(argv)
    record = run_bench(full=args.full or os.environ.get("REPRO_BENCH_FULL", "") == "1")
    _print_table(record)
    write_artifacts(record, args.out)
    print(f"\nwrote {args.out}")
    if args.check is not None:
        failures = check_against_baseline(record, args.check)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate ok vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
