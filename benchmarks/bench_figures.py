"""Benchmarks F1-F5 -- paper Figures 1-5 (Section 7 / Appendix C).

For each chain: the (alpha_n x alpha_w/alpha_n) heatmap grid of total
tickets, max tickets, and holders, plus the nfrac bootstrap scaling
series for the four highlighted parameter pairs.  ASCII panels and CSV
series land in ``results/figure_<chain>.*``.

Grid density and bootstrap trials scale down with chain size to keep the
benchmark run tractable; the paper's qualitative observations checked:

* total tickets rarely exceed n anywhere on the grid;
* total tickets and holders grow near-linearly with the party count;
* max tickets saturate as n passes ~1000 (checked on Filecoin/Algorand).
"""

import os
from fractions import Fraction

import pytest

from repro.analysis.figures import build_figure, figure_csv, render_figure
from repro.analysis.report import write_text
from repro.analysis.sweep import TABLE2_WR_PAIRS

_DENSE = tuple(Fraction(k, 10) for k in range(1, 10))
_MEDIUM = tuple(Fraction(k, 10) for k in range(2, 10, 2))
_COARSE = (Fraction(3, 10), Fraction(1, 2), Fraction(4, 5))


def _run_figure(snapshot, *, alpha_ns, ratios, nfracs, trials, mode):
    fig = build_figure(
        snapshot,
        alpha_ns=alpha_ns,
        ratios=ratios,
        pairs=TABLE2_WR_PAIRS,
        nfracs=nfracs,
        trials=trials,
        mode=mode,
        # Figures are byte-identical at any jobs value, so fan-out is a
        # pure wall-clock knob for big chains (Filecoin/Algorand).
        jobs=os.environ.get("REPRO_JOBS", "1"),
    )
    text = render_figure(fig)
    grid_csv, scale_csv = figure_csv(fig)
    write_text(f"figure_{fig.system}.txt", text)
    write_text(f"figure_{fig.system}_grid.csv", grid_csv)
    write_text(f"figure_{fig.system}_scaling.csv", scale_csv)
    print("\n" + text.split("\n\n")[1])  # show the total-tickets heatmap
    return fig


def _assert_shape_claims(fig, n):
    # Tickets rarely exceed n: allow a minority of extreme-gap cells.
    over = sum(1 for p in fig.grid_points if p.metrics.total_tickets > n)
    assert over <= len(fig.grid_points) // 3, f"{over}/{len(fig.grid_points)} cells exceed n"
    # Scaling series: totals are non-decreasing-ish in n (allow noise).
    for points in fig.scaling.values():
        series = [p.total_tickets for p in points]
        assert series[-1] >= series[0] * 0.8


def test_figure_aptos(benchmark, aptos_snapshot):
    fig = benchmark.pedantic(
        lambda: _run_figure(
            aptos_snapshot,
            alpha_ns=_DENSE,
            ratios=_DENSE,
            nfracs=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
            trials=5,
            mode="full",
        ),
        rounds=1,
        iterations=1,
    )
    _assert_shape_claims(fig, aptos_snapshot.n)


def test_figure_tezos(benchmark, tezos_snapshot):
    fig = benchmark.pedantic(
        lambda: _run_figure(
            tezos_snapshot,
            alpha_ns=_DENSE,
            ratios=_DENSE,
            nfracs=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
            trials=5,
            mode="full",
        ),
        rounds=1,
        iterations=1,
    )
    _assert_shape_claims(fig, tezos_snapshot.n)


def test_figure_filecoin(benchmark, filecoin_snapshot):
    fig = benchmark.pedantic(
        lambda: _run_figure(
            filecoin_snapshot,
            alpha_ns=_MEDIUM,
            ratios=_MEDIUM,
            nfracs=(0.1, 0.25, 0.5, 1.0),
            trials=3,
            mode="full",
        ),
        rounds=1,
        iterations=1,
    )
    _assert_shape_claims(fig, filecoin_snapshot.n)


def test_figure_algorand(benchmark, algorand_snapshot):
    """Algorand uses the linear solver mode and sub-full bootstrap sizes
    (n = 42920); the paper's claims are visible well below full size."""
    fig = benchmark.pedantic(
        lambda: _run_figure(
            algorand_snapshot,
            alpha_ns=_COARSE,
            ratios=_COARSE,
            nfracs=(0.02, 0.05, 0.1, 0.25),
            trials=2,
            mode="linear",
        ),
        rounds=1,
        iterations=1,
    )
    # Dust-heavy chain: tickets far below n everywhere on the grid.
    assert all(
        p.metrics.total_tickets < algorand_snapshot.n for p in fig.grid_points
    )


def test_max_tickets_saturation(filecoin_snapshot):
    """Paper, Section 7: max tickets saturate once n passes ~1000."""
    from repro.analysis.sweep import nfrac_sweep

    points = nfrac_sweep(
        filecoin_snapshot.weights,
        Fraction(1, 3),
        Fraction(1, 2),
        nfracs=(0.3, 0.6, 1.0),
        trials=3,
        seed=5,
    )
    maxes = [p.max_tickets for p in points]
    print(f"\nfilecoin max tickets at n={[p.size for p in points]}: {maxes}")
    # Saturation: growing n by 3.3x moves max tickets by far less.
    assert maxes[-1] <= maxes[0] * 2.5 + 5
