"""Benchmark -- facade solve throughput and the memoized price stream.

Two measurements on a 10k-party Zipf committee (the scale regime of the
paper's Filecoin column):

* end-to-end ``Committee.solve`` throughput through the policy registry
  (solves per second, full and linear modes);
* the binary search's ticket-materialization hot path with the memoized
  :class:`~repro.core.prices.PriceStream` against the pre-facade
  per-probe recomputation, at the exact probe sequence Swiper visits.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_api.py -q -s
"""

import time

from repro.analysis.report import write_csv_rows
from repro.api import Committee
from repro.core import WeightRestriction
from repro.core.prices import PriceStream, assignment_for_total
from repro.core.types import normalize_weights

PROBLEM = WeightRestriction("1/3", "1/2")
COMMITTEE = Committee.synthetic("zipf", n=10_000, total=10_000_000, skew=1.0, seed=1)


def _probe_sequence(bound: int) -> list[int]:
    """The totals Swiper's binary search visits for an always-valid run
    (worst-case memoization overlap: every probe shrinks hi)."""
    lo, hi, probes = 0, bound, []
    while hi - lo > 1:
        mid = (lo + hi) // 2
        probes.append(mid)
        hi = mid  # assume valid: descend toward the minimum
    probes.append(hi)
    return probes


def test_committee_solve_throughput(benchmark):
    """Facade solves per second on the 10k-party Zipf committee."""

    def solve_both():
        full = COMMITTEE.solve(PROBLEM, "swiper", verify=False)
        linear = COMMITTEE.solve(PROBLEM, "swiper-linear", verify=False)
        return full, linear

    full, linear = benchmark.pedantic(solve_both, rounds=3, iterations=1)
    assert full.achieved <= full.bound and linear.achieved <= linear.bound
    assert full.achieved <= linear.achieved
    print(
        f"\n10k zipf: full T={full.achieved} ({full.elapsed_seconds:.3f}s, "
        f"{full.probes} probes), linear T={linear.achieved} "
        f"({linear.elapsed_seconds:.3f}s)"
    )
    write_csv_rows(
        "api_solve_10k_zipf.csv",
        ["policy", "total_tickets", "bound", "probes", "solve_seconds"],
        [
            ["swiper", full.achieved, full.bound, full.probes, f"{full.elapsed_seconds:.6f}"],
            ["swiper-linear", linear.achieved, linear.bound, linear.probes,
             f"{linear.elapsed_seconds:.6f}"],
        ],
    )


def test_price_stream_memoization(benchmark):
    """The memoized stream against per-probe recomputation."""
    ws = normalize_weights(COMMITTEE.weights)
    c = PROBLEM.rounding_constant
    probes = _probe_sequence(PROBLEM.ticket_bound(len(ws)))

    def memoized():
        stream = PriceStream(ws, c)
        return [stream.assignment(t) for t in probes]

    results = benchmark.pedantic(memoized, rounds=3, iterations=1)

    start = time.perf_counter()
    naive = [assignment_for_total(ws, c, t) for t in probes]
    naive_seconds = time.perf_counter() - start
    assert results == naive  # memoization must not change a single ticket

    memo_seconds = benchmark.stats.stats.mean
    speedup = naive_seconds / memo_seconds if memo_seconds > 0 else float("inf")
    print(
        f"\n{len(probes)} probes over n=10k: memoized {memo_seconds:.3f}s, "
        f"naive {naive_seconds:.3f}s ({speedup:.1f}x)"
    )
    write_csv_rows(
        "api_price_stream_10k.csv",
        ["variant", "probes", "seconds"],
        [
            ["price-stream", len(probes), f"{memo_seconds:.6f}"],
            ["per-probe", len(probes), f"{naive_seconds:.6f}"],
        ],
    )
