"""Fuzz campaigns and registry sweeps under ``jobs``: byte-identical
output at every parallelism level (the determinism regression the
parallel engine is contractually bound to)."""

import json

import pytest

from repro.adversary import FuzzConfig, run_campaign
from repro.parallel import run_specs
from repro.scenarios.registry import get_scenario


def _campaign_fingerprint(result):
    """Everything observable about a campaign, canonically encoded."""
    return json.dumps(
        {
            "summary": result.summary(),
            "failures": result.failures,
            "outcomes": [
                {
                    "episode": outcome.episode,
                    "violations": outcome.violations,
                    "skipped": outcome.skipped,
                    "record": outcome.record,
                }
                for outcome in result.outcomes
            ],
        },
        sort_keys=True,
        default=str,
    )


@pytest.mark.proc
class TestCampaignDeterminism:
    def test_fifty_episodes_identical_at_jobs_1_and_4(self):
        config = FuzzConfig(episodes=50, seed=5)
        sequential = run_campaign(config)  # the pre-jobs code path
        jobs_one = run_campaign(config, jobs=1)
        jobs_four = run_campaign(config, jobs=4)
        assert (
            sequential.summary() == jobs_one.summary() == jobs_four.summary()
        )
        assert (
            _campaign_fingerprint(sequential)
            == _campaign_fingerprint(jobs_one)
            == _campaign_fingerprint(jobs_four)
        )

    def test_auto_jobs_is_accepted(self):
        config = FuzzConfig(episodes=4, seed=2)
        assert run_campaign(config, jobs="auto").summary() == run_campaign(
            config
        ).summary()


class TestSweepDeterminism:
    def test_sequential_sweep_preserves_input_order(self):
        specs = [get_scenario("crash-f-rbc"), get_scenario("uniform-rbc")]
        records = run_specs(specs, jobs=1)
        assert [r["scenario"] for r in records] == ["crash-f-rbc", "uniform-rbc"]
        assert all(r["completed"] for r in records)

    @pytest.mark.proc
    def test_sweep_identical_across_jobs(self):
        specs = [get_scenario("uniform-rbc"), get_scenario("crash-f-rbc")]
        assert run_specs(specs, jobs=1) == run_specs(specs, jobs=2)


class TestAnalysisSweepDeterminism:
    """The Section 7 analysis sweeps under ``jobs``: per-point seeded
    streams (``f"{seed}|nfrac|{index}"``), so fan-out cannot reorder or
    perturb the bootstrap draws."""

    WEIGHTS = (900, 500, 300, 180, 120, 80, 50, 30, 20, 10, 5, 5, 3, 1)

    def test_grid_sweep_order_and_values_at_jobs_1(self):
        from fractions import Fraction

        from repro.analysis.sweep import alpha_grid_sweep

        points = alpha_grid_sweep(
            self.WEIGHTS,
            alpha_ns=[Fraction(1, 3), Fraction(1, 2)],
            ratios=[Fraction(1, 2), Fraction(3, 4)],
        )
        assert [(p.alpha_n, p.ratio) for p in points] == [
            (Fraction(1, 3), Fraction(1, 2)),
            (Fraction(1, 3), Fraction(3, 4)),
            (Fraction(1, 2), Fraction(1, 2)),
            (Fraction(1, 2), Fraction(3, 4)),
        ]
        assert all(p.metrics.total_tickets >= 1 for p in points)

    def test_nfrac_points_are_independent_of_sweep_composition(self):
        """Dropping a point from the nfrac list must not change the
        others' draws -- the property the per-index RNG keying buys."""
        from fractions import Fraction

        from repro.analysis.sweep import nfrac_sweep

        full = nfrac_sweep(
            self.WEIGHTS,
            Fraction(1, 3),
            Fraction(1, 2),
            nfracs=(0.25, 0.5, 1.0),
            trials=4,
            seed=3,
        )
        # Same indices 0 and 1: identical points even without index 2.
        prefix = nfrac_sweep(
            self.WEIGHTS,
            Fraction(1, 3),
            Fraction(1, 2),
            nfracs=(0.25, 0.5),
            trials=4,
            seed=3,
        )
        assert full[:2] == prefix

    @pytest.mark.proc
    def test_analysis_sweeps_identical_across_jobs(self):
        from fractions import Fraction

        from repro.analysis.sweep import alpha_grid_sweep, nfrac_sweep

        grid_args = dict(
            alpha_ns=[Fraction(k, 10) for k in range(1, 10)],
            ratios=[Fraction(k, 10) for k in range(1, 10)],
        )
        assert alpha_grid_sweep(self.WEIGHTS, **grid_args) == alpha_grid_sweep(
            self.WEIGHTS, jobs=3, **grid_args
        )
        scale_args = dict(nfracs=(0.2, 0.5, 1.0), trials=5, seed=11)
        assert nfrac_sweep(
            self.WEIGHTS, Fraction(1, 4), Fraction(1, 3), **scale_args
        ) == nfrac_sweep(
            self.WEIGHTS, Fraction(1, 4), Fraction(1, 3), jobs=4, **scale_args
        )
