"""Fuzz campaigns and registry sweeps under ``jobs``: byte-identical
output at every parallelism level (the determinism regression the
parallel engine is contractually bound to)."""

import json

import pytest

from repro.adversary import FuzzConfig, run_campaign
from repro.parallel import run_specs
from repro.scenarios.registry import get_scenario


def _campaign_fingerprint(result):
    """Everything observable about a campaign, canonically encoded."""
    return json.dumps(
        {
            "summary": result.summary(),
            "failures": result.failures,
            "outcomes": [
                {
                    "episode": outcome.episode,
                    "violations": outcome.violations,
                    "skipped": outcome.skipped,
                    "record": outcome.record,
                }
                for outcome in result.outcomes
            ],
        },
        sort_keys=True,
        default=str,
    )


@pytest.mark.proc
class TestCampaignDeterminism:
    def test_fifty_episodes_identical_at_jobs_1_and_4(self):
        config = FuzzConfig(episodes=50, seed=5)
        sequential = run_campaign(config)  # the pre-jobs code path
        jobs_one = run_campaign(config, jobs=1)
        jobs_four = run_campaign(config, jobs=4)
        assert (
            sequential.summary() == jobs_one.summary() == jobs_four.summary()
        )
        assert (
            _campaign_fingerprint(sequential)
            == _campaign_fingerprint(jobs_one)
            == _campaign_fingerprint(jobs_four)
        )

    def test_auto_jobs_is_accepted(self):
        config = FuzzConfig(episodes=4, seed=2)
        assert run_campaign(config, jobs="auto").summary() == run_campaign(
            config
        ).summary()


class TestSweepDeterminism:
    def test_sequential_sweep_preserves_input_order(self):
        specs = [get_scenario("crash-f-rbc"), get_scenario("uniform-rbc")]
        records = run_specs(specs, jobs=1)
        assert [r["scenario"] for r in records] == ["crash-f-rbc", "uniform-rbc"]
        assert all(r["completed"] for r in records)

    @pytest.mark.proc
    def test_sweep_identical_across_jobs(self):
        specs = [get_scenario("uniform-rbc"), get_scenario("crash-f-rbc")]
        assert run_specs(specs, jobs=1) == run_specs(specs, jobs=2)
